//! Integration: the §3/§6 attack scenarios end to end.

use snvmm::core::attack::{brute_force_reduced, known_plaintext_ambiguity, wrong_order_decrypt};
use snvmm::core::{CipherRequest, Key, Remapper, SecureNvmm, SpeCipher, SpeMode, Specu, Tpm};
use std::sync::OnceLock;

fn specu() -> Specu {
    static CACHE: OnceLock<Specu> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            Specu::builder()
                .key(Key::from_seed(0xA77))
                .build()
                .expect("specu")
        })
        .clone()
}

#[test]
fn attack1_stolen_module_yields_only_ciphertext() {
    let mut mem = SecureNvmm::new(2, specu(), SpeMode::Parallel);
    let secret = *b"the launch codes are 0000 00 00! Padding to fill the line fully.";
    mem.write_line(0, &secret).expect("write");
    // Theft: power loss clears the key.
    mem.power_down().expect("power down");
    // The attacker probes raw cells.
    let probe = mem.probe();
    assert_eq!(probe.len(), 1);
    assert_ne!(probe[0].1, secret);
    // And cannot operate the SPECU without the TPM.
    assert!(mem.read_line(0).is_err());
}

#[test]
fn attack2_chosen_plaintext_stays_ambiguous() {
    let s = specu();
    // Chosen plaintexts, including degenerate ones.
    for pt in [[0u8; 16], [0xFF; 16], *b"chosen plaintext"] {
        let reports = known_plaintext_ambiguity(&s, &pt, 0.05).expect("analysis");
        let ambiguous = reports
            .iter()
            .filter(|r| r.consistent_combinations > 1)
            .count();
        assert!(
            ambiguous > 0,
            "chosen plaintext {pt:?} should leave ambiguous cells"
        );
    }
}

#[test]
fn attack3_cold_boot_window_is_complete_after_power_down() {
    let key = Key::from_seed(0xA77);
    let tpm = Tpm::provision(key, 3);
    let mut mem = SecureNvmm::new(3, specu(), SpeMode::Serial);
    for a in 0..8u64 {
        mem.write_line(a * 64, &[a as u8; 64]).expect("write");
        mem.read_line(a * 64).expect("read"); // expose in serial mode
    }
    assert!(mem.exposed_lines() > 0, "serial mode exposes read lines");
    let swept = mem.power_down().expect("power down");
    assert_eq!(swept, 8, "power-down sweep encrypts every exposed line");
    assert_eq!(mem.fraction_encrypted(), 1.0);
    // After the window closes the attacker gets nothing; the owner resumes.
    mem.power_up(&tpm).expect("power up");
    assert_eq!(mem.read_line(0).expect("read"), [0u8; 64]);
}

#[test]
fn wrong_order_and_wrong_key_both_fail() {
    let s = specu();
    let pt = *b"integrity matter";
    let report = wrong_order_decrypt(&s, &pt).expect("experiment");
    assert_eq!(report.correct, pt);
    assert!(report.corrupted_bytes > 4, "wrong order must corrupt");

    let ct = s
        .encrypt(CipherRequest::block(pt))
        .expect("encrypt")
        .into_block()
        .expect("block");
    let mut other = specu();
    other.load_key(Key::from_seed(1234567));
    assert_ne!(
        other
            .decrypt(CipherRequest::sealed_block(ct))
            .expect("decrypt")
            .into_plain_block()
            .expect("plain"),
        pt
    );
}

#[test]
fn attack4_access_pattern_correlation_collapses_under_scrambling() {
    use snvmm::core::attack::access_pattern_correlation;
    use snvmm::core::{AddressScrambler, IdentityRemapper};
    let domain = 4096;
    let trials = 2000;
    let open = access_pattern_correlation(&IdentityRemapper::new(domain), trials);
    assert_eq!(
        open.success_rate(),
        1.0,
        "bus snooping reads the unscrambled layout perfectly"
    );
    let scrambler = AddressScrambler::new(&Key::from_seed(0x5EC2), 0, domain);
    let closed = access_pattern_correlation(&scrambler, trials);
    assert!(
        closed.success_rate() * 10.0 <= open.success_rate(),
        "scrambling must collapse correlation ≥10×: {} vs {}",
        closed.success_rate(),
        open.success_rate()
    );
}

#[test]
fn attack5_targeted_cell_aggression_collapses_under_scrambling() {
    use snvmm::core::attack::targeted_cell_attack;
    use snvmm::core::{AddressScrambler, IdentityRemapper};
    let domain = 4096;
    let trials = 2000;
    let open = targeted_cell_attack(&IdentityRemapper::new(domain), trials);
    assert_eq!(open.success_rate(), 1.0, "assumed adjacency is real");
    let scrambler = AddressScrambler::new(&Key::from_seed(0x5EC3), 0, domain);
    let closed = targeted_cell_attack(&scrambler, trials);
    assert!(
        closed.success_rate() * 10.0 <= open.success_rate(),
        "scrambling must collapse targeting ≥10×: {} vs {}",
        closed.success_rate(),
        open.success_rate()
    );
    // A key-rotation epoch bump re-draws every placement the attacker
    // might have learned the hard way.
    let rotated = AddressScrambler::new(&Key::from_seed(0x5EC3), 1, domain);
    let moved = (0..256u64)
        .filter(|v| scrambler.remap(*v) != rotated.remap(*v))
        .count();
    assert!(moved > 128, "epoch bump moved only {moved}/256 lines");
}

#[test]
fn scrambled_routing_keeps_ciphertext_identical_through_the_pipeline() {
    use snvmm::core::{ParallelSpecu, SchedulerConfig};
    // Placement is routing, not crypto: the same request sealed through a
    // scrambled-routing bank pipeline and a plain one must produce
    // bit-identical ciphertext (and both must round-trip).
    let s = specu();
    let context = s.context().expect("context").clone();
    let plain =
        ParallelSpecu::with_scheduler_config(context.clone(), SchedulerConfig::with_banks(4));
    let scrambled = ParallelSpecu::with_scheduler_config(
        context,
        SchedulerConfig::with_banks(4).with_scrambled_routing(),
    );
    let pt: [u8; 64] = core::array::from_fn(|i| (i * 13 + 7) as u8);
    for addr in [0u64, 0x40, 0x1000, 0x00de_adbe_efc0] {
        let a = plain
            .encrypt(CipherRequest::line(pt, addr))
            .expect("plain encrypt")
            .into_line()
            .expect("line");
        let b = scrambled
            .encrypt(CipherRequest::line(pt, addr))
            .expect("scrambled encrypt")
            .into_line()
            .expect("line");
        assert_eq!(a, b, "routing must never leak into ciphertext @{addr:#x}");
        let out = scrambled
            .decrypt(CipherRequest::sealed_line(b))
            .expect("decrypt")
            .into_plain_line()
            .expect("plain");
        assert_eq!(out, pt);
    }
}

#[test]
fn reduced_brute_force_scales_with_space() {
    let s = specu();
    let small = brute_force_reduced(&s, b"0123456789abcdef", 2, 2).expect("run");
    let large = brute_force_reduced(&s, b"0123456789abcdef", 3, 4).expect("run");
    assert!(small.recovered && large.recovered);
    assert!(
        large.space > small.space,
        "space must grow with PoEs and pulses"
    );
}
