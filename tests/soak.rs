//! Cross-configuration soak: encrypt/decrypt correctness over the whole
//! configuration space (variants × rounds × PoE counts × keys × tweaks).
//!
//! The quick sweep runs in CI; `soak_exhaustive` is `#[ignore]`d and meant
//! for manual deep runs (`cargo test --release --test soak -- --ignored`).
use snvmm::core::{CipherRequest, Key, SpeCipher, SpeVariant, Specu, SpecuConfig};

fn roundtrip_sweep(configs: &[(SpeVariant, usize, usize)], keys: u64, tweaks: u64) {
    for (variant, rounds, poe_count) in configs {
        let config = SpecuConfig {
            variant: *variant,
            rounds: *rounds,
            poe_count: *poe_count,
            ..SpecuConfig::default()
        };
        let mut specu = Specu::with_config(Key::from_seed(1), config)
            .unwrap_or_else(|e| panic!("{variant:?}/{rounds}r/{poe_count}p: {e}"));
        for k in 0..keys {
            specu.load_key(Key::from_seed(k * 977 + 5));
            for tw in 0..tweaks {
                let pt: [u8; 16] = core::array::from_fn(|i| {
                    (k as u8)
                        .wrapping_mul(31)
                        .wrapping_add(tw as u8)
                        .wrapping_add(i as u8 * 17)
                });
                let ct = specu
                    .encrypt(CipherRequest::block(pt).with_tweak(tw))
                    .expect("encrypt")
                    .into_block()
                    .expect("block");
                let back = specu
                    .decrypt(CipherRequest::sealed_block(ct))
                    .expect("decrypt")
                    .into_plain_block()
                    .expect("plain");
                assert_eq!(
                    back, pt,
                    "roundtrip failed at {variant:?}/{rounds}r/{poe_count}p key {k} tweak {tw}"
                );
            }
        }
    }
}

#[test]
fn quick_soak_across_configs() {
    roundtrip_sweep(
        &[
            (SpeVariant::ClosedLoop, 1, 16),
            (SpeVariant::ClosedLoop, 2, 16),
            (SpeVariant::ClosedLoop, 3, 16),
            (SpeVariant::ClosedLoop, 2, 12),
            (SpeVariant::Analog, 1, 16),
            (SpeVariant::Analog, 2, 16),
        ],
        3,
        3,
    );
}

#[test]
#[ignore = "deep sweep for manual runs"]
fn soak_exhaustive() {
    let mut configs = Vec::new();
    for variant in [SpeVariant::ClosedLoop, SpeVariant::Analog] {
        for rounds in 1..=4 {
            for poe_count in [10, 12, 14, 16, 18, 20] {
                configs.push((variant, rounds, poe_count));
            }
        }
    }
    roundtrip_sweep(&configs, 8, 8);
}
