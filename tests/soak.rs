//! Cross-configuration soak: encrypt/decrypt correctness over the whole
//! configuration space (variants × rounds × PoE counts × keys × tweaks),
//! plus a fault-injection soak that keeps sustained traffic flowing through
//! the self-healing pipeline while the chaos policy kills and stalls bank
//! workers.
//!
//! The quick sweeps run in CI; `soak_exhaustive` is `#[ignore]`d and meant
//! for manual deep runs (`cargo test --release --test soak -- --ignored`).
use snvmm::core::{
    ChaosPolicy, CipherRequest, HealthPolicy, Key, LineJob, ParallelSpecu, RetryPolicy,
    SchedulerConfig, SpeCipher, SpeError, SpeVariant, Specu, SpecuConfig,
};
use snvmm::telemetry::{AtomicRecorder, Counter, TelemetryHandle};
use std::sync::Arc;
use std::time::Duration;

fn roundtrip_sweep(configs: &[(SpeVariant, usize, usize)], keys: u64, tweaks: u64) {
    for (variant, rounds, poe_count) in configs {
        let config = SpecuConfig {
            variant: *variant,
            rounds: *rounds,
            poe_count: *poe_count,
            ..SpecuConfig::default()
        };
        let mut specu = Specu::builder()
            .key(Key::from_seed(1))
            .config(config)
            .build()
            .unwrap_or_else(|e| panic!("{variant:?}/{rounds}r/{poe_count}p: {e}"));
        for k in 0..keys {
            specu.load_key(Key::from_seed(k * 977 + 5));
            for tw in 0..tweaks {
                let pt: [u8; 16] = core::array::from_fn(|i| {
                    (k as u8)
                        .wrapping_mul(31)
                        .wrapping_add(tw as u8)
                        .wrapping_add(i as u8 * 17)
                });
                let ct = specu
                    .encrypt(CipherRequest::block(pt).with_tweak(tw))
                    .expect("encrypt")
                    .into_block()
                    .expect("block");
                let back = specu
                    .decrypt(CipherRequest::sealed_block(ct))
                    .expect("decrypt")
                    .into_plain_block()
                    .expect("plain");
                assert_eq!(
                    back, pt,
                    "roundtrip failed at {variant:?}/{rounds}r/{poe_count}p key {k} tweak {tw}"
                );
            }
        }
    }
}

#[test]
fn quick_soak_across_configs() {
    roundtrip_sweep(
        &[
            (SpeVariant::ClosedLoop, 1, 16),
            (SpeVariant::ClosedLoop, 2, 16),
            (SpeVariant::ClosedLoop, 3, 16),
            (SpeVariant::ClosedLoop, 2, 12),
            (SpeVariant::Analog, 1, 16),
            (SpeVariant::Analog, 2, 16),
        ],
        3,
        3,
    );
}

/// Deterministic pseudo-random 64-byte lines (SplitMix64 bytes).
fn chaos_lines(seed: u64, n: usize) -> Vec<LineJob> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|i| {
            let mut line = [0u8; 64];
            for chunk in line.chunks_mut(8) {
                chunk.copy_from_slice(&next().to_le_bytes());
            }
            LineJob::new(line, 0x6_0000 + 64 * i as u64)
        })
        .collect()
}

#[test]
fn chaos_soak_sustains_traffic_with_exact_accounting() {
    // Sustained traffic through the self-healing pipeline while the chaos
    // policy panics and stalls workers on a deterministic schedule. Three
    // guarantees are soaked at once:
    //
    // 1. zero lost tickets — every request resolves (completes, expires
    //    against its deadline, or fails typed); nothing hangs or vanishes;
    // 2. ciphertext equality — every completed response is byte-identical
    //    to the serial oracle, retries and respawns invisible to callers;
    // 3. conservation — at quiescence the scheduler's books balance:
    //    `sched_submitted == sched_completed + deadline_expired`.
    let specu = Specu::builder()
        .key(Key::from_seed(0xC405))
        .config(SpecuConfig {
            variant: SpeVariant::ClosedLoop,
            ..SpecuConfig::default()
        })
        .build()
        .expect("specu");
    let ctx = specu.context().expect("key loaded").clone();
    let jobs = chaos_lines(0x50AC, 24);
    let oracle: Vec<_> = jobs
        .iter()
        .map(|j| {
            ctx.encrypt(CipherRequest::line(j.plaintext, j.address))
                .expect("oracle encrypt")
                .into_line()
                .expect("line")
        })
        .collect();

    let recorder = Arc::new(AtomicRecorder::new());
    let handle: TelemetryHandle = recorder.clone();
    let mut pool_ctx = ctx.clone();
    pool_ctx.set_recorder(handle);
    let pool = ParallelSpecu::with_scheduler_config(
        pool_ctx,
        SchedulerConfig::with_banks(2)
            .with_health(HealthPolicy::never_quarantine())
            .with_chaos(ChaosPolicy::mixed(0.08, 0.04, 0xC4A0_50AC)),
    )
    // A deep retry budget: the soak asserts the ladder hides every
    // injected panic, so its depth must outlast the worst panic streak
    // the 8% rate can deal (the default 3 attempts lose one request in
    // a few thousand — this soak is about conservation, not tuning).
    .with_retry_policy(RetryPolicy {
        max_attempts: 10,
        backoff_base_us: 10,
    });

    // Phase 1: waves of façade traffic. The retry ladder hides every
    // injected panic, so each wave must reproduce the oracle exactly.
    for wave in 0..3 {
        let lines = pool.encrypt_lines(&jobs).expect("chaos wave encrypt");
        for ((job, line), expect) in jobs.iter().zip(&lines).zip(&oracle) {
            assert_eq!(
                line, expect,
                "wave {wave}: ciphertext diverged from the serial oracle at {:#x}",
                job.address
            );
        }
    }

    // Phase 2: raw scheduler traffic under tight deadlines. Stalled banks
    // make some requests expire; each ticket must still resolve — a bounded
    // `wait_timeout` loop is enough, nothing hangs and nothing is lost.
    let mut completed = 0u64;
    let mut expired = 0u64;
    let mut faulted = 0u64;
    for job in &jobs {
        let request =
            CipherRequest::line(job.plaintext, job.address).with_timeout(Duration::from_millis(1));
        let mut ticket = pool.scheduler().submit(request).expect("submit");
        // 100 × 100ms bounds the soak: a lost ticket fails loudly instead
        // of wedging CI.
        let mut resolved = None;
        for _ in 0..100 {
            match ticket.wait_timeout(Duration::from_millis(100)) {
                Ok(r) => {
                    resolved = Some(r);
                    break;
                }
                Err(pending) => ticket = pending,
            }
        }
        let result = resolved
            .unwrap_or_else(|| panic!("ticket for {:#x} lost: unresolved after 10s", job.address));
        match result {
            Ok(_) => completed += 1,
            Err(SpeError::DeadlineExceeded) => expired += 1,
            // Raw scheduler interface: no retry ladder, worker panics
            // surface typed. The façade phases above absorb these.
            Err(SpeError::BankPoisoned) | Err(SpeError::JobNeverRan) => faulted += 1,
            Err(e) => panic!("unexpected chaos outcome at {:#x}: {e}", job.address),
        }
    }
    assert_eq!(
        completed + expired + faulted,
        jobs.len() as u64,
        "every raw ticket must resolve exactly once"
    );

    // Phase 3: quiesce (drop joins the workers) and balance the books.
    drop(pool);
    let submitted = recorder.counter(Counter::SchedSubmitted);
    let sched_completed = recorder.counter(Counter::SchedCompleted);
    let deadline_expired = recorder.counter(Counter::DeadlineExpired);
    assert!(submitted > 0, "the soak must have driven scheduler traffic");
    assert_eq!(
        submitted,
        sched_completed + deadline_expired,
        "conservation: submitted == completed + expired at quiescence"
    );
}

#[test]
#[ignore = "deep sweep for manual runs"]
fn soak_exhaustive() {
    let mut configs = Vec::new();
    for variant in [SpeVariant::ClosedLoop, SpeVariant::Analog] {
        for rounds in 1..=4 {
            for poe_count in [10, 12, 14, 16, 18, 20] {
                configs.push((variant, rounds, poe_count));
            }
        }
    }
    roundtrip_sweep(&configs, 8, 8);
}
