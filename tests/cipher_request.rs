//! The unified cipher-request API: round trips for every payload kind,
//! bit-identical agreement with the deprecated named methods, and
//! request/response kind checking.

use snvmm::core::{
    CipherBlock, CipherRequest, FaultModel, FaultPolicy, Key, SpeCipher, SpeError, Specu, Verify,
};
use std::sync::OnceLock;

fn specu() -> &'static Specu {
    static CACHE: OnceLock<Specu> = OnceLock::new();
    CACHE.get_or_init(|| Specu::new(Key::from_seed(0x9A)).expect("specu"))
}

fn policy() -> FaultPolicy {
    FaultPolicy {
        model: FaultModel::transient(1e-3, 0xBEEF),
        max_retries: 4,
        spare_regions: 2,
    }
}

#[test]
fn block_and_line_round_trips() {
    let s = specu();
    let pt = *b"unified requests";
    let block = s
        .encrypt(CipherRequest::block(pt).with_tweak(9))
        .expect("encrypt")
        .into_block()
        .expect("block");
    let back = s
        .decrypt(CipherRequest::sealed_block(block))
        .expect("decrypt")
        .into_plain_block()
        .expect("plain");
    assert_eq!(back, pt);

    let line: [u8; 64] = core::array::from_fn(|i| i as u8 ^ 0x5A);
    let sealed = s
        .encrypt(CipherRequest::line(line, 0x1C0))
        .expect("encrypt")
        .into_line()
        .expect("line");
    let back = s
        .decrypt(CipherRequest::sealed_line(sealed))
        .expect("decrypt")
        .into_plain_line()
        .expect("plain");
    assert_eq!(back, line);
}

#[test]
#[allow(deprecated)]
fn requests_agree_with_the_deprecated_named_methods() {
    let s = specu();
    let pt = *b"legacy vs united";

    let old = s.encrypt_block_with_tweak(&pt, 7).expect("old encrypt");
    let new = s
        .encrypt(CipherRequest::block(pt).with_tweak(7))
        .expect("new encrypt")
        .into_block()
        .expect("block");
    assert_eq!(old, new, "same schedule, same ciphertext");
    assert_eq!(
        s.decrypt_block(&new).expect("old decrypt"),
        s.decrypt(CipherRequest::sealed_block(new.clone()))
            .expect("new decrypt")
            .into_plain_block()
            .expect("plain")
    );

    let line: [u8; 64] = core::array::from_fn(|i| (i as u8).wrapping_mul(3));
    let old = s.encrypt_line(&line, 0x80).expect("old line");
    let new = s
        .encrypt(CipherRequest::line(line, 0x80))
        .expect("new line")
        .into_line()
        .expect("line");
    assert_eq!(old, new);

    let (old_sealed, old_faults) = s
        .encrypt_line_resilient(&line, 0x80, &policy())
        .expect("old resilient");
    let resp = s
        .encrypt(CipherRequest::line(line, 0x80).resilient(policy()))
        .expect("new resilient");
    assert_eq!(old_faults, *resp.faults());
    assert_eq!(old_sealed, resp.into_line().expect("line"));
}

#[test]
fn verified_requests_catch_tampering() {
    let s = specu();
    let line: [u8; 64] = core::array::from_fn(|i| i as u8);
    let sealed = s
        .encrypt(CipherRequest::line(line, 0).resilient(FaultPolicy::none()))
        .expect("encrypt")
        .into_line()
        .expect("line");

    let ok = s
        .decrypt(CipherRequest::sealed_line(sealed.clone()).verified())
        .expect("decrypt")
        .into_plain_line()
        .expect("plain");
    assert_eq!(ok, line);

    let mut tampered = sealed;
    let victim = &tampered.blocks[0];
    let mut states = victim.states().to_vec();
    states[3] = (states[3] + 1.0) % 4.0;
    tampered.blocks[0] = CipherBlock::from_parts_tagged(
        states,
        victim.data(),
        victim.tweak(),
        victim.tag().expect("resilient blocks are tagged"),
    );
    let err = s.decrypt(CipherRequest::sealed_line(tampered).verified());
    assert!(matches!(err, Err(SpeError::IntegrityViolation { .. })));
}

#[test]
fn mismatched_requests_are_typed_errors() {
    let s = specu();
    let block = s
        .encrypt(CipherRequest::block([1u8; 16]))
        .expect("encrypt")
        .into_block()
        .expect("block");

    // Decrypting a plaintext payload is a bad request, as is encrypting
    // an already-sealed one.
    assert!(matches!(
        s.decrypt(CipherRequest::block([0u8; 16])),
        Err(SpeError::BadRequest(_))
    ));
    assert!(matches!(
        s.encrypt(CipherRequest::sealed_block(block.clone())),
        Err(SpeError::BadRequest(_))
    ));
    // And the response accessors check the output kind.
    assert!(matches!(
        s.decrypt(CipherRequest::sealed_block(block))
            .expect("decrypt")
            .into_plain_line(),
        Err(SpeError::BadRequest(_))
    ));
}

#[test]
fn default_request_has_no_resilience_or_verification() {
    let req = CipherRequest::block([0u8; 16]);
    assert_eq!(req.verify, Verify::None);
    assert!(req.resilience.is_none());
    assert_eq!(req.tweak, 0);
}
