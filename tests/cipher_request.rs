//! The unified cipher-request API: round trips for every payload kind,
//! bit-identical agreement between cached and cache-disabled datapaths,
//! and request/response kind checking.

use snvmm::core::{
    CipherBlock, CipherRequest, FaultModel, FaultPolicy, Key, SpeCipher, SpeError, Specu,
    SpecuConfig, Verify,
};
use std::sync::OnceLock;

fn specu() -> &'static Specu {
    static CACHE: OnceLock<Specu> = OnceLock::new();
    CACHE.get_or_init(|| {
        Specu::builder()
            .key(Key::from_seed(0x9A))
            .build()
            .expect("specu")
    })
}

fn policy() -> FaultPolicy {
    FaultPolicy {
        model: FaultModel::transient(1e-3, 0xBEEF),
        max_retries: 4,
        spare_regions: 2,
    }
}

#[test]
fn block_and_line_round_trips() {
    let s = specu();
    let pt = *b"unified requests";
    let block = s
        .encrypt(CipherRequest::block(pt).with_tweak(9))
        .expect("encrypt")
        .into_block()
        .expect("block");
    let back = s
        .decrypt(CipherRequest::sealed_block(block))
        .expect("decrypt")
        .into_plain_block()
        .expect("plain");
    assert_eq!(back, pt);

    let line: [u8; 64] = core::array::from_fn(|i| i as u8 ^ 0x5A);
    let sealed = s
        .encrypt(CipherRequest::line(line, 0x1C0))
        .expect("encrypt")
        .into_line()
        .expect("line");
    let back = s
        .decrypt(CipherRequest::sealed_line(sealed))
        .expect("decrypt")
        .into_plain_line()
        .expect("plain");
    assert_eq!(back, line);
}

#[test]
fn requests_agree_with_the_cache_disabled_datapath() {
    // The schedule cache is a pure memo: a Specu with caching switched off
    // must produce byte-identical responses for every request kind, and
    // each side must decrypt the other's output.
    let cached = specu();
    let uncached = Specu::builder()
        .key(Key::from_seed(0x9A))
        .config(SpecuConfig {
            schedule_cache_lines: 0,
            ..SpecuConfig::default()
        })
        .build()
        .expect("specu");
    let pt = *b"legacy vs united";

    let warm = cached
        .encrypt(CipherRequest::block(pt).with_tweak(7))
        .expect("cached encrypt")
        .into_block()
        .expect("block");
    let cold = uncached
        .encrypt(CipherRequest::block(pt).with_tweak(7))
        .expect("uncached encrypt")
        .into_block()
        .expect("block");
    assert_eq!(warm, cold, "same schedule, same ciphertext");
    assert_eq!(
        uncached
            .decrypt(CipherRequest::sealed_block(warm))
            .expect("cross decrypt")
            .into_plain_block()
            .expect("plain"),
        pt
    );

    let line: [u8; 64] = core::array::from_fn(|i| (i as u8).wrapping_mul(3));
    let warm = cached
        .encrypt(CipherRequest::line(line, 0x80))
        .expect("cached line")
        .into_line()
        .expect("line");
    let cold = uncached
        .encrypt(CipherRequest::line(line, 0x80))
        .expect("uncached line")
        .into_line()
        .expect("line");
    assert_eq!(warm, cold);

    let warm = cached
        .encrypt(CipherRequest::line(line, 0x80).resilient(policy()))
        .expect("cached resilient");
    let cold = uncached
        .encrypt(CipherRequest::line(line, 0x80).resilient(policy()))
        .expect("uncached resilient");
    assert_eq!(warm.faults(), cold.faults());
    assert_eq!(
        warm.into_line().expect("line"),
        cold.into_line().expect("line")
    );
}

#[test]
fn verified_requests_catch_tampering() {
    let s = specu();
    let line: [u8; 64] = core::array::from_fn(|i| i as u8);
    let sealed = s
        .encrypt(CipherRequest::line(line, 0).resilient(FaultPolicy::none()))
        .expect("encrypt")
        .into_line()
        .expect("line");

    let ok = s
        .decrypt(CipherRequest::sealed_line(sealed.clone()).verified())
        .expect("decrypt")
        .into_plain_line()
        .expect("plain");
    assert_eq!(ok, line);

    let mut tampered = sealed;
    let victim = &tampered.blocks[0];
    let mut states = victim.states().to_vec();
    states[3] = (states[3] + 1.0) % 4.0;
    tampered.blocks[0] = CipherBlock::from_parts_tagged(
        states,
        victim.data(),
        victim.tweak(),
        victim.tag().expect("resilient blocks are tagged"),
    );
    let err = s.decrypt(CipherRequest::sealed_line(tampered).verified());
    assert!(matches!(err, Err(SpeError::IntegrityViolation { .. })));
}

#[test]
fn mismatched_requests_are_typed_errors() {
    let s = specu();
    let block = s
        .encrypt(CipherRequest::block([1u8; 16]))
        .expect("encrypt")
        .into_block()
        .expect("block");

    // Decrypting a plaintext payload is a bad request, as is encrypting
    // an already-sealed one.
    assert!(matches!(
        s.decrypt(CipherRequest::block([0u8; 16])),
        Err(SpeError::BadRequest(_))
    ));
    assert!(matches!(
        s.encrypt(CipherRequest::sealed_block(block.clone())),
        Err(SpeError::BadRequest(_))
    ));
    // And the response accessors check the output kind.
    assert!(matches!(
        s.decrypt(CipherRequest::sealed_block(block))
            .expect("decrypt")
            .into_plain_line(),
        Err(SpeError::BadRequest(_))
    ));
}

#[test]
fn default_request_has_no_resilience_or_verification() {
    let req = CipherRequest::block([0u8; 16]);
    assert_eq!(req.verify, Verify::None);
    assert!(req.resilience.is_none());
    assert_eq!(req.tweak, 0);
}
