//! Cross-crate integration: SPE encryption correctness end to end, driven
//! through the unified cipher-request API (tests/cipher_request.rs pins the
//! legacy named methods to this surface bit-for-bit).

use snvmm::core::{
    CipherBlock, CipherRequest, Key, SecureNvmm, SpeCipher, SpeMode, SpeVariant, Specu, SpecuConfig,
};
use std::sync::OnceLock;

fn specu() -> Specu {
    static CACHE: OnceLock<Specu> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            Specu::builder()
                .key(Key::from_seed(0x17E57))
                .build()
                .expect("specu")
        })
        .clone()
}

fn encrypt(s: &Specu, pt: &[u8; 16], tweak: u64) -> CipherBlock {
    s.encrypt(CipherRequest::block(*pt).with_tweak(tweak))
        .expect("encrypt")
        .into_block()
        .expect("block")
}

fn decrypt(s: &Specu, ct: &CipherBlock) -> [u8; 16] {
    s.decrypt(CipherRequest::sealed_block(ct.clone()))
        .expect("decrypt")
        .into_plain_block()
        .expect("plain")
}

#[test]
fn block_roundtrip_many_plaintexts() {
    let s = specu();
    for seed in 0..32u64 {
        let pt: [u8; 16] =
            core::array::from_fn(|i| (seed as u8).wrapping_mul(37).wrapping_add(i as u8 * 13));
        let ct = encrypt(&s, &pt, 0);
        assert_ne!(ct.data(), pt);
        assert_eq!(decrypt(&s, &ct), pt);
    }
}

#[test]
fn analog_variant_roundtrips_too() {
    let config = SpecuConfig {
        variant: SpeVariant::Analog,
        ..SpecuConfig::default()
    };
    let s = Specu::builder()
        .key(Key::from_seed(3))
        .config(config)
        .build()
        .expect("specu");
    for seed in 0..8u64 {
        let pt: [u8; 16] = core::array::from_fn(|i| (seed as u8) ^ (i as u8).wrapping_mul(29));
        let ct = encrypt(&s, &pt, 0);
        assert_eq!(decrypt(&s, &ct), pt, "seed {seed}");
    }
}

#[test]
fn ciphertexts_differ_across_keys_blocks_and_variants() {
    let a = specu();
    let mut b = specu();
    b.load_key(Key::from_seed(0xD1FF));
    let pt = [0x77u8; 16];
    let ca = encrypt(&a, &pt, 0);
    let cb = encrypt(&b, &pt, 0);
    assert_ne!(ca.data(), cb.data(), "keys must matter");
    let ca2 = encrypt(&a, &pt, 9);
    assert_ne!(ca.data(), ca2.data(), "tweaks must matter");
}

#[test]
fn line_roundtrip_through_nvmm_both_modes() {
    for mode in [SpeMode::Serial, SpeMode::Parallel] {
        let mut mem = SecureNvmm::new(5, specu(), mode);
        let lines: Vec<[u8; 64]> = (0..6u8)
            .map(|s| core::array::from_fn(|i| s.wrapping_mul(41).wrapping_add(i as u8)))
            .collect();
        for (i, line) in lines.iter().enumerate() {
            mem.write_line(i as u64 * 64, line).expect("write");
        }
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(&mem.read_line(i as u64 * 64).expect("read"), line);
        }
        // Second read (serial mode reads a plaintext-resident line).
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(&mem.read_line(i as u64 * 64).expect("read"), line);
        }
    }
}

#[test]
fn probe_never_shows_plaintext_in_parallel_mode() {
    let mut mem = SecureNvmm::new(9, specu(), SpeMode::Parallel);
    let marker = [0xABu8; 64];
    for a in 0..4u64 {
        mem.write_line(a * 64, &marker).expect("write");
        mem.read_line(a * 64).expect("read");
    }
    for (_, bytes) in mem.probe() {
        assert_ne!(bytes, marker);
    }
    assert_eq!(mem.fraction_encrypted(), 1.0);
}

#[test]
fn encryption_balances_ciphertext_levels() {
    // A uniform level histogram is the Table 2 prerequisite.
    let mut s = specu();
    let mut hist = [0usize; 4];
    for seed in 0..64u64 {
        s.load_key(Key::from_seed(seed * 11 + 1));
        let ct = encrypt(&s, &[0u8; 16], 0);
        for b in ct.data() {
            for k in 0..4 {
                hist[(b >> (6 - 2 * k) & 3) as usize] += 1;
            }
        }
    }
    let total: usize = hist.iter().sum();
    for h in hist {
        let frac = h as f64 / total as f64;
        assert!(
            (0.2..0.3).contains(&frac),
            "level histogram skewed: {hist:?}"
        );
    }
}
