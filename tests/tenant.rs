//! Multi-tenant registry integration: rotation under live tagged traffic,
//! epoch isolation observed through cache telemetry, the unknown-tenant
//! error path through the bank pipeline, and byte-equivalence of the
//! unified builder against every deprecated constructor it replaces.

use snvmm::core::{
    CipherRequest, Key, ParallelSpecu, SchedulerConfig, SpeCalibration, SpeCipher, SpeContext,
    SpeError, Specu, SpecuConfig, TenantId, TenantRegistry,
};
use snvmm::telemetry::{AtomicRecorder, Counter};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn line(seed: u64) -> [u8; 64] {
    core::array::from_fn(|i| (seed.wrapping_mul(0x9E37).wrapping_add(i as u64) >> 5) as u8)
}

/// Rotation under load: tagged traffic keeps flowing through the shared
/// bank pool while a tenant's key rotates; ciphertext sealed before the
/// rotation decrypts through the retained retired context, and seals
/// after it round-trip through the new one.
#[test]
fn rotation_under_live_tagged_traffic() {
    let calibration = Arc::new(SpeCalibration::new(SpecuConfig::default()).expect("calibration"));
    let registry = Arc::new(TenantRegistry::new(Arc::clone(&calibration)));
    for t in 0..4u64 {
        registry.register(TenantId::new(t), Key::from_seed(t * 3 + 1));
    }
    let base: SpeContext = (*registry.context(TenantId::new(0)).expect("tenant 0")).clone();
    let pool =
        ParallelSpecu::with_registry(base, SchedulerConfig::with_banks(2), Arc::clone(&registry));

    let stop = Arc::new(AtomicBool::new(false));
    let drivers: Vec<_> = (0..2u64)
        .map(|w| {
            let pool = pool.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let tenant = TenantId::new((w + n) % 4);
                    pool.encrypt(CipherRequest::line(line(n), n % 8).with_tenant(tenant))
                        .expect("tagged encrypt under load");
                    n += 1;
                }
                n
            })
        })
        .collect();

    for round in 0..16u64 {
        let tenant = TenantId::new(round % 4);
        let plaintext = line(round + 100);
        let sealed = pool
            .encrypt(CipherRequest::line(plaintext, 0x40).with_tenant(tenant))
            .expect("pre-rotation seal")
            .into_line()
            .expect("line");
        let rotation = registry
            .rotate(tenant, Key::from_seed(round * 101 + 9))
            .expect("rotate live tenant");

        // Old ciphertext decrypts through the retained retired context.
        let recovered = rotation
            .retired
            .decrypt(CipherRequest::sealed_line(sealed))
            .expect("retired decrypt")
            .into_plain_line()
            .expect("plain line");
        assert_eq!(recovered, plaintext, "round {round}: retired key lost");

        // Post-rotation seals run under the new key: the pool-tagged
        // request round-trips through the registry's new live context.
        let resealed = pool
            .encrypt(CipherRequest::line(plaintext, 0x40).with_tenant(tenant))
            .expect("post-rotation seal")
            .into_line()
            .expect("line");
        let roundtrip = rotation
            .active
            .decrypt(CipherRequest::sealed_line(resealed))
            .expect("active decrypt")
            .into_plain_line()
            .expect("plain line");
        assert_eq!(roundtrip, plaintext, "round {round}: new key not in effect");
    }
    stop.store(true, Ordering::Relaxed);
    for d in drivers {
        assert!(d.join().expect("driver") > 0, "driver made no progress");
    }
}

/// Epoch isolation, observed from telemetry: re-encryption under the same
/// tenant hits the schedule cache; another tenant over the same addresses
/// misses (zero cross-tenant hits); rotation makes the old epoch's
/// schedules unreachable (fresh misses, hit count unchanged).
#[test]
fn cache_epochs_isolate_tenants_and_rotations() {
    const LINES: u64 = 8;
    const BLOCKS: u64 = LINES * 4;
    let recorder = Arc::new(AtomicRecorder::new());
    let calibration = Arc::new(SpeCalibration::new(SpecuConfig::default()).expect("calibration"));
    let registry = TenantRegistry::with_shards(Arc::clone(&calibration), 4, recorder.clone());
    let a = TenantId::new(1);
    let b = TenantId::new(2);
    registry.register(a, Key::from_seed(11));
    registry.register(b, Key::from_seed(22));

    let drive = |tenant: TenantId| {
        let ctx = registry.context(tenant).expect("registered");
        for l in 0..LINES {
            ctx.encrypt(CipherRequest::line(line(l), l))
                .expect("encrypt");
        }
    };
    let hits = || recorder.counter(Counter::ScheduleCacheHits);
    let misses = || recorder.counter(Counter::ScheduleCacheMisses);

    // Cold pass for tenant A: every block derivation misses.
    drive(a);
    assert_eq!((hits(), misses()), (0, BLOCKS));
    // Warm pass: same tenant, same lines — all hits.
    drive(a);
    assert_eq!((hits(), misses()), (BLOCKS, BLOCKS));
    // Tenant B over the *same* line addresses: a different epoch, so not
    // one cross-tenant hit.
    drive(b);
    assert_eq!((hits(), misses()), (BLOCKS, 2 * BLOCKS));
    // Rotate A: the old epoch's schedules become unreachable — the next
    // pass misses afresh and the hit count does not move.
    registry.rotate(a, Key::from_seed(33)).expect("rotate");
    drive(a);
    assert_eq!(
        (hits(), misses()),
        (BLOCKS, 3 * BLOCKS),
        "a post-rotation lookup served a stale schedule"
    );
    assert_eq!(recorder.counter(Counter::TenantCreated), 2);
    assert_eq!(recorder.counter(Counter::TenantRotated), 1);
}

/// A tagged request naming an unregistered tenant fails typed — through
/// the bank pipeline and through the degraded serial fallback alike.
#[test]
fn unknown_tenant_fails_typed_through_the_pipeline() {
    let calibration = Arc::new(SpeCalibration::new(SpecuConfig::default()).expect("calibration"));
    let registry = Arc::new(TenantRegistry::new(Arc::clone(&calibration)));
    registry.register(TenantId::new(1), Key::from_seed(1));
    let base: SpeContext = (*registry.context(TenantId::new(1)).expect("tenant 1")).clone();
    let pool = ParallelSpecu::with_registry(
        base.clone(),
        SchedulerConfig::with_banks(2),
        Arc::clone(&registry),
    );
    let err = pool
        .encrypt(CipherRequest::line(line(1), 0).with_tenant(TenantId::new(404)))
        .expect_err("unregistered tenant must fail");
    assert!(
        matches!(err, SpeError::UnknownTenant(t) if t.value() == 404),
        "got {err}"
    );
    assert!(!err.is_retryable(), "unknown tenant is not transient");

    // Without a registry attached, *every* tagged request is unroutable.
    let bare = ParallelSpecu::with_scheduler_config(base, SchedulerConfig::with_banks(2));
    let err = bare
        .encrypt(CipherRequest::line(line(2), 0).with_tenant(TenantId::new(1)))
        .expect_err("no registry attached");
    assert!(matches!(err, SpeError::UnknownTenant(_)), "got {err}");
}

/// The unified builder is byte-equivalent to every deprecated constructor
/// it replaces: same key and config produce identical ciphertext.
#[test]
#[allow(deprecated)]
fn builder_matches_deprecated_constructors() {
    let pt = *b"builder = legacy";
    let seal = |s: &Specu| {
        s.encrypt(CipherRequest::block(pt))
            .expect("encrypt")
            .into_block()
            .expect("block")
            .data()
            .to_vec()
    };

    // Specu::new == builder with key only.
    let legacy = Specu::new(Key::from_seed(0xA1)).expect("legacy");
    let built = Specu::builder()
        .key(Key::from_seed(0xA1))
        .build()
        .expect("built");
    assert_eq!(seal(&legacy), seal(&built));

    // Specu::with_config == builder with key + config.
    let config = SpecuConfig::statistical();
    let legacy = Specu::with_config(Key::from_seed(0xB2), config.clone()).expect("legacy");
    let built = Specu::builder()
        .key(Key::from_seed(0xB2))
        .config(config)
        .build()
        .expect("built");
    assert_eq!(seal(&legacy), seal(&built));

    // SpeContext::with_calibration == builder with key + calibration.
    let calibration = Arc::new(SpeCalibration::new(SpecuConfig::default()).expect("calibration"));
    let legacy_ctx = SpeContext::with_calibration(Key::from_seed(0xC3), Arc::clone(&calibration));
    let built_ctx = SpeContext::builder()
        .key(Key::from_seed(0xC3))
        .calibration(Arc::clone(&calibration))
        .build_context()
        .expect("built");
    let ct_legacy = legacy_ctx
        .encrypt(CipherRequest::block(pt))
        .expect("encrypt")
        .into_block()
        .expect("block");
    let ct_built = built_ctx
        .encrypt(CipherRequest::block(pt))
        .expect("encrypt")
        .into_block()
        .expect("block");
    assert_eq!(ct_legacy.data(), ct_built.data());
    assert_ne!(
        legacy_ctx.key_epoch(),
        built_ctx.key_epoch(),
        "every construction draws its own epoch"
    );

    // SpeContext::new == builder's build_context over a config.
    let legacy_ctx = SpeContext::new(Key::from_seed(0xD4), SpecuConfig::default()).expect("legacy");
    let built_ctx = SpeContext::builder()
        .key(Key::from_seed(0xD4))
        .config(SpecuConfig::default())
        .build_context()
        .expect("built");
    let ct_legacy = legacy_ctx
        .encrypt(CipherRequest::block(pt))
        .expect("encrypt")
        .into_block()
        .expect("block");
    let ct_built = built_ctx
        .encrypt(CipherRequest::block(pt))
        .expect("encrypt")
        .into_block()
        .expect("block");
    assert_eq!(ct_legacy.data(), ct_built.data());
}

/// A mismatched explicit config is rejected rather than silently ignored
/// when a calibration is also supplied.
#[test]
fn builder_rejects_config_calibration_mismatch() {
    let calibration = Arc::new(SpeCalibration::new(SpecuConfig::default()).expect("calibration"));
    let err = Specu::builder()
        .key(Key::from_seed(1))
        .calibration(calibration)
        .config(SpecuConfig::statistical())
        .build()
        .expect_err("conflicting config must be rejected");
    assert!(matches!(err, SpeError::BadRequest(_)), "got {err}");
    let missing_key = Specu::builder().build().expect_err("key is required");
    assert!(matches!(missing_key, SpeError::BadRequest(_)));
}
