//! Multi-tenant registry integration: rotation and removal under live
//! tagged traffic, epoch isolation observed through cache telemetry, the
//! unknown-tenant error path through the bank pipeline, and determinism of
//! the unified builder (the sole construction surface since the deprecated
//! constructor zoo was deleted).

use snvmm::core::{
    CipherRequest, Key, ParallelSpecu, SchedulerConfig, SpeCalibration, SpeCipher, SpeContext,
    SpeError, Specu, SpecuConfig, TenantId, TenantRegistry,
};
use snvmm::telemetry::{AtomicRecorder, Counter};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn line(seed: u64) -> [u8; 64] {
    core::array::from_fn(|i| (seed.wrapping_mul(0x9E37).wrapping_add(i as u64) >> 5) as u8)
}

/// Rotation under load: tagged traffic keeps flowing through the shared
/// bank pool while a tenant's key rotates; ciphertext sealed before the
/// rotation decrypts through the retained retired context, and seals
/// after it round-trip through the new one.
#[test]
fn rotation_under_live_tagged_traffic() {
    let calibration = Arc::new(SpeCalibration::new(SpecuConfig::default()).expect("calibration"));
    let registry = Arc::new(TenantRegistry::new(Arc::clone(&calibration)));
    for t in 0..4u64 {
        registry.register(TenantId::new(t), Key::from_seed(t * 3 + 1));
    }
    let base: SpeContext = (*registry.context(TenantId::new(0)).expect("tenant 0")).clone();
    let pool =
        ParallelSpecu::with_registry(base, SchedulerConfig::with_banks(2), Arc::clone(&registry));

    let stop = Arc::new(AtomicBool::new(false));
    let drivers: Vec<_> = (0..2u64)
        .map(|w| {
            let pool = pool.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let tenant = TenantId::new((w + n) % 4);
                    pool.encrypt(CipherRequest::line(line(n), n % 8).with_tenant(tenant))
                        .expect("tagged encrypt under load");
                    n += 1;
                }
                n
            })
        })
        .collect();

    for round in 0..16u64 {
        let tenant = TenantId::new(round % 4);
        let plaintext = line(round + 100);
        let sealed = pool
            .encrypt(CipherRequest::line(plaintext, 0x40).with_tenant(tenant))
            .expect("pre-rotation seal")
            .into_line()
            .expect("line");
        let rotation = registry
            .rotate(tenant, Key::from_seed(round * 101 + 9))
            .expect("rotate live tenant");

        // Old ciphertext decrypts through the retained retired context.
        let recovered = rotation
            .retired
            .decrypt(CipherRequest::sealed_line(sealed))
            .expect("retired decrypt")
            .into_plain_line()
            .expect("plain line");
        assert_eq!(recovered, plaintext, "round {round}: retired key lost");

        // Post-rotation seals run under the new key: the pool-tagged
        // request round-trips through the registry's new live context.
        let resealed = pool
            .encrypt(CipherRequest::line(plaintext, 0x40).with_tenant(tenant))
            .expect("post-rotation seal")
            .into_line()
            .expect("line");
        let roundtrip = rotation
            .active
            .decrypt(CipherRequest::sealed_line(resealed))
            .expect("active decrypt")
            .into_plain_line()
            .expect("plain line");
        assert_eq!(roundtrip, plaintext, "round {round}: new key not in effect");
    }
    stop.store(true, Ordering::Relaxed);
    for d in drivers {
        assert!(d.join().expect("driver") > 0, "driver made no progress");
    }
}

/// Epoch isolation, observed from telemetry: re-encryption under the same
/// tenant hits the schedule cache; another tenant over the same addresses
/// misses (zero cross-tenant hits); rotation makes the old epoch's
/// schedules unreachable (fresh misses, hit count unchanged).
#[test]
fn cache_epochs_isolate_tenants_and_rotations() {
    const LINES: u64 = 8;
    const BLOCKS: u64 = LINES * 4;
    let recorder = Arc::new(AtomicRecorder::new());
    let calibration = Arc::new(SpeCalibration::new(SpecuConfig::default()).expect("calibration"));
    let registry = TenantRegistry::with_shards(Arc::clone(&calibration), 4, recorder.clone());
    let a = TenantId::new(1);
    let b = TenantId::new(2);
    registry.register(a, Key::from_seed(11));
    registry.register(b, Key::from_seed(22));

    let drive = |tenant: TenantId| {
        let ctx = registry.context(tenant).expect("registered");
        for l in 0..LINES {
            ctx.encrypt(CipherRequest::line(line(l), l))
                .expect("encrypt");
        }
    };
    let hits = || recorder.counter(Counter::ScheduleCacheHits);
    let misses = || recorder.counter(Counter::ScheduleCacheMisses);

    // Cold pass for tenant A: every block derivation misses.
    drive(a);
    assert_eq!((hits(), misses()), (0, BLOCKS));
    // Warm pass: same tenant, same lines — all hits.
    drive(a);
    assert_eq!((hits(), misses()), (BLOCKS, BLOCKS));
    // Tenant B over the *same* line addresses: a different epoch, so not
    // one cross-tenant hit.
    drive(b);
    assert_eq!((hits(), misses()), (BLOCKS, 2 * BLOCKS));
    // Rotate A: the old epoch's schedules become unreachable — the next
    // pass misses afresh and the hit count does not move.
    registry.rotate(a, Key::from_seed(33)).expect("rotate");
    drive(a);
    assert_eq!(
        (hits(), misses()),
        (BLOCKS, 3 * BLOCKS),
        "a post-rotation lookup served a stale schedule"
    );
    assert_eq!(recorder.counter(Counter::TenantCreated), 2);
    assert_eq!(recorder.counter(Counter::TenantRotated), 1);
}

/// A tagged request naming an unregistered tenant fails typed — through
/// the bank pipeline and through the degraded serial fallback alike.
#[test]
fn unknown_tenant_fails_typed_through_the_pipeline() {
    let calibration = Arc::new(SpeCalibration::new(SpecuConfig::default()).expect("calibration"));
    let registry = Arc::new(TenantRegistry::new(Arc::clone(&calibration)));
    registry.register(TenantId::new(1), Key::from_seed(1));
    let base: SpeContext = (*registry.context(TenantId::new(1)).expect("tenant 1")).clone();
    let pool = ParallelSpecu::with_registry(
        base.clone(),
        SchedulerConfig::with_banks(2),
        Arc::clone(&registry),
    );
    let err = pool
        .encrypt(CipherRequest::line(line(1), 0).with_tenant(TenantId::new(404)))
        .expect_err("unregistered tenant must fail");
    assert!(
        matches!(err, SpeError::UnknownTenant(t) if t.value() == 404),
        "got {err}"
    );
    assert!(!err.is_retryable(), "unknown tenant is not transient");

    // Without a registry attached, *every* tagged request is unroutable.
    let bare = ParallelSpecu::with_scheduler_config(base, SchedulerConfig::with_banks(2));
    let err = bare
        .encrypt(CipherRequest::line(line(2), 0).with_tenant(TenantId::new(1)))
        .expect_err("no registry attached");
    assert!(matches!(err, SpeError::UnknownTenant(_)), "got {err}");
}

/// Tenant removal under live tagged traffic: in-flight requests naming
/// the removed tenant resolve typed (`UnknownTenant`) or complete cleanly
/// — never hang, never panic — and at quiescence the books balance: the
/// removed tenant's retired context still decrypts everything it sealed.
#[test]
fn removal_under_live_tagged_traffic() {
    let recorder = Arc::new(AtomicRecorder::new());
    let calibration = Arc::new(SpeCalibration::new(SpecuConfig::default()).expect("calibration"));
    let registry = Arc::new(TenantRegistry::with_shards(
        Arc::clone(&calibration),
        4,
        recorder.clone(),
    ));
    let doomed = TenantId::new(9);
    let survivor = TenantId::new(1);
    registry.register(doomed, Key::from_seed(99));
    registry.register(survivor, Key::from_seed(11));
    let base: SpeContext = (*registry.context(survivor).expect("survivor")).clone();
    let pool =
        ParallelSpecu::with_registry(base, SchedulerConfig::with_banks(2), Arc::clone(&registry));

    // Seal a line under the doomed tenant while it is still live.
    let plaintext = line(0xD00);
    let sealed = pool
        .encrypt(CipherRequest::line(plaintext, 0x40).with_tenant(doomed))
        .expect("pre-removal seal")
        .into_line()
        .expect("line");

    // Drivers hammer both tenants while the doomed one is removed.
    let stop = Arc::new(AtomicBool::new(false));
    let drivers: Vec<_> = (0..2u64)
        .map(|w| {
            let pool = pool.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let (mut ok, mut unknown) = (0u64, 0u64);
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let tenant = if (w + n).is_multiple_of(2) {
                        TenantId::new(9)
                    } else {
                        TenantId::new(1)
                    };
                    match pool.encrypt(CipherRequest::line(line(n), n % 8).with_tenant(tenant)) {
                        Ok(_) => ok += 1,
                        Err(SpeError::UnknownTenant(t)) => {
                            assert_eq!(t.value(), 9, "only the removed tenant may vanish");
                            unknown += 1;
                        }
                        Err(other) => panic!("unexpected error under removal: {other}"),
                    }
                    n += 1;
                }
                (ok, unknown)
            })
        })
        .collect();

    std::thread::sleep(std::time::Duration::from_millis(20));
    let removed = registry.remove(doomed).expect("remove live tenant");
    std::thread::sleep(std::time::Duration::from_millis(20));
    stop.store(true, Ordering::Relaxed);

    let mut total_unknown = 0u64;
    for d in drivers {
        let (ok, unknown) = d.join().expect("driver");
        assert!(ok > 0, "drivers must make progress around the removal");
        total_unknown += unknown;
    }
    assert!(
        total_unknown > 0,
        "post-removal tagged traffic must fail typed"
    );

    // Quiescence: the registry no longer resolves the tenant, but the
    // removed context still decrypts what it sealed.
    assert!(registry.context(doomed).is_none(), "tenant must be gone");
    let recovered = removed
        .decrypt(CipherRequest::sealed_line(sealed))
        .expect("removed context decrypt")
        .into_plain_line()
        .expect("plain line");
    assert_eq!(recovered, plaintext, "removal must not orphan ciphertext");

    // Books balance: every job submitted to the bank pool completed (an
    // UnknownTenant resolution *is* a completion — no leaked tickets).
    // The worker bumps the completion counter just after resolving the
    // ticket, so give the last increment a moment to land.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    loop {
        let submitted = recorder.counter(Counter::SchedSubmitted);
        let completed = recorder.counter(Counter::SchedCompleted);
        if submitted == completed && submitted > 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "books never balanced: submitted {submitted} vs completed {completed}"
        );
        std::thread::yield_now();
    }
}

/// The unified builder is the sole construction surface and it is
/// deterministic: the same key/config/calibration inputs produce
/// byte-identical ciphertext whichever way they are supplied.
#[test]
fn builder_construction_paths_are_byte_equivalent() {
    let pt = *b"builder is alone";
    let seal = |s: &Specu| {
        s.encrypt(CipherRequest::block(pt))
            .expect("encrypt")
            .into_block()
            .expect("block")
            .data()
            .to_vec()
    };

    // Key only, twice: independent builds agree.
    let a = Specu::builder()
        .key(Key::from_seed(0xA1))
        .build()
        .expect("built");
    let b = Specu::builder()
        .key(Key::from_seed(0xA1))
        .build()
        .expect("built");
    assert_eq!(seal(&a), seal(&b));

    // Explicit config vs a prebuilt calibration of the same config.
    let config = SpecuConfig::statistical();
    let from_config = Specu::builder()
        .key(Key::from_seed(0xB2))
        .config(config.clone())
        .build()
        .expect("built");
    let calibration = Arc::new(SpeCalibration::new(config).expect("calibration"));
    let from_calibration = Specu::builder()
        .key(Key::from_seed(0xB2))
        .calibration(Arc::clone(&calibration))
        .build()
        .expect("built");
    assert_eq!(seal(&from_config), seal(&from_calibration));

    // Contexts built two ways agree on bytes but not on epoch (every
    // construction draws its own cache epoch).
    let ctx_a = SpeContext::builder()
        .key(Key::from_seed(0xC3))
        .calibration(Arc::clone(&calibration))
        .build_context()
        .expect("built");
    let ctx_b = SpeContext::builder()
        .key(Key::from_seed(0xC3))
        .calibration(calibration)
        .build_context()
        .expect("built");
    let ct_a = ctx_a
        .encrypt(CipherRequest::block(pt))
        .expect("encrypt")
        .into_block()
        .expect("block");
    let ct_b = ctx_b
        .encrypt(CipherRequest::block(pt))
        .expect("encrypt")
        .into_block()
        .expect("block");
    assert_eq!(ct_a.data(), ct_b.data());
    assert_ne!(
        ctx_a.key_epoch(),
        ctx_b.key_epoch(),
        "every construction draws its own epoch"
    );
}

/// A mismatched explicit config is rejected rather than silently ignored
/// when a calibration is also supplied.
#[test]
fn builder_rejects_config_calibration_mismatch() {
    let calibration = Arc::new(SpeCalibration::new(SpecuConfig::default()).expect("calibration"));
    let err = Specu::builder()
        .key(Key::from_seed(1))
        .calibration(calibration)
        .config(SpecuConfig::statistical())
        .build()
        .expect_err("conflicting config must be rejected");
    assert!(matches!(err, SpeError::BadRequest(_)), "got {err}");
    let missing_key = Specu::builder().build().expect_err("key is required");
    assert!(matches!(missing_key, SpeError::BadRequest(_)));
}
