//! Write-verify/retry/remap recovery under injected faults.
//!
//! Pins the tentpole robustness properties: transient faults are absorbed
//! by the retry ladder without corrupting plaintext, hard failures degrade
//! gracefully through polyomino remapping into a typed
//! [`SpeError::FaultExhausted`], tampered or untagged lines surface as
//! [`SpeError::IntegrityViolation`] instead of silently wrong bytes, and
//! the serial and multi-bank parallel backends observe identical fault
//! histories for the same seed.
use snvmm::core::{
    CipherBlock, CipherRequest, FaultCounters, FaultModel, FaultPolicy, Key, LineJob, SpeCipher,
    SpeError, Specu,
};
use snvmm::memsim::{CampaignConfig, FaultCampaign};
use std::sync::OnceLock;

fn specu() -> Specu {
    static CACHE: OnceLock<Specu> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            Specu::builder()
                .key(Key::from_seed(0x0F17))
                .build()
                .expect("specu")
        })
        .clone()
}

fn line(seed: u64) -> [u8; 64] {
    let mut s = seed;
    core::array::from_fn(|_| {
        s = s.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        (z ^ (z >> 31)) as u8
    })
}

#[test]
fn transient_faults_round_trip_exactly() {
    // A fault rate high enough to exercise the retry ladder on nearly
    // every line, but far below what exhausts 4 retries + 2 spares.
    let s = specu();
    let policy = FaultPolicy::transient(0.02, 0xBEEF);
    let mut total = FaultCounters::default();
    for n in 0..8u64 {
        let pt = line(n);
        let resp = s
            .encrypt(CipherRequest::line(pt, 0x1000 + n).resilient(policy))
            .expect("recovery absorbs a 2% transient rate");
        total.merge(resp.faults());
        let enc = resp.into_line().expect("line");
        assert_eq!(
            s.decrypt(CipherRequest::sealed_line(enc).verified())
                .expect("checked decrypt")
                .into_plain_line()
                .expect("plain"),
            pt,
            "line {n}"
        );
    }
    assert!(
        total.retries > 0,
        "a 2% rate over 8 lines must trigger retries: {total:?}"
    );
    assert_eq!(total.uncorrectable, 0);
}

#[test]
fn remap_exhaustion_returns_typed_error() {
    // Every cell permanently stuck: the first polyomino burns through both
    // spare regions and fails with FaultExhausted — no panic, no
    // ciphertext.
    let s = specu();
    let policy = FaultPolicy::with_model(FaultModel::stuck(1.0, 7));
    let pt = line(99);
    let serial = s.encrypt(CipherRequest::line(pt, 0x42).resilient(policy));
    assert!(
        matches!(serial, Err(SpeError::FaultExhausted { spares: 2, .. })),
        "serial: {serial:?}"
    );
    let par = s.parallel(4).expect("parallel");
    let banked = par.encrypt(CipherRequest::line(pt, 0x42).resilient(policy));
    assert!(
        matches!(banked, Err(SpeError::FaultExhausted { spares: 2, .. })),
        "parallel: {banked:?}"
    );
}

#[test]
fn serial_and_parallel_report_identical_fault_stats() {
    let s = specu();
    let policy = FaultPolicy::transient(0.01, 0xD15EA5E);
    let jobs: Vec<LineJob> = (0..6).map(|i| LineJob::new(line(i), 0x2000 + i)).collect();
    let serial = s.parallel(1).expect("one bank");
    let (lines_1, counters_1) = serial
        .encrypt_lines_resilient(&jobs, &policy)
        .expect("serial batch");
    for banks in [2, 4, 7] {
        let par = s.parallel(banks).expect("banks");
        let (lines_n, counters_n) = par
            .encrypt_lines_resilient(&jobs, &policy)
            .expect("parallel batch");
        assert_eq!(lines_1, lines_n, "ciphertext with {banks} banks");
        assert_eq!(counters_1, counters_n, "fault stats with {banks} banks");
        let round: Vec<[u8; 64]> = par.decrypt_lines_checked(&lines_n).expect("checked batch");
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(round[i], job.plaintext, "line {i} with {banks} banks");
        }
    }
    assert!(counters_1.cell_commits > 0);
}

#[test]
fn tampered_line_fails_integrity_check_on_both_backends() {
    let s = specu();
    let policy = FaultPolicy::none();
    let pt = line(5);
    let mut enc = s
        .encrypt(CipherRequest::line(pt, 0x30).resilient(policy))
        .expect("encrypt")
        .into_line()
        .expect("line");
    // Corrupt one stored cell of block 2 (a level value in 0..4): the
    // decrypt still runs, but the recovered plaintext no longer matches
    // the keyed tag.
    let victim = &enc.blocks[2];
    let mut states = victim.states().to_vec();
    states[17] = (states[17] + 1.0) % 4.0;
    enc.blocks[2] = CipherBlock::from_parts_tagged(
        states,
        victim.data(),
        victim.tweak(),
        victim.tag().expect("resilient blocks are tagged"),
    );
    let serial = s.decrypt(CipherRequest::sealed_line(enc.clone()).verified());
    assert!(
        matches!(serial, Err(SpeError::IntegrityViolation { .. })),
        "serial: {serial:?}"
    );
    let par = s.parallel(4).expect("parallel");
    let banked = par.decrypt(CipherRequest::sealed_line(enc).verified());
    assert!(
        matches!(banked, Err(SpeError::IntegrityViolation { .. })),
        "parallel: {banked:?}"
    );
}

#[test]
fn untagged_block_is_rejected_by_checked_decrypt() {
    // A block written through the plain (non-resilient) path carries no
    // tag; the checked decrypt refuses to vouch for it.
    let s = specu();
    let ct = s
        .encrypt(CipherRequest::block(*b"no integrity tag"))
        .expect("encrypt")
        .into_block()
        .expect("block");
    assert!(ct.tag().is_none());
    assert!(matches!(
        s.decrypt(CipherRequest::sealed_block(ct.clone()).verified()),
        Err(SpeError::IntegrityViolation { .. })
    ));
    // The unchecked decrypt still works for untagged blocks.
    assert_eq!(
        s.decrypt(CipherRequest::sealed_block(ct))
            .expect("unchecked")
            .into_plain_block()
            .expect("plain"),
        *b"no integrity tag"
    );
}

#[test]
fn campaign_at_low_rate_has_zero_uncorrectable_lines() {
    // Acceptance criterion: at a 1e-4 transient rate the recovery ladder
    // corrects everything, under both backends, with identical stats.
    let s = specu();
    let campaign = FaultCampaign::new(CampaignConfig {
        rates: vec![1e-4],
        lines_per_rate: 8,
        ..CampaignConfig::default()
    });
    let serial = campaign.run_serial(s.context().expect("context"));
    let parallel = campaign.run_parallel(&s.parallel(4).expect("parallel"));
    assert_eq!(serial, parallel, "backends must agree point-for-point");
    for p in &serial {
        assert_eq!(p.uncorrectable_lines, 0, "rate {}: {p:?}", p.rate);
        assert_eq!(p.silent_corruptions, 0, "rate {}: {p:?}", p.rate);
        assert_eq!(p.counters.uncorrectable, 0);
    }
}
