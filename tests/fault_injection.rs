//! Fault injection: what happens when the stored ciphertext, the key
//! register or the platform binding are damaged.
//!
//! SPE provides confidentiality, not integrity — these tests pin down the
//! *error amplification* behaviour (a single corrupted cell garbles many
//! plaintext cells through the context-mixing decryption), the paper's
//! §3 note that data corruption is handled by ECC/shielding, and the power
//! lifecycle under partial failures.

use snvmm::core::{CipherBlock, CipherRequest, Key, SecureNvmm, SpeCipher, SpeMode, Specu, Tpm};
use std::sync::OnceLock;

fn specu() -> Specu {
    static CACHE: OnceLock<Specu> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            Specu::builder()
                .key(Key::from_seed(0xFA17))
                .build()
                .expect("specu")
        })
        .clone()
}

fn encrypt(s: &Specu, pt: &[u8; 16]) -> CipherBlock {
    s.encrypt(CipherRequest::block(*pt))
        .expect("encrypt")
        .into_block()
        .expect("block")
}

fn decrypt(s: &Specu, ct: &CipherBlock) -> [u8; 16] {
    s.decrypt(CipherRequest::sealed_block(ct.clone()))
        .expect("decrypt")
        .into_plain_block()
        .expect("plain")
}

#[test]
fn single_cell_corruption_amplifies_across_the_block() {
    let s = specu();
    let pt = *b"integrity-less!!";
    let block = encrypt(&s, &pt);

    // Corrupt one cell's stored level (a disturb event / radiation hit).
    let mut states = block.states().to_vec();
    states[27] = (states[27] as u8 ^ 1) as f64;
    let corrupted = CipherBlock::from_parts(states, block.data(), block.tweak());

    let garbled = decrypt(&s, &corrupted);
    assert_ne!(garbled, pt);
    // Context mixing spreads the single-cell fault over many plaintext
    // cells — the flip side of the avalanche property.
    let wrong_bytes = garbled.iter().zip(&pt).filter(|(a, b)| a != b).count();
    assert!(
        wrong_bytes >= 4,
        "one corrupted cell should garble several bytes, got {wrong_bytes}"
    );
}

#[test]
fn corruption_in_one_block_does_not_leak_into_others() {
    let mut mem = SecureNvmm::new(11, specu(), SpeMode::Parallel);
    let line: [u8; 64] = core::array::from_fn(|i| i as u8);
    mem.write_line(0, &line).expect("write");
    mem.write_line(64, &line).expect("write");
    // Blocks are independent (per-block tweaks), so damaging line 0 cannot
    // affect line 64.
    assert_eq!(mem.read_line(64).expect("read"), line);
}

#[test]
fn zeroed_key_register_decrypts_nothing() {
    let mut s = specu();
    let pt = *b"power glitch key";
    let block = encrypt(&s, &pt);
    // A fault zeroes the volatile key register (not a clean power-down).
    s.load_key(Key::zero());
    let out = decrypt(&s, &block);
    assert_ne!(out, pt, "a zeroed key must not decrypt");
}

#[test]
fn power_loss_before_scrub_leaves_serial_exposure_visible() {
    // SPE-serial's known weakness: if power is cut *without* the orderly
    // §6.4 sweep (battery yank), exposed lines persist in plaintext. The
    // model makes that failure visible rather than hiding it.
    let mut mem = SecureNvmm::new(12, specu(), SpeMode::Serial);
    let line = [0x5Au8; 64];
    mem.write_line(0, &line).expect("write");
    mem.read_line(0).expect("read"); // expose
                                     // No power_down() — the probe sees the exposed plaintext.
    let probed = mem.probe();
    assert_eq!(probed[0].1, line, "yanked power leaves the exposure window");
    // The orderly path closes it.
    mem.scrub().expect("scrub");
    assert_ne!(mem.probe()[0].1, line);
}

#[test]
fn tpm_binding_survives_memory_swap_attack() {
    // Attack 2 variant: the attacker swaps the NVMM module between two
    // machines hoping one TPM unlocks the other's memory.
    let key_a = Key::from_seed(1);
    let key_b = Key::from_seed(2);
    let tpm_a = Tpm::provision(key_a, 0xA);
    let tpm_b = Tpm::provision(key_b, 0xB);

    let mut specu_a = specu();
    specu_a.load_key(key_a);
    let mut mem_a = SecureNvmm::new(0xA, specu_a, SpeMode::Parallel);
    let secret = [0x77u8; 64];
    mem_a.write_line(0, &secret).expect("write");
    mem_a.power_down().expect("down");

    // Machine B's TPM refuses module A.
    assert!(mem_a.power_up(&tpm_b).is_err());
    // Its own TPM restores service.
    mem_a.power_up(&tpm_a).expect("up");
    assert_eq!(mem_a.read_line(0).expect("read"), secret);
}

#[test]
fn tampered_ciphertext_bytes_do_not_crash_decryption() {
    // Robustness: arbitrary state tampering must never panic the SPECU.
    let s = specu();
    let block = encrypt(&s, b"no panics please");
    for magnitude in [0.5f64, 3.0, -3.0] {
        let mut states = block.states().to_vec();
        for v in states.iter_mut() {
            *v = (*v + magnitude).rem_euclid(4.0).floor();
        }
        let tampered = CipherBlock::from_parts(states, block.data(), block.tweak());
        let _ = decrypt(&s, &tampered);
    }
}
