//! Telemetry integration: snapshot determinism, serial-vs-parallel
//! counter equality through the unified request API, and the
//! zero-overhead no-op recorder guarantee.

use snvmm::core::{
    CipherRequest, FaultModel, FaultPolicy, Key, ParallelSpecu, SchedulerConfig, SpeCipher, Specu,
};
use snvmm::telemetry::{noop, AtomicRecorder, Counter, Span, SpanTimer};
use std::sync::Arc;

fn policy() -> FaultPolicy {
    FaultPolicy {
        model: FaultModel::transient(1e-3, 0xFA17),
        max_retries: 4,
        spare_regions: 2,
    }
}

/// Drives a fixed workload — plain, resilient and verified round trips —
/// through any backend of the unified API.
fn drive(cipher: &dyn SpeCipher) {
    for n in 0u64..4 {
        let pt: [u8; 64] = core::array::from_fn(|i| (i as u8).wrapping_mul(7) ^ n as u8);
        let sealed = cipher
            .encrypt(CipherRequest::line(pt, 0x40 * n).resilient(policy()))
            .expect("encrypt")
            .into_line()
            .expect("line");
        let back = cipher
            .decrypt(CipherRequest::sealed_line(sealed).verified())
            .expect("decrypt")
            .into_plain_line()
            .expect("plain");
        assert_eq!(back, pt);
    }
}

#[test]
fn snapshots_are_deterministic_for_a_fixed_seed() {
    let texts: Vec<String> = (0..2)
        .map(|_| {
            let recorder = Arc::new(AtomicRecorder::new());
            let mut specu = Specu::builder()
                .key(Key::from_seed(0xDAC))
                .build()
                .expect("specu");
            specu.attach_recorder(recorder.clone());
            drive(specu.context().expect("ctx"));
            recorder.snapshot().to_text()
        })
        .collect();
    assert_eq!(texts[0], texts[1], "snapshot text must be reproducible");
    assert!(texts[0].contains("poe_pulses"));
    assert!(texts[0].contains("lines_encrypted"));
}

#[test]
fn serial_and_parallel_report_identical_datapath_totals() {
    let specu = Specu::builder()
        .key(Key::from_seed(0xDAC))
        .build()
        .expect("specu");

    let serial_rec = Arc::new(AtomicRecorder::new());
    let mut serial = specu.context().expect("ctx").clone();
    serial.set_recorder(serial_rec.clone());
    drive(&serial);

    let parallel_rec = Arc::new(AtomicRecorder::new());
    let mut parallel_ctx = specu.context().expect("ctx").clone();
    parallel_ctx.set_recorder(parallel_rec.clone());
    let parallel =
        ParallelSpecu::with_scheduler_config(parallel_ctx, SchedulerConfig::with_banks(4));
    drive(&parallel);

    for c in [
        Counter::PoePulses,
        Counter::Retries,
        Counter::Remaps,
        Counter::BlocksEncrypted,
        Counter::BlocksDecrypted,
        Counter::TagsVerified,
        Counter::SneakPathActivations,
    ] {
        assert_eq!(
            serial_rec.counter(c),
            parallel_rec.counter(c),
            "{c:?} must match across backends"
        );
    }
}

#[test]
fn noop_recorder_skips_all_work() {
    let rec = noop();
    assert!(!rec.enabled());
    // The span timer must not even read the clock when telemetry is off.
    let timer = SpanTimer::start(rec.as_ref(), Span::EncryptLine);
    assert!(!timer.is_timing());
    // And a default-constructed SPECU (no recorder attached) must leave
    // an unrelated recorder untouched: instrumentation only reports into
    // the handle it was given.
    let bystander = AtomicRecorder::new();
    let specu = Specu::builder()
        .key(Key::from_seed(1))
        .build()
        .expect("specu");
    drive(specu.context().expect("ctx"));
    assert!(bystander.snapshot().is_empty());
}

#[test]
fn snapshot_counts_reflect_the_workload() {
    let recorder = Arc::new(AtomicRecorder::new());
    let mut specu = Specu::builder()
        .key(Key::from_seed(0xDAC))
        .build()
        .expect("specu");
    specu.attach_recorder(recorder.clone());
    drive(specu.context().expect("ctx"));
    let snap = recorder.snapshot();
    // 4 lines x 4 blocks x 16 PoEs minimum (retries add more).
    assert!(snap.counter(Counter::PoePulses) >= 256);
    assert_eq!(snap.counter(Counter::LinesEncrypted), 4);
    assert_eq!(snap.counter(Counter::LinesDecrypted), 4);
    // Tags are per block: 4 lines x 4 blocks.
    assert_eq!(snap.counter(Counter::TagsVerified), 16);
    assert_eq!(snap.counter(Counter::IntegrityFailures), 0);
}
