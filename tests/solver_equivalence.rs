//! Solver equivalence: the sparse reusable-factorization nodal solver must
//! agree with the dense verification oracle on every circuit the datapath
//! can produce — across array sizes, cell patterns, fault-pinned cells and
//! wire perturbations — and both paths must classify a singular network
//! with the same typed error.

use snvmm::crossbar::netlist::Gating;
use snvmm::crossbar::solver::solve_dense;
use snvmm::crossbar::{
    Bias, CellAddr, Crossbar, CrossbarError, Dims, FaultMap, NodalSolver, SolverMode, WireParams,
};
use snvmm::memristor::{DeviceParams, FaultKind, MlcLevel};

const REL_TOL: f64 = 1e-6;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn random_levels(dims: Dims, seed: u64) -> Vec<MlcLevel> {
    let mut s = seed.wrapping_mul(0xA24BAED4963EE407).wrapping_add(1);
    (0..dims.cells())
        .map(|_| MlcLevel::from_bits((splitmix(&mut s) & 3) as u8).expect("two-bit level"))
        .collect()
}

/// A sparse-mode and a dense-mode crossbar with identical cells and faults.
fn solver_pair(dims: Dims, seed: u64, faults: FaultMap) -> (Crossbar, Crossbar) {
    let mut sparse = Crossbar::new(dims, DeviceParams::default()).expect("array");
    sparse
        .write_levels(&random_levels(dims, seed))
        .expect("write");
    sparse.attach_faults(faults).expect("faults");
    let mut dense = sparse.clone();
    dense.set_solver_mode(SolverMode::Dense);
    assert_eq!(sparse.solver_mode(), SolverMode::Sparse);
    (sparse, dense)
}

fn assert_close(a: f64, b: f64, what: &str) {
    let scale = a.abs().max(b.abs()).max(1.0);
    assert!(
        (a - b).abs() <= REL_TOL * scale,
        "{what}: sparse {a} vs dense {b}"
    );
}

/// A fault map pinning one cell at each rail (when the array is big
/// enough), so parity also covers rail-pinned resistances in the network.
fn pinned_faults(dims: Dims) -> FaultMap {
    let mut map = FaultMap::none(dims);
    map.set_fault(CellAddr::new(1, 2), Some(FaultKind::StuckAtLrs));
    map.set_fault(
        CellAddr::new(dims.rows - 1, dims.cols - 2),
        Some(FaultKind::StuckAtHrs),
    );
    map
}

#[test]
fn sparse_and_dense_sense_identically_across_sizes_seeds_and_faults() {
    for dims in [Dims::new(4, 6), Dims::square8(), Dims::new(16, 16)] {
        for seed in [3u64, 58] {
            for faulty in [false, true] {
                let faults = if faulty {
                    pinned_faults(dims)
                } else {
                    FaultMap::none(dims)
                };
                let (sparse, dense) = solver_pair(dims, seed, faults);
                // Sample addresses: the full first row, the main diagonal
                // and the far corner exercise every driver position class.
                let mut probes: Vec<CellAddr> =
                    (0..dims.cols).map(|c| CellAddr::new(0, c)).collect();
                probes.extend((0..dims.rows.min(dims.cols)).map(|i| CellAddr::new(i, i)));
                probes.push(CellAddr::new(dims.rows - 1, dims.cols - 1));
                for addr in probes {
                    let rs = sparse.sense_resistance(addr).expect("sparse sense");
                    let rd = dense.sense_resistance(addr).expect("dense sense");
                    assert_close(
                        rs,
                        rd,
                        &format!("sense {addr:?} dims {dims:?} seed {seed} faulty {faulty}"),
                    );
                }
            }
        }
    }
}

#[test]
fn sparse_and_dense_sneak_fields_agree() {
    for dims in [Dims::new(4, 6), Dims::square8()] {
        let (sparse, dense) = solver_pair(dims, 17, pinned_faults(dims));
        let poe = CellAddr::new(dims.rows / 2, dims.cols / 2);
        let fs = sparse.sneak_voltages(poe, 1.1).expect("sparse field");
        let fd = dense.sneak_voltages(poe, 1.1).expect("dense field");
        for (addr, v) in fs.iter() {
            assert_close(v, fd.at(addr), &format!("field {addr:?} dims {dims:?}"));
        }
    }
}

#[test]
fn warm_factorization_matches_fresh_dense_after_rewrites_and_wire_changes() {
    // One long-lived sparse array (its factorization survives every data
    // rewrite and wire perturbation) against a fresh dense oracle each
    // round: the cached symbolic structure must never go stale.
    let dims = Dims::square8();
    let mut sparse = Crossbar::new(dims, DeviceParams::default()).expect("array");
    for round in 0..4u64 {
        sparse
            .write_levels(&random_levels(dims, 1000 + round))
            .expect("write");
        let mut wires = WireParams::default();
        wires.r_row_segment *= 1.0 + 0.07 * round as f64;
        wires.r_col_segment *= 1.0 - 0.03 * round as f64;
        sparse.set_wires(wires).expect("wires");

        let mut dense = sparse.clone();
        dense.set_solver_mode(SolverMode::Dense);
        for addr in [
            CellAddr::new(0, 0),
            CellAddr::new(3, 5),
            CellAddr::new(7, 7),
        ] {
            assert_close(
                sparse.sense_resistance(addr).expect("sparse sense"),
                dense.sense_resistance(addr).expect("dense sense"),
                &format!("round {round} {addr:?}"),
            );
        }
    }
}

#[test]
fn singular_network_is_the_same_typed_error_on_both_paths() {
    // Validation-passing but pathological parameters: every stamped
    // conductance underflows the shared pivot threshold, so sparse LU and
    // the dense oracle must both report the singularity (and the crossbar
    // fallback has nowhere to go).
    let dims = Dims::new(3, 3);
    let wires = WireParams {
        r_row_segment: 1.0e308,
        r_col_segment: 1.0e308,
        r_driver: 1.0e308,
        r_couple: 1.0e308,
        g_leak: 1.0e-310,
    };
    let bias = Bias::sneak_pulse(dims, CellAddr::new(1, 1), 1.0);
    let mut solver = NodalSolver::new(dims).expect("solver");
    let sparse = solver.solve(&wires, &bias, Gating::AllOn, |_, _| 1.0e308);
    assert!(
        matches!(sparse, Err(CrossbarError::SingularNetwork)),
        "sparse: {sparse:?}"
    );
    let oracle = solve_dense(dims, &wires, &bias, Gating::AllOn, |_, _| 1.0e308);
    assert!(
        matches!(oracle, Err(CrossbarError::SingularNetwork)),
        "dense: {oracle:?}"
    );
}
