//! Integration: the multi-bank parallel datapath is a pure performance
//! feature — it must produce byte-identical ciphertext to the serial SPECU
//! under every behavioural variant, and the sharded lines must stay
//! order-sensitive (Fig. 2b: mats decrypted out of order, or under the
//! wrong tweak, do not recover the plaintext).
use snvmm::core::{
    CipherRequest, Key, LineJob, SchedulerConfig, SpeCipher, SpeError, SpeVariant, Specu,
    SpecuConfig, SubmitError,
};
use std::sync::OnceLock;

const LINES: usize = 1000;

fn specu(variant: SpeVariant) -> Specu {
    static CLOSED: OnceLock<Specu> = OnceLock::new();
    static ANALOG: OnceLock<Specu> = OnceLock::new();
    let cache = match variant {
        SpeVariant::ClosedLoop => &CLOSED,
        SpeVariant::Analog => &ANALOG,
    };
    cache
        .get_or_init(|| {
            Specu::builder()
                .key(Key::from_seed(0xE001F))
                .config(SpecuConfig {
                    variant,
                    ..SpecuConfig::default()
                })
                .build()
                .expect("specu")
        })
        .clone()
}

/// Deterministic pseudo-random 64-byte lines (SplitMix64 bytes).
fn random_lines(seed: u64, n: usize) -> Vec<LineJob> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|i| {
            let mut line = [0u8; 64];
            for chunk in line.chunks_mut(8) {
                chunk.copy_from_slice(&next().to_le_bytes());
            }
            LineJob::new(line, 0x4_0000 + 64 * i as u64)
        })
        .collect()
}

fn equivalence_for(variant: SpeVariant) {
    let s = specu(variant);
    let ctx = s.context().expect("key loaded");
    let salt = match variant {
        SpeVariant::ClosedLoop => 0,
        SpeVariant::Analog => 1,
    };
    let jobs = random_lines(0x11AE5 ^ salt, LINES);

    let banked = s.parallel(4).expect("banked datapath");
    let parallel_lines = banked.encrypt_lines(&jobs).expect("parallel encrypt");
    assert_eq!(parallel_lines.len(), LINES);

    for (job, par) in jobs.iter().zip(&parallel_lines) {
        let serial = ctx
            .encrypt(CipherRequest::line(job.plaintext, job.address))
            .expect("serial encrypt")
            .into_line()
            .expect("line");
        assert_eq!(
            serial.data(),
            par.data(),
            "parallel ciphertext diverged from serial at address {:#x}",
            job.address
        );
        assert_eq!(
            ctx.decrypt(CipherRequest::sealed_line(par.clone()))
                .expect("decrypt")
                .into_plain_line()
                .expect("plain"),
            job.plaintext,
            "parallel line failed to decrypt at address {:#x}",
            job.address
        );
    }
}

#[test]
fn closed_loop_parallel_matches_serial_on_1k_lines() {
    equivalence_for(SpeVariant::ClosedLoop);
}

#[test]
fn analog_parallel_matches_serial_on_1k_lines() {
    equivalence_for(SpeVariant::Analog);
}

#[test]
fn bank_count_does_not_change_ciphertext() {
    let s = specu(SpeVariant::ClosedLoop);
    let jobs = random_lines(0xBA225, 32);
    let reference = s
        .parallel(1)
        .expect("serial datapath")
        .encrypt_lines(&jobs)
        .expect("encrypt");
    for banks in [2usize, 3, 4, 7] {
        let lines = s
            .parallel(banks)
            .expect("datapath")
            .encrypt_lines(&jobs)
            .expect("encrypt");
        for (a, b) in reference.iter().zip(&lines) {
            assert_eq!(a.data(), b.data(), "{banks} banks changed the bytes");
        }
    }
}

#[test]
fn tickets_complete_out_of_order_yet_match_their_submissions() {
    // Raw scheduler interface: banks finish in whatever order the OS
    // schedules them, but each ticket must hand back the response for its
    // own request — byte-identical to the serial datapath.
    let s = specu(SpeVariant::ClosedLoop);
    let ctx = s.context().expect("key loaded");
    let banked = s.parallel(4).expect("banked datapath");
    let jobs = random_lines(0x0DD5, 64);
    let mut tickets: Vec<_> = jobs
        .iter()
        .map(|j| {
            banked
                .scheduler()
                .submit(CipherRequest::line(j.plaintext, j.address))
                .expect("submit")
        })
        .collect();
    // Wait in reverse submission order: late tickets first.
    tickets.reverse();
    for (job, ticket) in jobs.iter().rev().zip(tickets) {
        let banked_line = ticket
            .wait()
            .expect("pipelined encrypt")
            .into_line()
            .expect("line");
        let serial = ctx
            .encrypt(CipherRequest::line(job.plaintext, job.address))
            .expect("serial encrypt")
            .into_line()
            .expect("line");
        assert_eq!(
            banked_line, serial,
            "ticket returned the wrong response at address {:#x}",
            job.address
        );
    }
}

#[test]
fn shutdown_with_in_flight_requests_drains_deterministically() {
    let s = specu(SpeVariant::ClosedLoop);
    let banked = s.parallel(4).expect("banked datapath");
    let jobs = random_lines(0x5D0FF, 32);
    let tickets = banked
        .scheduler()
        .submit_batch(
            jobs.iter()
                .map(|j| CipherRequest::line(j.plaintext, j.address)),
        )
        .expect("submit batch");
    banked.scheduler().shutdown();
    // Every request accepted before shutdown still completes — no ticket
    // is abandoned, no waiter deadlocks.
    for (job, ticket) in jobs.iter().zip(tickets) {
        ticket.wait().unwrap_or_else(|e| {
            panic!(
                "in-flight request at {:#x} lost to shutdown: {e}",
                job.address
            )
        });
    }
    // And the closed scheduler refuses new work with the typed error.
    assert!(matches!(
        banked
            .scheduler()
            .submit(CipherRequest::line(jobs[0].plaintext, jobs[0].address)),
        Err(SpeError::SchedulerShutdown)
    ));
}

#[test]
fn try_submit_reports_would_block_on_a_full_queue() {
    // An uncached single-bank scheduler with queue depth 1: the worker is
    // slow (fresh schedule derivation per block), the submitter is fast,
    // so a bounded burst of try-submits must hit the bound and get the
    // request handed back instead of blocking.
    let slow = Specu::builder()
        .key(Key::from_seed(0x70FB))
        .config(SpecuConfig {
            schedule_cache_lines: 0,
            ..SpecuConfig::default()
        })
        .build()
        .expect("specu");
    let ctx = slow.context().expect("key loaded").clone();
    let pool = snvmm::core::ParallelSpecu::with_scheduler_config(
        ctx,
        SchedulerConfig {
            banks: 1,
            queue_depth: 1,
            ..SchedulerConfig::default()
        },
    );
    let jobs = random_lines(0xB10C, 16);
    let mut accepted = Vec::new();
    let mut refused = None;
    for job in &jobs {
        match pool
            .scheduler()
            .try_submit(CipherRequest::line(job.plaintext, job.address))
        {
            Ok(t) => accepted.push(t),
            Err(SubmitError::WouldBlock(request)) => {
                refused = Some(request);
                break;
            }
            Err(SubmitError::Shutdown(_)) => panic!("scheduler is not shut down"),
            Err(SubmitError::Quarantined(_)) => panic!("no chaos, no quarantine"),
        }
    }
    let refused = refused.expect("a 16-request burst must overrun a depth-1 queue");
    // The refused request comes back intact and can be resubmitted on the
    // blocking path once the bank drains.
    let resubmitted = pool.scheduler().submit(refused).expect("blocking resubmit");
    for t in accepted {
        t.wait().expect("accepted request completes");
    }
    resubmitted.wait().expect("resubmitted request completes");
}

#[test]
fn swapped_mats_fail_to_decrypt() {
    // Fig. 2b, line-level: each mat is bound to its position in the line
    // through the tweak, so reassembling the banks' outputs in the wrong
    // order must not yield the plaintext.
    let s = specu(SpeVariant::ClosedLoop);
    let ctx = s.context().expect("key loaded");
    let banked = s.parallel(4).expect("banked datapath");
    let pt: [u8; 64] = core::array::from_fn(|i| (i as u8).wrapping_mul(37) ^ 0x5A);
    let mut line = banked.encrypt_line(&pt, 0x7700).expect("encrypt");
    line.blocks.swap(0, 2);
    // Rejecting the tampered line outright would also be acceptable.
    let tampered = ctx
        .decrypt(CipherRequest::sealed_line(line))
        .and_then(|resp| resp.into_plain_line());
    if let Ok(recovered) = tampered {
        assert_ne!(
            recovered, pt,
            "mats decrypted out of bank order must not recover the plaintext"
        );
    }
}

#[test]
fn tweak_binds_each_mat_to_its_position() {
    // All four mats carry the same 16 plaintext bytes, yet every bank must
    // emit a different ciphertext: the per-block tweak (line address +
    // block index) keys each position differently, which is what makes the
    // bank order matter in the first place.
    let s = specu(SpeVariant::ClosedLoop);
    let banked = s.parallel(4).expect("banked datapath");
    let pt = *b"same sixteen b.. same sixteen b.. same sixteen b.. same sixteen b..";
    let pt: [u8; 64] = core::array::from_fn(|i| pt[i % 16]);
    let line = banked.encrypt_line(&pt, 0x9900).expect("encrypt");
    let data = line.data();
    for i in 0..4 {
        for j in (i + 1)..4 {
            assert_ne!(
                data[i * 16..(i + 1) * 16],
                data[j * 16..(j + 1) * 16],
                "mats {i} and {j} encrypted identically despite the tweak"
            );
        }
    }
    // The same line at a different address is ciphered differently too.
    let moved = banked.encrypt_line(&pt, 0x9940).expect("encrypt");
    assert_ne!(moved.data(), data, "line address must enter the tweak");
}
