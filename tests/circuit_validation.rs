//! Integration: the behavioral (fast) model against the circuit engine.
//!
//! The NIST-scale experiments run on the behavioral crossbar; these tests
//! pin its calibration to the nodal-analysis engine.

use snvmm::crossbar::fast::FastParams;
use snvmm::crossbar::{CellAddr, Crossbar, Dims, Kernel, WireParams};
use snvmm::memristor::{DeviceParams, MlcLevel, PulseWidthSearch};

fn random_levels(seed: u64) -> Vec<MlcLevel> {
    let mut s = seed;
    (0..64)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            MlcLevel::from_masked((s >> 33) as u8)
        })
        .collect()
}

#[test]
fn kernel_attenuation_tracks_circuit_voltages() {
    let device = DeviceParams::default();
    let wires = WireParams::default();
    let kernel = Kernel::calibrate(&device, &wires, 6, 5).expect("calibrate");

    // Fresh circuit instance, fresh data: kernel predictions should land
    // within a coarse band of the solved voltages near the PoE.
    let mut xbar = Crossbar::with_wires(Dims::square8(), device, wires).expect("build");
    xbar.write_levels(&random_levels(99)).expect("write");
    let poe = CellAddr::new(4, 3);
    let field = xbar.sneak_voltages(poe, 1.0).expect("solve");
    for (dr, dc) in [(0, 0), (0, 1), (0, -1), (1, 0), (-1, 0)] {
        let cell = CellAddr::new(
            (poe.row as isize + dr) as usize,
            (poe.col as isize + dc) as usize,
        );
        let predicted = kernel.at(dr, dc);
        let actual = field.at(cell);
        assert!(
            (predicted - actual).abs() < 0.25,
            "offset ({dr},{dc}): kernel {predicted:.3} vs circuit {actual:.3}"
        );
    }
}

#[test]
fn circuit_polyomino_is_contained_in_kernel_membership() {
    // The behavioral membership (calibrated mean) must cover the cells the
    // circuit engine actually switches in typical instances.
    let device = DeviceParams::default();
    let wires = WireParams::default();
    let kernel = Kernel::calibrate(&device, &wires, 6, 7).expect("calibrate");
    let member_offsets = kernel.member_offsets(1.0, 0.35);

    let mut xbar = Crossbar::with_wires(Dims::square8(), device.clone(), wires).expect("build");
    xbar.write_levels(&random_levels(3)).expect("write");
    let poe = CellAddr::new(3, 3);
    let poly = xbar.polyomino_at(poe, 1.0).expect("polyomino");
    for (addr, _) in poly.iter() {
        let off = addr.offset_from(poe);
        assert!(
            member_offsets.contains(&off),
            "circuit polyomino cell {addr} (offset {off:?}) outside the \
             behavioral train membership"
        );
    }
}

#[test]
fn fast_kinetics_match_team_transition_times() {
    // FastParams is calibrated from the TEAM model's L10 <-> L00 pulse
    // widths; verify the identity it encodes.
    let device = DeviceParams::default();
    let params = FastParams::calibrated(&device).expect("calibrated");
    let search = PulseWidthSearch::new(&device);
    let r10 = MlcLevel::L10.nominal_resistance(&device);
    let r00 = MlcLevel::L00.nominal_resistance(&device);
    let w_up = search.width_for(r10, r00, 1.0).expect("width");
    let w_down = search.width_for(r00, r10, -1.0).expect("width");
    // k_up * overdrive * w_up must equal the logit gap (and same down).
    let x10 = device.state_for_resistance(r10).expect("x10");
    let x00 = device.state_for_resistance(r00).expect("x00");
    let gap = (x00 / (1.0 - x00)).ln() - (x10 / (1.0 - x10)).ln();
    let overdrive = 1.0 - device.v_threshold;
    assert!((params.k_up * overdrive * w_up - gap).abs() < 1e-9);
    assert!((params.k_down * overdrive * w_down - gap).abs() < 1e-9);
    // Hysteresis survives calibration: switching down is faster.
    assert!(params.k_down > params.k_up);
}

#[test]
fn circuit_pulse_moves_polyomino_cells_toward_pulse_direction() {
    let device = DeviceParams::default();
    let mut xbar = Crossbar::new(Dims::square8(), device).expect("build");
    xbar.write_levels(&[MlcLevel::L01; 64]).expect("write");
    let poe = CellAddr::new(3, 4);
    let before: Vec<f64> = xbar.states();
    let report = xbar
        .apply_sneak_pulse(
            poe,
            snvmm::memristor::Pulse::new(1.0, 0.07e-6).expect("pulse"),
            4,
        )
        .expect("pulse");
    let after = xbar.states();
    let mut moved_up = 0;
    for (addr, _) in report.polyomino.iter() {
        let i = Dims::square8().index(addr);
        if after[i] > before[i] + 1e-9 {
            moved_up += 1;
        }
    }
    assert!(
        moved_up >= report.polyomino.len() / 2,
        "positive pulse should raise most polyomino cells"
    );
}
