//! Integration: SPE dataset builders through the NIST suite (a CI-scale
//! Table 2).

use snvmm::core::datasets::Dataset;
use snvmm::core::{Key, Specu};
use snvmm::nist::{Bits, Suite};
use std::sync::OnceLock;

fn specu() -> Specu {
    static CACHE: OnceLock<Specu> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            Specu::builder()
                .key(Key::from_seed(0x7AB1E2))
                .build()
                .expect("specu")
        })
        .clone()
}

fn tally(dataset: Dataset, sequences: usize, bits: usize) -> snvmm::nist::suite::FailureTally {
    let s = specu();
    let suite = Suite::new();
    let seqs: Vec<Bits> = (0..sequences)
        .map(|i| {
            let bytes = dataset.build(&s, bits, 0x600D + i as u64).expect("dataset");
            Bits::from_bytes(&bytes).slice(0, bits)
        })
        .collect();
    suite.tally(seqs.iter())
}

#[test]
fn key_avalanche_passes_quick_nist() {
    let t = tally(Dataset::KeyAvalanche, 6, 1 << 14);
    assert!(t.passes(1), "key avalanche failures: {t}");
}

#[test]
fn plaintext_avalanche_passes_quick_nist() {
    let t = tally(Dataset::PlaintextAvalanche, 6, 1 << 14);
    assert!(t.passes(1), "plaintext avalanche failures: {t}");
}

#[test]
fn random_pt_key_passes_quick_nist() {
    let t = tally(Dataset::RandomPtKey, 6, 1 << 14);
    assert!(t.passes(1), "random pt/key failures: {t}");
}

#[test]
fn low_density_plaintext_passes_quick_nist() {
    let t = tally(Dataset::LowDensityPt, 6, 1 << 14);
    assert!(t.passes(1), "low-density plaintext failures: {t}");
}

#[test]
fn high_density_key_passes_quick_nist() {
    let t = tally(Dataset::HighDensityKey, 6, 1 << 14);
    assert!(t.passes(1), "high-density key failures: {t}");
}

#[test]
fn pt_ct_correlation_passes_quick_nist() {
    let t = tally(Dataset::PtCtCorrelation, 6, 1 << 14);
    assert!(t.passes(1), "pt/ct correlation failures: {t}");
}
