//! Functional co-simulation: the timing simulator's memory traffic drives
//! the *real* SPECU, validating the whole stack together — trace generation,
//! cache filtering, line addressing and sneak-path encryption round-trips.
//!
//! The quick variants below run in seconds and gate CI; the full-depth
//! sweep is `#[ignore]`d (run it with `cargo test -- --ignored`).

use snvmm::core::{Key, LineJob, SecureNvmm, SpeMode, Specu, SpecuConfig};
use snvmm::memsim::SetAssocCache;
use snvmm::telemetry::{AtomicRecorder, Counter};
use snvmm::workloads::{BenchProfile, TraceGenerator};
use std::collections::HashMap;
use std::sync::Arc;

/// Deterministic line contents derived from the address.
fn line_pattern(addr: u64) -> [u8; 64] {
    core::array::from_fn(|i| {
        let x = addr
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(i as u64 * 0xABCD);
        (x >> 32) as u8
    })
}

/// A SPECU with the schedule cache disabled: the reference datapath every
/// cached run must agree with byte-for-byte.
fn uncached_specu(seed: u64) -> Specu {
    Specu::builder()
        .key(Key::from_seed(seed))
        .config(SpecuConfig {
            schedule_cache_lines: 0,
            ..SpecuConfig::default()
        })
        .build()
        .expect("specu")
}

/// Drives `accesses` trace references through the paper's L1/L2 hierarchy
/// and sends every NVMM-bound line through `nvmm`, asserting each demand
/// fill decrypts to the last written contents. Returns the shadow copy of
/// written lines and the NVMM op count.
fn cosimulate(
    nvmm: &mut SecureNvmm,
    accesses: usize,
    trace_seed: u64,
) -> (HashMap<u64, [u8; 64]>, usize) {
    let mut l1 = SetAssocCache::new(32 * 1024, 8, 64);
    let mut l2 = SetAssocCache::new(2 * 1024 * 1024, 16, 64);
    let mut shadow: HashMap<u64, [u8; 64]> = HashMap::new();
    let mut nvmm_ops = 0usize;
    for access in TraceGenerator::new(&BenchProfile::gcc(), trace_seed).take(accesses) {
        let line = access.addr & !63;
        let l1_out = l1.access(access.addr, access.is_write);
        if l1_out.hit {
            continue;
        }
        let l2_out = l2.access(access.addr, false);
        if !l2_out.hit {
            // Demand fill from the NVMM: the line must decrypt to whatever
            // was last written (or the erased pattern).
            let expected = shadow.get(&line).copied().unwrap_or([0u8; 64]);
            let got = nvmm.read_line(line).expect("nvmm read");
            assert_eq!(got, expected, "fill mismatch at {line:#x}");
            nvmm_ops += 1;
        }
        if let Some(victim) = l2_out.writeback {
            // Write-back: encrypt deterministic contents for that address.
            let data = line_pattern(victim);
            nvmm.write_line(victim, &data).expect("nvmm write");
            shadow.insert(victim, data);
            nvmm_ops += 1;
        }
    }
    (shadow, nvmm_ops)
}

/// The shared body of the quick and full-depth round-trip tests: the
/// cached run must produce the same plaintexts AND the same at-rest
/// ciphertexts as a cache-disabled run of the identical trace.
fn roundtrip_through_real_spe(accesses: usize) {
    let mut nvmm = SecureNvmm::new(
        0xC051,
        Specu::builder()
            .key(Key::from_seed(0xC051))
            .build()
            .expect("specu"),
        SpeMode::Parallel,
    );
    let mut reference = SecureNvmm::new(0xC051, uncached_specu(0xC051), SpeMode::Parallel);

    let (shadow, nvmm_ops) = cosimulate(&mut nvmm, accesses, 9);
    let (ref_shadow, ref_ops) = cosimulate(&mut reference, accesses, 9);
    assert!(
        nvmm_ops > 20,
        "the trace should generate real NVMM traffic, got {nvmm_ops}"
    );
    assert_eq!(nvmm_ops, ref_ops, "identical traces, identical traffic");
    assert_eq!(shadow, ref_shadow);

    // Everything at rest is ciphertext (SPE-parallel)...
    assert_eq!(nvmm.fraction_encrypted(), 1.0);
    // ...and the cached datapath's ciphertexts are byte-identical to the
    // uncached reference: the schedule cache is a pure memo.
    let mut probed: HashMap<u64, [u8; 64]> = nvmm.probe().into_iter().collect();
    for (addr, bytes) in reference.probe() {
        let cached = probed.remove(&addr).expect("line resident in both");
        assert_eq!(cached, bytes, "cached != uncached ciphertext at {addr:#x}");
    }
    assert!(probed.is_empty(), "cached run holds extra lines");
    // The probe of any written line shows ciphertext, not the pattern.
    for (addr, data) in shadow.iter().take(4) {
        let probed = nvmm
            .probe()
            .into_iter()
            .find(|(a, _)| a == addr)
            .map(|(_, bytes)| bytes)
            .expect("line resident");
        assert_ne!(&probed, data, "plaintext visible at {addr:#x}");
    }
}

#[test]
fn l2_miss_traffic_roundtrips_through_real_spe() {
    roundtrip_through_real_spe(4_000);
}

#[test]
#[ignore = "full-depth sweep (minutes); the 4k-access quick variant gates CI"]
fn l2_miss_traffic_roundtrips_through_real_spe_full_depth() {
    roundtrip_through_real_spe(400_000);
}

#[test]
fn serial_and_parallel_modes_agree_on_contents() {
    // The SPE-serial and SPE-parallel policies differ only in *when* lines
    // sit encrypted (serial leaves read lines plaintext until a scrub);
    // the contents every read returns must be identical for an identical
    // trace, and after a scrub the at-rest ciphertexts match too.
    let mut serial = SecureNvmm::new(
        0x5E41,
        Specu::builder()
            .key(Key::from_seed(0x5E41))
            .build()
            .expect("specu"),
        SpeMode::Serial,
    );
    let mut parallel = SecureNvmm::new(
        0x5E41,
        Specu::builder()
            .key(Key::from_seed(0x5E41))
            .build()
            .expect("specu"),
        SpeMode::Parallel,
    );
    let (shadow_s, ops_s) = cosimulate(&mut serial, 4_000, 11);
    let (shadow_p, ops_p) = cosimulate(&mut parallel, 4_000, 11);
    assert_eq!(ops_s, ops_p);
    assert_eq!(shadow_s, shadow_p);
    // Every written line reads back identically under both policies.
    for (addr, data) in &shadow_s {
        assert_eq!(serial.read_line(*addr).expect("read"), *data);
        assert_eq!(parallel.read_line(*addr).expect("read"), *data);
    }
    // Scrubbing the serial NVMM restores full-ciphertext rest state; the
    // schedules are deterministic in (key, tweak), so the two policies
    // converge on byte-identical ciphertexts.
    serial.scrub().expect("scrub");
    assert_eq!(serial.fraction_encrypted(), 1.0);
    let at_rest: HashMap<u64, [u8; 64]> = parallel.probe().into_iter().collect();
    for (addr, bytes) in serial.probe() {
        assert_eq!(at_rest.get(&addr), Some(&bytes), "mismatch at {addr:#x}");
    }
}

#[test]
fn bank_count_changes_neither_ciphertexts_nor_pulse_telemetry() {
    // One bank serialises the four mats; four banks fan them out. The
    // ciphertexts and the physical work done (pulses, train steps,
    // retries) must be identical — only the distribution differs.
    let jobs: Vec<LineJob> = (0..12u64)
        .map(|i| LineJob::new(line_pattern(i * 64), 0x200 + i))
        .collect();
    let run = |banks: usize| {
        let recorder = Arc::new(AtomicRecorder::new());
        let mut s = Specu::builder()
            .key(Key::from_seed(0xBA1))
            .build()
            .expect("specu");
        s.attach_recorder(recorder.clone());
        let par = s.parallel(banks).expect("parallel");
        let lines = par.encrypt_lines(&jobs).expect("encrypt");
        let back = par.decrypt_lines(&lines).expect("decrypt");
        (lines, back, recorder.snapshot())
    };
    let (lines_1, back_1, snap_1) = run(1);
    let (lines_4, back_4, snap_4) = run(4);
    assert_eq!(lines_1, lines_4, "bank count must not change ciphertexts");
    assert_eq!(back_1, back_4);
    for (i, job) in jobs.iter().enumerate() {
        assert_eq!(back_1[i], job.plaintext, "round trip at job {i}");
    }
    for counter in [
        Counter::PoePulses,
        Counter::TrainSteps,
        Counter::Retries,
        Counter::Remaps,
        Counter::BlocksEncrypted,
        Counter::BlocksDecrypted,
        Counter::ScheduleDerivations,
        Counter::ScheduleCacheHits,
        Counter::ScheduleCacheMisses,
    ] {
        assert_eq!(
            snap_1.counter(counter),
            snap_4.counter(counter),
            "{counter:?} diverged between 1 and 4 banks"
        );
    }
}

#[test]
fn pipelined_scheduler_matches_serial_ciphertexts_and_telemetry() {
    // The quick pipeline gate: the same line traffic driven through the
    // raw bank-scheduler submit/ticket interface must produce the serial
    // datapath's exact ciphertexts AND the same deterministic physical
    // telemetry (pulses, derivations), with the scheduler's own
    // bookkeeping balancing to zero requests lost.
    use snvmm::core::{CipherRequest, SpeCipher};
    let jobs: Vec<LineJob> = (0..12u64)
        .map(|i| LineJob::new(line_pattern(i * 64), 0x900 + i))
        .collect();

    let serial_rec = Arc::new(AtomicRecorder::new());
    let mut serial = Specu::builder()
        .key(Key::from_seed(0x5CED))
        .build()
        .expect("specu");
    serial.attach_recorder(serial_rec.clone());
    let serial_lines: Vec<_> = jobs
        .iter()
        .map(|j| {
            serial
                .encrypt(CipherRequest::line(j.plaintext, j.address))
                .expect("serial encrypt")
                .into_line()
                .expect("line")
        })
        .collect();

    let piped_rec = Arc::new(AtomicRecorder::new());
    let mut piped = Specu::builder()
        .key(Key::from_seed(0x5CED))
        .build()
        .expect("specu");
    piped.attach_recorder(piped_rec.clone());
    let pool = piped.parallel(4).expect("parallel");
    let tickets = pool
        .scheduler()
        .submit_batch(
            jobs.iter()
                .map(|j| CipherRequest::line(j.plaintext, j.address)),
        )
        .expect("submit");
    let piped_lines: Vec<_> = tickets
        .into_iter()
        .map(|t| {
            t.wait()
                .expect("pipelined encrypt")
                .into_line()
                .expect("line")
        })
        .collect();
    // Dropping the pool joins the bank workers: telemetry is final.
    drop(pool);

    assert_eq!(
        serial_lines, piped_lines,
        "pipelined ciphertexts diverged from serial"
    );
    let snap_serial = serial_rec.snapshot();
    let snap_piped = piped_rec.snapshot();
    for counter in [
        Counter::PoePulses,
        Counter::TrainSteps,
        Counter::BlocksEncrypted,
        Counter::ScheduleDerivations,
        Counter::ScheduleCacheHits,
        Counter::ScheduleCacheMisses,
    ] {
        assert_eq!(
            snap_serial.counter(counter),
            snap_piped.counter(counter),
            "{counter:?} diverged between serial and pipelined runs"
        );
    }
    // Scheduler bookkeeping: every submission was completed by a bank.
    assert_eq!(
        snap_piped.counter(Counter::SchedSubmitted),
        jobs.len() as u64
    );
    assert_eq!(
        snap_piped.counter(Counter::SchedCompleted),
        jobs.len() as u64
    );
    assert_eq!(snap_piped.counter(Counter::SchedRejectedWouldBlock), 0);
}

#[test]
fn power_cycle_preserves_the_working_set() {
    use snvmm::core::Tpm;
    let key = Key::from_seed(0xCAFE);
    let tpm = Tpm::provision(key, 0xCAFE);
    let mut specu = Specu::builder().key(key).build().expect("specu");
    specu.load_key(key);
    let mut nvmm = SecureNvmm::new(0xCAFE, specu, SpeMode::Serial);

    // A working set written via trace addresses.
    let addrs: Vec<u64> = TraceGenerator::new(&BenchProfile::hmmer(), 4)
        .take(64)
        .map(|a| a.addr & !63)
        .collect();
    for a in &addrs {
        nvmm.write_line(*a, &line_pattern(*a)).expect("write");
    }
    // Touch half of them (serial exposure), then lose power.
    for a in addrs.iter().take(32) {
        nvmm.read_line(*a).expect("read");
    }
    nvmm.power_down().expect("power down");
    nvmm.power_up(&tpm).expect("power up");
    // Instant-on: the full working set is intact.
    for a in &addrs {
        assert_eq!(nvmm.read_line(*a).expect("read"), line_pattern(*a));
    }
}
