//! Functional co-simulation: the timing simulator's memory traffic drives
//! the *real* SPECU, validating the whole stack together — trace generation,
//! cache filtering, line addressing and sneak-path encryption round-trips.

use snvmm::core::{Key, SecureNvmm, SpeMode, Specu};
use snvmm::memsim::SetAssocCache;
use snvmm::workloads::{BenchProfile, TraceGenerator};
use std::collections::HashMap;

/// Deterministic line contents derived from the address.
fn line_pattern(addr: u64) -> [u8; 64] {
    core::array::from_fn(|i| {
        let x = addr
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(i as u64 * 0xABCD);
        (x >> 32) as u8
    })
}

#[test]
fn l2_miss_traffic_roundtrips_through_real_spe() {
    // Filter a workload trace through the paper's cache hierarchy, exactly
    // like the timing model does, and send every NVMM-bound line through a
    // real SecureNvmm.
    let mut l1 = SetAssocCache::new(32 * 1024, 8, 64);
    let mut l2 = SetAssocCache::new(2 * 1024 * 1024, 16, 64);
    let mut nvmm = SecureNvmm::new(
        0xC051,
        Specu::new(Key::from_seed(0xC051)).expect("specu"),
        SpeMode::Parallel,
    );
    let mut shadow: HashMap<u64, [u8; 64]> = HashMap::new();

    let mut nvmm_ops = 0usize;
    for access in TraceGenerator::new(&BenchProfile::gcc(), 9).take(4_000) {
        let line = access.addr & !63;
        let l1_out = l1.access(access.addr, access.is_write);
        if l1_out.hit {
            continue;
        }
        let l2_out = l2.access(access.addr, false);
        if !l2_out.hit {
            // Demand fill from the NVMM: the line must decrypt to whatever
            // was last written (or the erased pattern).
            let expected = shadow.get(&line).copied().unwrap_or([0u8; 64]);
            let got = nvmm.read_line(line).expect("nvmm read");
            assert_eq!(got, expected, "fill mismatch at {line:#x}");
            nvmm_ops += 1;
        }
        if let Some(victim) = l2_out.writeback {
            // Write-back: encrypt deterministic contents for that address.
            let data = line_pattern(victim);
            nvmm.write_line(victim, &data).expect("nvmm write");
            shadow.insert(victim, data);
            nvmm_ops += 1;
        }
    }
    assert!(
        nvmm_ops > 20,
        "the trace should generate real NVMM traffic, got {nvmm_ops}"
    );
    // Everything at rest is ciphertext (SPE-parallel).
    assert_eq!(nvmm.fraction_encrypted(), 1.0);
    // And the probe of any written line shows ciphertext, not the pattern.
    for (addr, data) in shadow.iter().take(4) {
        let probed = nvmm
            .probe()
            .into_iter()
            .find(|(a, _)| a == addr)
            .map(|(_, bytes)| bytes)
            .expect("line resident");
        assert_ne!(&probed, data, "plaintext visible at {addr:#x}");
    }
}

#[test]
fn power_cycle_preserves_the_working_set() {
    use snvmm::core::Tpm;
    let key = Key::from_seed(0xCAFE);
    let tpm = Tpm::provision(key, 0xCAFE);
    let mut specu = Specu::new(key).expect("specu");
    specu.load_key(key);
    let mut nvmm = SecureNvmm::new(0xCAFE, specu, SpeMode::Serial);

    // A working set written via trace addresses.
    let addrs: Vec<u64> = TraceGenerator::new(&BenchProfile::hmmer(), 4)
        .take(64)
        .map(|a| a.addr & !63)
        .collect();
    for a in &addrs {
        nvmm.write_line(*a, &line_pattern(*a)).expect("write");
    }
    // Touch half of them (serial exposure), then lose power.
    for a in addrs.iter().take(32) {
        nvmm.read_line(*a).expect("read");
    }
    nvmm.power_down().expect("power down");
    nvmm.power_up(&tpm).expect("power up");
    // Instant-on: the full working set is intact.
    for a in &addrs {
        assert_eq!(nvmm.read_line(*a).expect("read"), line_pattern(*a));
    }
}
