//! Integration: trace generation → cache hierarchy → encryption engines.

use snvmm::memsim::power::{power_down_sweep, worst_case_window};
use snvmm::memsim::{EncryptionEngine, System, SystemConfig};
use snvmm::workloads::{BenchProfile, TraceGenerator};
use spe_ciphers::SchemeProfile;

fn run(profile: &BenchProfile, engine: EncryptionEngine, n: u64) -> snvmm::memsim::SimStats {
    let mut system = System::new(SystemConfig::paper(), engine);
    system.run(TraceGenerator::new(profile, 11), n)
}

#[test]
fn fig7_shape_holds_across_workloads() {
    // The paper's ordering must hold per workload, not just on average.
    for profile in [
        BenchProfile::mcf(),
        BenchProfile::milc(),
        BenchProfile::sjeng(),
    ] {
        let n = 300_000;
        let base = run(&profile, EncryptionEngine::none(), n);
        let aes = run(&profile, EncryptionEngine::aes(), n).overhead_vs(&base);
        let par = run(&profile, EncryptionEngine::spe_parallel(), n).overhead_vs(&base);
        let ser = run(&profile, EncryptionEngine::spe_serial(20_000), n).overhead_vs(&base);
        let stream = run(&profile, EncryptionEngine::stream(), n).overhead_vs(&base);
        assert!(
            aes > par && par >= ser && ser >= stream,
            "{}: aes {aes:.4} par {par:.4} ser {ser:.4} stream {stream:.4}",
            profile.name
        );
    }
}

#[test]
fn fig8_bzip2_vs_sjeng_contrast_under_invmm() {
    // Page-reusing bzip2 keeps pages hot (low encrypted fraction); sjeng's
    // scattered pages go inert (higher fraction) — the paper's §7 point.
    let n = 400_000;
    let bzip2 = run(&BenchProfile::bzip2(), EncryptionEngine::invmm(100_000), n);
    let sjeng = run(&BenchProfile::sjeng(), EncryptionEngine::invmm(100_000), n);
    let fb = bzip2.mean_encrypted_fraction();
    let fs = sjeng.mean_encrypted_fraction();
    assert!(
        fs > fb,
        "sjeng inert fraction {fs:.3} should exceed bzip2 {fb:.3}"
    );
}

#[test]
fn spe_serial_keeps_memory_nearly_encrypted() {
    let n = 400_000;
    // Window sized against the run length, as the Fig. 8 harness does.
    let stats = run(&BenchProfile::gcc(), EncryptionEngine::spe_serial(2_000), n);
    let f = stats.mean_encrypted_fraction();
    assert!(f > 0.9, "SPE-serial fraction {f} (paper: 99.4%)");
}

#[test]
fn power_down_sweep_matches_dirty_l2_state() {
    let mut system = System::new(SystemConfig::paper(), EncryptionEngine::spe_parallel());
    system.run(TraceGenerator::new(&BenchProfile::gcc(), 5), 400_000);
    let report = power_down_sweep(system.l2(), &SchemeProfile::spe_parallel());
    assert_eq!(report.lines, system.l2().dirty_lines().len());
    assert!(report.beats_dram());
    // And the worst case (whole cache dirty) still beats DRAM by far.
    let worst = worst_case_window(2 * 1024 * 1024, &SchemeProfile::spe_parallel());
    assert!(worst.window_seconds < 0.32, "two orders below DRAM's 3.2 s");
}

#[test]
fn recorded_trace_replays_to_identical_stats() {
    use snvmm::workloads::trace;
    let accesses: Vec<_> = TraceGenerator::new(&BenchProfile::gobmk(), 13)
        .take(30_000)
        .collect();
    let mut buf = Vec::new();
    trace::write(&mut buf, &accesses).expect("record");
    let replayed = trace::read(&mut buf.as_slice()).expect("replay");

    let mut live_sys = System::new(SystemConfig::paper(), EncryptionEngine::aes());
    let live = live_sys.run(accesses, u64::MAX);
    let mut replay_sys = System::new(SystemConfig::paper(), EncryptionEngine::aes());
    let replay = replay_sys.run(replayed, u64::MAX);
    assert_eq!(live, replay, "replayed traces must be bit-identical inputs");
}

#[test]
fn identical_seeds_reproduce_runs_exactly() {
    let a = run(&BenchProfile::astar(), EncryptionEngine::aes(), 150_000);
    let b = run(&BenchProfile::astar(), EncryptionEngine::aes(), 150_000);
    assert_eq!(a, b);
}
