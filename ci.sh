#!/usr/bin/env bash
# Repository CI gate: formatting, lints, the tier-1 suite and a smoke run
# of the paper reproduction. Entirely offline — the workspace has no
# external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo clippy -D clippy::unwrap_used (fault-hardened library crates)"
cargo clippy -p spe-memristor -p spe-crossbar --lib --offline -- -D warnings -D clippy::unwrap_used

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release --offline
cargo test -q --workspace --offline

echo "== reproduce_all smoke"
cargo run --release --offline -p spe-bench --bin reproduce_all

echo "== fault campaign smoke"
cargo run --release --offline -p spe-bench --bin fault_campaign -- --lines 4

echo "CI gate passed."
