#!/usr/bin/env bash
# Repository CI gate: formatting, lints, the tier-1 suite and a smoke run
# of the paper reproduction. Entirely offline — the workspace has no
# external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings -D deprecated"
# -D deprecated stays armed so no constructor zoo regrows: the unified
# SpecuBuilder API is the only construction surface (the deprecated
# wrappers it replaced are deleted).
cargo clippy --workspace --all-targets --offline -- -D warnings -D deprecated

echo "== cargo clippy -D clippy::unwrap_used (fault-hardened library crates)"
cargo clippy -p spe-linalg -p spe-memristor -p spe-crossbar -p spe-ilp -p spe-telemetry \
  -p spe-core --lib --offline \
  -- -D warnings -D clippy::unwrap_used

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release --offline
cargo test -q --workspace --offline

echo "== solver equivalence smoke (sparse factorization vs dense oracle)"
cargo test -q --offline --test solver_equivalence

echo "== power-trace side-channel smoke"
# power_bench gates the power model: CPA against the supply-rail trace
# recovers >= 50% of keyed first-round PoE slots on the default schedule
# (chance is 1/16), collapses >= 10x under PowerBalanced scheduling, and
# the balanced/unbalanced ciphertexts stay bit-identical; it emits
# BENCH_power.json with fJ/line accounting and the balancing overhead.
# Runs before reproduce_all, which re-checks the JSON's schema.
timeout 300 cargo run --release --offline -p spe-bench --bin power_bench
if ! grep -q '"gate_cpa_success_pass": true' BENCH_power.json; then
  echo "FAIL: BENCH_power.json unbalanced-CPA success gate did not pass" >&2
  exit 1
fi
if ! grep -q '"gate_attack_collapse_pass": true' BENCH_power.json; then
  echo "FAIL: BENCH_power.json attack-collapse gate (>= 10x) did not pass" >&2
  exit 1
fi
if ! grep -q '"gate_ciphertext_equality_pass": true' BENCH_power.json; then
  echo "FAIL: BENCH_power.json ciphertext-equality gate did not pass" >&2
  exit 1
fi

echo "== reproduce_all smoke"
cargo run --release --offline -p spe-bench --bin reproduce_all

echo "== fault campaign + telemetry smoke"
campaign_out=$(cargo run --release --offline -p spe-bench --bin fault_campaign -- --lines 4)
echo "$campaign_out"
# The snapshot omits zero counters, so plain presence means the datapath
# really recorded pulses and recovery retries.
for counter in poe_pulses retries; do
  if ! grep -q "$counter: " <<<"$campaign_out"; then
    echo "FAIL: fault_campaign snapshot is missing a nonzero '$counter' counter" >&2
    exit 1
  fi
done

echo "== line-datapath schedule-cache smoke"
# line_bench asserts cached >= 5x uncached lines/sec and byte-identical
# cached/uncached ciphertexts, and emits BENCH_line.json (with the
# banked_over_serial ratio; < 1.0 warns on stderr).
cargo run --release --offline -p spe-bench --bin line_bench

echo "== bank-scheduler pipeline smoke"
# pipeline_bench asserts the persistent scheduler pipeline beats the
# legacy per-batch fork-join unconditionally, gates banked > serial on
# the cached working set whenever the host has >= 2 cores, and emits
# BENCH_pipeline.json with the requests-in-flight saturation sweep.
cargo run --release --offline -p spe-bench --bin pipeline_bench

echo "== chaos / self-healing pipeline smoke"
# chaos_bench injects deterministic worker panics and stalls, asserts
# every ciphertext still matches the serial oracle, gates the
# all-banks-quarantined degraded floor above zero throughput, and emits
# BENCH_chaos.json (throughput + p99 latency vs fault rate). The hard
# timeout turns a wedged pipeline — the exact failure mode this
# subsystem exists to prevent — into a loud CI failure instead of a hang.
timeout 300 cargo run --release --offline -p spe-bench --bin chaos_bench -- --lines 96
if ! grep -q '"degraded_floor_lines_per_sec"' BENCH_chaos.json; then
  echo "FAIL: BENCH_chaos.json is missing the degraded-floor measurement" >&2
  exit 1
fi

echo "== multi-tenant registry smoke"
# tenant_bench asserts >= 1000 context instantiations/s from one shared
# calibration, a warm schedule-cache hit rate >= 70% at Zipf s=0.9 with
# default registry shards, and zero stale-schedule serves across 96 key
# rotations under concurrent tenant-tagged traffic; it emits
# BENCH_tenant.json with the hit-rate x skew x shard-count sweep.
timeout 300 cargo run --release --offline -p spe-bench --bin tenant_bench
if ! grep -q '"gate_warm_hit_rate_s09_pass": true' BENCH_tenant.json; then
  echo "FAIL: BENCH_tenant.json warm hit-rate gate (s=0.9) did not pass" >&2
  exit 1
fi
if ! grep -q '"gate_rotation_correctness_pass": true' BENCH_tenant.json; then
  echo "FAIL: BENCH_tenant.json rotation-under-load gate did not pass" >&2
  exit 1
fi

echo "== address-scrambling datapath smoke"
# scramble_bench gates the Secure Memory Unit datapath: warm-line latency
# through scrambled bank routing <= 1.3x the unscrambled pipeline, both
# placement attacks (bus-snooping correlation, targeted-cell) collapsing
# >= 10x under the keyed scrambler, and bit-identical ciphertext with
# routing on/off; it emits BENCH_scramble.json with the start-gap
# composition microbench.
timeout 300 cargo run --release --offline -p spe-bench --bin scramble_bench
if ! grep -q '"gate_latency_ratio_pass": true' BENCH_scramble.json; then
  echo "FAIL: BENCH_scramble.json warm-line latency gate (<= 1.3x) did not pass" >&2
  exit 1
fi
if ! grep -q '"gate_attack_collapse_pass": true' BENCH_scramble.json; then
  echo "FAIL: BENCH_scramble.json attack-collapse gate (>= 10x) did not pass" >&2
  exit 1
fi
if ! grep -q '"gate_ciphertext_equality_pass": true' BENCH_scramble.json; then
  echo "FAIL: BENCH_scramble.json ciphertext-equality gate did not pass" >&2
  exit 1
fi

echo "CI gate passed."
