//! The NVMM "instant-on" lifecycle: write, power down (key vanishes, data
//! persists encrypted), power up through the TPM, resume.
//!
//! Run with: `cargo run --example instant_on_lifecycle`

use snvmm::core::analysis::cold_boot_window;
use snvmm::core::{Key, SecureNvmm, SpeMode, Specu, Tpm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const NVMM_ID: u64 = 0xFEED_BEEF;
    let key = Key::from_seed(42);
    let tpm = Tpm::provision(key, NVMM_ID);

    let specu = Specu::builder().key(key).build()?;
    let mut memory = SecureNvmm::new(NVMM_ID, specu, SpeMode::Serial);

    // A working session: write some lines, read one back (SPE-serial leaves
    // it decrypted in place — the small exposure window of Fig. 8).
    let page: [u8; 64] = core::array::from_fn(|i| i as u8);
    for line in 0..8u64 {
        memory.write_line(line * 64, &page)?;
    }
    memory.read_line(0)?;
    memory.read_line(64)?;
    println!(
        "during operation: {} lines resident, {:.1}% encrypted ({} exposed)",
        8,
        memory.fraction_encrypted() * 100.0,
        memory.exposed_lines()
    );

    // Power down: exposed lines are swept (the §6.4 cold-boot window), the
    // volatile key register clears.
    let swept = memory.power_down()?;
    let window = cold_boot_window(swept as u64 * 64, 16, 100.0);
    println!(
        "power down: swept {swept} exposed lines in {:.2} µs; key erased",
        window.window_seconds * 1e6
    );
    assert!(memory.read_line(0).is_err(), "no key, no reads");
    println!("at rest: 100% encrypted; a cold-boot probe sees ciphertext only");

    // Power up: the TPM authenticates this NVMM and releases the key —
    // instant-on, no bulk re-encryption needed.
    memory.power_up(&tpm)?;
    let restored = memory.read_line(0)?;
    assert_eq!(restored, page);
    println!("power up: TPM released the key; line 0 reads back intact");

    // The same TPM refuses a foreign NVMM.
    let mut stolen = SecureNvmm::new(0xBAD, Specu::builder().key(key).build()?, SpeMode::Serial);
    stolen.power_down()?;
    assert!(stolen.power_up(&tpm).is_err());
    println!("foreign NVMM: TPM authentication refused");
    Ok(())
}
