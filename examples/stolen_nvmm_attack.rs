//! Attack 1 of the threat model: the attacker steals the NVMM and probes it.
//!
//! Run with: `cargo run --release --example stolen_nvmm_attack`

use snvmm::core::analysis::brute_force_full;
use snvmm::core::attack::brute_force_reduced;
use snvmm::core::{Key, SecureNvmm, SpeMode, Specu};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let key = Key::from_seed(0xC0FFEE);
    let mut memory = SecureNvmm::new(1, Specu::builder().key(key).build()?, SpeMode::Parallel);

    let secret = *b"password=hunter2 and 42 filler bytes to fill one line..!";
    let mut line = [0u8; 64];
    line[..secret.len()].copy_from_slice(&secret);
    memory.write_line(0x1000, &line)?;

    // The attacker powers the stolen module and reads every cell.
    let probed = memory.probe();
    let (addr, bytes) = &probed[0];
    println!("probe of stolen NVMM @ {addr:#x}:");
    println!("  {:02x?}", &bytes[..16]);
    assert!(
        !bytes.windows(8).any(|w| w == b"password"),
        "plaintext must not appear in the probe"
    );
    println!("  (no plaintext fragments — SPE-parallel keeps 100% encrypted)");

    // Brute force is the only option; the full keyspace is astronomical.
    let report = brute_force_full(64, 16, 32, 100e-9);
    println!(
        "\nfull brute force: ~10^{:.0} candidate keys, ~10^{:.0} years at 100 ns/PoE",
        report.keyspace.log10(),
        report.log10_years
    );

    // On a reduced toy instance, the exhaustive search *does* work — which
    // is exactly why the real parameters matter.
    let toy = Specu::builder().key(Key::from_seed(7)).build()?;
    let run = brute_force_reduced(&toy, b"toy  target  blk", 2, 4)?;
    println!(
        "reduced instance (2 PoEs, 4 pulses): searched {} of {} schedules to recover",
        run.attempts, run.space
    );
    println!(
        "scaling that to 16 PoEs and 32 pulses is the 10^{:.0}-year figure above.",
        report.log10_years
    );
    Ok(())
}
