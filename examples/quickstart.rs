//! Quickstart: encrypt and decrypt a cache block with sneak-path encryption.
//!
//! Run with: `cargo run --example quickstart`

use snvmm::core::{CipherRequest, Key, SpeCipher, Specu};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The 88-bit key would normally come from the TPM at power-on.
    let key = Key::from_seed(0xDAC_2014);
    let specu = Specu::builder().key(key).build()?;

    let plaintext = *b"my secret laptop";
    println!("plaintext : {:02x?}", plaintext);

    // Encryption happens in place on the crossbar: a keyed sequence of
    // sneak-path pulse trains at 16 points of encryption.
    let block = specu
        .encrypt(CipherRequest::block(plaintext))?
        .into_block()?;
    println!("ciphertext: {:02x?}", block.data());
    println!(
        "(what a probe of the stolen NVMM reads — {} of 128 bits differ)",
        plaintext
            .iter()
            .zip(block.data())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum::<u32>()
    );

    // Decryption replays the schedule in reverse on the same array.
    let recovered = specu
        .decrypt(CipherRequest::sealed_block(block.clone()))?
        .into_plain_block()?;
    assert_eq!(recovered, plaintext);
    println!("decrypted : {:02x?} (matches)", recovered);

    // A different key fails.
    let wrong = Specu::builder().key(Key::from_seed(999)).build()?;
    let garbage = wrong
        .decrypt(CipherRequest::sealed_block(block))?
        .into_plain_block()?;
    assert_ne!(garbage, plaintext);
    println!("wrong key : {:02x?} (garbage, as it should be)", garbage);
    Ok(())
}
