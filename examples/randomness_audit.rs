//! Audit SPE's ciphertext randomness with the NIST suite (a miniature
//! Table 2).
//!
//! Run with: `cargo run --release --example randomness_audit`

use snvmm::core::datasets::Dataset;
use snvmm::core::{Key, Specu};
use snvmm::nist::{Bits, Suite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let specu = Specu::builder().key(Key::from_seed(0xA0D17)).build()?;
    let suite = Suite::new();
    let bits_per_sequence = 1 << 14;

    println!("randomness audit — 4 sequences per dataset, {bits_per_sequence} bits each\n");
    for dataset in [
        Dataset::KeyAvalanche,
        Dataset::PlaintextAvalanche,
        Dataset::RandomPtKey,
        Dataset::LowDensityPt,
    ] {
        let sequences: Vec<Bits> = (0..4)
            .map(|s| {
                let bytes = dataset
                    .build(&specu, bits_per_sequence, 100 + s)
                    .expect("dataset build");
                Bits::from_bytes(&bytes).slice(0, bits_per_sequence)
            })
            .collect();
        let tally = suite.tally(sequences.iter());
        let failed: usize = tally.failed.iter().sum();
        println!(
            "{:<16} worst-test failures: {} (total failed checks {failed})",
            dataset.name(),
            tally.failed.iter().max().unwrap()
        );
    }
    println!("\nfull Table 2: cargo run --release -p spe-bench --bin table2_nist");
    Ok(())
}
