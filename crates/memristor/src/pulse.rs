//! Voltage pulses and hysteresis-aware pulse-width search.

use crate::error::DeviceError;
use crate::params::DeviceParams;
use crate::team::Memristor;
use std::fmt;

/// A rectangular voltage pulse.
///
/// SPE's pulse generator produces 32 distinct pulses: 16 widths at each of
/// `+1 V` and `−1 V` (paper §5.4). The width table lives in the SPECU's LUT;
/// this type is just the physical descriptor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pulse {
    /// Pulse amplitude, in volts (sign selects switching direction).
    pub voltage: f64,
    /// Pulse width, in seconds.
    pub width: f64,
}

impl Pulse {
    /// Creates a pulse descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidPulse`] if `width` is negative or
    /// either field is non-finite.
    pub fn new(voltage: f64, width: f64) -> Result<Self, DeviceError> {
        if !voltage.is_finite() || !width.is_finite() || width < 0.0 {
            return Err(DeviceError::InvalidPulse { voltage, width });
        }
        Ok(Pulse { voltage, width })
    }

    /// Applies this pulse to a device and returns the resulting resistance.
    pub fn apply(&self, cell: &mut Memristor) -> f64 {
        cell.apply_pulse(self.voltage, self.width)
    }
}

impl fmt::Display for Pulse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.2} V / {:.3} µs", self.voltage, self.width * 1.0e6)
    }
}

/// Searches for the pulse width that moves a device between two resistances.
///
/// Because the TEAM kinetics are hysteretic, the width that encrypts a cell
/// is *not* the width that decrypts it (paper Fig. 5); the SPECU therefore
/// derives decryption widths with exactly this kind of search against the
/// device model.
#[derive(Debug, Clone)]
pub struct PulseWidthSearch {
    params: DeviceParams,
    /// Resolution of the search, in seconds.
    pub resolution: f64,
    /// Upper bound on candidate widths, in seconds.
    pub max_width: f64,
}

impl PulseWidthSearch {
    /// Creates a search over the given device parameters with 1 ns
    /// resolution and a 2 µs width cap.
    pub fn new(params: &DeviceParams) -> Self {
        PulseWidthSearch {
            params: params.clone(),
            resolution: 1.0e-9,
            max_width: 2.0e-6,
        }
    }

    /// Finds the shortest pulse width at `voltage` that moves a device from
    /// resistance `from` to (at least) resistance `to`.
    ///
    /// "At least" is directional: for a positive pulse the search stops when
    /// the resistance reaches or exceeds `to`; for a negative pulse when it
    /// falls to or below `to`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::PulseSearchFailed`] when `voltage` cannot move
    /// the state toward `to` (wrong sign, sub-threshold, or cap exceeded),
    /// and [`DeviceError::ResistanceOutOfRange`] when `from` is outside the
    /// device range.
    ///
    /// # Example
    ///
    /// ```
    /// use spe_memristor::{DeviceParams, PulseWidthSearch};
    /// # fn main() -> Result<(), spe_memristor::DeviceError> {
    /// let p = DeviceParams::default();
    /// let search = PulseWidthSearch::new(&p);
    /// let encrypt = search.width_for(60.0e3, 172.0e3, 1.0)?;
    /// let decrypt = search.width_for(172.0e3, 60.0e3, -1.0)?;
    /// assert!(decrypt < encrypt, "hysteresis: decryption is faster");
    /// # Ok(())
    /// # }
    /// ```
    pub fn width_for(&self, from: f64, to: f64, voltage: f64) -> Result<f64, DeviceError> {
        let going_up = to > from;
        if (going_up && voltage <= 0.0) || (!going_up && voltage >= 0.0) {
            return Err(DeviceError::PulseSearchFailed { from, to, voltage });
        }
        let mut cell = Memristor::with_resistance(&self.params, from)?;
        let mut width = 0.0;
        while width < self.max_width {
            let r = cell.resistance();
            if (going_up && r >= to) || (!going_up && r <= to) {
                return Ok(width);
            }
            let before = cell.state();
            cell.step(voltage, self.resolution);
            width += self.resolution;
            if cell.state() == before {
                // No motion: sub-threshold or railed; the target is
                // unreachable at this voltage.
                return Err(DeviceError::PulseSearchFailed { from, to, voltage });
            }
        }
        Err(DeviceError::PulseSearchFailed { from, to, voltage })
    }

    /// Convenience: the `(encrypt, decrypt)` pulse pair reproducing the
    /// paper's Fig. 5 for arbitrary level resistances.
    ///
    /// # Errors
    ///
    /// Propagates [`DeviceError`] from [`width_for`](Self::width_for).
    pub fn hysteresis_pair(
        &self,
        plain_r: f64,
        cipher_r: f64,
        amplitude: f64,
    ) -> Result<(Pulse, Pulse), DeviceError> {
        let (up_v, down_v) = if cipher_r > plain_r {
            (amplitude, -amplitude)
        } else {
            (-amplitude, amplitude)
        };
        let w_enc = self.width_for(plain_r, cipher_r, up_v)?;
        let w_dec = self.width_for(cipher_r, plain_r, down_v)?;
        Ok((Pulse::new(up_v, w_enc)?, Pulse::new(down_v, w_dec)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_widths_have_expected_magnitudes() {
        // Paper Fig. 5: encrypt 60 kΩ → 172 kΩ at +1 V takes ≈ 0.07 µs; the
        // reverse at −1 V takes ≈ 0.015 µs. Our device constants are tuned to
        // land in those neighbourhoods (order-of-magnitude check here; the
        // fig5 harness prints the exact values).
        let p = DeviceParams::default();
        let s = PulseWidthSearch::new(&p);
        let enc = s.width_for(60.0e3, 172.0e3, 1.0).expect("encrypt width");
        let dec = s.width_for(172.0e3, 60.0e3, -1.0).expect("decrypt width");
        assert!(
            (0.02e-6..0.3e-6).contains(&enc),
            "encrypt width {enc} out of expected band"
        );
        assert!(
            (0.002e-6..0.1e-6).contains(&dec),
            "decrypt width {dec} out of expected band"
        );
        assert!(dec < enc);
    }

    #[test]
    fn wrong_sign_is_rejected() {
        let p = DeviceParams::default();
        let s = PulseWidthSearch::new(&p);
        assert!(s.width_for(60.0e3, 172.0e3, -1.0).is_err());
        assert!(s.width_for(172.0e3, 60.0e3, 1.0).is_err());
    }

    #[test]
    fn subthreshold_voltage_fails_cleanly() {
        let p = DeviceParams::default();
        let s = PulseWidthSearch::new(&p);
        assert!(matches!(
            s.width_for(60.0e3, 172.0e3, 0.5),
            Err(DeviceError::PulseSearchFailed { .. })
        ));
    }

    #[test]
    fn hysteresis_pair_orients_pulses() {
        let p = DeviceParams::default();
        let s = PulseWidthSearch::new(&p);
        let (enc, dec) = s.hysteresis_pair(60.0e3, 172.0e3, 1.0).expect("pair");
        assert!(enc.voltage > 0.0 && dec.voltage < 0.0);
        let (enc2, dec2) = s.hysteresis_pair(172.0e3, 60.0e3, 1.0).expect("pair");
        assert!(enc2.voltage < 0.0 && dec2.voltage > 0.0);
        assert!(enc.width > 0.0 && dec.width > 0.0 && enc2.width > 0.0 && dec2.width > 0.0);
    }

    #[test]
    fn pulse_display_formats_microseconds() {
        let pulse = Pulse::new(1.0, 0.071e-6).expect("valid pulse");
        let s = pulse.to_string();
        assert!(s.contains("+1.00 V"));
        assert!(s.contains("0.071"));
    }

    #[test]
    fn pulse_rejects_unphysical_descriptors() {
        for (v, w) in [
            (1.0, -1.0e-9),
            (f64::NAN, 1.0e-9),
            (1.0, f64::INFINITY),
            (f64::INFINITY, 1.0e-9),
        ] {
            assert!(matches!(
                Pulse::new(v, w),
                Err(DeviceError::InvalidPulse { .. })
            ));
        }
    }

    // Found width actually achieves the target when applied (grid sweep
    // over the from/to state space, replacing random cases).
    #[test]
    fn width_is_sufficient() {
        let p = DeviceParams::default();
        for i in 0..8 {
            for j in 0..8 {
                let from_f = 0.15 + 0.35 * i as f64 / 8.0;
                let to_f = 0.55 + 0.35 * j as f64 / 8.0;
                let from = p.resistance_at(from_f);
                let to = p.resistance_at(to_f);
                let s = PulseWidthSearch::new(&p);
                if let Ok(w) = s.width_for(from, to, 1.0) {
                    let mut cell = Memristor::with_resistance(&p, from).unwrap();
                    cell.apply_pulse(1.0, w);
                    assert!(cell.resistance() >= to - 1.0, "from {from_f} to {to_f}");
                }
            }
        }
    }
}
