//! Physical parameters of the TEAM memristor device.

use crate::error::DeviceError;
use crate::variation::Variation;

/// Physical parameters of a TEAM memristor.
///
/// The normalized internal state `x ∈ [0, 1]` maps linearly onto the device
/// resistance: `R(x) = r_on + x · (r_off − r_on)`. State motion is governed
/// by the TEAM kinetics (see [`crate::team::Memristor::step`]): current above
/// `i_off` drives `x` (and therefore resistance) *up* at rate `k_off`, while
/// current below `i_on` (negative) drives `x` *down* at rate `k_on`.
///
/// Defaults are chosen so that the paper's Fig. 5 behaviour is reproduced:
/// starting from logic `10` (60 kΩ), a `+1 V` pulse of ≈ 0.07 µs lands on
/// logic `00` (≈ 172 kΩ), and undoing that transition with `−1 V` needs a
/// much shorter (≈ 0.015 µs) pulse because the switch-on kinetics are faster
/// (the hysteresis SPE decryption exploits).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceParams {
    /// Minimum device resistance (fully ON), in ohms.
    pub r_on: f64,
    /// Maximum device resistance (fully OFF), in ohms.
    pub r_off: f64,
    /// OFF-switching rate constant (state increase), in 1/s.
    pub k_off: f64,
    /// ON-switching rate constant magnitude (state decrease), in 1/s.
    pub k_on: f64,
    /// Positive current threshold for OFF switching, in amperes.
    pub i_off: f64,
    /// Negative-direction current threshold magnitude for ON switching, in amperes.
    pub i_on: f64,
    /// OFF-switching nonlinearity exponent (dimensionless).
    pub alpha_off: f64,
    /// ON-switching nonlinearity exponent (dimensionless).
    pub alpha_on: f64,
    /// Window-function exponent keeping the state inside `[0, 1]`.
    pub window_p: u32,
    /// Series access-transistor ON resistance, in ohms.
    pub r_transistor: f64,
    /// Minimum voltage magnitude across the cell for any state change, in
    /// volts. Models the series transistor threshold the paper uses to bound
    /// the polyomino (Fig. 4: cells below `Vt` are unaffected). The default
    /// is scaled to the voltage the coupled sneak-path periphery actually
    /// delivers at the PoE (≈ 0.86 V of the 1 V drive).
    pub v_threshold: f64,
    /// Integration timestep used by pulse application, in seconds.
    pub dt: f64,
}

impl Default for DeviceParams {
    fn default() -> Self {
        DeviceParams {
            r_on: 10.0e3,
            r_off: 200.0e3,
            k_off: 9.0e5,
            k_on: 4.0e6,
            i_off: 1.0e-6,
            i_on: 1.0e-6,
            alpha_off: 1.0,
            alpha_on: 1.0,
            window_p: 5,
            r_transistor: 500.0,
            v_threshold: 0.55,
            dt: 1.0e-9,
        }
    }
}

impl DeviceParams {
    /// Creates the default parameter set (identical to [`Default`]).
    ///
    /// # Example
    ///
    /// ```
    /// let p = spe_memristor::DeviceParams::new();
    /// assert_eq!(p.r_on, 10.0e3);
    /// ```
    pub fn new() -> Self {
        Self::default()
    }

    /// Validates physical consistency of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] when a value is outside its
    /// physically meaningful range (non-positive resistance, inverted
    /// resistance bounds, non-positive rates/thresholds/timestep).
    pub fn validate(&self) -> Result<(), DeviceError> {
        fn positive(name: &'static str, value: f64) -> Result<(), DeviceError> {
            if value > 0.0 && value.is_finite() {
                Ok(())
            } else {
                Err(DeviceError::InvalidParameter {
                    name,
                    value,
                    constraint: "must be positive and finite",
                })
            }
        }
        positive("r_on", self.r_on)?;
        positive("r_off", self.r_off)?;
        positive("k_off", self.k_off)?;
        positive("k_on", self.k_on)?;
        positive("i_off", self.i_off)?;
        positive("i_on", self.i_on)?;
        positive("alpha_off", self.alpha_off)?;
        positive("alpha_on", self.alpha_on)?;
        positive("r_transistor", self.r_transistor)?;
        positive("v_threshold", self.v_threshold)?;
        positive("dt", self.dt)?;
        if self.r_off <= self.r_on {
            return Err(DeviceError::InvalidParameter {
                name: "r_off",
                value: self.r_off,
                constraint: "must exceed r_on",
            });
        }
        if self.window_p == 0 {
            return Err(DeviceError::InvalidParameter {
                name: "window_p",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        Ok(())
    }

    /// Resistance corresponding to a normalized state `x ∈ [0, 1]`, in ohms.
    ///
    /// # Example
    ///
    /// ```
    /// let p = spe_memristor::DeviceParams::default();
    /// assert_eq!(p.resistance_at(0.0), p.r_on);
    /// assert_eq!(p.resistance_at(1.0), p.r_off);
    /// ```
    pub fn resistance_at(&self, x: f64) -> f64 {
        self.r_on + x.clamp(0.0, 1.0) * (self.r_off - self.r_on)
    }

    /// Normalized state corresponding to a resistance, in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ResistanceOutOfRange`] when `resistance` lies
    /// outside `[r_on, r_off]`.
    pub fn state_for_resistance(&self, resistance: f64) -> Result<f64, DeviceError> {
        if resistance < self.r_on || resistance > self.r_off || !resistance.is_finite() {
            return Err(DeviceError::ResistanceOutOfRange {
                resistance,
                r_on: self.r_on,
                r_off: self.r_off,
            });
        }
        Ok((resistance - self.r_on) / (self.r_off - self.r_on))
    }

    /// Returns a copy of the parameters with a [`Variation`] applied.
    ///
    /// Used by the Monte-Carlo polyomino-stability study and the paper's
    /// *hardware avalanche* dataset, which perturb physical parameters by a
    /// given relative amount.
    pub fn with_variation(&self, variation: &Variation) -> Self {
        variation.apply(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        DeviceParams::default().validate().expect("default params");
    }

    #[test]
    fn resistance_state_roundtrip() {
        let p = DeviceParams::default();
        for r in [10.0e3, 60.0e3, 110.0e3, 172.0e3, 200.0e3] {
            let x = p.state_for_resistance(r).expect("in range");
            assert!((p.resistance_at(x) - r).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_out_of_range_resistance() {
        let p = DeviceParams::default();
        assert!(p.state_for_resistance(1.0).is_err());
        assert!(p.state_for_resistance(1.0e9).is_err());
        assert!(p.state_for_resistance(f64::NAN).is_err());
    }

    #[test]
    fn rejects_inverted_bounds() {
        let p = DeviceParams {
            r_on: 100.0e3,
            r_off: 10.0e3,
            ..DeviceParams::default()
        };
        assert!(matches!(
            p.validate(),
            Err(DeviceError::InvalidParameter { name: "r_off", .. })
        ));
    }

    #[test]
    fn rejects_nonpositive_rate() {
        let p = DeviceParams {
            k_off: 0.0,
            ..DeviceParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn resistance_clamps_state() {
        let p = DeviceParams::default();
        assert_eq!(p.resistance_at(-1.0), p.r_on);
        assert_eq!(p.resistance_at(2.0), p.r_off);
    }
}
