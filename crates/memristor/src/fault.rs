//! Deterministic device-fault model: stuck-at cells, transient write
//! skips, parametric drift and endurance wear-out.
//!
//! Memristive NVMM fails in ways DRAM does not: cells stick at a rail
//! (forming/oxide breakdown), program pulses occasionally fail to move the
//! state (transient write skip), resistance drifts between refreshes, and
//! cells wear out after a finite switching budget (tracked by
//! [`EnduranceMeter`]). SPE deliberately perturbs analog state through
//! sneak paths, so the datapath must survive all of these rather than
//! silently corrupt plaintext.
//!
//! Every draw in this module is a **pure function** of the model seed and
//! the caller-supplied coordinates (cell id, epoch, retry attempt). There
//! is no mutable RNG state, so any two evaluations — on any thread, in any
//! order — agree. That is what lets the serial and multi-bank SPECU
//! backends report identical fault statistics for the same seed.

use crate::endurance::EnduranceMeter;

/// Domain separators for the per-purpose hash streams.
const DOMAIN_STUCK: u64 = 0x5354_5543_4B00_0001;
const DOMAIN_SKIP: u64 = 0x534B_4950_0000_0002;
const DOMAIN_DRIFT: u64 = 0x4452_4946_5400_0003;

/// The failure modes a memristor cell can exhibit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Permanently stuck in the low-resistance state (`x = 0`, reads as
    /// the lowest-resistance level).
    StuckAtLrs,
    /// Permanently stuck in the high-resistance state (`x = 1`).
    StuckAtHrs,
    /// A transient programming failure: one write pulse left the state
    /// unchanged. Recoverable by retrying with a longer pulse.
    WriteSkip,
    /// Parametric resistance drift between accesses.
    Drift,
    /// The cell exceeded its endurance rating and no longer switches
    /// (modelled as stuck at the high-resistance rail, the dominant TaOx
    /// end-of-life signature).
    WearOut,
}

impl FaultKind {
    /// The normalized state a *permanent* fault pins the cell to, or
    /// `None` for transient kinds.
    pub fn pinned_state(self) -> Option<f64> {
        match self {
            FaultKind::StuckAtLrs => Some(0.0),
            FaultKind::StuckAtHrs | FaultKind::WearOut => Some(1.0),
            FaultKind::WriteSkip | FaultKind::Drift => None,
        }
    }

    /// Whether the fault is permanent (retries cannot clear it).
    pub fn is_permanent(self) -> bool {
        self.pinned_state().is_some()
    }
}

/// A deterministic, seedable fault model attachable to any device or
/// array.
///
/// Rates are per-cell probabilities; `seed` decorrelates independent
/// experiments. The model is pure data (`Copy`) so it can be embedded in
/// policies shared across SPECU banks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Probability a cell is permanently stuck at the LRS rail.
    pub stuck_lrs_rate: f64,
    /// Probability a cell is permanently stuck at the HRS rail.
    pub stuck_hrs_rate: f64,
    /// Per-pulse probability a program pulse fails to move the state.
    /// Halves on each retry (exponential pulse-width backoff: a doubled
    /// pulse width is twice as likely to land).
    pub write_skip_rate: f64,
    /// Standard deviation of the per-epoch normalized-state drift.
    pub drift_sigma: f64,
    /// Full-swing cycles after which a cell is worn out (use
    /// `f64::INFINITY` to disable; compare against an
    /// [`EnduranceMeter`]'s consumed budget).
    pub wear_out_cycles: f64,
    /// Seed decorrelating all draws of this model instance.
    pub seed: u64,
}

impl FaultModel {
    /// A model that never faults.
    pub fn none() -> Self {
        FaultModel {
            stuck_lrs_rate: 0.0,
            stuck_hrs_rate: 0.0,
            write_skip_rate: 0.0,
            drift_sigma: 0.0,
            wear_out_cycles: f64::INFINITY,
            seed: 0,
        }
    }

    /// Transient-only model: write skips at `rate`, no permanent faults.
    pub fn transient(rate: f64, seed: u64) -> Self {
        FaultModel {
            write_skip_rate: rate,
            seed,
            ..FaultModel::none()
        }
    }

    /// Permanent-stuck-only model: `rate` split evenly between the rails.
    pub fn stuck(rate: f64, seed: u64) -> Self {
        FaultModel {
            stuck_lrs_rate: rate / 2.0,
            stuck_hrs_rate: rate / 2.0,
            seed,
            ..FaultModel::none()
        }
    }

    /// Whether the model can never produce a fault.
    pub fn is_none(&self) -> bool {
        self.stuck_lrs_rate <= 0.0
            && self.stuck_hrs_rate <= 0.0
            && self.write_skip_rate <= 0.0
            && self.drift_sigma <= 0.0
            && self.wear_out_cycles.is_infinite()
    }

    /// The permanent fault (if any) of the physical cell `cell`.
    ///
    /// Deterministic in `(seed, cell)`: remapping a logical cell to a new
    /// physical location re-draws its fault independently.
    pub fn permanent_fault(&self, cell: u64) -> Option<FaultKind> {
        let p = self.stuck_lrs_rate + self.stuck_hrs_rate;
        if p <= 0.0 {
            return None;
        }
        let u = unit(mix3(self.seed, DOMAIN_STUCK, cell));
        if u < self.stuck_lrs_rate {
            Some(FaultKind::StuckAtLrs)
        } else if u < p {
            Some(FaultKind::StuckAtHrs)
        } else {
            None
        }
    }

    /// Whether the program pulse at retry `attempt` (0 = first try) on
    /// physical cell `cell` during `epoch` skips (fails to move the
    /// state). The skip probability halves per attempt, modelling the
    /// write-verify controller doubling the pulse width on each retry.
    pub fn write_skipped(&self, cell: u64, epoch: u64, attempt: u32) -> bool {
        if self.write_skip_rate <= 0.0 {
            return false;
        }
        let p = self.write_skip_rate / f64::powi(2.0, attempt.min(52) as i32);
        unit(mix5(self.seed, DOMAIN_SKIP, cell, epoch, attempt as u64)) < p
    }

    /// Normalized-state drift of `cell` during `epoch` (zero-mean,
    /// approximately Gaussian with `drift_sigma`).
    pub fn drift_offset(&self, cell: u64, epoch: u64) -> f64 {
        if self.drift_sigma <= 0.0 {
            return 0.0;
        }
        // Irwin–Hall sum of four uniforms: variance 4/12, so scale by
        // sigma / sqrt(1/3) for a unit-sigma approximate normal.
        let mut sum = 0.0;
        for k in 0..4u64 {
            sum += unit(mix5(self.seed, DOMAIN_DRIFT, cell, epoch, k));
        }
        (sum - 2.0) * self.drift_sigma / (1.0f64 / 3.0).sqrt()
    }

    /// Whether a cell with the given endurance history is worn out under
    /// this model (its consumed budget exceeds `wear_out_cycles`, or the
    /// meter's own rating is exhausted).
    pub fn worn_out(&self, meter: &EnduranceMeter) -> bool {
        meter.exhausted() || meter.consumed() >= self.wear_out_cycles
    }
}

/// SplitMix64 finalizer: the avalanche stage used throughout the repo's
/// deterministic draws.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn mix3(a: u64, b: u64, c: u64) -> u64 {
    splitmix(splitmix(a ^ b).wrapping_add(c))
}

fn mix5(a: u64, b: u64, c: u64, d: u64, e: u64) -> u64 {
    splitmix(splitmix(mix3(a, b, c) ^ d).wrapping_add(e))
}

/// Maps a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_model_never_faults() {
        let m = FaultModel::none();
        assert!(m.is_none());
        for cell in 0..1000 {
            assert_eq!(m.permanent_fault(cell), None);
            assert!(!m.write_skipped(cell, 0, 0));
            assert_eq!(m.drift_offset(cell, 0), 0.0);
        }
    }

    #[test]
    fn draws_are_deterministic_and_seed_dependent() {
        let a = FaultModel::stuck(0.3, 7);
        let b = FaultModel::stuck(0.3, 7);
        let c = FaultModel::stuck(0.3, 8);
        let fa: Vec<_> = (0..500).map(|i| a.permanent_fault(i)).collect();
        let fb: Vec<_> = (0..500).map(|i| b.permanent_fault(i)).collect();
        let fc: Vec<_> = (0..500).map(|i| c.permanent_fault(i)).collect();
        assert_eq!(fa, fb, "same seed, same faults");
        assert_ne!(fa, fc, "different seed, different faults");
    }

    #[test]
    fn stuck_rate_is_respected() {
        let m = FaultModel::stuck(0.2, 42);
        let n = 20_000u64;
        let stuck = (0..n).filter(|i| m.permanent_fault(*i).is_some()).count();
        let ratio = stuck as f64 / n as f64;
        assert!((ratio - 0.2).abs() < 0.02, "stuck ratio {ratio}");
        // Both rails occur.
        assert!((0..n).any(|i| m.permanent_fault(i) == Some(FaultKind::StuckAtLrs)));
        assert!((0..n).any(|i| m.permanent_fault(i) == Some(FaultKind::StuckAtHrs)));
    }

    #[test]
    fn skip_probability_halves_per_attempt() {
        let m = FaultModel::transient(0.5, 3);
        let n = 20_000u64;
        let rate = |attempt: u32| {
            (0..n).filter(|c| m.write_skipped(*c, 1, attempt)).count() as f64 / n as f64
        };
        let r0 = rate(0);
        let r1 = rate(1);
        let r2 = rate(2);
        assert!((r0 - 0.5).abs() < 0.03, "attempt 0 rate {r0}");
        assert!((r1 - 0.25).abs() < 0.03, "attempt 1 rate {r1}");
        assert!((r2 - 0.125).abs() < 0.03, "attempt 2 rate {r2}");
    }

    #[test]
    fn drift_is_zero_mean_with_requested_sigma() {
        let m = FaultModel {
            drift_sigma: 0.05,
            ..FaultModel::none()
        };
        let n = 20_000u64;
        let draws: Vec<f64> = (0..n).map(|c| m.drift_offset(c, 9)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.002, "drift mean {mean}");
        assert!(
            (var.sqrt() - 0.05).abs() < 0.005,
            "drift sigma {}",
            var.sqrt()
        );
    }

    #[test]
    fn wear_out_tracks_endurance_meter() {
        let m = FaultModel {
            wear_out_cycles: 10.0,
            ..FaultModel::none()
        };
        let mut meter = EnduranceMeter::new(1.0e6);
        assert!(!m.worn_out(&meter));
        for _ in 0..10 {
            meter.record(1.0);
        }
        assert!(m.worn_out(&meter), "model threshold reached");
        // The meter's own rating also triggers wear-out.
        let strict = FaultModel::none();
        let mut spent = EnduranceMeter::new(2.0);
        spent.record(1.0);
        spent.record(1.0);
        assert!(strict.worn_out(&spent));
    }

    #[test]
    fn pinned_states_match_rails() {
        assert_eq!(FaultKind::StuckAtLrs.pinned_state(), Some(0.0));
        assert_eq!(FaultKind::StuckAtHrs.pinned_state(), Some(1.0));
        assert_eq!(FaultKind::WearOut.pinned_state(), Some(1.0));
        assert_eq!(FaultKind::WriteSkip.pinned_state(), None);
        assert!(FaultKind::StuckAtHrs.is_permanent());
        assert!(!FaultKind::Drift.is_permanent());
    }
}
