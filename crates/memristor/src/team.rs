//! The TEAM (ThrEshold Adaptive Memristor) device state machine.

use crate::error::DeviceError;
use crate::mlc::MlcLevel;
use crate::params::DeviceParams;

/// A single TEAM memristor with continuous internal state.
///
/// The device is voltage-driven: each [`step`](Memristor::step) computes the
/// current `i = v / R(x)` and integrates the TEAM kinetics
///
/// ```text
/// dx/dt = k_off · (i/i_off − 1)^α_off · f_off(x)   for i >  i_off
///       = −k_on · (−i/i_on − 1)^α_on · f_on(x)     for i < −i_on
///       = 0                                         otherwise,
/// ```
///
/// where `f_off(x) = 1 − x^(2p)` and `f_on(x) = 1 − (1 − x)^(2p)` are
/// Biolek-style windows that pin the state inside `[0, 1]`. Positive voltage
/// therefore raises resistance (toward logic `00`) and negative voltage
/// lowers it, with strongly asymmetric speeds — the hysteresis the paper's
/// Fig. 5 shows and SPE decryption depends on.
///
/// Cells additionally ignore voltages below
/// [`v_threshold`](DeviceParams::v_threshold) (series transistor threshold),
/// which is what bounds the polyomino in the crossbar.
#[derive(Debug, Clone, PartialEq)]
pub struct Memristor {
    params: DeviceParams,
    x: f64,
}

impl Memristor {
    /// Creates a device at a given normalized state `x ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn new(params: &DeviceParams, x: f64) -> Self {
        assert!(x.is_finite(), "memristor state must be finite");
        Memristor {
            params: params.clone(),
            x: x.clamp(0.0, 1.0),
        }
    }

    /// Creates a device programmed at the nominal resistance of an MLC level.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ResistanceOutOfRange`] when the level's
    /// nominal resistance falls outside the device range (possible for
    /// heavily varied or degenerate parameter sets).
    ///
    /// # Example
    ///
    /// ```
    /// use spe_memristor::{DeviceParams, Memristor, MlcLevel};
    /// # fn main() -> Result<(), spe_memristor::DeviceError> {
    /// let p = DeviceParams::default();
    /// let cell = Memristor::with_level(&p, MlcLevel::L00)?;
    /// assert_eq!(cell.level(), MlcLevel::L00);
    /// # Ok(())
    /// # }
    /// ```
    pub fn with_level(params: &DeviceParams, level: MlcLevel) -> Result<Self, DeviceError> {
        let r = level.nominal_resistance(params);
        let x = params.state_for_resistance(r)?;
        Ok(Memristor::new(params, x))
    }

    /// Creates a device at a given resistance.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ResistanceOutOfRange`] when `resistance` is
    /// outside `[r_on, r_off]`.
    pub fn with_resistance(params: &DeviceParams, resistance: f64) -> Result<Self, DeviceError> {
        let x = params.state_for_resistance(resistance)?;
        Ok(Memristor::new(params, x))
    }

    /// The device parameters.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Current normalized state `x ∈ [0, 1]`.
    pub fn state(&self) -> f64 {
        self.x
    }

    /// Sets the normalized state directly (clamped to `[0, 1]`).
    pub fn set_state(&mut self, x: f64) {
        assert!(x.is_finite(), "memristor state must be finite");
        self.x = x.clamp(0.0, 1.0);
    }

    /// Current device resistance, in ohms (memristor only, excluding the
    /// series transistor).
    pub fn resistance(&self) -> f64 {
        self.params.resistance_at(self.x)
    }

    /// Device conductance, in siemens.
    pub fn conductance(&self) -> f64 {
        1.0 / self.resistance()
    }

    /// Total series resistance seen by the crossbar when the access
    /// transistor conducts: memristor plus transistor ON resistance.
    pub fn series_resistance(&self) -> f64 {
        self.resistance() + self.params.r_transistor
    }

    /// The MLC level nearest to the current resistance.
    pub fn level(&self) -> MlcLevel {
        MlcLevel::quantize(self.resistance(), &self.params)
    }

    /// Advances the device state by one timestep `dt` under voltage `v`
    /// across the memristor + transistor series pair.
    ///
    /// Voltages with magnitude below `v_threshold` leave the state untouched
    /// (sub-threshold cells in a polyomino). Returns the state change `Δx`.
    pub fn step(&mut self, v: f64, dt: f64) -> f64 {
        if v.abs() < self.params.v_threshold {
            return 0.0;
        }
        let i = v / self.series_resistance();
        let dxdt = self.state_velocity(i);
        let dx = dxdt * dt;
        let old = self.x;
        self.x = (self.x + dx).clamp(0.0, 1.0);
        self.x - old
    }

    /// TEAM state velocity `dx/dt` for a given device current, in 1/s.
    pub fn state_velocity(&self, i: f64) -> f64 {
        let p = &self.params;
        if i > p.i_off {
            let drive = (i / p.i_off - 1.0).powf(p.alpha_off);
            p.k_off * drive * window_off(self.x, p.window_p)
        } else if i < -p.i_on {
            let drive = (-i / p.i_on - 1.0).powf(p.alpha_on);
            -p.k_on * drive * window_on(self.x, p.window_p)
        } else {
            0.0
        }
    }

    /// Applies a rectangular voltage pulse of the given width, integrating
    /// the state with the parameter timestep. Returns the resulting
    /// resistance in ohms.
    ///
    /// # Example
    ///
    /// ```
    /// use spe_memristor::{DeviceParams, Memristor, MlcLevel};
    /// # fn main() -> Result<(), spe_memristor::DeviceError> {
    /// let p = DeviceParams::default();
    /// let mut cell = Memristor::with_level(&p, MlcLevel::L10)?;
    /// let r = cell.apply_pulse(1.0, 0.07e-6);
    /// assert!(r > 60.0e3);
    /// # Ok(())
    /// # }
    /// ```
    pub fn apply_pulse(&mut self, voltage: f64, width: f64) -> f64 {
        let dt = self.params.dt;
        let steps = (width / dt).floor() as u64;
        for _ in 0..steps {
            self.step(voltage, dt);
        }
        let remainder = width - steps as f64 * dt;
        if remainder > 0.0 {
            self.step(voltage, remainder);
        }
        self.resistance()
    }
}

/// Window bounding OFF-switching (state increase): vanishes as `x → 1`.
fn window_off(x: f64, p: u32) -> f64 {
    1.0 - x.powi(2 * p as i32)
}

/// Window bounding ON-switching (state decrease): vanishes as `x → 0`.
fn window_on(x: f64, p: u32) -> f64 {
    1.0 - (1.0 - x).powi(2 * p as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DeviceParams {
        DeviceParams::default()
    }

    #[test]
    fn positive_pulse_raises_resistance() {
        let p = params();
        let mut m = Memristor::with_level(&p, MlcLevel::L10).expect("level");
        let r0 = m.resistance();
        m.apply_pulse(1.0, 0.05e-6);
        assert!(m.resistance() > r0);
    }

    #[test]
    fn negative_pulse_lowers_resistance() {
        let p = params();
        let mut m = Memristor::with_level(&p, MlcLevel::L00).expect("level");
        let r0 = m.resistance();
        m.apply_pulse(-1.0, 0.01e-6);
        assert!(m.resistance() < r0);
    }

    #[test]
    fn subthreshold_voltage_is_ignored() {
        let p = params();
        let mut m = Memristor::with_level(&p, MlcLevel::L01).expect("level");
        let r0 = m.resistance();
        m.apply_pulse(0.5, 1.0e-6);
        assert_eq!(m.resistance(), r0);
    }

    #[test]
    fn subthreshold_current_is_ignored() {
        // Even above the voltage threshold, currents inside (−i_on, i_off)
        // must not move the state. Force that regime with a huge resistance.
        let p = DeviceParams {
            r_off: 10.0e6,
            ..params()
        };
        let mut m = Memristor::new(&p, 1.0);
        // v/R = 1.0/10e6 = 0.1 µA < i_off = 1 µA; and window at x=1 is 0 anyway,
        // so also check an interior state with a sub-threshold current.
        let mut interior = Memristor::new(&p, 0.9);
        let r0 = interior.resistance();
        // R(0.9) ≈ 9 MΩ → i ≈ 0.11 µA < 1 µA.
        interior.apply_pulse(1.0, 1.0e-6);
        assert_eq!(interior.resistance(), r0);
        m.apply_pulse(1.0, 1.0e-6);
        assert_eq!(m.state(), 1.0);
    }

    #[test]
    fn state_saturates_at_bounds() {
        let p = params();
        let mut m = Memristor::with_level(&p, MlcLevel::L00).expect("level");
        m.apply_pulse(1.5, 10.0e-6);
        assert!(m.state() <= 1.0);
        assert!(m.resistance() <= p.r_off);
        m.apply_pulse(-1.5, 10.0e-6);
        assert!(m.state() >= 0.0);
        assert!(m.resistance() >= p.r_on);
    }

    #[test]
    fn fig5_hysteresis_encrypt_slower_than_decrypt() {
        // Fig. 5: +1 V encryption 10→00 takes ~0.07 µs; −1 V decryption back
        // takes a *different, much shorter* width (~0.015 µs).
        let p = params();
        let mut m = Memristor::with_level(&p, MlcLevel::L10).expect("level");
        let target = 172.0e3;
        let mut t_up = 0.0;
        while m.resistance() < target {
            m.step(1.0, p.dt);
            t_up += p.dt;
            assert!(t_up < 1.0e-6, "encryption should finish well under 1 µs");
        }
        let mut t_down = 0.0;
        let back = MlcLevel::L10.nominal_resistance(&p);
        while m.resistance() > back {
            m.step(-1.0, p.dt);
            t_down += p.dt;
            assert!(t_down < 1.0e-6, "decryption should finish well under 1 µs");
        }
        assert!(
            t_down < t_up,
            "hysteresis: decrypt width {t_down} should be shorter than encrypt width {t_up}"
        );
    }

    #[test]
    fn level_roundtrip_through_with_level() {
        let p = params();
        for level in MlcLevel::ALL {
            let m = Memristor::with_level(&p, level).expect("level");
            assert_eq!(m.level(), level);
        }
    }

    #[test]
    fn with_resistance_rejects_out_of_range() {
        let p = params();
        assert!(Memristor::with_resistance(&p, 1.0).is_err());
    }

    /// Deterministic uniform draws in [0, 1) for loop-based properties.
    fn unit_draws(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (s >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn state_always_in_bounds() {
        let p = params();
        for d in unit_draws(0x7EA1, 192).chunks_exact(3) {
            let (x0, v, w) = (d[0], -2.0 + 4.0 * d[1], d[2] * 1.0e-6);
            let mut m = Memristor::new(&p, x0);
            m.apply_pulse(v, w);
            assert!(m.state() >= 0.0 && m.state() <= 1.0);
            assert!(m.resistance() >= p.r_on && m.resistance() <= p.r_off);
        }
    }

    #[test]
    fn monotone_in_pulse_direction() {
        let p = params();
        for d in unit_draws(0x7EA2, 128).chunks_exact(2) {
            let (x0, w) = (0.05 + 0.9 * d[0], 1.0e-9 + d[1] * 0.2e-6);
            let mut up = Memristor::new(&p, x0);
            let mut down = Memristor::new(&p, x0);
            up.apply_pulse(1.0, w);
            down.apply_pulse(-1.0, w);
            assert!(up.state() >= x0);
            assert!(down.state() <= x0);
        }
    }

    #[test]
    fn longer_pulse_moves_at_least_as_far() {
        let p = params();
        for d in unit_draws(0x7EA3, 128).chunks_exact(2) {
            let (x0, w) = (0.1 + 0.6 * d[0], 1.0e-9 + d[1] * 0.1e-6);
            let mut short = Memristor::new(&p, x0);
            let mut long = Memristor::new(&p, x0);
            short.apply_pulse(1.0, w);
            long.apply_pulse(1.0, 2.0 * w);
            assert!(long.state() >= short.state());
        }
    }
}
