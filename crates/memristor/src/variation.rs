//! Parametric variation of device constants.
//!
//! Two experiments in the paper perturb physical parameters:
//!
//! * the §5 Monte-Carlo study varies wire resistance by ±5 % and checks the
//!   polyomino shape is stable;
//! * the §6.1 *hardware avalanche* dataset perturbs device/crossbar
//!   parameters by 5–10 % in 0.5 % steps and feeds the resulting ciphertext
//!   deltas to the NIST suite.
//!
//! [`Variation`] expresses such perturbations as multiplicative factors on a
//! [`DeviceParams`]; wire-level variation lives in the crossbar crate.

use crate::params::DeviceParams;

/// Multiplicative perturbation factors for device parameters.
///
/// A factor of `1.0` leaves the parameter untouched; `1.05` scales it up by
/// 5 %. Use [`Variation::uniform`] for the paper's "perturb everything by
/// x %" sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Variation {
    /// Factor applied to `r_on`.
    pub r_on: f64,
    /// Factor applied to `r_off`.
    pub r_off: f64,
    /// Factor applied to `k_off`.
    pub k_off: f64,
    /// Factor applied to `k_on`.
    pub k_on: f64,
    /// Factor applied to `v_threshold`.
    pub v_threshold: f64,
}

impl Default for Variation {
    fn default() -> Self {
        Variation::NONE
    }
}

impl Variation {
    /// The identity variation (all factors `1.0`).
    pub const NONE: Variation = Variation {
        r_on: 1.0,
        r_off: 1.0,
        k_off: 1.0,
        k_on: 1.0,
        v_threshold: 1.0,
    };

    /// Scales every parameter by the same relative amount.
    ///
    /// `relative` is signed: `0.05` means +5 %, `-0.05` means −5 %.
    ///
    /// # Example
    ///
    /// ```
    /// use spe_memristor::{DeviceParams, Variation};
    /// let varied = DeviceParams::default().with_variation(&Variation::uniform(0.05));
    /// assert!((varied.r_off - 210.0e3).abs() < 1.0);
    /// ```
    pub fn uniform(relative: f64) -> Variation {
        let f = 1.0 + relative;
        Variation {
            r_on: f,
            r_off: f,
            k_off: f,
            k_on: f,
            v_threshold: f,
        }
    }

    /// Scales only the resistance range (`r_on`, `r_off`).
    pub fn resistance_range(relative: f64) -> Variation {
        Variation {
            r_on: 1.0 + relative,
            r_off: 1.0 + relative,
            ..Variation::NONE
        }
    }

    /// Applies the factors to a parameter set, returning the varied copy.
    pub fn apply(&self, params: &DeviceParams) -> DeviceParams {
        DeviceParams {
            r_on: params.r_on * self.r_on,
            r_off: params.r_off * self.r_off,
            k_off: params.k_off * self.k_off,
            k_on: params.k_on * self.k_on,
            v_threshold: params.v_threshold * self.v_threshold,
            ..params.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let p = DeviceParams::default();
        assert_eq!(p.with_variation(&Variation::NONE), p);
    }

    #[test]
    fn uniform_scales_all_factors() {
        let v = Variation::uniform(0.1);
        let p = DeviceParams::default();
        let q = v.apply(&p);
        assert!((q.r_on / p.r_on - 1.1).abs() < 1e-12);
        assert!((q.k_off / p.k_off - 1.1).abs() < 1e-12);
        assert!((q.v_threshold / p.v_threshold - 1.1).abs() < 1e-12);
    }

    #[test]
    fn resistance_range_leaves_kinetics_alone() {
        let v = Variation::resistance_range(-0.05);
        let p = DeviceParams::default();
        let q = v.apply(&p);
        assert_eq!(q.k_off, p.k_off);
        assert_eq!(q.k_on, p.k_on);
        assert!((q.r_off / p.r_off - 0.95).abs() < 1e-12);
    }

    #[test]
    fn varied_params_remain_valid_for_small_perturbations() {
        let p = DeviceParams::default();
        for step in -20..=20 {
            let rel = step as f64 * 0.005;
            let q = p.with_variation(&Variation::uniform(rel));
            q.validate().expect("small variations keep params valid");
        }
    }
}
