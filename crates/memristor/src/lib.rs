//! TEAM memristor device model with multi-level-cell (MLC) support.
//!
//! This crate is the device-level substrate of the SNVMM reproduction. It
//! implements the ThrEshold Adaptive Memristor (TEAM) model of Kvatinsky et
//! al. — the same device model the paper integrates with HSPICE — as a pure
//! Rust state-integration engine:
//!
//! * [`DeviceParams`] — physical parameters (resistance bounds, switching
//!   rates, current thresholds, window-function exponents) with support for
//!   parametric variation (used by the Monte-Carlo and *hardware avalanche*
//!   experiments).
//! * [`Memristor`] — a single device holding a continuous internal state
//!   `x ∈ [0, 1]`; voltages applied over time move the state with the
//!   nonlinear, thresholded, hysteretic TEAM dynamics.
//! * [`MlcLevel`] — the four-level (2 bits/cell) quantization the paper's
//!   NVMM uses, plus closed-loop program-and-verify writing.
//! * [`pulse`] — pulse descriptors and the hysteresis-aware pulse-width
//!   search that decryption relies on (paper Fig. 5: a `+1 V / 0.071 µs`
//!   encryption pulse needs a `−1 V / 0.015 µs` pulse to undo).
//!
//! # Example
//!
//! ```
//! use spe_memristor::{DeviceParams, Memristor, MlcLevel};
//!
//! # fn main() -> Result<(), spe_memristor::DeviceError> {
//! let params = DeviceParams::default();
//! let mut cell = Memristor::with_level(&params, MlcLevel::L10)?;
//! // A positive pulse raises resistance (toward logic 00).
//! cell.apply_pulse(1.0, 0.071e-6);
//! assert!(cell.resistance() > MlcLevel::L10.nominal_resistance(&params));
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_code)]

pub mod endurance;
pub mod error;
pub mod fault;
pub mod mlc;
pub mod params;
pub mod pulse;
pub mod team;
pub mod variation;

pub use endurance::{EnduranceImpact, EnduranceMeter};
pub use error::DeviceError;
pub use fault::{FaultKind, FaultModel};
pub use mlc::MlcLevel;
pub use params::DeviceParams;
pub use pulse::{Pulse, PulseWidthSearch};
pub use team::Memristor;
pub use variation::Variation;
