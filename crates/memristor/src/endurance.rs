//! Endurance accounting (§5.2 and ref \[13\]).
//!
//! Memristors tolerate a finite number of full switching events (TaOx
//! devices demonstrate ~10¹⁰ cycles \[13\]). The paper argues SPE's extra
//! pulses have "negligible effect on the endurance of the memory cells
//! since the resistance change is small compared to the typical write
//! operation". This module makes that argument quantitative: it weights
//! each event by its state swing, so a full write (ΔR ≈ the whole range)
//! costs one endurance unit while an SPE perturbation costs only its
//! fractional swing.

/// Endurance budget tracker for one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceMeter {
    /// Rated full-swing cycles (e.g. `1e10` for TaOx \[13\]).
    pub rated_cycles: f64,
    /// Accumulated full-swing-equivalent wear.
    consumed: f64,
    /// Raw event count.
    events: u64,
}

impl EnduranceMeter {
    /// Creates a meter with the given rated cycle count.
    ///
    /// # Panics
    ///
    /// Panics if `rated_cycles` is not positive.
    pub fn new(rated_cycles: f64) -> Self {
        assert!(rated_cycles > 0.0, "rated cycles must be positive");
        EnduranceMeter {
            rated_cycles,
            consumed: 0.0,
            events: 0,
        }
    }

    /// The TaOx rating the paper cites \[13\].
    pub fn taox() -> Self {
        EnduranceMeter::new(1.0e10)
    }

    /// Records one switching event with a normalized state swing
    /// `|Δx| ∈ [0, 1]` (1 = full-range write).
    pub fn record(&mut self, delta_x: f64) {
        self.consumed += delta_x.abs().min(1.0);
        self.events += 1;
    }

    /// Full-swing-equivalent cycles consumed so far.
    pub fn consumed(&self) -> f64 {
        self.consumed
    }

    /// Raw event count.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Remaining lifetime fraction (1.0 = fresh, 0.0 = worn out).
    pub fn remaining_fraction(&self) -> f64 {
        (1.0 - self.consumed / self.rated_cycles).max(0.0)
    }

    /// Whether the device has exceeded its rating.
    pub fn exhausted(&self) -> bool {
        self.consumed >= self.rated_cycles
    }
}

/// §5.2's comparison: lifetime writes achievable with and without SPE.
///
/// `spe_pulses_per_write` pulses of swing `spe_swing` accompany every
/// full-swing write (an SPE-parallel read/write pair re-encrypts, and each
/// cell sits in `coverage` polyominoes on average).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceImpact {
    /// Writes per cell without SPE (= rated cycles).
    pub baseline_writes: f64,
    /// Writes per cell with SPE overhead included.
    pub with_spe_writes: f64,
}

impl EnduranceImpact {
    /// Computes the §5.2 budget.
    pub fn evaluate(
        rated_cycles: f64,
        spe_pulses_per_write: f64,
        spe_swing: f64,
    ) -> EnduranceImpact {
        let per_write_cost = 1.0 + spe_pulses_per_write * spe_swing.abs().min(1.0);
        EnduranceImpact {
            baseline_writes: rated_cycles,
            with_spe_writes: rated_cycles / per_write_cost,
        }
    }

    /// Relative lifetime reduction (0.0 = none).
    pub fn lifetime_loss(&self) -> f64 {
        1.0 - self.with_spe_writes / self.baseline_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_writes_consume_linearly() {
        let mut m = EnduranceMeter::new(100.0);
        for _ in 0..60 {
            m.record(1.0);
        }
        assert!((m.remaining_fraction() - 0.4).abs() < 1e-12);
        assert!(!m.exhausted());
        for _ in 0..40 {
            m.record(1.0);
        }
        assert!(m.exhausted());
        assert_eq!(m.events(), 100);
    }

    #[test]
    fn small_swings_cost_little() {
        let mut m = EnduranceMeter::taox();
        // One million SPE perturbations at 5% swing ≈ 50k full cycles.
        for _ in 0..1_000_000 {
            m.record(0.05);
        }
        assert!((m.consumed() - 50_000.0).abs() < 1.0);
        assert!(m.remaining_fraction() > 0.999_99);
    }

    #[test]
    fn swings_are_clamped_to_full_range() {
        let mut m = EnduranceMeter::new(10.0);
        m.record(5.0); // can't wear more than a full write per event
        assert!((m.consumed() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn section_5_2_claim_is_quantified() {
        // Each SPE-covered cell sees ~2 pulses per encryption, each moving
        // the state by ~1 level gap (≈ 0.3 of the range); one encryption
        // accompanies each write in SPE-parallel.
        let impact = EnduranceImpact::evaluate(1.0e10, 2.0, 0.3);
        assert!(
            impact.lifetime_loss() < 0.45,
            "SPE's endurance cost stays well below one extra write per write \
             (loss {:.2})",
            impact.lifetime_loss()
        );
        // And for the paper's "small compared to a typical write" swings
        // (sub-level analog perturbation ~5%), the loss is negligible.
        let analog = EnduranceImpact::evaluate(1.0e10, 2.0, 0.05);
        assert!(analog.lifetime_loss() < 0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_rating() {
        let _ = EnduranceMeter::new(0.0);
    }
}
