//! Multi-level cell (MLC-2) quantization: two bits per memristor.

use crate::error::DeviceError;
use crate::params::DeviceParams;
use crate::team::Memristor;
use std::fmt;

/// The four logic levels of an MLC-2 memristor cell.
///
/// Logic value falls as resistance rises (paper Fig. 5: encrypting logic
/// `10` raises its resistance to 172 kΩ = logic `00`). Nominal level
/// resistances sit inside `[r_on, r_off]` with guard bands; quantization
/// boundaries are the midpoints between adjacent nominal values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MlcLevel {
    /// Logic `00` — highest resistance (≈ 170 kΩ nominal).
    L00,
    /// Logic `01` (≈ 110 kΩ nominal).
    L01,
    /// Logic `10` (≈ 60 kΩ nominal).
    L10,
    /// Logic `11` — lowest resistance (≈ 15 kΩ nominal).
    L11,
}

impl MlcLevel {
    /// All four levels, ordered from logic `00` to `11`.
    pub const ALL: [MlcLevel; 4] = [MlcLevel::L00, MlcLevel::L01, MlcLevel::L10, MlcLevel::L11];

    /// Nominal level resistances as fractions of the `[r_on, r_off]` span,
    /// ordered `00, 01, 10, 11`.
    const FRACTIONS: [f64; 4] = [
        0.842_105_263_157_894_7, // ≈ 170 kΩ for the default 10k..200k device
        0.526_315_789_473_684_2, // ≈ 110 kΩ
        0.263_157_894_736_842_1, // ≈  60 kΩ
        0.026_315_789_473_684_2, // ≈  15 kΩ
    ];

    /// Builds a level from its two-bit logic value (`0b00` through `0b11`).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidLevelBits`] if `bits > 3`. Callers
    /// that already hold a masked two-bit value can use the infallible
    /// [`from_masked`](Self::from_masked) instead.
    pub fn from_bits(bits: u8) -> Result<MlcLevel, DeviceError> {
        if bits > 0b11 {
            return Err(DeviceError::InvalidLevelBits { bits });
        }
        Ok(MlcLevel::ALL[bits as usize])
    }

    /// Builds a level from the low two bits of `bits`, ignoring the rest.
    ///
    /// Infallible companion to [`from_bits`](Self::from_bits) for call
    /// sites that extract fields with a mask and cannot produce a wide
    /// value.
    pub fn from_masked(bits: u8) -> MlcLevel {
        MlcLevel::ALL[(bits & 0b11) as usize]
    }

    /// The two-bit logic value of this level.
    pub fn bits(self) -> u8 {
        match self {
            MlcLevel::L00 => 0b00,
            MlcLevel::L01 => 0b01,
            MlcLevel::L10 => 0b10,
            MlcLevel::L11 => 0b11,
        }
    }

    /// Index `0..4` in `00, 01, 10, 11` order.
    fn index(self) -> usize {
        self.bits() as usize
    }

    /// Nominal programmed resistance for this level on a given device.
    ///
    /// # Example
    ///
    /// ```
    /// use spe_memristor::{DeviceParams, MlcLevel};
    /// let p = DeviceParams::default();
    /// let r = MlcLevel::L00.nominal_resistance(&p);
    /// assert!((r - 170.0e3).abs() < 1.0e3);
    /// ```
    pub fn nominal_resistance(self, params: &DeviceParams) -> f64 {
        let f = Self::FRACTIONS[self.index()];
        params.r_on + f * (params.r_off - params.r_on)
    }

    /// Quantizes a resistance to the nearest MLC level.
    ///
    /// # Example
    ///
    /// ```
    /// use spe_memristor::{DeviceParams, MlcLevel};
    /// let p = DeviceParams::default();
    /// assert_eq!(MlcLevel::quantize(172.0e3, &p), MlcLevel::L00);
    /// assert_eq!(MlcLevel::quantize(58.0e3, &p), MlcLevel::L10);
    /// ```
    pub fn quantize(resistance: f64, params: &DeviceParams) -> MlcLevel {
        let mut best = MlcLevel::L00;
        let mut best_dist = f64::INFINITY;
        for level in MlcLevel::ALL {
            let d = (level.nominal_resistance(params) - resistance).abs();
            if d < best_dist {
                best_dist = d;
                best = level;
            }
        }
        best
    }
}

impl fmt::Display for MlcLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02b}", self.bits())
    }
}

/// Programs a cell to a target level with closed-loop program-and-verify.
///
/// Real MLC NVMMs iterate short write pulses and verify reads until the cell
/// lands inside the target band; this mirrors that controller behaviour and
/// is how the NVMM model performs logical writes. Returns the number of
/// pulses used.
///
/// # Example
///
/// ```
/// use spe_memristor::{mlc, DeviceParams, Memristor, MlcLevel};
/// # fn main() -> Result<(), spe_memristor::DeviceError> {
/// let p = DeviceParams::default();
/// let mut cell = Memristor::with_level(&p, MlcLevel::L11)?;
/// mlc::program_verify(&mut cell, MlcLevel::L00, 256);
/// assert_eq!(cell.level(), MlcLevel::L00);
/// # Ok(())
/// # }
/// ```
pub fn program_verify(cell: &mut Memristor, target: MlcLevel, max_pulses: u32) -> u32 {
    let params = cell.params().clone();
    let target_r = target.nominal_resistance(&params);
    let tolerance = 0.02 * (params.r_off - params.r_on);
    let pulse_width = 2.0e-9;
    let mut pulses = 0;
    while pulses < max_pulses {
        let r = cell.resistance();
        let error = target_r - r;
        if error.abs() <= tolerance {
            break;
        }
        let v = if error > 0.0 { 1.0 } else { -1.0 };
        cell.apply_pulse(v, pulse_width);
        pulses += 1;
        if cell.resistance() == r {
            // Stuck at a rail or sub-threshold: a longer/full-swing pulse.
            cell.apply_pulse(v * 1.2, 4.0 * pulse_width);
            pulses += 1;
        }
    }
    pulses
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        for b in 0..4u8 {
            assert_eq!(MlcLevel::from_bits(b).expect("2-bit value").bits(), b);
            assert_eq!(MlcLevel::from_masked(b).bits(), b);
        }
    }

    #[test]
    fn from_bits_rejects_wide_values() {
        for b in [4u8, 5, 128, 255] {
            assert_eq!(
                MlcLevel::from_bits(b),
                Err(DeviceError::InvalidLevelBits { bits: b })
            );
        }
    }

    #[test]
    fn from_masked_keeps_low_bits_only() {
        assert_eq!(MlcLevel::from_masked(0b101), MlcLevel::L01);
        assert_eq!(MlcLevel::from_masked(0xFF), MlcLevel::L11);
    }

    #[test]
    fn nominal_resistances_are_ordered() {
        let p = DeviceParams::default();
        let rs: Vec<f64> = MlcLevel::ALL
            .iter()
            .map(|l| l.nominal_resistance(&p))
            .collect();
        assert!(rs[0] > rs[1] && rs[1] > rs[2] && rs[2] > rs[3]);
    }

    #[test]
    fn quantize_nominals_is_identity() {
        let p = DeviceParams::default();
        for level in MlcLevel::ALL {
            assert_eq!(MlcLevel::quantize(level.nominal_resistance(&p), &p), level);
        }
    }

    #[test]
    fn display_shows_two_bits() {
        assert_eq!(MlcLevel::L10.to_string(), "10");
        assert_eq!(MlcLevel::L00.to_string(), "00");
    }

    #[test]
    fn program_verify_reaches_every_level_from_every_level() {
        let p = DeviceParams::default();
        for from in MlcLevel::ALL {
            for to in MlcLevel::ALL {
                let mut cell = Memristor::with_level(&p, from).expect("nominal level");
                let pulses = program_verify(&mut cell, to, 4096);
                assert_eq!(
                    cell.level(),
                    to,
                    "program {from} -> {to} landed at {} after {pulses} pulses",
                    cell.level()
                );
            }
        }
    }

    /// Grid sweep over the full resistance range (replaces random cases).
    fn resistance_grid() -> impl Iterator<Item = f64> {
        (0..=256).map(|i| 10.0e3 + 190.0e3 * i as f64 / 256.0)
    }

    #[test]
    fn quantize_is_total() {
        let p = DeviceParams::default();
        for r in resistance_grid() {
            let _ = MlcLevel::quantize(r, &p);
        }
    }

    #[test]
    fn quantize_picks_nearest() {
        let p = DeviceParams::default();
        for r in resistance_grid() {
            let picked = MlcLevel::quantize(r, &p);
            let picked_d = (picked.nominal_resistance(&p) - r).abs();
            for level in MlcLevel::ALL {
                let d = (level.nominal_resistance(&p) - r).abs();
                assert!(picked_d <= d + 1e-9, "r = {r}");
            }
        }
    }
}
