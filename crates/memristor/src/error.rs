//! Error types for device-level operations.

use std::error::Error;
use std::fmt;

/// Errors raised by device-level operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// A parameter value is outside its physically meaningful range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint description.
        constraint: &'static str,
    },
    /// A requested resistance target cannot be represented by the device.
    ResistanceOutOfRange {
        /// The rejected resistance in ohms.
        resistance: f64,
        /// Device lower bound (`r_on`) in ohms.
        r_on: f64,
        /// Device upper bound (`r_off`) in ohms.
        r_off: f64,
    },
    /// A pulse-width search failed to converge on a target state.
    PulseSearchFailed {
        /// Resistance the search started from, in ohms.
        from: f64,
        /// Resistance the search tried to reach, in ohms.
        to: f64,
        /// Pulse voltage used, in volts.
        voltage: f64,
    },
    /// A pulse descriptor is physically meaningless (non-finite voltage,
    /// or a negative/non-finite width).
    InvalidPulse {
        /// The rejected voltage, in volts.
        voltage: f64,
        /// The rejected width, in seconds.
        width: f64,
    },
    /// A logic value does not fit the MLC-2 cell (must be `0b00..=0b11`).
    InvalidLevelBits {
        /// The rejected logic value.
        bits: u8,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter {name}={value}: {constraint}"),
            DeviceError::ResistanceOutOfRange {
                resistance,
                r_on,
                r_off,
            } => write!(
                f,
                "resistance {resistance} ohm outside device range [{r_on}, {r_off}]"
            ),
            DeviceError::PulseSearchFailed { from, to, voltage } => write!(
                f,
                "pulse width search failed: {from} ohm -> {to} ohm at {voltage} V"
            ),
            DeviceError::InvalidPulse { voltage, width } => write!(
                f,
                "invalid pulse: {voltage} V / {width} s (voltage must be finite, \
                 width finite and non-negative)"
            ),
            DeviceError::InvalidLevelBits { bits } => {
                write!(f, "MLC-2 level must be a 2-bit value, got {bits}")
            }
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DeviceError::ResistanceOutOfRange {
            resistance: 5.0,
            r_on: 10.0,
            r_off: 20.0,
        };
        let s = e.to_string();
        assert!(s.contains("5"));
        assert!(s.contains("outside"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
    }
}
