//! Poison-recovering lock helpers shared across the crate.
//!
//! Every lock in the SPECU datapath guards state that is only ever
//! updated *whole* — a cache entry is inserted or absent, a queue holds a
//! job or does not, a ticket slot is written once. A [`std::sync::Mutex`]
//! or [`std::sync::RwLock`] poisoned by a panic on another thread
//! therefore still guards structurally valid data, and recovering the
//! guard (instead of propagating the panic) is what keeps one crashed
//! bank worker from deadlocking every submitter. This module is the one
//! documented home of that idiom; use these helpers instead of spelling
//! out `unwrap_or_else(|poisoned| poisoned.into_inner())` at each site.
//!
//! **When recovery is safe.** Only guard states with atomic (all-or-
//! nothing) updates with these helpers. If a critical section performs a
//! multi-step update that a panic could leave half-done, poison recovery
//! would expose the torn state — keep the standard panicking behaviour
//! there instead.

use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// Locks a mutex, recovering the guard if the lock was poisoned by a
/// panic elsewhere.
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Acquires a read guard, recovering it if the lock was poisoned.
pub fn read_unpoisoned<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Acquires a write guard, recovering it if the lock was poisoned.
pub fn write_unpoisoned<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Parks on a condvar, recovering the reacquired guard if the lock was
/// poisoned while this thread slept.
pub fn wait_unpoisoned<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar
        .wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Parks on a condvar for at most `timeout`, recovering the reacquired
/// guard if the lock was poisoned. Returns the guard and whether the wait
/// timed out.
pub fn wait_timeout_unpoisoned<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match condvar.wait_timeout(guard, timeout) {
        Ok((guard, result)) => (guard, result.timed_out()),
        Err(poisoned) => {
            let (guard, result) = poisoned.into_inner();
            (guard, result.timed_out())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::RwLock;

    #[test]
    fn mutex_guard_recovers_from_poison() {
        let m = Mutex::new(7u32);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = m.lock().expect("first lock");
            panic!("poison the lock");
        }));
        assert!(m.is_poisoned());
        assert_eq!(*lock_unpoisoned(&m), 7, "the value is still consistent");
    }

    #[test]
    fn rwlock_guards_recover_from_poison() {
        let l = RwLock::new(vec![1, 2, 3]);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = l.write().expect("first write");
            panic!("poison the lock");
        }));
        assert!(l.is_poisoned());
        assert_eq!(read_unpoisoned(&l).len(), 3);
        write_unpoisoned(&l).push(4);
        assert_eq!(read_unpoisoned(&l).len(), 4);
    }

    #[test]
    fn timed_wait_reports_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let guard = lock_unpoisoned(&m);
        let (_guard, timed_out) = wait_timeout_unpoisoned(&cv, guard, Duration::from_millis(1));
        assert!(timed_out, "nobody notifies, so the wait must time out");
    }
}
