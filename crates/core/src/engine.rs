//! The unified encryption-backend interface.
//!
//! Every memory-encryption scheme the simulator compares — SPE (serial and
//! parallel), AES counter mode, the Trivium stream cipher, i-NVMM's
//! incremental AES — operates on the same unit of work: a 64-byte cache
//! line at a line address. [`BlockEngine`] captures that contract so the
//! cycle-level simulator (`spe-memsim`) dispatches every scheme through one
//! trait object and can optionally run *functional* encryption instead of
//! cost-only accounting.
//!
//! SPE's ciphertext is analog crossbar state, not a byte string, so the
//! sealed representation is an enum: [`SealedLine::Bytes`] for conventional
//! ciphers, [`SealedLine::Spe`] for crossbar lines.

use crate::error::SpeError;
use crate::parallel::ParallelSpecu;
use crate::specu::{CipherLine, SpeContext, LINE_BYTES};

/// The memory operation an engine is asked to cost (schemes price reads
/// and writes differently — Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineOp {
    /// A demand read (decrypt on fetch).
    Read,
    /// A writeback (encrypt on store).
    Write,
    /// A background re-encryption pass (i-NVMM's idle-time sealing,
    /// SPE-serial's re-encrypt after read).
    Reencrypt,
}

/// A 64-byte line in its at-rest (sealed) representation.
#[derive(Debug, Clone, PartialEq)]
pub enum SealedLine {
    /// Conventional ciphertext bytes (AES/stream/i-NVMM), tagged with the
    /// line address the keystream or tweak was derived from.
    Bytes {
        /// The sealed 64 bytes.
        data: [u8; LINE_BYTES],
        /// The line address used for tweak/keystream derivation.
        address: u64,
    },
    /// SPE crossbar state (four encrypted mats).
    Spe(CipherLine),
}

impl SealedLine {
    /// The line address this sealed line was produced under.
    pub fn address(&self) -> u64 {
        match self {
            SealedLine::Bytes { address, .. } => *address,
            SealedLine::Spe(line) => line
                .blocks
                .first()
                .map_or(0, |b| b.tweak() / crate::specu::BLOCKS_PER_LINE as u64),
        }
    }
}

/// A functional memory-encryption backend operating on 64-byte lines.
///
/// Implementations must be thread-safe: the simulator and the parallel
/// datapath share one engine across banks.
pub trait BlockEngine: Send + Sync {
    /// The scheme name (Table 3 row label).
    fn name(&self) -> &'static str;

    /// Seals a plaintext line at `address`.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError`] if the backend rejects the line.
    fn encrypt_line(
        &self,
        plaintext: &[u8; LINE_BYTES],
        address: u64,
    ) -> Result<SealedLine, SpeError>;

    /// Opens a sealed line.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError`] if the sealed representation does not belong to
    /// this backend or fails to open.
    fn decrypt_line(&self, sealed: &SealedLine) -> Result<[u8; LINE_BYTES], SpeError>;

    /// The NVMM-cycle cost this engine adds to `op` (Table 3).
    fn latency_cycles(&self, op: EngineOp) -> u32;
}

/// The serial SPECU as a [`BlockEngine`]: one bank encrypts the four mats
/// of a line back to back (Table 3's SPE row — the read path decrypts one
/// block per access, the full-line cost shows up on writeback).
impl BlockEngine for SpeContext {
    fn name(&self) -> &'static str {
        "SPE-serial"
    }

    fn encrypt_line(
        &self,
        plaintext: &[u8; LINE_BYTES],
        address: u64,
    ) -> Result<SealedLine, SpeError> {
        Ok(SealedLine::Spe(self.encrypt_line(plaintext, address)?))
    }

    fn decrypt_line(&self, sealed: &SealedLine) -> Result<[u8; LINE_BYTES], SpeError> {
        match sealed {
            SealedLine::Spe(line) => self.decrypt_line(line),
            SealedLine::Bytes { .. } => {
                Err(SpeError::Internal("SPE engine handed a byte-sealed line"))
            }
        }
    }

    fn latency_cycles(&self, op: EngineOp) -> u32 {
        match op {
            // A demand read decrypts the one block it needs.
            EngineOp::Read => self.encryption_cycles(),
            // A serial writeback re-encrypts all four mats on one bank.
            EngineOp::Write | EngineOp::Reencrypt => {
                self.encryption_cycles() * crate::specu::BLOCKS_PER_LINE as u32
            }
        }
    }
}

/// The multi-bank SPECU as a [`BlockEngine`]: the four mats run
/// concurrently, so a whole line costs one block's schedule (Table 3's
/// SPE-parallel row).
impl BlockEngine for ParallelSpecu {
    fn name(&self) -> &'static str {
        "SPE-parallel"
    }

    fn encrypt_line(
        &self,
        plaintext: &[u8; LINE_BYTES],
        address: u64,
    ) -> Result<SealedLine, SpeError> {
        Ok(SealedLine::Spe(ParallelSpecu::encrypt_line(
            self, plaintext, address,
        )?))
    }

    fn decrypt_line(&self, sealed: &SealedLine) -> Result<[u8; LINE_BYTES], SpeError> {
        match sealed {
            SealedLine::Spe(line) => ParallelSpecu::decrypt_line(self, line),
            SealedLine::Bytes { .. } => {
                Err(SpeError::Internal("SPE engine handed a byte-sealed line"))
            }
        }
    }

    fn latency_cycles(&self, op: EngineOp) -> u32 {
        match op {
            EngineOp::Read => self.latency_cycles(),
            // All four banks fire at once: line cost == block cost.
            EngineOp::Write | EngineOp::Reencrypt => self.latency_cycles(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;
    use crate::specu::Specu;
    use std::sync::{Arc, OnceLock};

    fn specu() -> Specu {
        static CACHE: OnceLock<Specu> = OnceLock::new();
        CACHE
            .get_or_init(|| {
                Specu::builder()
                    .key(Key::from_seed(0xE6))
                    .build()
                    .expect("specu")
            })
            .clone()
    }

    #[test]
    fn engines_are_object_safe_and_roundtrip() {
        let s = specu();
        let serial: Arc<dyn BlockEngine> = Arc::new(s.context().expect("ctx").clone());
        let parallel: Arc<dyn BlockEngine> = Arc::new(s.parallel(4).expect("par"));
        let pt: [u8; LINE_BYTES] = core::array::from_fn(|i| (i * 13 + 1) as u8);
        for engine in [&serial, &parallel] {
            let sealed = engine.encrypt_line(&pt, 0x80).expect("seal");
            assert_eq!(
                engine.decrypt_line(&sealed).expect("open"),
                pt,
                "{}",
                engine.name()
            );
        }
        // Serial and parallel SPECUs produce identical sealed state.
        assert_eq!(
            serial.encrypt_line(&pt, 0x80).expect("seal"),
            parallel.encrypt_line(&pt, 0x80).expect("seal"),
        );
    }

    #[test]
    fn spe_latencies_follow_table3() {
        let s = specu();
        let ctx = s.context().expect("ctx").clone();
        let par = s.parallel(4).expect("par");
        let block = ctx.encryption_cycles();
        assert_eq!(BlockEngine::latency_cycles(&ctx, EngineOp::Read), block);
        assert_eq!(
            BlockEngine::latency_cycles(&ctx, EngineOp::Write),
            block * 4
        );
        assert_eq!(BlockEngine::latency_cycles(&par, EngineOp::Write), block);
    }

    #[test]
    fn spe_engine_rejects_foreign_sealed_lines() {
        let s = specu();
        let ctx = s.context().expect("ctx").clone();
        let sealed = SealedLine::Bytes {
            data: [0; LINE_BYTES],
            address: 4,
        };
        assert!(matches!(
            BlockEngine::decrypt_line(&ctx, &sealed),
            Err(SpeError::Internal(_))
        ));
        assert_eq!(sealed.address(), 4);
    }
}
