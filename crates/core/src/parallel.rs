//! Multi-bank SPECU datapath (SPE-parallel, §7 / Fig. 7, Table 3).
//!
//! The paper's SPE-parallel mode replicates the SPECU once per mat so all
//! four 8×8 crossbars of a 64 B line encrypt concurrently. With the keyed
//! state factored into the shared immutable [`SpeContext`], a bank is a
//! persistent worker thread holding a context clone: [`ParallelSpecu`] is
//! a thin façade over the [`BankScheduler`] request pipeline
//! ([`crate::scheduler`]), turning every line/block batch into
//! [`CipherRequest`]s, submitting them to the per-bank bounded queues, and
//! collecting the completion tickets in submission order.
//!
//! The workers execute each request through the exact serial
//! [`SpeContext`] datapath, so all batch APIs are order-preserving *and*
//! bit-identical to their serial builds: output `i` corresponds to job `i`
//! regardless of bank count, and serial == banked ciphertext equivalence
//! holds by construction.
//!
//! A single-bank datapath short-circuits every call onto the caller's
//! thread — `parallel(1)` is the serial baseline, with no queue in the
//! way.

use crate::error::SpeError;
use crate::key::Key;
use crate::recovery::{FaultCounters, FaultPolicy, RetryPolicy};
use crate::request::{CipherRequest, CipherResponse, CipherTicket};
use crate::scheduler::{BankScheduler, SchedulerConfig};
use crate::specu::{CipherBlock, CipherLine, SpeContext, BLOCKS_PER_LINE, BLOCK_BYTES, LINE_BYTES};
use crate::tenant::TenantRegistry;
use spe_telemetry::{Counter, Histogram};
use std::sync::Arc;
use std::time::Duration;

/// One block-encryption job for a bank batch: a plaintext block, its
/// schedule tweak, and an optional per-job key (the Table 2 avalanche and
/// density datasets rotate keys per block).
#[derive(Debug, Clone)]
pub struct BlockJob {
    /// The 16-byte plaintext.
    pub plaintext: [u8; BLOCK_BYTES],
    /// The schedule tweak (block address).
    pub tweak: u64,
    /// Key override for this job; `None` uses the context key.
    pub key: Option<Key>,
}

impl BlockJob {
    /// A job under the context key.
    pub fn new(plaintext: [u8; BLOCK_BYTES], tweak: u64) -> Self {
        BlockJob {
            plaintext,
            tweak,
            key: None,
        }
    }

    /// A job under an explicit key.
    pub fn with_key(plaintext: [u8; BLOCK_BYTES], tweak: u64, key: Key) -> Self {
        BlockJob {
            plaintext,
            tweak,
            key: Some(key),
        }
    }

    fn request(&self) -> CipherRequest {
        let req = CipherRequest::block(self.plaintext).with_tweak(self.tweak);
        match self.key {
            Some(key) => req.with_key(key),
            None => req,
        }
    }
}

/// One line-encryption job for a bank batch.
#[derive(Debug, Clone)]
pub struct LineJob {
    /// The 64-byte plaintext line.
    pub plaintext: [u8; LINE_BYTES],
    /// The line address (per-block tweaks derive from it).
    pub address: u64,
}

impl LineJob {
    /// A job under the context key.
    pub fn new(plaintext: [u8; LINE_BYTES], address: u64) -> Self {
        LineJob { plaintext, address }
    }
}

/// A multi-bank SPECU: one persistent worker thread per bank, all sharing
/// one immutable keyed [`SpeContext`] behind a [`BankScheduler`].
///
/// Cloning is cheap and shares the scheduler (and its workers); the pool
/// is built once (via [`crate::specu::SpecuBuilder::build_parallel`] or
/// [`ParallelSpecu::with_scheduler_config`]) and torn down when the last
/// clone drops.
///
/// This façade owns the top rung of the recovery ladder: a request whose
/// ticket resolves to a retryable failure ([`SpeError::is_retryable`]) is
/// resubmitted under the [`RetryPolicy`] with exponential backoff —
/// routing naturally steers the retry away from degraded or quarantined
/// banks — and once the scheduler reports
/// [`SpeError::AllBanksQuarantined`] the request runs on the caller's
/// thread through the serial [`SpeContext`] datapath. The system degrades
/// in throughput, never in availability.
#[derive(Debug, Clone)]
pub struct ParallelSpecu {
    scheduler: Arc<BankScheduler>,
    retry: RetryPolicy,
}

impl ParallelSpecu {
    /// Builds a parallel datapath with explicit scheduler geometry
    /// (bank count, per-bank queue depth, health and chaos policies),
    /// retrying failed requests under [`RetryPolicy::standard`].
    pub fn with_scheduler_config(context: SpeContext, config: SchedulerConfig) -> Self {
        ParallelSpecu {
            scheduler: Arc::new(BankScheduler::new(context, config)),
            retry: RetryPolicy::standard(),
        }
    }

    /// Builds a parallel datapath whose bank pool serves mixed-tenant
    /// traffic: requests tagged via
    /// [`CipherRequest::with_tenant`](crate::request::CipherRequest::with_tenant)
    /// resolve the tenant's current [`SpeContext`] from `registry` at
    /// execution time, so one shared pool carries every tenant and a
    /// [`TenantRegistry::rotate`] takes effect mid-stream. Untagged
    /// requests run on `context` as usual.
    pub fn with_registry(
        context: SpeContext,
        config: SchedulerConfig,
        registry: Arc<TenantRegistry>,
    ) -> Self {
        ParallelSpecu {
            scheduler: Arc::new(BankScheduler::with_registry(context, config, registry)),
            retry: RetryPolicy::standard(),
        }
    }

    /// The same datapath with an explicit retry policy
    /// ([`RetryPolicy::none`] disables resubmission entirely).
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The façade's retry policy for failed requests.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The shared keyed context.
    pub fn context(&self) -> &SpeContext {
        self.scheduler.context()
    }

    /// The underlying request scheduler, for direct
    /// [`submit`](BankScheduler::submit) /
    /// [`try_submit`](BankScheduler::try_submit) access.
    pub fn scheduler(&self) -> &BankScheduler {
        &self.scheduler
    }

    /// The number of SPECU banks.
    pub fn banks(&self) -> usize {
        self.scheduler.banks()
    }

    /// Records the bank fan-out telemetry for a batch of `jobs`: the job
    /// count and every bank's chunk occupancy. Computed from the shard
    /// geometry (not from thread scheduling), so the numbers are identical
    /// across runs and bank counts with the same job load.
    fn record_fan_out(&self, jobs: usize) {
        let rec = self.context().recorder();
        if !rec.enabled() || jobs == 0 {
            return;
        }
        rec.add(Counter::BankJobs, jobs as u64);
        let banks = self.banks().max(1).min(jobs);
        let chunk = jobs.div_ceil(banks);
        let mut rest = jobs;
        while rest > 0 {
            let take = chunk.min(rest);
            rec.observe(Histogram::BankUtilization, take as u64);
            rest -= take;
        }
    }

    /// Per-line encryption latency in NVMM cycles: the four mats run on
    /// separate banks, so a line takes `ceil(4 / banks)` block schedules
    /// back-to-back — one with 4+ banks (Table 3's SPE-parallel row), four
    /// when a single bank serialises the mats.
    pub fn latency_cycles(&self) -> u32 {
        self.context().encryption_cycles() * BLOCKS_PER_LINE.div_ceil(self.banks()) as u32
    }

    /// Runs one request on the caller's thread through the serial context
    /// — the availability floor once the scheduler's bank pool is gone.
    /// Tenant-tagged requests still resolve through the registry, so the
    /// degraded mode honors tenant routing (and rotations) identically.
    fn resolve_serial(&self, request: &CipherRequest) -> Result<CipherResponse, SpeError> {
        self.context().recorder().add(Counter::DegradedFallbacks, 1);
        crate::scheduler::execute_cipher(
            self.context(),
            self.scheduler.registry().map(Arc::as_ref),
            request,
        )
    }

    /// Runs one tenant-tagged request through the scheduler pipeline
    /// *whole* (no mat sharding): the executing bank worker resolves the
    /// tenant's current context when it picks the job up, which is what
    /// makes a mid-stream rotation take effect for queued requests.
    pub(crate) fn resolve_tenant(
        &self,
        request: &CipherRequest,
    ) -> Result<CipherResponse, SpeError> {
        match self.scheduler.submit(request.clone()) {
            Ok(ticket) => self.settle(ticket, request),
            Err(SpeError::AllBanksQuarantined) => self.resolve_serial(request),
            Err(e) => Err(e),
        }
    }

    /// Waits one ticket out, climbing the recovery ladder on failure:
    /// retryable errors resubmit under the [`RetryPolicy`] (exponential
    /// backoff, re-routed by the scheduler's health-aware selection), and
    /// a fully-quarantined pool drops to the serial datapath. Terminal
    /// errors (deadline expiry, shutdown, datapath faults) surface as-is.
    fn settle(
        &self,
        ticket: CipherTicket,
        request: &CipherRequest,
    ) -> Result<CipherResponse, SpeError> {
        let max_attempts = self.retry.max_attempts.max(1);
        let mut result = ticket.wait();
        let mut retry = 0u32;
        while let Err(err) = &result {
            if !err.is_retryable() || retry + 1 >= max_attempts {
                break;
            }
            retry += 1;
            let rec = self.context().recorder();
            rec.add(Counter::RequestRetries, 1);
            let backoff = self.retry.backoff_us(retry);
            rec.observe(Histogram::RetryBackoff, backoff);
            if backoff > 0 {
                std::thread::sleep(Duration::from_micros(backoff));
            }
            result = match self.scheduler.submit(request.clone()) {
                Ok(t) => t.wait(),
                Err(SpeError::AllBanksQuarantined) => return self.resolve_serial(request),
                Err(e) => Err(e),
            };
        }
        result
    }

    /// Submits a batch of requests and waits the tickets in submission
    /// order, so output `i` corresponds to request `i` and the first error
    /// (in job order) wins — exactly the fork-join contract, minus the
    /// forking. Requests refused with [`SpeError::AllBanksQuarantined`]
    /// run serially on the caller's thread, so the batch still answers
    /// with every bank gone.
    fn run_batch<I>(&self, requests: I) -> Result<Vec<CipherResponse>, SpeError>
    where
        I: IntoIterator<Item = CipherRequest>,
    {
        enum Slot {
            Ticket(CipherTicket, CipherRequest),
            Done(Result<CipherResponse, SpeError>),
        }
        let mut slots = Vec::new();
        for request in requests {
            match self.scheduler.submit(request.clone()) {
                Ok(ticket) => slots.push(Slot::Ticket(ticket, request)),
                Err(SpeError::AllBanksQuarantined) => {
                    slots.push(Slot::Done(self.resolve_serial(&request)));
                }
                Err(e) => return Err(e),
            }
        }
        slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Ticket(ticket, request) => self.settle(ticket, &request),
                Slot::Done(result) => result,
            })
            .collect()
    }

    /// Encrypts one 64-byte line, sharding its four mats across the banks.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError`] if the model rejects a pulse schedule, or
    /// [`SpeError::BankPoisoned`] if a bank worker panics on the request.
    pub fn encrypt_line(
        &self,
        plaintext: &[u8; LINE_BYTES],
        line_address: u64,
    ) -> Result<CipherLine, SpeError> {
        if self.banks() == 1 {
            return self.context().encrypt_line(plaintext, line_address);
        }
        self.record_fan_out(BLOCKS_PER_LINE);
        let responses = self.run_batch((0..BLOCKS_PER_LINE).map(|i| {
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(&plaintext[i * BLOCK_BYTES..(i + 1) * BLOCK_BYTES]);
            CipherRequest::block(block).with_tweak(line_address * BLOCKS_PER_LINE as u64 + i as u64)
        }))?;
        let blocks = responses
            .into_iter()
            .map(CipherResponse::into_block)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CipherLine { blocks })
    }

    /// Decrypts one 64-byte line, sharding its four mats across the banks.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError`] if the line is malformed or a bank worker
    /// panics.
    pub fn decrypt_line(&self, line: &CipherLine) -> Result<[u8; LINE_BYTES], SpeError> {
        if line.blocks.len() != BLOCKS_PER_LINE {
            return Err(SpeError::BadLength {
                expected: BLOCKS_PER_LINE,
                actual: line.blocks.len(),
            });
        }
        if self.banks() == 1 {
            return self.context().decrypt_line(line);
        }
        self.record_fan_out(BLOCKS_PER_LINE);
        let responses = self.run_batch(
            line.blocks
                .iter()
                .map(|b| CipherRequest::sealed_block(b.clone())),
        )?;
        let mut out = [0u8; LINE_BYTES];
        for (i, resp) in responses.into_iter().enumerate() {
            let pt = resp.into_plain_block()?;
            out[i * BLOCK_BYTES..(i + 1) * BLOCK_BYTES].copy_from_slice(&pt);
        }
        Ok(out)
    }

    /// Encrypts a batch of lines across the banks, order-preserving.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpeError`] any bank hit.
    pub fn encrypt_lines(&self, jobs: &[LineJob]) -> Result<Vec<CipherLine>, SpeError> {
        self.record_fan_out(jobs.len());
        if self.banks() == 1 {
            let ctx = self.context();
            return jobs
                .iter()
                .map(|j| ctx.encrypt_line(&j.plaintext, j.address))
                .collect();
        }
        self.run_batch(
            jobs.iter()
                .map(|j| CipherRequest::line(j.plaintext, j.address)),
        )?
        .into_iter()
        .map(CipherResponse::into_line)
        .collect()
    }

    /// Decrypts a batch of lines across the banks, order-preserving.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpeError`] any bank hit.
    pub fn decrypt_lines(&self, lines: &[CipherLine]) -> Result<Vec<[u8; LINE_BYTES]>, SpeError> {
        self.record_fan_out(lines.len());
        if self.banks() == 1 {
            let ctx = self.context();
            return lines.iter().map(|l| ctx.decrypt_line(l)).collect();
        }
        self.run_batch(lines.iter().map(|l| CipherRequest::sealed_line(l.clone())))?
            .into_iter()
            .map(CipherResponse::into_plain_line)
            .collect()
    }

    /// Encrypts one line through the resilient (write-verify/retry/remap)
    /// path, sharding its four mats across the banks and merging their
    /// fault counters in mat order.
    ///
    /// Fault draws are pure functions of the policy seed and the block
    /// tweak, so the counters — and the ciphertext — are identical to a
    /// serial [`SpeContext::encrypt_line_resilient`] run regardless of the
    /// bank count.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::FaultExhausted`] when a mat's polyomino cannot
    /// be committed, or [`SpeError::BankPoisoned`] if a bank worker
    /// panics.
    pub fn encrypt_line_resilient(
        &self,
        plaintext: &[u8; LINE_BYTES],
        line_address: u64,
        policy: &FaultPolicy,
    ) -> Result<(CipherLine, FaultCounters), SpeError> {
        if self.banks() == 1 {
            return self
                .context()
                .encrypt_line_resilient(plaintext, line_address, policy);
        }
        self.record_fan_out(BLOCKS_PER_LINE);
        let responses = self.run_batch((0..BLOCKS_PER_LINE).map(|i| {
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(&plaintext[i * BLOCK_BYTES..(i + 1) * BLOCK_BYTES]);
            CipherRequest::block(block)
                .with_tweak(line_address * BLOCKS_PER_LINE as u64 + i as u64)
                .resilient(*policy)
        }))?;
        let mut counters = FaultCounters::default();
        let mut blocks = Vec::with_capacity(BLOCKS_PER_LINE);
        for resp in responses {
            counters.merge(&resp.faults);
            blocks.push(resp.into_block()?);
        }
        Ok((CipherLine { blocks }, counters))
    }

    /// Encrypts a batch of lines through the resilient path across the
    /// banks, order-preserving, merging all fault counters in job order.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpeError`] any bank hit.
    pub fn encrypt_lines_resilient(
        &self,
        jobs: &[LineJob],
        policy: &FaultPolicy,
    ) -> Result<(Vec<CipherLine>, FaultCounters), SpeError> {
        self.record_fan_out(jobs.len());
        let mut counters = FaultCounters::default();
        let mut lines = Vec::with_capacity(jobs.len());
        if self.banks() == 1 {
            let ctx = self.context();
            for j in jobs {
                let (line, c) = ctx.encrypt_line_resilient(&j.plaintext, j.address, policy)?;
                counters.merge(&c);
                lines.push(line);
            }
            return Ok((lines, counters));
        }
        let responses = self.run_batch(
            jobs.iter()
                .map(|j| CipherRequest::line(j.plaintext, j.address).resilient(*policy)),
        )?;
        for resp in responses {
            counters.merge(&resp.faults);
            lines.push(resp.into_line()?);
        }
        Ok((lines, counters))
    }

    /// Decrypts one line, verifying every block's integrity tag, sharding
    /// across the banks.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::IntegrityViolation`] for a corrupted or
    /// untagged block, [`SpeError::BadLength`] for a malformed line.
    pub fn decrypt_line_checked(&self, line: &CipherLine) -> Result<[u8; LINE_BYTES], SpeError> {
        if line.blocks.len() != BLOCKS_PER_LINE {
            return Err(SpeError::BadLength {
                expected: BLOCKS_PER_LINE,
                actual: line.blocks.len(),
            });
        }
        if self.banks() == 1 {
            return self.context().decrypt_line_checked(line);
        }
        self.record_fan_out(BLOCKS_PER_LINE);
        let responses = self.run_batch(
            line.blocks
                .iter()
                .map(|b| CipherRequest::sealed_block(b.clone()).verified()),
        )?;
        let mut out = [0u8; LINE_BYTES];
        for (i, resp) in responses.into_iter().enumerate() {
            let pt = resp.into_plain_block()?;
            out[i * BLOCK_BYTES..(i + 1) * BLOCK_BYTES].copy_from_slice(&pt);
        }
        Ok(out)
    }

    /// Decrypts a batch of lines with integrity checking across the banks,
    /// order-preserving.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpeError`] any bank hit.
    pub fn decrypt_lines_checked(
        &self,
        lines: &[CipherLine],
    ) -> Result<Vec<[u8; LINE_BYTES]>, SpeError> {
        self.record_fan_out(lines.len());
        if self.banks() == 1 {
            let ctx = self.context();
            return lines.iter().map(|l| ctx.decrypt_line_checked(l)).collect();
        }
        self.run_batch(
            lines
                .iter()
                .map(|l| CipherRequest::sealed_line(l.clone()).verified()),
        )?
        .into_iter()
        .map(CipherResponse::into_plain_line)
        .collect()
    }

    /// Encrypts a batch of independent block jobs across the banks,
    /// order-preserving. Jobs with a key override run under a cheap
    /// [`SpeContext::rekeyed`] context sharing this datapath's calibration.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpeError`] any bank hit.
    pub fn encrypt_blocks(&self, jobs: &[BlockJob]) -> Result<Vec<CipherBlock>, SpeError> {
        self.record_fan_out(jobs.len());
        if self.banks() == 1 {
            let ctx = self.context();
            return jobs
                .iter()
                .map(|job| match job.key {
                    Some(key) => ctx.rekeyed(key).encrypt_block(&job.plaintext, job.tweak),
                    None => ctx.encrypt_block(&job.plaintext, job.tweak),
                })
                .collect();
        }
        self.run_batch(jobs.iter().map(BlockJob::request))?
            .into_iter()
            .map(CipherResponse::into_block)
            .collect()
    }
}

/// Runs `work(0..jobs)` across up to `banks` scoped worker threads and
/// returns per-job results in job order. Used by dataset builders whose
/// work items are not [`CipherRequest`]s (context construction, sweeps);
/// the cipher datapath itself goes through the [`BankScheduler`].
///
/// A worker panic is attributed precisely within its chunk: jobs the
/// worker filled before dying keep their results, the job it was
/// executing fails with [`SpeError::BankPoisoned`] (it may have run
/// partially), and the jobs behind it fail with [`SpeError::JobNeverRan`]
/// (they never started, so resubmitting them is unconditionally safe —
/// retry logic must not conflate the two).
pub(crate) fn fan_out_slots<T, F>(banks: usize, jobs: usize, work: F) -> Vec<Result<T, SpeError>>
where
    T: Send,
    F: Fn(usize) -> Result<T, SpeError> + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let banks = banks.max(1).min(jobs);
    if banks == 1 {
        return (0..jobs).map(&work).collect();
    }
    let chunk = jobs.div_ceil(banks);
    let mut results: Vec<Option<Result<T, SpeError>>> = Vec::with_capacity(jobs);
    results.resize_with(jobs, || None);
    let mut spans: Vec<&mut [Option<Result<T, SpeError>>]> = Vec::with_capacity(banks);
    let mut rest = results.as_mut_slice();
    while !rest.is_empty() {
        let take = chunk.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        spans.push(head);
        rest = tail;
    }
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(spans.len());
        for (b, span) in spans.into_iter().enumerate() {
            let work = &work;
            handles.push(scope.spawn(move || {
                for (j, slot) in span.iter_mut().enumerate() {
                    *slot = Some(work(b * chunk + j));
                }
            }));
        }
        for handle in handles {
            let _ = handle.join();
        }
    });
    // A chunk's first unwritten slot is where its worker died (the job may
    // have partially executed); everything behind it never started.
    let mut worker_died_here = false;
    results
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            if i % chunk == 0 {
                worker_died_here = false;
            }
            match slot {
                Some(result) => result,
                None if !worker_died_here => {
                    worker_died_here = true;
                    Err(SpeError::BankPoisoned)
                }
                None => Err(SpeError::JobNeverRan),
            }
        })
        .collect()
}

/// [`fan_out_slots`] with first-error-wins collection: the batch result
/// is `Ok` only if every job succeeded, otherwise the earliest job's
/// error (in job order).
pub(crate) fn fan_out<T, F>(banks: usize, jobs: usize, work: F) -> Result<Vec<T>, SpeError>
where
    T: Send,
    F: Fn(usize) -> Result<T, SpeError> + Sync,
{
    fan_out_slots(banks, jobs, work).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specu::Specu;
    use spe_telemetry::TelemetryHandle;
    use std::sync::OnceLock;

    fn specu() -> Specu {
        static CACHE: OnceLock<Specu> = OnceLock::new();
        CACHE
            .get_or_init(|| {
                Specu::builder()
                    .key(Key::from_seed(0xBA))
                    .build()
                    .expect("specu")
            })
            .clone()
    }

    fn line(seed: u64) -> [u8; LINE_BYTES] {
        let mut s = seed;
        core::array::from_fn(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as u8
        })
    }

    #[test]
    fn parallel_line_matches_serial() {
        let s = specu();
        let par = s.parallel(4).expect("parallel");
        let ctx = s.context().expect("context");
        for seed in 0..4 {
            let pt = line(seed);
            let serial = ctx.encrypt_line(&pt, 0x100 + seed).expect("serial");
            let banked = par.encrypt_line(&pt, 0x100 + seed).expect("parallel");
            assert_eq!(serial, banked, "seed {seed}");
            assert_eq!(par.decrypt_line(&banked).expect("decrypt"), pt);
        }
    }

    #[test]
    fn batch_is_order_preserving_across_bank_counts() {
        let s = specu();
        let jobs: Vec<LineJob> = (0..10).map(|i| LineJob::new(line(i), i)).collect();
        let one = s.parallel(1).expect("p1").encrypt_lines(&jobs).expect("b1");
        for banks in [2, 3, 4, 7] {
            let many = s
                .parallel(banks)
                .expect("p")
                .encrypt_lines(&jobs)
                .expect("b");
            assert_eq!(one, many, "banks {banks}");
        }
    }

    #[test]
    fn block_jobs_honour_key_overrides() {
        let s = specu();
        let par = s.parallel(4).expect("parallel");
        let pt = *b"per-job key test";
        let jobs = vec![
            BlockJob::new(pt, 7),
            BlockJob::with_key(pt, 7, Key::from_seed(0xBA)),
            BlockJob::with_key(pt, 7, Key::from_seed(1234)),
        ];
        let out = par.encrypt_blocks(&jobs).expect("batch");
        // The context key is from_seed(0xBA): jobs 0 and 1 agree.
        assert_eq!(out[0], out[1]);
        assert_ne!(out[0].data(), out[2].data());
    }

    #[test]
    fn empty_batch_is_fine() {
        let s = specu();
        let par = s.parallel(4).expect("parallel");
        assert!(par.encrypt_lines(&[]).expect("empty").is_empty());
    }

    #[test]
    fn parallel_latency_is_one_block() {
        let s = specu();
        let par = s.parallel(4).expect("parallel");
        assert_eq!(par.latency_cycles(), s.encryption_cycles());
        // A single bank serialises all four mats of the line.
        let serial = s.parallel(1).expect("serial");
        assert_eq!(serial.latency_cycles(), 4 * s.encryption_cycles());
    }

    #[test]
    fn short_line_is_rejected() {
        let s = specu();
        let par = s.parallel(4).expect("parallel");
        let pt = line(9);
        let mut enc = par.encrypt_line(&pt, 3).expect("encrypt");
        enc.blocks.pop();
        assert!(matches!(
            par.decrypt_line(&enc),
            Err(SpeError::BadLength { .. })
        ));
    }

    #[test]
    fn clones_share_one_worker_pool() {
        let s = specu();
        let par = s.parallel(4).expect("parallel");
        let clone = par.clone();
        assert!(std::ptr::eq(par.scheduler(), clone.scheduler()));
        // Both handles drive the same scheduler to the same ciphertexts.
        let pt = line(21);
        assert_eq!(
            par.encrypt_line(&pt, 21).expect("a"),
            clone.encrypt_line(&pt, 21).expect("b")
        );
    }

    #[test]
    fn fan_out_panic_is_typed_bank_poisoned() {
        let out: Result<Vec<u64>, SpeError> = fan_out(4, 8, |i| {
            assert!(i != 5, "test-injected fan-out panic");
            Ok(i as u64)
        });
        assert_eq!(out, Err(SpeError::BankPoisoned));
    }

    #[test]
    fn fan_out_distinguishes_the_dying_job_from_never_started_ones() {
        // 2 banks over 8 jobs → chunks [0..4) and [4..8). Panic on job 5:
        // job 4 completed, job 5 was executing, jobs 6..7 never started.
        let slots: Vec<Result<u64, SpeError>> = fan_out_slots(2, 8, |i| {
            assert!(i != 5, "test-injected fan-out panic");
            Ok(i as u64)
        });
        for (i, slot) in slots.iter().enumerate().take(5) {
            assert_eq!(slot, &Ok(i as u64), "job {i} before the panic is kept");
        }
        assert_eq!(slots[5], Err(SpeError::BankPoisoned), "the dying job");
        assert_eq!(slots[6], Err(SpeError::JobNeverRan));
        assert_eq!(slots[7], Err(SpeError::JobNeverRan));
    }

    #[test]
    fn quarantined_pool_degrades_to_serial_and_still_answers() {
        use crate::chaos::ChaosPolicy;
        use crate::scheduler::HealthPolicy;
        use spe_telemetry::AtomicRecorder;

        let s = specu();
        let recorder = Arc::new(AtomicRecorder::new());
        let handle: TelemetryHandle = recorder.clone();
        let config = SchedulerConfig::with_banks(2)
            .with_health(HealthPolicy {
                degrade_after: 1,
                quarantine_after: 1,
            })
            .with_chaos(ChaosPolicy::panics(1.0, 0xDEAD));
        let mut ctx = s.context().expect("context").clone();
        ctx.set_recorder(handle);
        let par = ParallelSpecu::with_scheduler_config(ctx, config);
        // Every worker panics on its first job, so both banks quarantine
        // almost immediately — yet the batch must still answer, serially,
        // with ciphertext identical to the clean parallel pool.
        let jobs: Vec<LineJob> = (0..6).map(|i| LineJob::new(line(i), i)).collect();
        let sealed = par.encrypt_lines(&jobs).expect("degraded batch answers");
        let clean = s
            .parallel(2)
            .expect("clean")
            .encrypt_lines(&jobs)
            .expect("clean batch");
        assert_eq!(sealed, clean, "degraded output diverged");
        let snap = recorder.snapshot();
        assert!(
            snap.counter(spe_telemetry::Counter::DegradedFallbacks) > 0,
            "the serial floor was exercised"
        );
        assert_eq!(
            snap.counter(spe_telemetry::Counter::BankQuarantines),
            2,
            "both banks quarantined"
        );
        assert!(par.scheduler().all_quarantined());
        // Availability persists for later batches too.
        let more = par.encrypt_lines(&jobs).expect("still answering");
        assert_eq!(more, clean);
    }
}
