//! Write-verify, bounded retry and graceful polyomino remapping.
//!
//! The SPECU's closed-loop pulse trains are verify-terminated, but a real
//! memristive NVMM still fails underneath them: a program pulse can skip
//! (transient), and a cell can be stuck at a rail (permanent). This module
//! models the *commit* of each pulse train onto physical cells under a
//! [`FaultModel`] and implements the recovery ladder:
//!
//! 1. **Retry with backoff** — a skipped write is re-pulsed up to
//!    [`FaultPolicy::max_retries`] times; each retry doubles the pulse
//!    width, halving the skip probability (exponential pulse-width
//!    backoff).
//! 2. **Remap** — a hard failure (stuck cell, or retries exhausted)
//!    migrates the *whole polyomino* to the next spare region of the mat
//!    via the [`RemapTable`] and re-commits there. Remapping at train
//!    granularity keeps the schedule's cell-to-cell coupling intact.
//! 3. **Typed failure** — when every spare region is exhausted the commit
//!    returns [`SpeError::FaultExhausted`]; the engine never panics and
//!    never stores a block it could not commit.
//!
//! Every fault draw is a pure function of `(model seed, tweak, region,
//! cell, epoch, attempt)`, so the serial and multi-bank parallel backends
//! observe *identical* fault histories for the same seed — the property
//! `tests/fault_recovery.rs` pins down.

use crate::error::SpeError;
use crate::specu::CipherLine;
pub use spe_memristor::{FaultKind, FaultModel};
use spe_telemetry::{noop, Counter, Histogram, Recorder, TelemetryHandle};
use std::collections::HashMap;

/// Cells per crossbar block (8×8 MLC-2 mat).
const BLOCK_CELLS: usize = 64;

/// How the SPECU reacts to device faults during encryption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPolicy {
    /// The fault model driving injected failures.
    pub model: FaultModel,
    /// Maximum re-pulses for a transiently skipped write before the
    /// failure is treated as hard.
    pub max_retries: u32,
    /// Spare regions a polyomino may be remapped into before the block is
    /// declared uncommittable.
    pub spare_regions: u32,
}

impl FaultPolicy {
    /// A policy with no faults (commits always succeed on the first try).
    pub fn none() -> Self {
        FaultPolicy {
            model: FaultModel::none(),
            max_retries: 4,
            spare_regions: 2,
        }
    }

    /// The default recovery ladder (4 retries, 2 spare regions) over an
    /// arbitrary model.
    pub fn with_model(model: FaultModel) -> Self {
        FaultPolicy {
            model,
            ..FaultPolicy::none()
        }
    }

    /// Transient-only faults at `rate` with the default recovery ladder.
    pub fn transient(rate: f64, seed: u64) -> Self {
        FaultPolicy::with_model(FaultModel::transient(rate, seed))
    }

    /// Permanent stuck-at faults at `rate` with the default ladder.
    pub fn stuck(rate: f64, seed: u64) -> Self {
        FaultPolicy::with_model(FaultModel::stuck(rate, seed))
    }
}

/// How the [`crate::parallel::ParallelSpecu`] façade reacts to pipeline
/// failures — the request-level rung of the recovery ladder, mirroring
/// [`FaultPolicy`]'s retry→remap→exhaust sequence one layer up:
///
/// 1. **Retry with backoff** — a retryable failure
///    ([`SpeError::BankPoisoned`](crate::SpeError::BankPoisoned),
///    [`SpeError::JobNeverRan`](crate::SpeError::JobNeverRan)) is
///    resubmitted up to [`RetryPolicy::max_attempts`] times total; each
///    retry sleeps twice the previous backoff. Resubmission re-routes, so
///    a request whose bank was quarantined lands on a healthy one.
/// 2. **Degrade** — when every bank is quarantined
///    ([`SpeError::AllBanksQuarantined`](crate::SpeError::AllBanksQuarantined)),
///    the façade runs the request on the caller's thread through the
///    serial datapath: slower, but the system never stops answering.
/// 3. **Typed failure** — non-retryable errors (deadline expiry,
///    shutdown, datapath errors) and retry exhaustion surface unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total submission attempts per request (first try included);
    /// clamped to at least one.
    pub max_attempts: u32,
    /// Backoff slept before the first retry, in microseconds; doubles on
    /// each further retry (exponential backoff). Zero disables sleeping
    /// (retries are immediate).
    pub backoff_base_us: u64,
}

impl RetryPolicy {
    /// The default ladder: three attempts, 50 µs initial backoff.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_us: 50,
        }
    }

    /// No retries: the first failure surfaces immediately (degradation to
    /// the serial path on full quarantine still applies).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base_us: 0,
        }
    }

    /// The backoff slept before retry attempt `retry` (1-based), in
    /// microseconds: `backoff_base_us * 2^(retry-1)`, saturating.
    pub fn backoff_us(&self, retry: u32) -> u64 {
        if self.backoff_base_us == 0 || retry == 0 {
            return 0;
        }
        self.backoff_base_us
            .saturating_mul(1u64 << (retry - 1).min(20))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::standard()
    }
}

/// Counters accumulated while committing blocks under a [`FaultPolicy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Cell-commit operations attempted (first pulses, not retries).
    pub cell_commits: u64,
    /// Cells that needed at least one retry.
    pub transient_faults: u64,
    /// Extra program pulses issued by the retry ladder.
    pub retries: u64,
    /// Polyomino migrations to a spare region.
    pub remaps: u64,
    /// Blocks abandoned after spare exhaustion.
    pub uncorrectable: u64,
}

impl FaultCounters {
    /// Folds another counter set into this one (order-independent, so
    /// per-bank counters merge deterministically).
    pub fn merge(&mut self, other: &FaultCounters) {
        self.cell_commits += other.cell_commits;
        self.transient_faults += other.transient_faults;
        self.retries += other.retries;
        self.remaps += other.remaps;
        self.uncorrectable += other.uncorrectable;
    }
}

/// Per-block map from logical cell to the physical region holding it.
///
/// Region `0` is the primary mat; regions `1..=spare_regions` are spares.
/// Remapping moves an entire polyomino (all members of a train) one region
/// up, so the cells a schedule couples together always live in the same
/// region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemapTable {
    spare_regions: u32,
    region: [u32; BLOCK_CELLS],
}

impl RemapTable {
    /// A table with every cell in the primary region.
    pub fn new(spare_regions: u32) -> Self {
        RemapTable {
            spare_regions,
            region: [0; BLOCK_CELLS],
        }
    }

    /// The region currently holding logical cell `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell >= 64`.
    pub fn region(&self, cell: usize) -> u32 {
        self.region[cell]
    }

    /// Number of cells living outside the primary region.
    pub fn remapped_cells(&self) -> usize {
        self.region.iter().filter(|r| **r > 0).count()
    }

    /// Moves every listed cell to one region past the highest any of them
    /// occupies (the whole polyomino lands in one region). Returns the new
    /// region, or `None` when the spares are exhausted.
    pub fn remap_cells(&mut self, cells: &[usize]) -> Option<u32> {
        let current = cells.iter().map(|c| self.region[*c]).max()?;
        let next = current + 1;
        if next > self.spare_regions {
            return None;
        }
        for &c in cells {
            self.region[c] = next;
        }
        Some(next)
    }
}

/// Commits one pulse train's member cells under the policy, retrying
/// transients and remapping the polyomino on hard failure.
///
/// `epoch` identifies the train within the block's schedule (round and
/// train index), so every commit draws from an independent slice of the
/// fault stream.
///
/// # Errors
///
/// Returns [`SpeError::FaultExhausted`] when the polyomino cannot be
/// committed in any region; `counters.uncorrectable` is bumped.
pub(crate) fn commit_train(
    policy: &FaultPolicy,
    remap: &mut RemapTable,
    counters: &mut FaultCounters,
    tweak: u64,
    epoch: u64,
    members: &[usize],
    recorder: &dyn Recorder,
) -> Result<(), SpeError> {
    counters.cell_commits += members.len() as u64;
    recorder.add(Counter::CellCommits, members.len() as u64);
    if policy.model.is_none() {
        return Ok(());
    }
    loop {
        let mut hard_failure = false;
        'cells: for &cell in members {
            let phys = phys_cell(tweak, remap.region(cell), cell);
            if policy
                .model
                .permanent_fault(phys)
                .is_some_and(FaultKind::is_permanent)
            {
                hard_failure = true;
                break 'cells;
            }
            let mut recovered = false;
            for attempt in 0..=policy.max_retries {
                if !policy.model.write_skipped(phys, epoch, attempt) {
                    if attempt > 0 {
                        counters.transient_faults += 1;
                        counters.retries += attempt as u64;
                        recorder.add(Counter::TransientFaults, 1);
                        recorder.add(Counter::Retries, attempt as u64);
                    }
                    // The final pulse width after exponential backoff, in
                    // units of the nominal width (doubles per retry).
                    recorder.observe(Histogram::PulseWidth, 1u64 << attempt.min(63));
                    recovered = true;
                    break;
                }
            }
            if !recovered {
                counters.transient_faults += 1;
                counters.retries += policy.max_retries as u64;
                recorder.add(Counter::TransientFaults, 1);
                recorder.add(Counter::Retries, policy.max_retries as u64);
                hard_failure = true;
                break 'cells;
            }
        }
        if !hard_failure {
            return Ok(());
        }
        match remap.remap_cells(members) {
            Some(_) => {
                counters.remaps += 1;
                recorder.add(Counter::Remaps, 1);
            }
            None => {
                counters.uncorrectable += 1;
                recorder.add(Counter::Uncorrectable, 1);
                return Err(SpeError::FaultExhausted {
                    tweak,
                    spares: policy.spare_regions,
                });
            }
        }
    }
}

/// The physical cell id of a logical block cell in a given region.
///
/// Mixed from `(tweak, region, cell)` so remapping re-draws the cell's
/// fault independently, and so every block in the address space owns a
/// disjoint slice of physical cells.
fn phys_cell(tweak: u64, region: u32, cell: usize) -> u64 {
    let mut z = tweak
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add((region as u64) << 32 | cell as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Outcome of a [`LineGuard`] integrity check.
///
/// The guard escalates a detected violation through the same spare-region
/// ladder the write-verify path uses, so "integrity" and "fault recovery"
/// share one remap surface instead of two bolted-on mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityEscalation {
    /// The recorded parity matched (or the line was never guarded).
    Clean,
    /// Parity mismatched; the line migrated to spare region `region` and
    /// its parity record was cleared — the caller must re-seal it there.
    Remapped {
        /// The violated line address.
        line: u64,
        /// The spare region now holding it.
        region: u32,
    },
}

/// The unified per-line integrity surface: one guard in front of the
/// NVMM that folds every sealed line into a parity word on write and
/// verifies it on read, escalating violations into the [`RemapTable`]
/// spare-region ladder.
///
/// Before this layer, integrity lived in two places: keyed per-block
/// tags (checked only on the resilient decrypt path) and the
/// `FaultMap`-driven write-verify ladder (which only sees faults *it*
/// injects). `LineGuard` closes the gap between them — silent
/// corruption of data *at rest* (disturbance, drift, a targeted-cell
/// attacker flipping bits between write and read) is detected at the
/// line granularity the memory system actually transfers, and a
/// detected violation walks the same ladder a write fault would:
/// migrate the line one spare region up and demand a re-seal, or fail
/// typed ([`SpeError::IntegrityViolation`]) when the spares are gone.
///
/// Telemetry: every verification counts under `integrity_checks`,
/// every mismatch under `integrity_failures`, every migration under
/// `remaps` — the same counters the tag and write-verify paths use.
#[derive(Debug, Clone)]
pub struct LineGuard {
    spare_regions: u32,
    /// Parity word per guarded line, keyed by line address.
    parity: HashMap<u64, u64>,
    /// Spare-region occupancy per line (created on first violation).
    regions: HashMap<u64, u32>,
    /// Violations detected over the guard's lifetime.
    violations: u64,
    recorder: TelemetryHandle,
}

impl LineGuard {
    /// A guard with `spare_regions` escalation steps per line (0 means a
    /// violation is immediately uncorrectable).
    pub fn new(spare_regions: u32) -> Self {
        LineGuard {
            spare_regions,
            parity: HashMap::new(),
            regions: HashMap::new(),
            violations: 0,
            recorder: noop(),
        }
    }

    /// Attaches a telemetry recorder.
    pub fn set_recorder(&mut self, recorder: TelemetryHandle) {
        self.recorder = recorder;
    }

    /// The keyed-fold parity word of a sealed line: every ciphertext
    /// byte, block tweak and integrity tag participates, mixed through
    /// the same splitmix finalizer as [`phys_cell`] so a single flipped
    /// bit avalanches through the whole word.
    pub fn parity_word(sealed: &CipherLine) -> u64 {
        let mut acc = 0x5345_4355_5245_5041u64; // "SECUREPA"
        for block in &sealed.blocks {
            acc = splitmix(acc ^ block.tweak());
            for byte in block.data() {
                acc = splitmix(acc ^ byte as u64);
            }
            if let Some(tag) = block.tag() {
                acc = splitmix(acc ^ tag);
            }
        }
        acc
    }

    /// The parity word of any sealed-line representation: SPE crossbar
    /// lines fold through [`parity_word`](LineGuard::parity_word),
    /// conventional ciphertext bytes (AES/stream/i-NVMM) fold their data
    /// and derivation address through the same mixer — the guard is
    /// scheme-agnostic, exactly like the NVMM channel it sits on.
    pub fn parity_of(sealed: &crate::engine::SealedLine) -> u64 {
        match sealed {
            crate::engine::SealedLine::Spe(line) => LineGuard::parity_word(line),
            crate::engine::SealedLine::Bytes { data, address } => {
                let mut acc = splitmix(0x5345_4355_5245_5041u64 ^ *address);
                for byte in data {
                    acc = splitmix(acc ^ *byte as u64);
                }
                acc
            }
        }
    }

    /// Records the parity of `sealed` as the ground truth for
    /// `line_addr` (called on every NVMM write-back).
    pub fn protect(&mut self, line_addr: u64, sealed: &CipherLine) {
        let word = LineGuard::parity_word(sealed);
        self.parity.insert(line_addr, word);
    }

    /// [`protect`](LineGuard::protect) over any [`crate::engine::SealedLine`].
    pub fn protect_sealed(&mut self, line_addr: u64, sealed: &crate::engine::SealedLine) {
        let word = LineGuard::parity_of(sealed);
        self.parity.insert(line_addr, word);
    }

    /// Verifies `sealed` against the recorded parity for `line_addr`
    /// (called on every NVMM read). An unguarded line passes vacuously.
    ///
    /// # Errors
    ///
    /// [`SpeError::IntegrityViolation`] when the parity mismatches and
    /// every spare region is exhausted — the line is uncorrectable.
    pub fn check(
        &mut self,
        line_addr: u64,
        sealed: &CipherLine,
    ) -> Result<IntegrityEscalation, SpeError> {
        self.verify(line_addr, LineGuard::parity_word(sealed))
    }

    /// [`check`](LineGuard::check) over any [`crate::engine::SealedLine`].
    ///
    /// # Errors
    ///
    /// [`SpeError::IntegrityViolation`] on spare-region exhaustion,
    /// exactly as [`check`](LineGuard::check).
    pub fn check_sealed(
        &mut self,
        line_addr: u64,
        sealed: &crate::engine::SealedLine,
    ) -> Result<IntegrityEscalation, SpeError> {
        self.verify(line_addr, LineGuard::parity_of(sealed))
    }

    fn verify(&mut self, line_addr: u64, actual: u64) -> Result<IntegrityEscalation, SpeError> {
        self.recorder.add(Counter::IntegrityChecks, 1);
        let Some(&expected) = self.parity.get(&line_addr) else {
            return Ok(IntegrityEscalation::Clean);
        };
        if actual == expected {
            return Ok(IntegrityEscalation::Clean);
        }
        self.violations += 1;
        self.recorder.add(Counter::IntegrityFailures, 1);
        let region = self.regions.entry(line_addr).or_insert(0);
        if *region >= self.spare_regions {
            self.recorder.add(Counter::Uncorrectable, 1);
            return Err(SpeError::IntegrityViolation { tweak: line_addr });
        }
        *region += 1;
        // The old copy is untrusted: drop its parity so the caller's
        // re-seal re-arms the guard in the new region.
        self.parity.remove(&line_addr);
        self.recorder.add(Counter::Remaps, 1);
        Ok(IntegrityEscalation::Remapped {
            line: line_addr,
            region: *region,
        })
    }

    /// The spare region currently holding `line_addr` (0 = primary).
    pub fn region_of(&self, line_addr: u64) -> u32 {
        self.regions.get(&line_addr).copied().unwrap_or(0)
    }

    /// Lines with a recorded parity word.
    pub fn guarded_lines(&self) -> usize {
        self.parity.len()
    }

    /// Violations detected over the guard's lifetime.
    pub fn violations(&self) -> u64 {
        self.violations
    }
}

/// splitmix64 finalizer shared by [`phys_cell`] and the parity fold.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_telemetry::noop;

    #[test]
    fn no_fault_policy_commits_without_recovery() {
        let policy = FaultPolicy::none();
        let mut remap = RemapTable::new(policy.spare_regions);
        let mut counters = FaultCounters::default();
        commit_train(
            &policy,
            &mut remap,
            &mut counters,
            7,
            0,
            &[0, 1, 2],
            noop().as_ref(),
        )
        .expect("commit");
        assert_eq!(counters.cell_commits, 3);
        assert_eq!(counters.retries, 0);
        assert_eq!(counters.remaps, 0);
        assert_eq!(remap.remapped_cells(), 0);
    }

    #[test]
    fn transient_faults_are_absorbed_by_retries() {
        let policy = FaultPolicy::transient(0.2, 11);
        let mut remap = RemapTable::new(policy.spare_regions);
        let mut counters = FaultCounters::default();
        let members: Vec<usize> = (0..BLOCK_CELLS).collect();
        for epoch in 0..64 {
            commit_train(
                &policy,
                &mut remap,
                &mut counters,
                1,
                epoch,
                &members,
                noop().as_ref(),
            )
            .expect("retries absorb a 20% transient rate");
        }
        assert!(counters.retries > 0, "some retries must have happened");
        assert!(counters.transient_faults > 0);
    }

    #[test]
    fn stuck_cells_force_remap_and_then_exhaustion() {
        // With every cell stuck, the first commit remaps through all the
        // spares and then fails with the typed error.
        let policy = FaultPolicy {
            model: FaultModel::stuck(1.0, 3),
            max_retries: 2,
            spare_regions: 2,
        };
        let mut remap = RemapTable::new(policy.spare_regions);
        let mut counters = FaultCounters::default();
        let err = commit_train(
            &policy,
            &mut remap,
            &mut counters,
            9,
            0,
            &[0, 1, 2, 3],
            noop().as_ref(),
        )
        .expect_err("all-stuck cells cannot commit");
        assert_eq!(
            err,
            SpeError::FaultExhausted {
                tweak: 9,
                spares: 2
            }
        );
        assert_eq!(counters.remaps, 2, "both spares were tried");
        assert_eq!(counters.uncorrectable, 1);
    }

    #[test]
    fn remap_moves_whole_polyomino_together() {
        let mut remap = RemapTable::new(3);
        assert_eq!(remap.remap_cells(&[4, 5, 6]), Some(1));
        for c in [4, 5, 6] {
            assert_eq!(remap.region(c), 1);
        }
        assert_eq!(remap.region(7), 0, "non-members stay put");
        // Overlapping polyomino: lands one past the highest member region.
        assert_eq!(remap.remap_cells(&[6, 7]), Some(2));
        assert_eq!(remap.region(6), 2);
        assert_eq!(remap.region(7), 2);
        assert_eq!(remap.remapped_cells(), 4);
    }

    #[test]
    fn remap_exhausts_after_spare_regions() {
        let mut remap = RemapTable::new(1);
        assert_eq!(remap.remap_cells(&[0]), Some(1));
        assert_eq!(remap.remap_cells(&[0]), None);
    }

    #[test]
    fn commit_is_deterministic() {
        let policy = FaultPolicy::transient(0.3, 42);
        let members: Vec<usize> = (0..16).collect();
        let run = || {
            let mut remap = RemapTable::new(policy.spare_regions);
            let mut counters = FaultCounters::default();
            for epoch in 0..32 {
                let _ = commit_train(
                    &policy,
                    &mut remap,
                    &mut counters,
                    5,
                    epoch,
                    &members,
                    noop().as_ref(),
                );
            }
            counters
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn retry_backoff_doubles_per_attempt() {
        let p = RetryPolicy {
            max_attempts: 4,
            backoff_base_us: 100,
        };
        assert_eq!(p.backoff_us(1), 100);
        assert_eq!(p.backoff_us(2), 200);
        assert_eq!(p.backoff_us(3), 400);
        // Zero base disables sleeping entirely.
        assert_eq!(RetryPolicy::none().backoff_us(1), 0);
        // Deep retries saturate instead of overflowing.
        let deep = RetryPolicy {
            max_attempts: 80,
            backoff_base_us: u64::MAX / 2,
        };
        assert_eq!(deep.backoff_us(70), u64::MAX);
    }

    #[test]
    fn counters_merge_is_order_independent() {
        let a = FaultCounters {
            cell_commits: 10,
            transient_faults: 2,
            retries: 3,
            remaps: 1,
            uncorrectable: 0,
        };
        let b = FaultCounters {
            cell_commits: 7,
            transient_faults: 1,
            retries: 1,
            remaps: 0,
            uncorrectable: 1,
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.cell_commits, 17);
        assert_eq!(ab.retries, 4);
    }

    mod line_guard {
        use super::super::*;
        use crate::key::Key;
        use crate::request::{CipherRequest, SpeCipher};
        use crate::specu::Specu;
        use spe_telemetry::AtomicRecorder;
        use std::sync::{Arc, OnceLock};

        fn specu() -> &'static Specu {
            static CACHE: OnceLock<Specu> = OnceLock::new();
            CACHE.get_or_init(|| {
                Specu::builder()
                    .key(Key::from_seed(0x6A3D))
                    .build()
                    .expect("specu")
            })
        }

        fn sealed(addr: u64) -> CipherLine {
            let pt: [u8; 64] = core::array::from_fn(|i| (i as u8).wrapping_mul(31) ^ addr as u8);
            specu()
                .encrypt(CipherRequest::line(pt, addr).verified())
                .expect("encrypt")
                .into_line()
                .expect("line")
        }

        #[test]
        fn intact_lines_check_clean_and_unguarded_pass_vacuously() {
            let mut guard = LineGuard::new(2);
            let line = sealed(0x40);
            guard.protect(0x40, &line);
            assert_eq!(
                guard.check(0x40, &line).expect("clean"),
                IntegrityEscalation::Clean
            );
            assert_eq!(
                guard.check(0x80, &line).expect("unguarded"),
                IntegrityEscalation::Clean
            );
            assert_eq!(guard.violations(), 0);
            assert_eq!(guard.guarded_lines(), 1);
        }

        #[test]
        fn parity_sees_reordered_blocks_and_flipped_state() {
            let line = sealed(0x100);
            let base = LineGuard::parity_word(&line);
            let mut reordered = line.clone();
            reordered.blocks.swap(0, 1);
            assert_ne!(base, LineGuard::parity_word(&reordered));
        }

        #[test]
        fn violation_walks_the_spare_ladder_then_fails_typed() {
            let recorder = Arc::new(AtomicRecorder::new());
            let mut guard = LineGuard::new(1);
            guard.set_recorder(recorder.clone());
            let good = sealed(0x200);
            let mut bad = good.clone();
            bad.blocks.swap(0, 1);

            guard.protect(0x200, &good);
            // First violation: escalates into spare region 1 and clears
            // the parity record pending a re-seal.
            match guard.check(0x200, &bad).expect("remapped") {
                IntegrityEscalation::Remapped { line, region } => {
                    assert_eq!(line, 0x200);
                    assert_eq!(region, 1);
                }
                other => panic!("expected remap, got {other:?}"),
            }
            assert_eq!(guard.region_of(0x200), 1);
            // Re-seal in the new region, then violate again: the ladder
            // is exhausted and the typed violation escapes.
            guard.protect(0x200, &good);
            match guard.check(0x200, &bad) {
                Err(SpeError::IntegrityViolation { tweak }) => assert_eq!(tweak, 0x200),
                other => panic!("expected IntegrityViolation, got {other:?}"),
            }
            assert_eq!(guard.violations(), 2);
            assert_eq!(recorder.counter(Counter::IntegrityChecks), 2);
            assert_eq!(recorder.counter(Counter::IntegrityFailures), 2);
            assert_eq!(recorder.counter(Counter::Remaps), 1);
            assert_eq!(recorder.counter(Counter::Uncorrectable), 1);
        }
    }
}
