//! Security and timing analyses (§6.2 brute force, §6.4 cold boot, Table 3
//! area figures).

use crate::bignum::BigUint;

/// Seconds per (Julian) year.
pub const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;

/// Exact keyspace arithmetic for a brute-force attack on SPE.
#[derive(Debug, Clone, PartialEq)]
pub struct BruteForceReport {
    /// Number of candidate keys the attacker must try.
    pub keyspace: BigUint,
    /// Seconds per attempt (PoE pulses × pulse time).
    pub seconds_per_attempt: f64,
    /// log₁₀ of the attack duration in years.
    pub log10_years: f64,
}

impl BruteForceReport {
    fn from_keyspace(keyspace: BigUint, poes: u64, seconds_per_poe: f64) -> Self {
        let seconds_per_attempt = poes as f64 * seconds_per_poe;
        let log10_years = keyspace.log10() + seconds_per_attempt.log10() - SECONDS_PER_YEAR.log10();
        BruteForceReport {
            keyspace,
            seconds_per_attempt,
            log10_years,
        }
    }
}

/// §6.2.1 full brute force: the attacker tries every PoE sequence
/// (`P(cells, poes)`) combined with every pulse assignment
/// (`pulses^poes`), at `seconds_per_poe` per applied pulse.
///
/// Paper instance: `P(64,16) · 32¹⁶` at 100 ns per PoE.
pub fn brute_force_full(
    cells: u64,
    poes: u64,
    pulses: u64,
    seconds_per_poe: f64,
) -> BruteForceReport {
    let keyspace =
        BigUint::permutations(cells, poes).mul(&BigUint::from_u64(pulses).pow(poes as u32));
    BruteForceReport::from_keyspace(keyspace, poes, seconds_per_poe)
}

/// §6.2.1 "attacker knows the ILP": the PoE *set* is known, so only the
/// order (`poes!`) and the per-PoE pulse widths (`widths^poes`) remain.
///
/// Paper instance: `16! · 16¹⁶` (16 widths per polarity once the polarity
/// is inferred from the resistance transition).
pub fn brute_force_known_ilp(poes: u64, widths: u64, seconds_per_poe: f64) -> BruteForceReport {
    let keyspace = BigUint::factorial(poes).mul(&BigUint::from_u64(widths).pow(poes as u32));
    BruteForceReport::from_keyspace(keyspace, poes, seconds_per_poe)
}

/// Reference AES-128 exhaustive search for comparison (2¹²⁸ keys at the
/// same attempt rate the paper assumes).
pub fn brute_force_aes(seconds_per_attempt: f64) -> BruteForceReport {
    let keyspace = BigUint::from_u64(2).pow(128);
    let log10_years = keyspace.log10() + seconds_per_attempt.log10() - SECONDS_PER_YEAR.log10();
    BruteForceReport {
        keyspace,
        seconds_per_attempt,
        log10_years,
    }
}

/// §6.4 cold-boot exposure window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColdBootReport {
    /// Nanoseconds to encrypt one 64-byte block (16 PoE writes).
    pub ns_per_block: f64,
    /// Number of cache lines written back at power-down.
    pub lines: u64,
    /// Total window in seconds.
    pub window_seconds: f64,
}

/// Computes the power-down encryption window for a full cache write-back.
///
/// Paper instance: 16 PoE writes × 100 ns = 1600 ns per 64-byte block, for
/// a 2 Mb cache (full write-back worst case), vs ≈ 3.2 s of DRAM retention.
pub fn cold_boot_window(cache_bytes: u64, poes_per_block: u32, ns_per_poe: f64) -> ColdBootReport {
    let ns_per_block = poes_per_block as f64 * ns_per_poe;
    let lines = cache_bytes / 64;
    ColdBootReport {
        ns_per_block,
        lines,
        window_seconds: lines as f64 * ns_per_block * 1e-9,
    }
}

/// Scales an area figure between technology nodes (first-order quadratic
/// scaling, the approximation Table 3's footnote uses for AES
/// 180 nm → 65 nm).
pub fn scale_area(area_mm2: f64, from_nm: f64, to_nm: f64) -> f64 {
    area_mm2 * (to_nm / from_nm).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_brute_force_is_astronomical() {
        let report = brute_force_full(64, 16, 32, 100e-9);
        // P(64,16)·32^16 ≈ 10^52.1; at 1.6 µs/attempt ≈ 10^39 years.
        assert!((report.keyspace.log10() - 52.1).abs() < 0.3);
        assert!(
            report.log10_years > 35.0,
            "log10 years {}",
            report.log10_years
        );
    }

    #[test]
    fn known_ilp_matches_papers_scale() {
        let report = brute_force_known_ilp(16, 16, 100e-9);
        // 16!·16^16 ≈ 3.9e32 keys → ≈ 2e19 years (paper: ~10^19 years).
        assert!((report.keyspace.log10() - 32.6).abs() < 0.2);
        assert!(
            (report.log10_years - 19.0).abs() < 1.0,
            "log10 years {}",
            report.log10_years
        );
    }

    #[test]
    fn aes_reference_exceeds_spe_known_ilp() {
        let aes = brute_force_aes(1.6e-6);
        let ilp = brute_force_known_ilp(16, 16, 100e-9);
        assert!(aes.log10_years > ilp.log10_years);
        // 2^128 ≈ 10^38.5 keys.
        assert!((aes.keyspace.log10() - 38.5).abs() < 0.2);
    }

    #[test]
    fn cold_boot_window_per_paper() {
        let r = cold_boot_window(64, 16, 100.0);
        assert_eq!(r.lines, 1);
        assert!((r.ns_per_block - 1600.0).abs() < 1e-9);
        // 2 MB L2 full write-back.
        let full = cold_boot_window(2 * 1024 * 1024, 16, 100.0);
        assert!(
            full.window_seconds < 0.1,
            "SPE window {} s must be far below DRAM's 3.2 s",
            full.window_seconds
        );
    }

    #[test]
    fn area_scaling_matches_table3_footnote() {
        // 8.0 mm² at 180 nm ≈ 1.04 mm² at 65 nm by pure quadratic scaling;
        // the paper rounds to ~2.2 mm² (less-than-ideal scaling). Check the
        // first-order result brackets it.
        let scaled = scale_area(8.0, 180.0, 65.0);
        assert!(scaled > 0.9 && scaled < 2.2, "scaled area {scaled}");
    }
}
