//! The SPECU look-up tables (Fig. 1b): pulse voltage/width and PoE address.

use spe_crossbar::CellAddr;
use spe_memristor::Pulse;

/// Number of distinct pulses the generator produces (§5.4: 16 widths at
/// each of ±1 V).
pub const PULSE_COUNT: usize = 32;

/// The voltage/pulse-width LUT: maps a 5-bit PRNG value to one of 32
/// pulses.
///
/// Widths start at the paper's Fig. 2 lower bound (0.04 µs) and extend to
/// 0.2 µs so that with the calibrated device kinetics a full-drive pulse can
/// traverse the whole four-level ladder (needed for ciphertext balance; see
/// EXPERIMENTS.md).
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageLut {
    pulses: Vec<Pulse>,
}

impl Default for VoltageLut {
    fn default() -> Self {
        VoltageLut::new(1.0, 0.04e-6, 0.2e-6)
    }
}

impl VoltageLut {
    /// Builds the LUT with 16 linearly spaced widths between `w_min` and
    /// `w_max` at each of `±amplitude`.
    ///
    /// # Panics
    ///
    /// Panics if the width range is empty or non-positive.
    pub fn new(amplitude: f64, w_min: f64, w_max: f64) -> Self {
        assert!(w_min > 0.0 && w_max > w_min, "invalid width range");
        // The asserted range keeps every descriptor physical, so the
        // literals cannot hit `Pulse::new`'s error path.
        let mut pulses = Vec::with_capacity(PULSE_COUNT);
        for i in 0..16 {
            let w = w_min + (w_max - w_min) * i as f64 / 15.0;
            pulses.push(Pulse {
                voltage: amplitude,
                width: w,
            });
        }
        for i in 0..16 {
            let w = w_min + (w_max - w_min) * i as f64 / 15.0;
            pulses.push(Pulse {
                voltage: -amplitude,
                width: w,
            });
        }
        VoltageLut { pulses }
    }

    /// The pulse for a LUT index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn pulse(&self, index: usize) -> Pulse {
        self.pulses[index]
    }

    /// All 32 pulses.
    pub fn pulses(&self) -> &[Pulse] {
        &self.pulses
    }
}

/// The address LUT: the PoE cells selected by the placement ILP, in
/// canonical order. The key's PRNG permutes this list to produce the
/// per-block PoE sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressLut {
    poes: Vec<CellAddr>,
}

impl AddressLut {
    /// Builds the LUT from PoE cells.
    ///
    /// # Panics
    ///
    /// Panics if `poes` is empty.
    pub fn new(poes: Vec<CellAddr>) -> Self {
        assert!(!poes.is_empty(), "address LUT needs at least one PoE");
        AddressLut { poes }
    }

    /// Number of PoEs.
    pub fn len(&self) -> usize {
        self.poes.len()
    }

    /// Whether the LUT is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.poes.is_empty()
    }

    /// The PoE at a canonical index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn poe(&self, index: usize) -> CellAddr {
        self.poes[index]
    }

    /// All PoEs in canonical order.
    pub fn poes(&self) -> &[CellAddr] {
        &self.poes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_lut_has_32_distinct_pulses() {
        let lut = VoltageLut::default();
        assert_eq!(lut.pulses().len(), 32);
        let mut seen = std::collections::HashSet::new();
        for p in lut.pulses() {
            assert!(seen.insert((p.voltage.to_bits(), p.width.to_bits())));
        }
    }

    #[test]
    fn voltage_lut_polarity_split() {
        let lut = VoltageLut::default();
        assert!(lut.pulses()[..16].iter().all(|p| p.voltage > 0.0));
        assert!(lut.pulses()[16..].iter().all(|p| p.voltage < 0.0));
    }

    #[test]
    fn widths_span_requested_range() {
        let lut = VoltageLut::new(1.0, 0.04e-6, 0.2e-6);
        assert!((lut.pulse(0).width - 0.04e-6).abs() < 1e-12);
        assert!((lut.pulse(15).width - 0.2e-6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid width range")]
    fn rejects_empty_width_range() {
        let _ = VoltageLut::new(1.0, 0.1e-6, 0.04e-6);
    }

    #[test]
    fn address_lut_roundtrip() {
        let poes = vec![CellAddr::new(0, 1), CellAddr::new(3, 4)];
        let lut = AddressLut::new(poes.clone());
        assert_eq!(lut.len(), 2);
        assert_eq!(lut.poe(1), CellAddr::new(3, 4));
        assert_eq!(lut.poes(), &poes[..]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn address_lut_rejects_empty() {
        let _ = AddressLut::new(Vec::new());
    }
}
