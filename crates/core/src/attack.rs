//! Attack experiments (§3 threat model, §6 security analysis).
//!
//! These are *executable* versions of the paper's arguments:
//!
//! * [`wrong_order_decrypt`] — Fig. 2b: decrypting with the correct PoEs in
//!   the wrong order corrupts the plaintext.
//! * [`known_plaintext_ambiguity`] — §6.2.2: a cell covered by overlapping
//!   polyominoes admits many pulse combinations that explain the observed
//!   resistance change, forcing the attacker back to brute force.
//! * [`brute_force_reduced`] — an actual exhaustive search on a reduced
//!   instance (tiny LUT, few PoEs), demonstrating the cost scaling that
//!   §6.2.1 extrapolates.
//! * [`access_pattern_correlation`] / [`targeted_cell_attack`] — the two
//!   placement attacks the keyed [`crate::AddressScrambler`] defeats: bus
//!   snooping that correlates physical traffic with known logical hot
//!   spots, and Rowhammer-style aggression against rows assumed adjacent
//!   to a victim. Both run against any [`Remapper`], so the same
//!   experiment measures the identity layout (attack works) and the
//!   scrambled one (success collapses to chance).

use crate::error::SpeError;
use crate::scramble::Remapper;
use crate::specu::{SpeContext, Specu, BLOCK_BYTES};
use spe_crossbar::{CellAddr, Dims};
use spe_memristor::Pulse;
use std::sync::Arc;

/// Result of the Fig. 2b wrong-order experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct WrongOrderReport {
    /// Plaintext recovered with the correct (reverse) order.
    pub correct: [u8; BLOCK_BYTES],
    /// "Plaintext" recovered with a wrong order.
    pub wrong: [u8; BLOCK_BYTES],
    /// Number of mismatching bytes between the two.
    pub corrupted_bytes: usize,
}

/// Runs Fig. 2b: encrypt, then decrypt once with the correct reversed
/// schedule and once with the PoEs in forward (wrong) order.
///
/// # Errors
///
/// Propagates [`SpeError`] from the SPECU.
pub fn wrong_order_decrypt(
    specu: &Specu,
    plaintext: &[u8; BLOCK_BYTES],
) -> Result<WrongOrderReport, SpeError> {
    let block = specu.context()?.encrypt_block(plaintext, 0)?;
    let correct = specu.context()?.decrypt_block(&block)?;

    // Wrong order: replay the *forward* schedule inverses (first PoE first).
    let schedule = specu.schedule(block.tweak())?;
    let mut arr = rebuild_array(specu, &block.states)?;
    for _ in 0..specu.config().rounds {
        for (poe, pulse) in schedule.steps() {
            arr.apply_pulse_inverse(*poe, *pulse)?;
        }
    }
    let wrong = crate::specu::levels_to_bytes(&arr.levels());
    let corrupted_bytes = correct.iter().zip(&wrong).filter(|(a, b)| a != b).count();
    Ok(WrongOrderReport {
        correct,
        wrong,
        corrupted_bytes,
    })
}

fn rebuild_array(specu: &Specu, states: &[f64]) -> Result<spe_crossbar::FastArray, SpeError> {
    let mut arr = spe_crossbar::FastArray::new(
        spe_crossbar::Dims::square8(),
        specu.config().device.clone(),
        *specu.fast_params(),
        specu.kernel().clone(),
    )?;
    arr.set_states(states)?;
    Ok(arr)
}

/// §6.2.2 known-plaintext analysis for one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct AmbiguityReport {
    /// The analysed cell.
    pub cell: CellAddr,
    /// How many polyominoes of the schedule cover it.
    pub coverage: usize,
    /// Number of pulse combinations consistent with the observed state
    /// change (1 ⇒ the attacker learns the pulses; >1 ⇒ ambiguous).
    pub consistent_combinations: usize,
}

/// Counts pulse combinations consistent with a known plaintext/ciphertext
/// pair at one cell.
///
/// The attacker knows the PoE addresses and the cell's initial and final
/// analog state, and enumerates LUT pulse pairs; every pair whose combined
/// nominal effect matches the observation (within `tolerance` of the logit
/// shift) stays on the candidate list.
///
/// The analysis runs on the *analog* pulse semantics (the paper's §6.2.2
/// argument is about analog resistance transitions); the keyed schedule is
/// shared with whatever variant the SPECU is configured for.
///
/// # Errors
///
/// Propagates [`SpeError`] from the SPECU.
pub fn known_plaintext_ambiguity(
    specu: &Specu,
    plaintext: &[u8; BLOCK_BYTES],
    tolerance: f64,
) -> Result<Vec<AmbiguityReport>, SpeError> {
    let block = specu.context()?.encrypt_block(plaintext, 0)?;
    let schedule = specu.schedule(block.tweak())?;

    // Forward-simulate to get pre/post states (the attacker has these for a
    // known plaintext).
    let mut arr = rebuild_array(specu, &{
        let mut tmp = rebuild_array(specu, &vec![0.0; 64])?;
        tmp.write_levels(&crate::specu::bytes_to_levels(plaintext))?;
        tmp.states().to_vec()
    })?;
    let pre = arr.states().to_vec();
    for (poe, pulse) in schedule.steps() {
        arr.apply_pulse(*poe, *pulse)?;
    }
    let post = arr.states().to_vec();

    let dims = spe_crossbar::Dims::square8();
    let vt = specu.config().device.v_threshold;
    let mut reports = Vec::new();
    for cell in dims.iter() {
        // Which schedule steps cover this cell (geometric membership)?
        let covering: Vec<(CellAddr, Pulse)> = schedule
            .steps()
            .iter()
            .filter(|(poe, pulse)| {
                let (dr, dc) = cell.offset_from(*poe);
                specu.kernel().at(dr, dc) * pulse.voltage.abs() >= vt
            })
            .copied()
            .collect();
        if covering.len() < 2 {
            continue;
        }
        // States are stored in logit coordinates, so the observed shift is
        // a direct difference.
        let observed = post[dims.index(cell)] - pre[dims.index(cell)];
        // Enumerate pulse choices at each covering PoE from the 32-entry LUT.
        let lut = specu.voltages().pulses().to_vec();
        let mut consistent = 0usize;
        let mut assign = vec![0usize; covering.len()];
        loop {
            let mut total = 0.0;
            for (slot, (poe, _)) in assign.iter().zip(&covering) {
                let p = lut[*slot];
                let (dr, dc) = cell.offset_from(*poe);
                let v = p.voltage * specu.kernel().at(dr, dc);
                total += specu.fast_params().logit_shift(v, p.width);
            }
            if (total - observed).abs() <= tolerance {
                consistent += 1;
            }
            // Odometer increment over the assignment vector.
            let mut k = 0;
            loop {
                assign[k] += 1;
                if assign[k] < lut.len() {
                    break;
                }
                assign[k] = 0;
                k += 1;
                if k == assign.len() {
                    break;
                }
            }
            if k == assign.len() {
                break;
            }
        }
        reports.push(AmbiguityReport {
            cell,
            coverage: covering.len(),
            consistent_combinations: consistent,
        });
    }
    Ok(reports)
}

/// Result of the reduced exhaustive search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BruteForceRunReport {
    /// Schedules tried before the plaintext was recovered.
    pub attempts: usize,
    /// Total size of the reduced schedule space.
    pub space: usize,
    /// Whether the true schedule was found.
    pub recovered: bool,
}

/// Exhaustively searches a *reduced* schedule space: `poes` PoEs from the
/// SPECU's LUT (known set, unknown order) and a pruned pulse LUT of
/// `pulse_choices` entries. Demonstrates §6.2.1's scaling on an instance
/// small enough to actually enumerate.
///
/// # Errors
///
/// Propagates [`SpeError`] from the SPECU.
///
/// # Panics
///
/// Panics if `poes > 5` (the factorial space would be excessive for a test
/// helper) or `poes == 0`.
pub fn brute_force_reduced(
    specu: &Specu,
    plaintext: &[u8; BLOCK_BYTES],
    poes: usize,
    pulse_choices: usize,
) -> Result<BruteForceRunReport, SpeError> {
    assert!(
        (1..=5).contains(&poes),
        "reduced search supports 1..=5 PoEs"
    );
    let poe_list: Vec<CellAddr> = specu.addresses().poes()[..poes].to_vec();
    let lut: Vec<Pulse> = specu.voltages().pulses()[..pulse_choices].to_vec();

    // The "true" schedule the victim used (first `poes` steps of a keyed
    // schedule restricted to the reduced space).
    let mut prng_schedule = Vec::new();
    {
        let steps = specu.schedule(0)?;
        for (i, poe) in poe_list.iter().enumerate() {
            let (_, pulse) = steps.steps()[i % steps.len()];
            // Snap the pulse to the reduced LUT.
            let snapped = lut
                .iter()
                .min_by(|a, b| {
                    let da = (a.width - pulse.width).abs() + (a.voltage - pulse.voltage).abs();
                    let db = (b.width - pulse.width).abs() + (b.voltage - pulse.voltage).abs();
                    da.partial_cmp(&db).expect("finite widths")
                })
                .copied()
                .expect("non-empty LUT");
            prng_schedule.push((*poe, snapped));
        }
    }

    // Victim encryption.
    let mut victim = rebuild_array(specu, &{
        let mut tmp = rebuild_array(specu, &vec![0.0; 64])?;
        tmp.write_levels(&crate::specu::bytes_to_levels(plaintext))?;
        tmp.states().to_vec()
    })?;
    for (poe, pulse) in &prng_schedule {
        victim.apply_pulse(*poe, *pulse)?;
    }
    let cipher_states = victim.states().to_vec();

    // Exhaustive search over (permutation, pulse assignment).
    let mut attempts = 0usize;
    let mut recovered = false;
    let perms = permutations(poes);
    let space = perms.len() * lut.len().pow(poes as u32);
    'search: for perm in &perms {
        let mut assign = vec![0usize; poes];
        loop {
            attempts += 1;
            let mut arr = rebuild_array(specu, &cipher_states)?;
            // Candidate decryption: reverse order of the candidate schedule.
            for k in (0..poes).rev() {
                arr.apply_pulse_inverse(poe_list[perm[k]], lut[assign[k]])?;
            }
            if crate::specu::levels_to_bytes(&arr.levels()) == *plaintext {
                recovered = true;
                break 'search;
            }
            let mut k = 0;
            loop {
                assign[k] += 1;
                if assign[k] < lut.len() {
                    break;
                }
                assign[k] = 0;
                k += 1;
                if k == poes {
                    break;
                }
            }
            if k == poes {
                break;
            }
        }
    }
    Ok(BruteForceRunReport {
        attempts,
        space,
        recovered,
    })
}

/// Outcome of a placement attack over many trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrambleAttackReport {
    /// Independent attack trials run.
    pub trials: usize,
    /// Trials where the attacker's physical guess was correct.
    pub hits: usize,
}

impl ScrambleAttackReport {
    /// Hit fraction (0.0 when no trials ran).
    pub fn success_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.hits as f64 / self.trials as f64
        }
    }
}

/// Deterministic trial mixer (splitmix64 finalizer) so attack experiments
/// reproduce bit-for-bit across runs.
fn trial_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Access-pattern correlation (§3's bus-snooping adversary).
///
/// The victim repeatedly touches one hot logical line per trial; the
/// attacker probes the memory bus, sees which *physical* slot carries the
/// traffic, and — knowing the machine's public (identity) address layout —
/// claims that slot's address *is* the victim's secret hot line. Against
/// an unscrambled memory the claim is always right. Against a keyed
/// [`crate::AddressScrambler`] the observed slot is an attacker-opaque
/// permutation of the hot line, so the claim only lands on the
/// permutation's rare fixed points and success collapses to ~`1/domain`.
pub fn access_pattern_correlation(placement: &dyn Remapper, trials: usize) -> ScrambleAttackReport {
    let domain = placement.domain();
    let mut hits = 0usize;
    for t in 0..trials {
        let hot = trial_mix(t as u64) % domain;
        let observed_slot = placement.remap(hot);
        if observed_slot == hot {
            hits += 1;
        }
    }
    ScrambleAttackReport { trials, hits }
}

/// Targeted-cell (Rowhammer-style) aggression.
///
/// The attacker wants to disturb a specific victim line and hammers the
/// lines it *assumes* are physically adjacent — `victim ± 1` under the
/// public identity layout. The disturbance lands only if the victim's
/// *actual* physical slot is within one row of the hammered pair. One
/// victim per trial (deterministically drawn), so the identity layout
/// yields 100% and a scrambled layout ~`3/domain` (the victim happens to
/// land on or next to its logical slot).
pub fn targeted_cell_attack(placement: &dyn Remapper, trials: usize) -> ScrambleAttackReport {
    let domain = placement.domain();
    let mut hits = 0usize;
    for t in 0..trials {
        let victim = trial_mix(0x7A46_E77E ^ t as u64) % domain;
        let actual_slot = placement.remap(victim);
        // Hammered rows: the assumed-adjacent pair around the victim's
        // logical address. A hit is landing within one row of either.
        if actual_slot.abs_diff(victim) <= 1 {
            hits += 1;
        }
    }
    ScrambleAttackReport { trials, hits }
}

/// Outcome of the correlation power analysis against the supply rail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerAttackReport {
    /// Schedule slots attacked (first-round train positions, across all
    /// tweaks).
    pub slots: usize,
    /// Slots where the true PoE was the strict top-ranked candidate.
    pub recovered: usize,
    /// Sum over slots of the true PoE's rank (0 = strict winner; ties
    /// count against the attacker, so an information-free trace ranks the
    /// truth last).
    pub rank_sum: usize,
    /// Candidate PoEs per slot.
    pub candidates: usize,
    /// Known-plaintext traces collected per tweak.
    pub traces: usize,
}

impl PowerAttackReport {
    /// Fraction of slots whose PoE the attacker recovered outright.
    pub fn success_rate(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.recovered as f64 / self.slots as f64
        }
    }

    /// Mean rank of the true PoE (0 = always recovered;
    /// `candidates - 1` = never distinguishable from the field).
    pub fn mean_rank(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.rank_sum as f64 / self.slots as f64
        }
    }
}

/// Pearson correlation; 0.0 when either side has no variance (a
/// power-balanced trace is constant, which is exactly the defence).
fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for (a, b) in x.iter().zip(y) {
        let (dx, dy) = (a - mx, b - my);
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        0.0
    } else {
        sxy / (sxx.sqrt() * syy.sqrt())
    }
}

/// Correlation power analysis (CPA) against the per-train power trace.
///
/// The adversary of §3 extended with a supply-rail probe: for each of
/// `traces` *known* plaintexts it records the ordered per-train energy
/// samples of one block encryption, then, for each first-round schedule
/// slot, correlates the observed slot energies across traces against the
/// leakage predicted for every candidate PoE (`Σ at²·g(plaintext)` over
/// the candidate's member cells — the same `v²·g` physics the datapath
/// dissipates). The candidate ranking recovers the keyed PoE *order*,
/// the very secret the schedule permutation protects.
///
/// Only the first `depth` slots of the first round are attacked: the
/// prediction models the pre-train state as the plaintext, which degrades
/// as earlier trains rewrite overlapping cells (the attacker cannot
/// advance the state model without already knowing the keyed steps).
///
/// Against [`crate::SchedulePolicy::PowerBalanced`] every slot draws the
/// constant budget, the correlation statistic has no variance to bite on,
/// and the ranking collapses (ties rank the truth last).
///
/// The attack uses only the *ordered energies* of the trace — the
/// `poe_index` annotations on the samples are ground truth for scoring,
/// never attacker input.
///
/// # Errors
///
/// Propagates [`SpeError`] from the SPECU; [`SpeError::BadRequest`] if
/// the context emits no power trace (closed-loop contexts always do).
///
/// # Panics
///
/// Panics if `depth == 0` or `traces < 2`.
pub fn power_trace_cpa(
    ctx: &SpeContext,
    tweaks: &[u64],
    traces: usize,
    depth: usize,
) -> Result<PowerAttackReport, SpeError> {
    assert!(depth > 0, "attack at least one slot");
    assert!(traces >= 2, "correlation needs at least two traces");
    use spe_telemetry::AtomicRecorder;
    let mut probe = ctx.clone();
    let recorder = Arc::new(AtomicRecorder::new());
    probe.set_recorder(recorder.clone());

    let cal = Arc::clone(probe.calibration());
    let dims = Dims::square8();
    let poes = cal.addresses().poes().to_vec();
    let n = poes.len();
    let depth = depth.min(n);

    // Candidate leakage geometry: per PoE, the (flat index, at²) pairs of
    // its member cells. Public knowledge — placement and kernel are
    // hardware, not key.
    let geometry: Vec<Vec<(usize, f64)>> = poes
        .iter()
        .map(|poe| {
            cal.train_members(*poe, 1.0)
                .iter()
                .map(|m| {
                    let (dr, dc) = m.offset_from(*poe);
                    let at = cal.kernel().at(dr, dc);
                    (dims.index(*m), at * at)
                })
                .collect()
        })
        .collect();

    let mut report = PowerAttackReport {
        slots: 0,
        recovered: 0,
        rank_sum: 0,
        candidates: n,
        traces,
    };
    for &tweak in tweaks {
        // Ground truth for scoring: the keyed first-round PoE order.
        let truth: Vec<CellAddr> = probe
            .schedule(tweak)
            .steps()
            .iter()
            .map(|(p, _)| *p)
            .collect();
        let mut observed = vec![vec![0.0f64; traces]; depth];
        let mut predicted = vec![vec![0.0f64; traces]; n];
        for t in 0..traces {
            let pt: [u8; BLOCK_BYTES] = {
                let mut out = [0u8; BLOCK_BYTES];
                for (i, b) in out.iter_mut().enumerate() {
                    *b = trial_mix(tweak ^ ((t * BLOCK_BYTES + i) as u64) << 8) as u8;
                }
                out
            };
            recorder.reset();
            probe.encrypt_block(&pt, tweak)?;
            let trace = recorder.power_trace().into_samples();
            if trace.len() < depth {
                return Err(SpeError::BadRequest(
                    "power_trace_cpa: context emitted no per-train power trace",
                ));
            }
            for (s, row) in observed.iter_mut().enumerate() {
                row[t] = trace[s].energy_fj as f64;
            }
            let levels = crate::specu::bytes_to_level_values(&pt);
            for (p, members) in geometry.iter().enumerate() {
                predicted[p][t] = members
                    .iter()
                    .map(|(idx, w)| w * crate::discrete::CONDUCTANCE[levels[*idx] as usize] as f64)
                    .sum();
            }
        }
        for (s, row) in observed.iter().enumerate() {
            let scores: Vec<f64> = predicted.iter().map(|p| pearson(row, p).abs()).collect();
            let true_idx = poes
                .iter()
                .position(|p| *p == truth[s])
                .expect("schedule PoEs come from the LUT");
            // Ties count as beating the truth: an attacker who cannot
            // separate candidates has recovered nothing.
            let rank = scores
                .iter()
                .enumerate()
                .filter(|(i, v)| *i != true_idx && **v >= scores[true_idx])
                .count();
            report.slots += 1;
            report.rank_sum += rank;
            if rank == 0 {
                report.recovered += 1;
            }
        }
    }
    Ok(report)
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 1 {
        return vec![vec![0]];
    }
    let smaller = permutations(n - 1);
    let mut out = Vec::new();
    for p in smaller {
        for pos in 0..=p.len() {
            let mut q: Vec<usize> = p.clone();
            q.insert(pos, n - 1);
            out.push(q);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;
    use std::sync::OnceLock;

    fn specu() -> Specu {
        static CACHE: OnceLock<Specu> = OnceLock::new();
        CACHE
            .get_or_init(|| {
                Specu::builder()
                    .key(Key::from_seed(0xA77AC))
                    .build()
                    .expect("specu")
            })
            .clone()
    }

    #[test]
    fn wrong_order_corrupts() {
        let s = specu();
        let pt = *b"confidential doc";
        let report = wrong_order_decrypt(&s, &pt).expect("experiment");
        assert_eq!(report.correct, pt, "correct order must work");
        assert!(
            report.corrupted_bytes > 0,
            "wrong order should corrupt the recovery"
        );
    }

    #[test]
    fn overlapping_cells_are_ambiguous() {
        let s = specu();
        let pt = *b"known  plaintext";
        let reports = known_plaintext_ambiguity(&s, &pt, 0.05).expect("analysis");
        assert!(!reports.is_empty(), "schedule must overlap somewhere");
        let ambiguous = reports
            .iter()
            .filter(|r| r.consistent_combinations > 1)
            .count();
        assert!(
            ambiguous > 0,
            "at least one covered cell must admit multiple pulse explanations"
        );
    }

    #[test]
    fn reduced_brute_force_recovers_with_many_attempts() {
        let s = specu();
        let pt = *b"toy  target  blk";
        let report = brute_force_reduced(&s, &pt, 2, 4).expect("search");
        assert!(report.recovered, "the reduced space contains the schedule");
        assert!(report.space >= 32);
        assert!(report.attempts >= 1);
    }

    #[test]
    fn permutation_helper_counts() {
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
    }

    #[test]
    fn correlation_attack_owns_the_identity_layout() {
        use crate::scramble::IdentityRemapper;
        let report = access_pattern_correlation(&IdentityRemapper::new(4096), 500);
        assert_eq!(report.success_rate(), 1.0, "no scrambling, no defence");
    }

    #[test]
    fn correlation_attack_collapses_under_scrambling() {
        use crate::scramble::AddressScrambler;
        let s = AddressScrambler::new(&Key::from_seed(0x5C2A), 0, 4096);
        let report = access_pattern_correlation(&s, 500);
        assert!(
            report.success_rate() < 0.05,
            "scrambled success {} should be near 1/4096",
            report.success_rate()
        );
    }

    #[test]
    fn targeted_cell_attack_collapses_under_scrambling() {
        use crate::scramble::{AddressScrambler, IdentityRemapper};
        let open = targeted_cell_attack(&IdentityRemapper::new(4096), 400);
        assert_eq!(open.success_rate(), 1.0, "adjacency holds when identity");
        let s = AddressScrambler::new(&Key::from_seed(0x5C2B), 1, 4096);
        let scrambled = targeted_cell_attack(&s, 400);
        assert!(
            scrambled.success_rate() < 0.05,
            "scrambled adjacency {} should be near 3/4096",
            scrambled.success_rate()
        );
    }

    #[test]
    fn cpa_recovers_early_slots_and_collapses_when_balanced() {
        use crate::specu::SchedulePolicy;
        let s = specu();
        let ctx = s.context().expect("context").clone();
        let open = power_trace_cpa(&ctx, &[0, 1], 32, 4).expect("cpa");
        assert_eq!(open.candidates, 16);
        assert_eq!(open.slots, 8, "2 tweaks × 4 attacked slots");
        assert!(
            open.success_rate() > 0.5,
            "unbalanced CPA should recover most early slots, got {}",
            open.success_rate()
        );
        let balanced = ctx.with_schedule_policy(SchedulePolicy::PowerBalanced);
        let closed = power_trace_cpa(&balanced, &[0, 1], 32, 4).expect("cpa");
        assert_eq!(
            closed.recovered, 0,
            "a constant trace must not rank any PoE strictly first"
        );
        assert!(
            closed.mean_rank() > open.mean_rank(),
            "balancing must degrade the key rank ({} vs {})",
            closed.mean_rank(),
            open.mean_rank()
        );
    }

    #[test]
    fn cpa_report_rates() {
        let r = PowerAttackReport {
            slots: 8,
            recovered: 6,
            rank_sum: 4,
            candidates: 16,
            traces: 32,
        };
        assert!((r.success_rate() - 0.75).abs() < 1e-12);
        assert!((r.mean_rank() - 0.5).abs() < 1e-12);
        let empty = PowerAttackReport {
            slots: 0,
            recovered: 0,
            rank_sum: 0,
            candidates: 16,
            traces: 2,
        };
        assert_eq!(empty.success_rate(), 0.0);
        assert_eq!(empty.mean_rank(), 0.0);
    }

    #[test]
    fn epoch_rotation_redraws_the_targeted_placement() {
        use crate::scramble::AddressScrambler;
        // A tenant key rotation bumps the epoch; the same victim line must
        // land somewhere new, invalidating any adjacency the attacker
        // mapped out in the old epoch.
        let key = Key::from_seed(0x0E50);
        let e0 = AddressScrambler::new(&key, 0, 4096);
        let e1 = AddressScrambler::new(&key, 1, 4096);
        let moved = (0..512u64).filter(|v| e0.remap(*v) != e1.remap(*v)).count();
        assert!(moved > 256, "rotation moved only {moved}/512 lines");
    }
}
