//! Deterministic chaos injection for the bank-scheduler pipeline.
//!
//! The recovery ladder of [`crate::scheduler`] (respawn → quarantine →
//! serial degradation) is only trustworthy if it can be exercised on
//! schedule. A [`ChaosPolicy`] makes bank workers panic, stall or slow
//! down with per-job probabilities, and — exactly like the cell-level
//! [`FaultModel`](crate::recovery::FaultModel) — every draw is a **pure
//! function** of `(seed, bank, job sequence number)`. There is no mutable
//! RNG state: two runs of the same workload over the same seed inject the
//! identical fault pattern, so chaos soaks and `chaos_bench` sweeps are
//! reproducible bit-for-bit.
//!
//! Chaos acts at the worker, *before* the job executes:
//!
//! * **panic** — the worker incarnation dies mid-job; the job's ticket
//!   fails with [`SpeError::BankPoisoned`](crate::SpeError::BankPoisoned)
//!   and the supervisor respawns (or quarantines) the bank.
//! * **stall** — the worker sleeps [`ChaosPolicy::stall_us`] before
//!   running the job, long enough to trip request deadlines and exercise
//!   backpressure.
//! * **slow** — a milder sleep of [`ChaosPolicy::slow_us`], modelling a
//!   degraded-but-alive bank.
//!
//! The draws are prioritised panic > stall > slow from one uniform sample
//! per job, so at most one injection fires per job and the configured
//! rates are exact marginals.

/// Domain separator for the chaos draw stream (decorrelates it from the
/// fault-model streams even under equal seeds).
const DOMAIN_CHAOS: u64 = 0x4348_414F_5300_0001;

/// What (if anything) chaos injects into one job execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Run the job normally.
    None,
    /// Panic the worker incarnation before running the job.
    Panic,
    /// Sleep [`ChaosPolicy::stall_us`] before running the job.
    Stall,
    /// Sleep [`ChaosPolicy::slow_us`] before running the job.
    Slow,
}

/// A seed-pure schedule of injected worker failures.
///
/// Pure data (`Copy`), embeddable in a
/// [`SchedulerConfig`](crate::scheduler::SchedulerConfig) and shared
/// across bank workers without synchronisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPolicy {
    /// Per-job probability the worker panics before running the job.
    pub panic_rate: f64,
    /// Per-job probability the worker stalls for [`ChaosPolicy::stall_us`].
    pub stall_rate: f64,
    /// Per-job probability the worker sleeps [`ChaosPolicy::slow_us`].
    pub slow_rate: f64,
    /// Stall duration, microseconds.
    pub stall_us: u64,
    /// Slowdown duration, microseconds.
    pub slow_us: u64,
    /// Seed decorrelating all draws of this policy instance.
    pub seed: u64,
}

impl ChaosPolicy {
    /// A policy that never injects anything (the default).
    pub fn none() -> Self {
        ChaosPolicy {
            panic_rate: 0.0,
            stall_rate: 0.0,
            slow_rate: 0.0,
            stall_us: 2_000,
            slow_us: 200,
            seed: 0,
        }
    }

    /// Panic-only chaos at `rate`.
    pub fn panics(rate: f64, seed: u64) -> Self {
        ChaosPolicy {
            panic_rate: rate,
            seed,
            ..ChaosPolicy::none()
        }
    }

    /// Stall-only chaos at `rate`, sleeping `stall_us` per injection.
    pub fn stalls(rate: f64, stall_us: u64, seed: u64) -> Self {
        ChaosPolicy {
            stall_rate: rate,
            stall_us,
            seed,
            ..ChaosPolicy::none()
        }
    }

    /// Panics and stalls together (the chaos-soak mix).
    pub fn mixed(panic_rate: f64, stall_rate: f64, seed: u64) -> Self {
        ChaosPolicy {
            panic_rate,
            stall_rate,
            seed,
            ..ChaosPolicy::none()
        }
    }

    /// Whether the policy can never inject a fault.
    pub fn is_none(&self) -> bool {
        self.panic_rate <= 0.0 && self.stall_rate <= 0.0 && self.slow_rate <= 0.0
    }

    /// The total injected fault rate (at most one event fires per job).
    pub fn fault_rate(&self) -> f64 {
        (self.panic_rate + self.stall_rate + self.slow_rate).min(1.0)
    }

    /// The event injected into job `seq` on bank `bank` — deterministic in
    /// `(seed, bank, seq)`, independent of thread timing.
    pub fn draw(&self, bank: usize, seq: u64) -> ChaosEvent {
        if self.is_none() {
            return ChaosEvent::None;
        }
        let u = unit(mix4(self.seed, DOMAIN_CHAOS, bank as u64, seq));
        if u < self.panic_rate {
            ChaosEvent::Panic
        } else if u < self.panic_rate + self.stall_rate {
            ChaosEvent::Stall
        } else if u < self.panic_rate + self.stall_rate + self.slow_rate {
            ChaosEvent::Slow
        } else {
            ChaosEvent::None
        }
    }
}

impl Default for ChaosPolicy {
    fn default() -> Self {
        ChaosPolicy::none()
    }
}

/// SplitMix64 finalizer — the same avalanche stage the fault model uses.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn mix4(a: u64, b: u64, c: u64, d: u64) -> u64 {
    splitmix(splitmix(splitmix(a ^ b).wrapping_add(c)) ^ d)
}

/// Maps a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_policy_never_fires() {
        let p = ChaosPolicy::none();
        assert!(p.is_none());
        for seq in 0..1000 {
            assert_eq!(p.draw(0, seq), ChaosEvent::None);
        }
    }

    #[test]
    fn draws_are_deterministic_and_seed_dependent() {
        let a = ChaosPolicy::mixed(0.2, 0.2, 7);
        let b = ChaosPolicy::mixed(0.2, 0.2, 7);
        let c = ChaosPolicy::mixed(0.2, 0.2, 8);
        let da: Vec<_> = (0..500).map(|s| a.draw(1, s)).collect();
        let db: Vec<_> = (0..500).map(|s| b.draw(1, s)).collect();
        let dc: Vec<_> = (0..500).map(|s| c.draw(1, s)).collect();
        assert_eq!(da, db, "same seed, same chaos");
        assert_ne!(da, dc, "different seed, different chaos");
        // Banks draw independent streams.
        let other_bank: Vec<_> = (0..500).map(|s| a.draw(2, s)).collect();
        assert_ne!(da, other_bank);
    }

    #[test]
    fn rates_are_respected_and_prioritised() {
        let p = ChaosPolicy {
            panic_rate: 0.1,
            stall_rate: 0.2,
            slow_rate: 0.3,
            ..ChaosPolicy::none()
        };
        let n = 20_000u64;
        let mut panics = 0usize;
        let mut stalls = 0usize;
        let mut slows = 0usize;
        for seq in 0..n {
            match p.draw(0, seq) {
                ChaosEvent::Panic => panics += 1,
                ChaosEvent::Stall => stalls += 1,
                ChaosEvent::Slow => slows += 1,
                ChaosEvent::None => {}
            }
        }
        let rate = |c: usize| c as f64 / n as f64;
        assert!((rate(panics) - 0.1).abs() < 0.02, "panic rate {panics}");
        assert!((rate(stalls) - 0.2).abs() < 0.02, "stall rate {stalls}");
        assert!((rate(slows) - 0.3).abs() < 0.02, "slow rate {slows}");
        assert!((p.fault_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn certain_panic_fires_every_job() {
        let p = ChaosPolicy::panics(1.0, 3);
        for seq in 0..100 {
            assert_eq!(p.draw(0, seq), ChaosEvent::Panic);
        }
    }
}
