//! Per-block pulse schedules: the PoE order and pulse choice for one
//! crossbar encryption.

use crate::key::Key;
use crate::lut::{AddressLut, VoltageLut, PULSE_COUNT};
use crate::prng::CoupledLcg;
use spe_crossbar::CellAddr;
use spe_memristor::Pulse;

/// The default 16-PoE placement for the paper's 8×8 crossbar with the
/// calibrated (coupled-periphery) polyomino shape — a five-cell plus.
///
/// Precomputed with [`spe_ilp::PlacementProblem::with_poe_count`] and pinned
/// here so the SPECU does not re-run the ILP on every construction; the
/// `default_placement_covers_fully` test re-validates full coverage against
/// the shape, and the Table 1 harness re-derives the placement from scratch.
pub const DEFAULT_POE_PLACEMENT: [(usize, usize); 16] = [
    (0, 1),
    (0, 4),
    (1, 1),
    (1, 6),
    (1, 7),
    (2, 3),
    (3, 0),
    (3, 5),
    (4, 2),
    (4, 7),
    (5, 4),
    (6, 0),
    (6, 1),
    (6, 6),
    (7, 3),
    (7, 6),
];

/// One keyed encryption schedule: an ordered list of `(PoE, pulse)` steps.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PulseSchedule {
    steps: Vec<(CellAddr, Pulse)>,
}

impl PulseSchedule {
    /// Generates the schedule for a block: the key (plus block tweak) seeds
    /// the coupled-LCG PRNG, which permutes the PoE list and selects one of
    /// the 32 pulses for each PoE (§5.4: the first LUT half of each PRNG
    /// draw selects the pulse, the second the address).
    pub fn generate(key: &Key, tweak: u64, addresses: &AddressLut, voltages: &VoltageLut) -> Self {
        let mut schedule = PulseSchedule::default();
        PulseSchedule::generate_into(key, tweak, addresses, voltages, &mut schedule);
        schedule
    }

    /// Like [`generate`](Self::generate), reusing `into`'s step buffer so
    /// per-block schedule derivation in the line datapath allocates
    /// nothing in steady state. The PRNG draw order (and therefore the
    /// schedule) is identical to [`generate`](Self::generate).
    pub fn generate_into(
        key: &Key,
        tweak: u64,
        addresses: &AddressLut,
        voltages: &VoltageLut,
        into: &mut PulseSchedule,
    ) {
        let mut prng = CoupledLcg::with_tweak(key, tweak);
        let n = addresses.len();
        // The steps buffer doubles as the permutation scratch: lay the PoEs
        // down in LUT order, Fisher-Yates them (same draws as
        // `CoupledLcg::permutation`), then fill in each slot's pulse in
        // sweep order (same draws as the original per-step selection).
        let placeholder = voltages.pulse(0);
        into.steps.clear();
        into.steps
            .extend((0..n).map(|i| (addresses.poe(i), placeholder)));
        for i in (1..n).rev() {
            let j = prng.next_below(i as u64 + 1) as usize;
            into.steps.swap(i, j);
        }
        for step in into.steps.iter_mut() {
            step.1 = voltages.pulse(prng.next_below(PULSE_COUNT as u64) as usize);
        }
    }

    /// Builds a schedule from explicit steps (attack experiments).
    pub fn from_steps(steps: Vec<(CellAddr, Pulse)>) -> Self {
        PulseSchedule { steps }
    }

    /// The ordered steps.
    pub fn steps(&self) -> &[(CellAddr, Pulse)] {
        &self.steps
    }

    /// Number of PoE pulses.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The schedule with the step order reversed (decryption order).
    pub fn reversed(&self) -> PulseSchedule {
        PulseSchedule {
            steps: self.steps.iter().rev().copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn luts() -> (AddressLut, VoltageLut) {
        let poes = DEFAULT_POE_PLACEMENT
            .iter()
            .map(|(r, c)| CellAddr::new(*r, *c))
            .collect();
        (AddressLut::new(poes), VoltageLut::default())
    }

    #[test]
    fn schedule_uses_every_poe_once() {
        let (addr, volt) = luts();
        let s = PulseSchedule::generate(&Key::from_seed(3), 0, &addr, &volt);
        assert_eq!(s.len(), 16);
        let mut poes: Vec<CellAddr> = s.steps().iter().map(|(p, _)| *p).collect();
        poes.sort();
        let mut expected: Vec<CellAddr> = addr.poes().to_vec();
        expected.sort();
        assert_eq!(poes, expected);
    }

    #[test]
    fn schedule_is_deterministic_and_key_dependent() {
        let (addr, volt) = luts();
        let a = PulseSchedule::generate(&Key::from_seed(3), 0, &addr, &volt);
        let b = PulseSchedule::generate(&Key::from_seed(3), 0, &addr, &volt);
        let c = PulseSchedule::generate(&Key::from_seed(4), 0, &addr, &volt);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn tweak_changes_schedule() {
        let (addr, volt) = luts();
        let a = PulseSchedule::generate(&Key::from_seed(3), 0, &addr, &volt);
        let b = PulseSchedule::generate(&Key::from_seed(3), 1, &addr, &volt);
        assert_ne!(a, b);
    }

    #[test]
    fn from_steps_builds_explicit_schedules() {
        let steps = vec![(
            CellAddr::new(1, 2),
            spe_memristor::Pulse::new(1.0, 0.05e-6).expect("pulse"),
        )];
        let s = PulseSchedule::from_steps(steps.clone());
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.steps(), &steps[..]);
    }

    #[test]
    fn generate_into_reuses_a_dirty_buffer_correctly() {
        let (addr, volt) = luts();
        let mut buf = PulseSchedule::default();
        for tweak in 0..4 {
            PulseSchedule::generate_into(&Key::from_seed(9), tweak, &addr, &volt, &mut buf);
            let fresh = PulseSchedule::generate(&Key::from_seed(9), tweak, &addr, &volt);
            assert_eq!(buf, fresh);
        }
    }

    #[test]
    fn reversed_reverses() {
        let (addr, volt) = luts();
        let s = PulseSchedule::generate(&Key::from_seed(5), 0, &addr, &volt);
        let r = s.reversed();
        assert_eq!(r.steps()[0], s.steps()[15]);
        assert_eq!(r.reversed(), s);
    }
}
