//! Builders for the nine Table 2 evaluation datasets (§6.1).
//!
//! Each builder produces a byte stream of at least `target_bits` bits,
//! assembled from 128-bit ciphertext (or XOR) blocks exactly as the paper
//! describes. The streams feed the NIST suite in the Table 2 harness.
//!
//! All builders are deterministic in their `seed` *and independent of the
//! bank count*: every random draw happens sequentially from the coupled
//! LCG up front, producing a job list that the multi-bank datapath
//! ([`ParallelSpecu`]) encrypts order-preservingly. ~18 Mbit of ciphertext
//! per Table 2 run makes these builders the heaviest SPECU workload in the
//! repo, which is why they ride the parallel datapath.

use crate::key::Key;
use crate::parallel::{fan_out, BlockJob, ParallelSpecu};
use crate::prng::CoupledLcg;
use crate::specu::{SpeContext, Specu, SpecuConfig, BLOCK_BYTES};
use crate::SpeError;
use spe_memristor::Variation;

/// Default SPECU bank count for dataset builds: the paper's one-bank-per-mat
/// configuration.
pub const DEFAULT_BANKS: usize = 4;

/// Identifies one of the nine Table 2 datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// 1) Key avalanche: `E_k(0) ⊕ E_{k⊕eᵢ}(0)`.
    KeyAvalanche,
    /// 2) Plaintext avalanche: `E_0(pt) ⊕ E_0(pt⊕eᵢ)`.
    PlaintextAvalanche,
    /// 3) Hardware avalanche: nominal vs parameter-perturbed hardware.
    HardwareAvalanche,
    /// 4) Plaintext/ciphertext correlation: `pt ⊕ E_k(pt)`.
    PtCtCorrelation,
    /// 5) Random plaintext & key: raw ciphertexts.
    RandomPtKey,
    /// 6) Low-density plaintexts.
    LowDensityPt,
    /// 7) Low-density keys.
    LowDensityKey,
    /// 8) High-density plaintexts.
    HighDensityPt,
    /// 9) High-density keys.
    HighDensityKey,
}

impl Dataset {
    /// All nine datasets in Table 2 column order.
    pub const ALL: [Dataset; 9] = [
        Dataset::KeyAvalanche,
        Dataset::PlaintextAvalanche,
        Dataset::HardwareAvalanche,
        Dataset::PtCtCorrelation,
        Dataset::RandomPtKey,
        Dataset::LowDensityPt,
        Dataset::LowDensityKey,
        Dataset::HighDensityPt,
        Dataset::HighDensityKey,
    ];

    /// The Table 2 column header.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::KeyAvalanche => "Avalanche/Key",
            Dataset::PlaintextAvalanche => "Avalanche/PT",
            Dataset::HardwareAvalanche => "Avalanche/h-w",
            Dataset::PtCtCorrelation => "PT-CT corr.",
            Dataset::RandomPtKey => "Rnd. PT/CT",
            Dataset::LowDensityPt => "Low Den. PT",
            Dataset::LowDensityKey => "Low Den. Key",
            Dataset::HighDensityPt => "High Den. PT",
            Dataset::HighDensityKey => "High Den. Key",
        }
    }

    /// Builds a stream of at least `target_bits` bits on the default
    /// four-bank datapath.
    ///
    /// # Errors
    ///
    /// Propagates [`SpeError`] from the SPECU.
    pub fn build(&self, specu: &Specu, target_bits: usize, seed: u64) -> Result<Vec<u8>, SpeError> {
        self.build_with_banks(specu, target_bits, seed, DEFAULT_BANKS)
    }

    /// Builds a stream of at least `target_bits` bits with an explicit
    /// SPECU bank count. The output is byte-identical for every `banks`
    /// value (randomness is drawn before the parallel fan-out).
    ///
    /// # Errors
    ///
    /// Propagates [`SpeError`] from the SPECU.
    pub fn build_with_banks(
        &self,
        specu: &Specu,
        target_bits: usize,
        seed: u64,
        banks: usize,
    ) -> Result<Vec<u8>, SpeError> {
        match self {
            Dataset::KeyAvalanche => key_avalanche_banked(specu, target_bits, seed, banks),
            Dataset::PlaintextAvalanche => {
                plaintext_avalanche_banked(specu, target_bits, seed, banks)
            }
            Dataset::HardwareAvalanche => {
                hardware_avalanche_banked(specu, target_bits, seed, banks)
            }
            Dataset::PtCtCorrelation => pt_ct_correlation_banked(specu, target_bits, seed, banks),
            Dataset::RandomPtKey => random_pt_key_banked(specu, target_bits, seed, banks),
            Dataset::LowDensityPt => density_pt_banked(specu, target_bits, seed, false, banks),
            Dataset::HighDensityPt => density_pt_banked(specu, target_bits, seed, true, banks),
            Dataset::LowDensityKey => density_key_banked(specu, target_bits, seed, false, banks),
            Dataset::HighDensityKey => density_key_banked(specu, target_bits, seed, true, banks),
        }
    }
}

fn target_blocks(target_bits: usize) -> usize {
    target_bits.div_ceil(BLOCK_BYTES * 8)
}

fn xor_block(a: &[u8; BLOCK_BYTES], b: &[u8; BLOCK_BYTES]) -> [u8; BLOCK_BYTES] {
    core::array::from_fn(|i| a[i] ^ b[i])
}

fn random_key(rng: &mut CoupledLcg) -> Key {
    Key::from_value(((rng.next_u64() as u128) << 64) | rng.next_u64() as u128)
}

fn random_block(rng: &mut CoupledLcg) -> [u8; BLOCK_BYTES] {
    let mut block = [0u8; BLOCK_BYTES];
    rng.fill_bytes(&mut block);
    block
}

/// A parallel datapath over `specu`'s calibration under `key`.
fn datapath(specu: &Specu, key: Key, banks: usize) -> ParallelSpecu {
    Specu::builder()
        .key(key)
        .calibration(std::sync::Arc::clone(specu.calibration()))
        .banks(banks)
        .build_parallel()
        .expect("datapath over an existing calibration")
}

/// 1) Key avalanche.
pub fn key_avalanche(specu: &Specu, target_bits: usize, seed: u64) -> Result<Vec<u8>, SpeError> {
    key_avalanche_banked(specu, target_bits, seed, DEFAULT_BANKS)
}

fn key_avalanche_banked(
    specu: &Specu,
    target_bits: usize,
    seed: u64,
    banks: usize,
) -> Result<Vec<u8>, SpeError> {
    let mut rng = CoupledLcg::from_seed(seed);
    let zero_pt = [0u8; BLOCK_BYTES];
    // Sequential draws, parallel encryption: jobs 2i and 2i+1 are the
    // key/flipped-key pair of trial i.
    let mut jobs = Vec::with_capacity(2 * target_blocks(target_bits));
    for _ in 0..target_blocks(target_bits) {
        let key = random_key(&mut rng);
        let bit = rng.next_below(crate::key::KEY_BITS as u64) as usize;
        jobs.push(BlockJob::with_key(zero_pt, 0, key));
        jobs.push(BlockJob::with_key(zero_pt, 0, key.flip_bit(bit)));
    }
    let cts = datapath(specu, Key::zero(), banks).encrypt_blocks(&jobs)?;
    let mut out = Vec::with_capacity(cts.len() / 2 * BLOCK_BYTES);
    for pair in cts.chunks_exact(2) {
        out.extend_from_slice(&xor_block(&pair[0].data(), &pair[1].data()));
    }
    Ok(out)
}

/// 2) Plaintext avalanche (all-zero key).
pub fn plaintext_avalanche(
    specu: &Specu,
    target_bits: usize,
    seed: u64,
) -> Result<Vec<u8>, SpeError> {
    plaintext_avalanche_banked(specu, target_bits, seed, DEFAULT_BANKS)
}

fn plaintext_avalanche_banked(
    specu: &Specu,
    target_bits: usize,
    seed: u64,
    banks: usize,
) -> Result<Vec<u8>, SpeError> {
    let mut rng = CoupledLcg::from_seed(seed);
    let mut jobs = Vec::with_capacity(2 * target_blocks(target_bits));
    for _ in 0..target_blocks(target_bits) {
        let pt = random_block(&mut rng);
        let mut flipped = pt;
        // Uniformly random bit position per trial (cycling positions
        // deterministically imprints a periodic pattern on the stream).
        let bit = rng.next_below(128) as usize;
        flipped[bit / 8] ^= 1 << (bit % 8);
        jobs.push(BlockJob::new(pt, 0));
        jobs.push(BlockJob::new(flipped, 0));
    }
    let cts = datapath(specu, Key::zero(), banks).encrypt_blocks(&jobs)?;
    let mut out = Vec::with_capacity(cts.len() / 2 * BLOCK_BYTES);
    for pair in cts.chunks_exact(2) {
        out.extend_from_slice(&xor_block(&pair[0].data(), &pair[1].data()));
    }
    Ok(out)
}

/// 3) Hardware avalanche: all-zero key and plaintext; physical parameters
///    perturbed 5–10 % in 0.5 % steps (§6.1).
pub fn hardware_avalanche(
    specu: &Specu,
    target_bits: usize,
    seed: u64,
) -> Result<Vec<u8>, SpeError> {
    hardware_avalanche_banked(specu, target_bits, seed, DEFAULT_BANKS)
}

fn hardware_avalanche_banked(
    specu: &Specu,
    target_bits: usize,
    seed: u64,
    banks: usize,
) -> Result<Vec<u8>, SpeError> {
    let zero_pt = [0u8; BLOCK_BYTES];
    let nominal = Specu::builder()
        .key(Key::zero())
        .calibration(std::sync::Arc::clone(specu.calibration()))
        .build_context()?;

    // The paper sweeps physical parameters 5-10% in 0.5% steps. Each step
    // needs its own kernel recalibration — by far the most expensive part
    // of this builder — so the perturbed contexts are built on the bank
    // workers too.
    let rels: Vec<f64> = (0..=10).map(|i| 0.05 + 0.005 * i as f64).collect();
    let perturbed: Vec<SpeContext> = fan_out(banks, rels.len(), |i| {
        let config = SpecuConfig {
            device: specu
                .config()
                .device
                .with_variation(&Variation::uniform(rels[i])),
            ..specu.config().clone()
        };
        Specu::builder()
            .key(Key::zero())
            .config(config)
            .build_context()
    })?;

    // Stream: XOR of nominal-hardware vs perturbed-hardware ciphertexts of
    // the same (all-zero) plaintext at the same block address, sweeping
    // perturbation levels and block addresses. The seed offsets the
    // block-address range so different sequences use disjoint schedules.
    let trials = target_blocks(target_bits);
    let tweak_base = seed.wrapping_mul(0x10_0000);
    let blocks = fan_out(banks, trials, |i| {
        let idx = i % perturbed.len();
        let tweak = tweak_base.wrapping_add((i / perturbed.len()) as u64);
        let base = nominal.encrypt_block(&zero_pt, tweak)?.data();
        let varied = perturbed[idx].encrypt_block(&zero_pt, tweak)?.data();
        Ok(xor_block(&base, &varied))
    })?;
    Ok(blocks.concat())
}

/// 4) Plaintext/ciphertext correlation.
pub fn pt_ct_correlation(
    specu: &Specu,
    target_bits: usize,
    seed: u64,
) -> Result<Vec<u8>, SpeError> {
    pt_ct_correlation_banked(specu, target_bits, seed, DEFAULT_BANKS)
}

fn pt_ct_correlation_banked(
    specu: &Specu,
    target_bits: usize,
    seed: u64,
    banks: usize,
) -> Result<Vec<u8>, SpeError> {
    let mut rng = CoupledLcg::from_seed(seed);
    let key = random_key(&mut rng);
    let jobs: Vec<BlockJob> = (0..target_blocks(target_bits))
        .map(|_| BlockJob::new(random_block(&mut rng), 0))
        .collect();
    let cts = datapath(specu, key, banks).encrypt_blocks(&jobs)?;
    let mut out = Vec::with_capacity(cts.len() * BLOCK_BYTES);
    for (job, ct) in jobs.iter().zip(&cts) {
        out.extend_from_slice(&xor_block(&job.plaintext, &ct.data()));
    }
    Ok(out)
}

/// 5) Random plaintext / random key: raw ciphertext stream.
pub fn random_pt_key(specu: &Specu, target_bits: usize, seed: u64) -> Result<Vec<u8>, SpeError> {
    random_pt_key_banked(specu, target_bits, seed, DEFAULT_BANKS)
}

fn random_pt_key_banked(
    specu: &Specu,
    target_bits: usize,
    seed: u64,
    banks: usize,
) -> Result<Vec<u8>, SpeError> {
    let mut rng = CoupledLcg::from_seed(seed);
    let key = random_key(&mut rng);
    let jobs: Vec<BlockJob> = (0..target_blocks(target_bits))
        .map(|_| BlockJob::new(random_block(&mut rng), 0))
        .collect();
    let cts = datapath(specu, key, banks).encrypt_blocks(&jobs)?;
    let mut out = Vec::with_capacity(cts.len() * BLOCK_BYTES);
    for ct in &cts {
        out.extend_from_slice(&ct.data());
    }
    Ok(out)
}

/// 6/8) Low- or high-density plaintext ciphertexts under one random key.
pub fn density_pt(
    specu: &Specu,
    target_bits: usize,
    seed: u64,
    high: bool,
) -> Result<Vec<u8>, SpeError> {
    density_pt_banked(specu, target_bits, seed, high, DEFAULT_BANKS)
}

fn density_pt_banked(
    specu: &Specu,
    target_bits: usize,
    seed: u64,
    high: bool,
    banks: usize,
) -> Result<Vec<u8>, SpeError> {
    let mut rng = CoupledLcg::from_seed(seed);
    let base: u8 = if high { 0xFF } else { 0x00 };
    let total = target_blocks(target_bits);
    // Per key epoch: the base block, all weight-1 flips, then weight-2
    // flips; exhausting weight <= 2 rotates the key. Each block gets its
    // index as the tweak, mirroring address-tweaked memory encryption.
    let mut jobs: Vec<BlockJob> = Vec::with_capacity(total);
    'outer: loop {
        let key = random_key(&mut rng);
        let mut push = |pt: [u8; BLOCK_BYTES]| {
            jobs.push(BlockJob::with_key(pt, jobs.len() as u64, key));
            jobs.len() >= total
        };
        if push([base; BLOCK_BYTES]) {
            break 'outer;
        }
        for i in 0..128 {
            let mut pt = [base; BLOCK_BYTES];
            pt[i / 8] ^= 1 << (i % 8);
            if push(pt) {
                break 'outer;
            }
        }
        for i in 0..128usize {
            for j in (i + 1)..128 {
                let mut pt = [base; BLOCK_BYTES];
                pt[i / 8] ^= 1 << (i % 8);
                pt[j / 8] ^= 1 << (j % 8);
                if push(pt) {
                    break 'outer;
                }
            }
        }
    }
    let cts = datapath(specu, Key::zero(), banks).encrypt_blocks(&jobs)?;
    let mut out = Vec::with_capacity(cts.len() * BLOCK_BYTES);
    for ct in &cts {
        out.extend_from_slice(&ct.data());
    }
    Ok(out)
}

/// 7/9) Low- or high-density key ciphertexts of one random plaintext.
pub fn density_key(
    specu: &Specu,
    target_bits: usize,
    seed: u64,
    high: bool,
) -> Result<Vec<u8>, SpeError> {
    density_key_banked(specu, target_bits, seed, high, DEFAULT_BANKS)
}

fn density_key_banked(
    specu: &Specu,
    target_bits: usize,
    seed: u64,
    high: bool,
    banks: usize,
) -> Result<Vec<u8>, SpeError> {
    let mut rng = CoupledLcg::from_seed(seed);
    let pt = random_block(&mut rng);
    let flip_all = |k: Key| if high { Key::from_value(!k.value()) } else { k };
    let mut keys: Vec<Key> = Vec::new();
    keys.push(flip_all(Key::zero()));
    keys.extend(Key::weight_one_keys().map(flip_all));
    keys.extend(Key::weight_two_keys().map(flip_all));
    let jobs: Vec<BlockJob> = (0..target_blocks(target_bits))
        .map(|idx| BlockJob::with_key(pt, (idx / keys.len()) as u64, keys[idx % keys.len()]))
        .collect();
    let cts = datapath(specu, Key::zero(), banks).encrypt_blocks(&jobs)?;
    let mut out = Vec::with_capacity(cts.len() * BLOCK_BYTES);
    for ct in &cts {
        out.extend_from_slice(&ct.data());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn specu() -> Specu {
        static CACHE: OnceLock<Specu> = OnceLock::new();
        CACHE
            .get_or_init(|| {
                Specu::builder()
                    .key(Key::from_seed(0xD5))
                    .build()
                    .expect("specu")
            })
            .clone()
    }

    #[test]
    fn builders_reach_target_length() {
        let s = specu();
        for ds in [
            Dataset::KeyAvalanche,
            Dataset::PtCtCorrelation,
            Dataset::RandomPtKey,
            Dataset::LowDensityPt,
            Dataset::HighDensityKey,
        ] {
            let bytes = ds.build(&s, 2048, 7).expect("build");
            assert!(bytes.len() * 8 >= 2048, "{ds:?} too short");
        }
    }

    #[test]
    fn builders_are_deterministic() {
        let s = specu();
        let a = Dataset::RandomPtKey.build(&s, 1024, 3).expect("a");
        let b = Dataset::RandomPtKey.build(&s, 1024, 3).expect("b");
        assert_eq!(a, b);
    }

    #[test]
    fn builds_are_bank_count_invariant() {
        // The whole point of the sequential-draw/parallel-encrypt split:
        // the stream must not depend on how many banks encrypted it.
        let s = specu();
        for ds in [Dataset::KeyAvalanche, Dataset::LowDensityKey] {
            let one = ds.build_with_banks(&s, 1024, 5, 1).expect("one bank");
            let four = ds.build_with_banks(&s, 1024, 5, 4).expect("four banks");
            assert_eq!(one, four, "{ds:?} changed with bank count");
        }
    }

    #[test]
    fn key_avalanche_is_roughly_balanced() {
        let s = specu();
        let bytes = key_avalanche(&s, 16 * 1024, 11).expect("build");
        let ones: u32 = bytes.iter().map(|b| b.count_ones()).sum();
        let ratio = ones as f64 / (bytes.len() * 8) as f64;
        assert!(
            (0.35..0.65).contains(&ratio),
            "key avalanche bias {ratio} (should be near 0.5)"
        );
    }

    #[test]
    fn dataset_names_are_distinct() {
        let names: std::collections::HashSet<_> = Dataset::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(names.len(), 9);
    }
}
