//! Builders for the nine Table 2 evaluation datasets (§6.1).
//!
//! Each builder produces a byte stream of at least `target_bits` bits,
//! assembled from 128-bit ciphertext (or XOR) blocks exactly as the paper
//! describes. The streams feed the NIST suite in the Table 2 harness.
//!
//! All builders are deterministic in their `seed`.

use crate::key::Key;
use crate::specu::{Specu, SpecuConfig, BLOCK_BYTES};
use crate::SpeError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spe_memristor::Variation;

/// Identifies one of the nine Table 2 datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// 1) Key avalanche: `E_k(0) ⊕ E_{k⊕eᵢ}(0)`.
    KeyAvalanche,
    /// 2) Plaintext avalanche: `E_0(pt) ⊕ E_0(pt⊕eᵢ)`.
    PlaintextAvalanche,
    /// 3) Hardware avalanche: nominal vs parameter-perturbed hardware.
    HardwareAvalanche,
    /// 4) Plaintext/ciphertext correlation: `pt ⊕ E_k(pt)`.
    PtCtCorrelation,
    /// 5) Random plaintext & key: raw ciphertexts.
    RandomPtKey,
    /// 6) Low-density plaintexts.
    LowDensityPt,
    /// 7) Low-density keys.
    LowDensityKey,
    /// 8) High-density plaintexts.
    HighDensityPt,
    /// 9) High-density keys.
    HighDensityKey,
}

impl Dataset {
    /// All nine datasets in Table 2 column order.
    pub const ALL: [Dataset; 9] = [
        Dataset::KeyAvalanche,
        Dataset::PlaintextAvalanche,
        Dataset::HardwareAvalanche,
        Dataset::PtCtCorrelation,
        Dataset::RandomPtKey,
        Dataset::LowDensityPt,
        Dataset::LowDensityKey,
        Dataset::HighDensityPt,
        Dataset::HighDensityKey,
    ];

    /// The Table 2 column header.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::KeyAvalanche => "Avalanche/Key",
            Dataset::PlaintextAvalanche => "Avalanche/PT",
            Dataset::HardwareAvalanche => "Avalanche/h-w",
            Dataset::PtCtCorrelation => "PT-CT corr.",
            Dataset::RandomPtKey => "Rnd. PT/CT",
            Dataset::LowDensityPt => "Low Den. PT",
            Dataset::LowDensityKey => "Low Den. Key",
            Dataset::HighDensityPt => "High Den. PT",
            Dataset::HighDensityKey => "High Den. Key",
        }
    }

    /// Builds a stream of at least `target_bits` bits.
    ///
    /// # Errors
    ///
    /// Propagates [`SpeError`] from the SPECU.
    pub fn build(
        &self,
        specu: &mut Specu,
        target_bits: usize,
        seed: u64,
    ) -> Result<Vec<u8>, SpeError> {
        match self {
            Dataset::KeyAvalanche => key_avalanche(specu, target_bits, seed),
            Dataset::PlaintextAvalanche => plaintext_avalanche(specu, target_bits, seed),
            Dataset::HardwareAvalanche => hardware_avalanche(specu, target_bits, seed),
            Dataset::PtCtCorrelation => pt_ct_correlation(specu, target_bits, seed),
            Dataset::RandomPtKey => random_pt_key(specu, target_bits, seed),
            Dataset::LowDensityPt => density_pt(specu, target_bits, seed, false),
            Dataset::HighDensityPt => density_pt(specu, target_bits, seed, true),
            Dataset::LowDensityKey => density_key(specu, target_bits, seed, false),
            Dataset::HighDensityKey => density_key(specu, target_bits, seed, true),
        }
    }
}

fn target_blocks(target_bits: usize) -> usize {
    target_bits.div_ceil(BLOCK_BYTES * 8)
}

fn xor_block(a: &[u8; BLOCK_BYTES], b: &[u8; BLOCK_BYTES]) -> [u8; BLOCK_BYTES] {
    core::array::from_fn(|i| a[i] ^ b[i])
}

fn random_key(rng: &mut StdRng) -> Key {
    Key::from_value(((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128)
}

fn random_block(rng: &mut StdRng) -> [u8; BLOCK_BYTES] {
    core::array::from_fn(|_| rng.gen())
}

/// 1) Key avalanche.
pub fn key_avalanche(
    specu: &mut Specu,
    target_bits: usize,
    seed: u64,
) -> Result<Vec<u8>, SpeError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let zero_pt = [0u8; BLOCK_BYTES];
    for _ in 0..target_blocks(target_bits) {
        let key = random_key(&mut rng);
        specu.load_key(key);
        let c1 = specu.encrypt_block(&zero_pt)?.data();
        specu.load_key(key.flip_bit(rng.gen_range(0..crate::key::KEY_BITS)));
        let c2 = specu.encrypt_block(&zero_pt)?.data();
        out.extend_from_slice(&xor_block(&c1, &c2));
    }
    Ok(out)
}

/// 2) Plaintext avalanche (all-zero key).
pub fn plaintext_avalanche(
    specu: &mut Specu,
    target_bits: usize,
    seed: u64,
) -> Result<Vec<u8>, SpeError> {
    let mut rng = StdRng::seed_from_u64(seed);
    specu.load_key(Key::zero());
    let mut out = Vec::new();
    for _ in 0..target_blocks(target_bits) {
        let pt = random_block(&mut rng);
        let mut flipped = pt;
        // Uniformly random bit position per trial (cycling positions
        // deterministically imprints a periodic pattern on the stream).
        let bit: usize = rng.gen_range(0..128);
        flipped[bit / 8] ^= 1 << (bit % 8);
        let c1 = specu.encrypt_block(&pt)?.data();
        let c2 = specu.encrypt_block(&flipped)?.data();
        out.extend_from_slice(&xor_block(&c1, &c2));
    }
    Ok(out)
}

/// 3) Hardware avalanche: all-zero key and plaintext; physical parameters
///    perturbed 5–10 % in 0.5 % steps (§6.1).
pub fn hardware_avalanche(
    specu: &mut Specu,
    target_bits: usize,
    seed: u64,
) -> Result<Vec<u8>, SpeError> {
    specu.load_key(Key::zero());
    let zero_pt = [0u8; BLOCK_BYTES];

    // Build the perturbed SPECUs once (kernel recalibration per step);
    // the paper sweeps physical parameters 5-10% in 0.5% steps.
    let mut perturbed = Vec::new();
    let mut rel = 0.05;
    while rel <= 0.10 + 1e-9 {
        let config = SpecuConfig {
            device: specu.config().device.with_variation(&Variation::uniform(rel)),
            ..specu.config().clone()
        };
        perturbed.push(Specu::with_config(Key::zero(), config)?);
        rel += 0.005;
    }
    // Stream: XOR of nominal-hardware vs perturbed-hardware ciphertexts of
    // the same (all-zero) plaintext at the same block address, sweeping
    // perturbation levels and block addresses.
    let mut out = Vec::new();
    let mut i = 0usize;
    // The seed offsets the block-address range so different sequences use
    // disjoint schedules (otherwise every sequence would be identical).
    let tweak_base = seed.wrapping_mul(0x10_0000);
    while out.len() * 8 < target_bits {
        let idx = i % perturbed.len();
        let tweak = tweak_base.wrapping_add((i / perturbed.len()) as u64);
        let base = specu.encrypt_block_with_tweak(&zero_pt, tweak)?.data();
        let varied = perturbed[idx]
            .encrypt_block_with_tweak(&zero_pt, tweak)?
            .data();
        out.extend_from_slice(&xor_block(&base, &varied));
        i += 1;
    }
    Ok(out)
}

/// 4) Plaintext/ciphertext correlation.
pub fn pt_ct_correlation(
    specu: &mut Specu,
    target_bits: usize,
    seed: u64,
) -> Result<Vec<u8>, SpeError> {
    let mut rng = StdRng::seed_from_u64(seed);
    specu.load_key(random_key(&mut rng));
    let mut out = Vec::new();
    for _ in 0..target_blocks(target_bits) {
        let pt = random_block(&mut rng);
        let ct = specu.encrypt_block(&pt)?.data();
        out.extend_from_slice(&xor_block(&pt, &ct));
    }
    Ok(out)
}

/// 5) Random plaintext / random key: raw ciphertext stream.
pub fn random_pt_key(
    specu: &mut Specu,
    target_bits: usize,
    seed: u64,
) -> Result<Vec<u8>, SpeError> {
    let mut rng = StdRng::seed_from_u64(seed);
    specu.load_key(random_key(&mut rng));
    let mut out = Vec::new();
    for _ in 0..target_blocks(target_bits) {
        let pt = random_block(&mut rng);
        out.extend_from_slice(&specu.encrypt_block(&pt)?.data());
    }
    Ok(out)
}

/// 6/8) Low- or high-density plaintext ciphertexts under one random key.
pub fn density_pt(
    specu: &mut Specu,
    target_bits: usize,
    seed: u64,
    high: bool,
) -> Result<Vec<u8>, SpeError> {
    let mut rng = StdRng::seed_from_u64(seed);
    specu.load_key(random_key(&mut rng));
    let base: u8 = if high { 0xFF } else { 0x00 };
    let mut out = Vec::new();
    let mut produced = 0usize;
    'outer: loop {
        // One base block, then all weight-1 flips, then weight-2 flips.
        let mut emit = |specu: &mut Specu, pt: [u8; BLOCK_BYTES]| -> Result<bool, SpeError> {
            out.extend_from_slice(&specu.encrypt_block(&pt)?.data());
            produced += BLOCK_BYTES * 8;
            Ok(produced >= target_bits)
        };
        let pt = [base; BLOCK_BYTES];
        if emit(specu, pt)? {
            break 'outer;
        }
        for i in 0..128 {
            let mut pt = [base; BLOCK_BYTES];
            pt[i / 8] ^= 1 << (i % 8);
            if emit(specu, pt)? {
                break 'outer;
            }
        }
        for i in 0..128usize {
            for j in (i + 1)..128 {
                let mut pt = [base; BLOCK_BYTES];
                pt[i / 8] ^= 1 << (i % 8);
                pt[j / 8] ^= 1 << (j % 8);
                if emit(specu, pt)? {
                    break 'outer;
                }
            }
        }
        // Exhausted weight <= 2: rotate the key and continue.
        specu.load_key(random_key(&mut rng));
    }
    Ok(out)
}

/// 7/9) Low- or high-density key ciphertexts of one random plaintext.
pub fn density_key(
    specu: &mut Specu,
    target_bits: usize,
    seed: u64,
    high: bool,
) -> Result<Vec<u8>, SpeError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pt = random_block(&mut rng);
    let flip_all = |k: Key| if high { Key::from_value(!k.value()) } else { k };
    let mut out = Vec::new();
    let mut produced = 0usize;
    let mut keys: Vec<Key> = Vec::new();
    keys.push(flip_all(Key::zero()));
    keys.extend(Key::weight_one_keys().map(flip_all));
    keys.extend(Key::weight_two_keys().map(flip_all));
    let mut idx = 0usize;
    while produced < target_bits {
        specu.load_key(keys[idx % keys.len()]);
        let tweak = (idx / keys.len()) as u64;
        out.extend_from_slice(&specu.encrypt_block_with_tweak(&pt, tweak)?.data());
        produced += BLOCK_BYTES * 8;
        idx += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn specu() -> Specu {
        static CACHE: OnceLock<Specu> = OnceLock::new();
        CACHE
            .get_or_init(|| Specu::new(Key::from_seed(0xD5)).expect("specu"))
            .clone()
    }

    #[test]
    fn builders_reach_target_length() {
        let mut s = specu();
        for ds in [
            Dataset::KeyAvalanche,
            Dataset::PtCtCorrelation,
            Dataset::RandomPtKey,
            Dataset::LowDensityPt,
            Dataset::HighDensityKey,
        ] {
            let bytes = ds.build(&mut s, 2048, 7).expect("build");
            assert!(bytes.len() * 8 >= 2048, "{ds:?} too short");
        }
    }

    #[test]
    fn builders_are_deterministic() {
        let mut s1 = specu();
        let mut s2 = specu();
        let a = Dataset::RandomPtKey.build(&mut s1, 1024, 3).expect("a");
        let b = Dataset::RandomPtKey.build(&mut s2, 1024, 3).expect("b");
        assert_eq!(a, b);
    }

    #[test]
    fn key_avalanche_is_roughly_balanced() {
        let mut s = specu();
        let bytes = key_avalanche(&mut s, 16 * 1024, 11).expect("build");
        let ones: u32 = bytes.iter().map(|b| b.count_ones()).sum();
        let ratio = ones as f64 / (bytes.len() * 8) as f64;
        assert!(
            (0.35..0.65).contains(&ratio),
            "key avalanche bias {ratio} (should be near 0.5)"
        );
    }

    #[test]
    fn dataset_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            Dataset::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(names.len(), 9);
    }
}
