//! Trusted Platform Module model (§4.1 initialization).
//!
//! The TPM is provisioned with the SPE key and the identity of the NVMM it
//! belongs to. At power-on it authenticates the platform (here: the NVMM
//! identity) and releases the key into the SPECU's volatile register; the
//! key never touches persistent storage.

use crate::error::SpeError;
use crate::key::Key;

/// A minimal TPM: provisioned key + platform identity check.
#[derive(Clone)]
pub struct Tpm {
    key: Key,
    nvmm_id: u64,
}

impl std::fmt::Debug for Tpm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tpm")
            .field("nvmm_id", &self.nvmm_id)
            .finish()
    }
}

impl Tpm {
    /// Provisions a TPM with a key bound to an NVMM identity.
    pub fn provision(key: Key, nvmm_id: u64) -> Self {
        Tpm { key, nvmm_id }
    }

    /// The identity this TPM is bound to.
    pub fn nvmm_id(&self) -> u64 {
        self.nvmm_id
    }

    /// Authenticates a platform and releases the key.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::AuthenticationFailed`] when the presented NVMM
    /// identity does not match the provisioned one (e.g. the attacker moved
    /// the NVMM to another machine).
    pub fn authenticate(&self, presented_nvmm_id: u64) -> Result<Key, SpeError> {
        if presented_nvmm_id == self.nvmm_id {
            Ok(self.key)
        } else {
            Err(SpeError::AuthenticationFailed {
                presented: presented_nvmm_id,
                expected: self.nvmm_id,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn releases_key_to_matching_platform() {
        let tpm = Tpm::provision(Key::from_seed(1), 0xABCD);
        assert_eq!(tpm.authenticate(0xABCD).expect("auth"), Key::from_seed(1));
    }

    #[test]
    fn rejects_foreign_platform() {
        let tpm = Tpm::provision(Key::from_seed(1), 0xABCD);
        assert!(matches!(
            tpm.authenticate(0x1234),
            Err(SpeError::AuthenticationFailed { .. })
        ));
    }

    #[test]
    fn debug_hides_key() {
        let tpm = Tpm::provision(Key::from_seed(77), 9);
        let s = format!("{tpm:?}");
        assert!(!s.contains(&Key::from_seed(77).to_string()));
    }
}
