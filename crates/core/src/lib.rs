//! Sneak-path encryption (SPE) — the paper's primary contribution.
//!
//! SPE encrypts a memristor crossbar *in place* by enabling its sneak paths
//! and applying a keyed sequence of voltage pulses at *points of encryption*
//! (PoEs). Each pulse perturbs the analog resistance of every cell in the
//! PoE's polyomino; the key determines the PoE order and the pulse
//! voltage/width pair applied at each. Decryption replays the schedule in
//! reverse with hysteresis-matched pulses. Because the pulses interact
//! through the stored data, replaying them in any other order fails
//! (Fig. 2b), and the ciphertext can only be decrypted on the same physical
//! array.
//!
//! The crate provides:
//!
//! * [`Key`] — the 88-bit secret (44-bit address seed ∥ 44-bit voltage
//!   seed, §5.4) and utilities for the Table 2 key datasets.
//! * [`CoupledLcg`] — the coupled linear-congruential PRNG of ref. \[14\]
//!   that expands the key into the pulse/PoE stream.
//! * [`lut`] — the voltage/pulse-width and address LUTs of Fig. 1b.
//! * [`PulseSchedule`] — a per-block schedule (PoE permutation + pulses).
//! * [`Specu`] — the Sneak-Path Encryption Control Unit: block/line
//!   encryption against the behavioral crossbar, validated against the
//!   circuit engine.
//! * [`BankScheduler`] / [`ParallelSpecu`] — the persistent, self-healing
//!   bank-scheduler pipeline (SPE-parallel): per-bank worker threads fed
//!   by bounded request queues, with ticket-based completion,
//!   backpressure, supervised respawn/quarantine ([`BankHealth`]),
//!   request deadlines and retry-with-backoff ([`RetryPolicy`]), plus a
//!   deterministic [`ChaosPolicy`] harness to exercise it all.
//! * [`TenantRegistry`] — multi-tenant SPECU: per-tenant keyed contexts
//!   over one shared calibration, with live key rotation pinned by
//!   schedule-cache [`EpochHandle`]s.
//! * [`SecureNvmm`] — an SPE-protected main memory with SPE-serial /
//!   SPE-parallel policies, encrypted-fraction tracking and the power-down
//!   lifecycle ([`Tpm`]).
//! * [`datasets`] — the nine Table 2 dataset builders (avalanche,
//!   correlation, density).
//! * [`analysis`] + [`bignum`] — exact brute-force keyspace arithmetic
//!   (§6.2) and the cold-boot window model (§6.4).
//! * [`attack`] — attack experiments: wrong-order decryption, known- and
//!   chosen-plaintext ambiguity, brute force on a reduced instance, and
//!   correlation power analysis against the supply-rail power trace
//!   (defeated by [`SchedulePolicy::PowerBalanced`]).
//!
//! # Example
//!
//! ```
//! use spe_core::{CipherRequest, Key, SpeCipher, Specu};
//!
//! # fn main() -> Result<(), spe_core::SpeError> {
//! let specu = Specu::builder().key(Key::from_seed(7)).build()?;
//! let plaintext = *b"attack at dawn!!";
//! let block = specu.encrypt(CipherRequest::block(plaintext))?.into_block()?;
//! assert_ne!(block.data(), plaintext, "ciphertext differs");
//! let out = specu.decrypt(CipherRequest::sealed_block(block))?.into_plain_block()?;
//! assert_eq!(out, plaintext);
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_code)]

pub mod analysis;
pub mod attack;
pub mod bignum;
pub mod cache;
pub mod chaos;
pub mod datasets;
pub mod discrete;
pub mod engine;
pub mod error;
pub mod key;
pub mod lut;
pub mod nvmm;
pub mod parallel;
pub mod prng;
pub mod recovery;
pub mod request;
pub mod schedule;
pub mod scheduler;
pub mod scramble;
pub mod specu;
pub mod sync;
pub mod tenant;
pub mod tpm;

pub use bignum::BigUint;
pub use cache::{DerivedSchedule, EpochHandle, ScheduleCache};
pub use chaos::{ChaosEvent, ChaosPolicy};
pub use engine::{BlockEngine, EngineOp, SealedLine};
pub use error::SpeError;
pub use key::Key;
pub use nvmm::{SecureNvmm, SpeMode};
pub use parallel::{BlockJob, LineJob, ParallelSpecu};
pub use prng::CoupledLcg;
pub use recovery::{
    FaultCounters, FaultKind, FaultModel, FaultPolicy, IntegrityEscalation, LineGuard, RemapTable,
    RetryPolicy,
};
pub use request::{
    CipherOutput, CipherRequest, CipherResponse, CipherTicket, Payload, SpeCipher, Verify,
};
pub use schedule::PulseSchedule;
pub use scheduler::{
    BankHealth, BankScheduler, HealthPolicy, SchedulerConfig, SubmitError, DEFAULT_QUEUE_DEPTH,
};
pub use scramble::{AddressScrambler, ComposedRemapper, IdentityRemapper, Remapper};
pub use specu::{
    CipherBlock, CipherLine, SchedulePolicy, SpeCalibration, SpeContext, SpeVariant, Specu,
    SpecuBuilder, SpecuConfig,
};
pub use sync::{
    lock_unpoisoned, read_unpoisoned, wait_timeout_unpoisoned, wait_unpoisoned, write_unpoisoned,
};
pub use tenant::{TenantId, TenantRegistry, TenantRotation, DEFAULT_TENANT_SHARDS};
pub use tpm::Tpm;
