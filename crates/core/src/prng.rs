//! Coupled linear congruential generator (paper ref \[14\]).
//!
//! Katti & Kavasseri propose coupling two LCGs so each perturbs the other's
//! state, removing the lattice structure of a single LCG. SPE uses the
//! 88-bit key to seed the pair (44 bits each, §5.4) and draws the PoE
//! permutation and the voltage/width selections from the output stream.

use crate::key::Key;

/// A pair of cross-coupled 44-bit LCGs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoupledLcg {
    x: u64,
    y: u64,
}

impl CoupledLcg {
    /// Modulus mask: the generators run modulo 2⁴⁴.
    const MASK: u64 = (1 << 44) - 1;
    // Multipliers chosen ≡ 5 (mod 8) for full period modulo a power of two;
    // the exact constants are an implementation choice.
    const A1: u64 = 0x5DEECE66D & Self::MASK;
    const A2: u64 = 0x2545F4914F5 & Self::MASK;
    const C1: u64 = 0xB;
    const C2: u64 = 0x3C6EF372FD;

    /// Seeds the pair from an SPE key (address seed → x, voltage seed → y).
    pub fn new(key: &Key) -> Self {
        CoupledLcg::with_tweak(key, 0)
    }

    /// Seeds from a bare 64-bit seed (dataset builders and test harnesses;
    /// derives a throwaway key).
    pub fn from_seed(seed: u64) -> Self {
        CoupledLcg::new(&Key::from_seed(seed))
    }

    /// Seeds the pair from a key and a block tweak (the NVMM block address)
    /// so every memory block gets an independent schedule.
    ///
    /// Both seed words pass through a finalizing hash so that a single key
    /// bit flip fully reseeds the stream (the key-avalanche property of
    /// §6.1 requires it; raw LCG seeding diffuses low bits too slowly).
    pub fn with_tweak(key: &Key, tweak: u64) -> Self {
        fn mix(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        let t1 = tweak.wrapping_mul(0x9E3779B97F4A7C15);
        let t2 = tweak.wrapping_mul(0xC2B2AE3D27D4EB4F).rotate_left(31);
        // Cross both key halves into each seed word so every key bit
        // reaches both generators.
        let a = mix(key.address_seed() ^ t1 ^ mix(key.voltage_seed()));
        let b = mix(key.voltage_seed() ^ t2 ^ mix(key.address_seed() ^ 0xABCD));
        let mut g = CoupledLcg {
            x: a & Self::MASK | 1,
            y: b & Self::MASK | 2,
        };
        for _ in 0..8 {
            g.next_raw();
        }
        g
    }

    /// One coupled step; returns 44 pseudo-random bits.
    fn next_raw(&mut self) -> u64 {
        // Each generator's next state folds in the other's current state.
        let nx = (Self::A1
            .wrapping_mul(self.x)
            .wrapping_add(Self::C1)
            .wrapping_add(self.y >> 13))
            & Self::MASK;
        let ny = (Self::A2
            .wrapping_mul(self.y)
            .wrapping_add(Self::C2)
            .wrapping_add(nx >> 7))
            & Self::MASK;
        self.x = nx;
        self.y = ny;
        // Combine both states; the XOR hides either generator's lattice.
        (nx ^ ny.rotate_left(21)) & Self::MASK
    }

    /// The next `bits`-wide value (1..=44 bits).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or exceeds 44.
    pub fn next_bits(&mut self, bits: u32) -> u64 {
        assert!((1..=44).contains(&bits), "bits must be in 1..=44");
        self.next_raw() >> (44 - bits)
    }

    /// An unbiased value in `0..bound` (rejection sampling on the top bits).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0` or `bound > 2^32`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0 && bound <= 1 << 32, "bound out of range");
        let bits = 64 - (bound - 1).leading_zeros().min(63);
        let bits = bits.clamp(1, 44);
        loop {
            let v = self.next_bits(bits);
            if v < bound {
                return v;
            }
        }
    }

    /// The next pseudo-random `u64` (two 44-bit draws).
    pub fn next_u64(&mut self) -> u64 {
        (self.next_raw() << 20) ^ self.next_raw()
    }

    /// Fills `buf` with pseudo-random bytes (five bytes per draw).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(5) {
            let v = self.next_bits(40);
            for (k, b) in chunk.iter_mut().enumerate() {
                *b = (v >> (8 * k)) as u8;
            }
        }
    }

    /// Fisher–Yates permutation of `0..n` driven by the generator.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p = Vec::new();
        self.permutation_into(n, &mut p);
        p
    }

    /// Like [`permutation`](Self::permutation), writing into `out` so hot
    /// loops (per-block schedule derivation) reuse one allocation.
    pub fn permutation_into(&mut self, n: usize, out: &mut Vec<usize>) {
        out.clear();
        out.extend(0..n);
        for i in (1..n).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            out.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_key() {
        let k = Key::from_seed(5);
        let a: Vec<u64> = {
            let mut g = CoupledLcg::new(&k);
            (0..16).map(|_| g.next_bits(44)).collect()
        };
        let b: Vec<u64> = {
            let mut g = CoupledLcg::new(&k);
            (0..16).map(|_| g.next_bits(44)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_keys_diverge() {
        let mut g1 = CoupledLcg::new(&Key::from_seed(5));
        let mut g2 = CoupledLcg::new(&Key::from_seed(5).flip_bit(0));
        let same = (0..32)
            .filter(|_| g1.next_bits(44) == g2.next_bits(44))
            .count();
        assert!(same <= 1, "streams should diverge, {same}/32 collisions");
    }

    #[test]
    fn tweak_changes_stream() {
        let k = Key::from_seed(7);
        let mut g1 = CoupledLcg::with_tweak(&k, 0);
        let mut g2 = CoupledLcg::with_tweak(&k, 1);
        let same = (0..32)
            .filter(|_| g1.next_bits(44) == g2.next_bits(44))
            .count();
        assert!(same <= 1);
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut g = CoupledLcg::new(&Key::from_seed(11));
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = g.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s), "all residues should appear");
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut g = CoupledLcg::new(&Key::from_seed(13));
        let mut counts = [0usize; 8];
        const N: usize = 16000;
        for _ in 0..N {
            counts[g.next_below(8) as usize] += 1;
        }
        for c in counts {
            let expected = N / 8;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 4) as u64,
                "bucket count {c} far from {expected}"
            );
        }
    }

    #[test]
    fn permutation_is_valid() {
        let mut g = CoupledLcg::new(&Key::from_seed(17));
        let p = g.permutation(16);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn permutations_vary_with_key() {
        let a = CoupledLcg::new(&Key::from_seed(1)).permutation(16);
        let b = CoupledLcg::new(&Key::from_seed(2)).permutation(16);
        assert_ne!(a, b);
    }

    #[test]
    fn monobit_balance_of_stream() {
        let mut g = CoupledLcg::new(&Key::from_seed(23));
        let mut ones = 0u64;
        const DRAWS: u64 = 4000;
        for _ in 0..DRAWS {
            ones += g.next_bits(44).count_ones() as u64;
        }
        let total = DRAWS * 44;
        let ratio = ones as f64 / total as f64;
        assert!((0.48..0.52).contains(&ratio), "bit bias {ratio}");
    }
}
