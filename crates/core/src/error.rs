//! Error type for SPE operations.

use std::error::Error;
use std::fmt;

/// Errors raised by the SPE engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SpeError {
    /// A crossbar-level failure (circuit solve, bad address, …).
    Crossbar(spe_crossbar::CrossbarError),
    /// PoE placement failed (ILP infeasible or budget exhausted).
    Placement(spe_ilp::IlpError),
    /// The SPECU has no key loaded (e.g. after power-down).
    KeyNotLoaded,
    /// TPM refused to release the key (platform authentication failed).
    AuthenticationFailed {
        /// The NVMM identity that was presented.
        presented: u64,
        /// The identity the TPM was provisioned for.
        expected: u64,
    },
    /// A data buffer has the wrong size.
    BadLength {
        /// Expected byte count.
        expected: usize,
        /// Actual byte count.
        actual: usize,
    },
    /// Write-verify recovery ran out of spare regions: a polyomino could
    /// not be committed anywhere, so the block cannot be stored.
    FaultExhausted {
        /// The tweak (block address) of the uncommittable block.
        tweak: u64,
        /// How many spare regions the policy allowed.
        spares: u32,
    },
    /// A checked decrypt recovered data whose integrity tag does not
    /// match: the stored line is unrecoverably corrupted (or was never
    /// tagged).
    IntegrityViolation {
        /// The tweak (block address) of the failing block.
        tweak: u64,
    },
    /// A [`crate::request::CipherRequest`] paired an operation with an
    /// incompatible payload (e.g. decrypting a plaintext payload), or a
    /// response accessor asked for a payload kind the response does not
    /// hold.
    BadRequest(&'static str),
    /// A SPECU bank worker panicked *while executing* a request: the
    /// request's completion ticket is failed with this typed error instead
    /// of leaving the submitter blocked forever. The request may have
    /// partially executed; resubmitting is safe only because the cipher
    /// datapath is stateless (a retry recomputes from the request alone).
    BankPoisoned,
    /// A queued request was discarded *without ever executing* (its bank
    /// was quarantined, or a sibling panic tore down the fan-out before
    /// the job started). Unlike [`SpeError::BankPoisoned`], no work ran at
    /// all, so resubmission is unconditionally safe.
    JobNeverRan,
    /// The request's deadline passed before a bank worker could run it;
    /// the job was dropped (load-shed) without executing.
    DeadlineExceeded,
    /// Every bank of the scheduler is quarantined: no worker can accept
    /// the request. [`crate::parallel::ParallelSpecu`] reacts by degrading
    /// to the serial datapath so the system keeps answering.
    AllBanksQuarantined,
    /// The bank scheduler has been shut down: in-flight requests drain to
    /// completion, but new submissions are refused.
    SchedulerShutdown,
    /// A tenant-tagged request named a tenant with no live context in the
    /// [`crate::tenant::TenantRegistry`] (never registered, or removed).
    /// Not retryable: resubmission cannot succeed until the tenant is
    /// (re)registered.
    UnknownTenant(crate::tenant::TenantId),
    /// An internal invariant failed (e.g. a SPECU bank worker died).
    Internal(&'static str),
}

impl fmt::Display for SpeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpeError::Crossbar(e) => write!(f, "crossbar error: {e}"),
            SpeError::Placement(e) => write!(f, "poe placement error: {e}"),
            SpeError::KeyNotLoaded => write!(f, "no key loaded in the SPECU"),
            SpeError::AuthenticationFailed {
                presented,
                expected,
            } => write!(
                f,
                "TPM authentication failed: NVMM {presented:#x} != provisioned {expected:#x}"
            ),
            SpeError::BadLength { expected, actual } => {
                write!(
                    f,
                    "bad buffer length: expected {expected} bytes, got {actual}"
                )
            }
            SpeError::FaultExhausted { tweak, spares } => write!(
                f,
                "fault recovery exhausted: block {tweak:#x} uncommittable after {spares} spare regions"
            ),
            SpeError::IntegrityViolation { tweak } => write!(
                f,
                "integrity violation: block {tweak:#x} decrypted to corrupted data"
            ),
            SpeError::BadRequest(what) => write!(f, "bad cipher request: {what}"),
            SpeError::BankPoisoned => {
                write!(f, "a SPECU bank worker panicked; the request was abandoned")
            }
            SpeError::JobNeverRan => {
                write!(
                    f,
                    "the request was discarded before any worker ran it; resubmission is safe"
                )
            }
            SpeError::DeadlineExceeded => {
                write!(f, "the request's deadline expired before it was executed")
            }
            SpeError::AllBanksQuarantined => {
                write!(
                    f,
                    "every SPECU bank is quarantined; the scheduler cannot accept requests"
                )
            }
            SpeError::SchedulerShutdown => {
                write!(f, "the bank scheduler is shut down; submission refused")
            }
            SpeError::UnknownTenant(tenant) => {
                write!(f, "unknown tenant {tenant}: no live context registered")
            }
            SpeError::Internal(what) => write!(f, "internal error: {what}"),
        }
    }
}

impl SpeError {
    /// Whether resubmitting the failed request can succeed — the
    /// pipeline-level analogue of a transient (vs permanent) device fault.
    ///
    /// [`SpeError::JobNeverRan`] never executed, so a retry is always
    /// safe; [`SpeError::BankPoisoned`] executed partially, but the cipher
    /// datapath is stateless (every request recomputes from its own
    /// payload), so re-running it commits nothing twice. Deadline expiry
    /// is *not* retryable: the caller's time budget is spent, and
    /// re-queuing an already-late request only amplifies overload.
    pub fn is_retryable(&self) -> bool {
        matches!(self, SpeError::BankPoisoned | SpeError::JobNeverRan)
    }
}

impl Error for SpeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpeError::Crossbar(e) => Some(e),
            SpeError::Placement(e) => Some(e),
            _ => None,
        }
    }
}

impl From<spe_crossbar::CrossbarError> for SpeError {
    fn from(e: spe_crossbar::CrossbarError) -> Self {
        SpeError::Crossbar(e)
    }
}

impl From<spe_ilp::IlpError> for SpeError {
    fn from(e: spe_ilp::IlpError) -> Self {
        SpeError::Placement(e)
    }
}

impl From<spe_memristor::DeviceError> for SpeError {
    fn from(e: spe_memristor::DeviceError) -> Self {
        SpeError::Crossbar(spe_crossbar::CrossbarError::Device(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SpeError::BadLength {
            expected: 64,
            actual: 3,
        };
        assert!(e.to_string().contains("64"));
        assert!(SpeError::KeyNotLoaded.to_string().contains("key"));
    }

    #[test]
    fn conversion_from_substrate_errors() {
        let c: SpeError = spe_crossbar::CrossbarError::SingularNetwork.into();
        assert!(matches!(c, SpeError::Crossbar(_)));
        let p: SpeError = spe_ilp::IlpError::Infeasible.into();
        assert!(matches!(p, SpeError::Placement(_)));
        let d: SpeError = spe_memristor::DeviceError::InvalidLevelBits { bits: 9 }.into();
        assert!(matches!(
            d,
            SpeError::Crossbar(spe_crossbar::CrossbarError::Device(_))
        ));
    }

    #[test]
    fn scheduler_variants_display_their_cause() {
        assert!(SpeError::BankPoisoned.to_string().contains("panicked"));
        assert!(SpeError::SchedulerShutdown
            .to_string()
            .contains("shut down"));
        assert!(SpeError::JobNeverRan.to_string().contains("resubmission"));
        assert!(SpeError::DeadlineExceeded.to_string().contains("deadline"));
        assert!(SpeError::AllBanksQuarantined
            .to_string()
            .contains("quarantined"));
        let t = SpeError::UnknownTenant(crate::tenant::TenantId::new(42));
        assert!(t.to_string().contains("42"));
        assert!(!t.is_retryable());
    }

    #[test]
    fn retryability_separates_safe_from_final_failures() {
        assert!(SpeError::BankPoisoned.is_retryable());
        assert!(SpeError::JobNeverRan.is_retryable());
        assert!(!SpeError::DeadlineExceeded.is_retryable());
        assert!(!SpeError::SchedulerShutdown.is_retryable());
        assert!(!SpeError::AllBanksQuarantined.is_retryable());
        assert!(!SpeError::KeyNotLoaded.is_retryable());
    }

    #[test]
    fn fault_variants_display_the_tweak() {
        let e = SpeError::FaultExhausted {
            tweak: 0x2A,
            spares: 2,
        };
        assert!(e.to_string().contains("0x2a"));
        let i = SpeError::IntegrityViolation { tweak: 0x2A };
        assert!(i.to_string().contains("0x2a"));
    }
}
