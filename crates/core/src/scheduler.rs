//! The persistent, self-healing bank-scheduler pipeline.
//!
//! PR 5's schedule cache removed derivation cost from the warm line path,
//! which exposed the next bottleneck: the multi-bank datapath forked and
//! joined a fresh [`std::thread::scope`] per batch, and on warm working
//! sets that per-batch spawn overhead made four banks *slower* than one.
//! This module replaces fork-join with a memory-controller-style request
//! scheduler, and supervises it so that worker failures degrade service
//! instead of stopping it:
//!
//! * **Persistent workers** — one thread per SPECU bank, spawned once when
//!   the [`BankScheduler`] is built and parked on a condvar when idle.
//! * **Bounded per-bank queues** — every [`CipherRequest`] is routed to a
//!   bank by its address (block tweak / line address), giving each bank an
//!   independent bounded submission queue. [`BankScheduler::submit`]
//!   blocks when the target queue is full (backpressure);
//!   [`BankScheduler::try_submit`] refuses with
//!   [`SubmitError::WouldBlock`] instead.
//! * **Tickets** — each accepted request returns a
//!   [`CipherTicket`](crate::request::CipherTicket); banks complete out of
//!   order and the ticket matches each response to its submission.
//! * **Supervision** — each bank thread is an incarnation loop: a job
//!   panic fails that job's ticket with [`SpeError::BankPoisoned`] and
//!   the supervisor respawns the worker logic in place (same OS thread,
//!   fresh incarnation). Consecutive failures walk the bank through the
//!   [`BankHealth`] state machine (`Healthy → Degraded → Quarantined`)
//!   under a [`HealthPolicy`]; a quarantined bank closes its queue, fails
//!   every still-queued job with [`SpeError::JobNeverRan`], and routing
//!   steers new requests to the surviving banks. Only when *every* bank
//!   is quarantined do submissions fail, with
//!   [`SpeError::AllBanksQuarantined`] — the façade's cue to degrade to
//!   the serial datapath.
//! * **Deadlines** — a [`CipherRequest`] may carry a deadline; a worker
//!   that dequeues an already-expired request load-sheds it with
//!   [`SpeError::DeadlineExceeded`] instead of doing stale work.
//! * **Deterministic shutdown** — [`BankScheduler::shutdown`] (and drop)
//!   closes the queues; workers drain every accepted request before they
//!   exit, so a ticket obtained before shutdown always completes. New
//!   submissions are refused with [`SpeError::SchedulerShutdown`].
//! * **Chaos injection** — a seed-pure [`ChaosPolicy`] in the
//!   [`SchedulerConfig`] makes workers panic/stall/slow on a reproducible
//!   schedule, so the whole recovery ladder is exercised by tests and the
//!   `chaos_bench` harness rather than trusted on faith.
//!
//! Telemetry conservation invariant: every accepted request resolves
//! exactly once, so `sched_submitted == sched_completed +
//! deadline_expired` holds at quiescence — normal completions, panic
//! poisonings and quarantine drains all count as completed; only
//! load-shed expiries are broken out separately.
//!
//! The workers execute requests through the exact same
//! [`SpeCipher`](crate::request::SpeCipher) implementation the serial
//! context uses, so pipelined ciphertexts are byte-identical to serial
//! ones by construction. [`crate::parallel::ParallelSpecu`] keeps its
//! batch API as a thin façade over this scheduler.

use crate::chaos::{ChaosEvent, ChaosPolicy};
use crate::error::SpeError;
use crate::request::{CipherRequest, CipherResponse, CipherTicket, Payload, SpeCipher, TicketCell};
use crate::scramble::AddressScrambler;
use crate::specu::{SpeContext, BLOCKS_PER_LINE};
use crate::sync::{lock_unpoisoned, wait_unpoisoned};
use crate::tenant::TenantRegistry;
use spe_telemetry::{Counter, Histogram, Recorder};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default bound on each bank's submission queue (requests).
pub const DEFAULT_QUEUE_DEPTH: usize = 64;

/// One bank's position in the supervision state machine.
///
/// Transitions (driven by the supervisor under a [`HealthPolicy`]):
/// `Healthy → Degraded` after `degrade_after` consecutive failures,
/// `Degraded → Quarantined` after `quarantine_after`, and `Degraded →
/// Healthy` on any successful job. Quarantine is terminal for the bank
/// (its worker exits); the scheduler as a whole keeps running on the
/// survivors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankHealth {
    /// Serving normally; preferred by routing.
    Healthy,
    /// Recent consecutive failures; still serving, but routing prefers
    /// healthy banks when any exist.
    Degraded,
    /// Permanently withdrawn: queue closed, queued jobs failed with
    /// [`SpeError::JobNeverRan`], worker exited.
    Quarantined,
}

const HEALTH_HEALTHY: u8 = 0;
const HEALTH_DEGRADED: u8 = 1;
const HEALTH_QUARANTINED: u8 = 2;

/// Thresholds for the per-bank health state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive worker failures before the bank is marked
    /// [`BankHealth::Degraded`] (clamped to at least one).
    pub degrade_after: u32,
    /// Consecutive worker failures before the bank is quarantined
    /// (clamped to at least `degrade_after`).
    pub quarantine_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            degrade_after: 2,
            quarantine_after: 4,
        }
    }
}

impl HealthPolicy {
    /// A policy that respawns forever and never quarantines — used by
    /// chaos sweeps that measure sustained throughput under a fixed panic
    /// rate without eroding the bank pool.
    pub fn never_quarantine() -> Self {
        HealthPolicy {
            degrade_after: 2,
            quarantine_after: u32::MAX,
        }
    }

    fn degrade_after(&self) -> u32 {
        self.degrade_after.max(1)
    }

    fn quarantine_after(&self) -> u32 {
        self.quarantine_after.max(self.degrade_after())
    }
}

/// Line-address domain of the routing scrambler: a 32-bit power-of-two
/// space, so the Feistel permutation never cycle-walks on the hot path.
const ROUTING_DOMAIN: u64 = 1 << 32;

/// Bank-scheduler geometry and resilience policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// SPECU banks (worker threads); clamped to at least one.
    pub banks: usize,
    /// Bounded depth of each bank's submission queue; clamped to at least
    /// one. Submissions beyond it block (or refuse, for
    /// [`BankScheduler::try_submit`]).
    pub queue_depth: usize,
    /// Respawn/quarantine thresholds for the per-bank health machine.
    pub health: HealthPolicy,
    /// Deterministic fault injection (none by default).
    pub chaos: ChaosPolicy,
    /// Route requests by their *scrambled* address: bank selection runs
    /// the routing key through an [`AddressScrambler`] derived from the
    /// pool context's key and epoch, so the physical bank access pattern
    /// decorrelates from the logical address stream (an observer of
    /// per-bank activity learns nothing about which logical lines are
    /// hot). Off by default; ciphertexts are unaffected either way —
    /// scrambling moves placement, never content.
    pub scramble_routing: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            banks: BLOCKS_PER_LINE,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            health: HealthPolicy::default(),
            chaos: ChaosPolicy::none(),
            scramble_routing: false,
        }
    }
}

impl SchedulerConfig {
    /// A configuration with `banks` workers and the default queue depth.
    pub fn with_banks(banks: usize) -> Self {
        SchedulerConfig {
            banks,
            ..SchedulerConfig::default()
        }
    }

    /// The same configuration with `health` thresholds.
    #[must_use]
    pub fn with_health(mut self, health: HealthPolicy) -> Self {
        self.health = health;
        self
    }

    /// The same configuration with deterministic `chaos` injection.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosPolicy) -> Self {
        self.chaos = chaos;
        self
    }

    /// The same configuration with keyed scrambled-address bank routing.
    #[must_use]
    pub fn with_scrambled_routing(mut self) -> Self {
        self.scramble_routing = true;
        self
    }
}

/// Why a non-blocking submission was refused. Every variant hands the
/// request back so the caller can retry or reroute without cloning.
#[derive(Debug)]
pub enum SubmitError {
    /// The target bank's queue is at its bound; retrying later (or
    /// switching to the blocking [`BankScheduler::submit`]) will succeed
    /// once the bank drains.
    WouldBlock(CipherRequest),
    /// The scheduler is shut down; no bank will ever accept the request.
    Shutdown(CipherRequest),
    /// Every bank is quarantined; the caller should fall back to the
    /// serial datapath (see
    /// [`ParallelSpecu`](crate::parallel::ParallelSpecu)).
    Quarantined(CipherRequest),
}

impl SubmitError {
    /// Recovers the refused request.
    pub fn into_request(self) -> CipherRequest {
        match self {
            SubmitError::WouldBlock(r) | SubmitError::Shutdown(r) | SubmitError::Quarantined(r) => {
                r
            }
        }
    }
}

/// What a queued job asks its bank worker to do.
// Outside tests the enum has a single variant; the size gap exists only
// against the zero-payload test-injection variants.
#[cfg_attr(test, allow(clippy::large_enum_variant))]
#[derive(Debug)]
enum JobKind {
    /// Run the request through the shared context's cipher datapath
    /// (plaintext payloads encrypt, sealed payloads decrypt).
    Cipher(CipherRequest),
    /// Panic inside the worker — exercises the poison/respawn path.
    #[cfg(test)]
    Panic,
    /// Park until the gate opens — holds the bank busy so tests can fill
    /// its queue deterministically.
    #[cfg(test)]
    Stall(Arc<StallGate>),
}

/// One queued unit of work plus its completion ticket.
///
/// The `Drop` impl is the no-deadlock safety net: however a job leaves the
/// system — executed, abandoned during a panic unwind, or discarded by a
/// drain — its ticket is completed exactly once.
#[derive(Debug)]
struct Job {
    kind: JobKind,
    cell: Arc<TicketCell>,
}

impl Job {
    fn new(request: CipherRequest) -> (Self, CipherTicket) {
        Job::with_kind(JobKind::Cipher(request))
    }

    fn with_kind(kind: JobKind) -> (Self, CipherTicket) {
        let cell = Arc::new(TicketCell::default());
        let ticket = CipherTicket::new(Arc::clone(&cell));
        (Job { kind, cell }, ticket)
    }

    /// Whether the job's request carried a deadline that has passed.
    fn expired(&self, now: Instant) -> bool {
        match &self.kind {
            JobKind::Cipher(request) => request.expired_at(now),
            #[cfg(test)]
            JobKind::Panic | JobKind::Stall(_) => false,
        }
    }

    /// Recovers the cipher request from a refused job (the paired ticket
    /// was never handed out, so nobody observes the cell the drop fails).
    fn into_request(self) -> CipherRequest {
        match self.kind {
            JobKind::Cipher(ref r) => r.clone(),
            #[cfg(test)]
            _ => unreachable!("only cipher jobs are refused back to callers"),
        }
    }

    /// Executes the job and publishes the result. Tenant-tagged requests
    /// resolve their context through the scheduler's registry *here*, at
    /// execution time, so a rotation that lands while the job is queued
    /// takes effect before any cipher work happens.
    fn run(self, cipher: BankCipher<'_>) {
        match &self.kind {
            JobKind::Cipher(request) => {
                let result = execute_cipher(cipher.context, cipher.registry, request);
                self.cell.complete(result);
            }
            #[cfg(test)]
            JobKind::Panic => panic!("test-injected bank panic"),
            #[cfg(test)]
            JobKind::Stall(gate) => {
                gate.wait_open();
                self.cell.complete(Err(SpeError::Internal("stall job")));
            }
        }
    }

    /// Resolves the job without executing it, with a typed error (deadline
    /// expiry, quarantine drain). First write wins, so the drop net's
    /// later `BankPoisoned` is a no-op.
    fn fail(self, err: SpeError) {
        self.cell.complete(Err(err));
    }
}

impl Drop for Job {
    fn drop(&mut self) {
        // First write wins in `complete`, so this is a no-op after a
        // normal run and the poison marker otherwise.
        self.cell.complete(Err(SpeError::BankPoisoned));
    }
}

/// A test gate a stall job parks on until opened.
#[cfg(test)]
#[derive(Debug, Default)]
struct StallGate {
    open: Mutex<bool>,
    bell: Condvar,
}

#[cfg(test)]
impl StallGate {
    fn wait_open(&self) {
        let mut open = lock_unpoisoned(&self.open);
        while !*open {
            open = wait_unpoisoned(&self.bell, open);
        }
    }

    fn release(&self) {
        *lock_unpoisoned(&self.open) = true;
        self.bell.notify_all();
    }
}

/// The guarded state of one bank's submission queue.
#[derive(Debug, Default)]
struct BankState {
    queue: VecDeque<Job>,
    /// Cleared by shutdown or quarantine: new submissions are refused.
    open: bool,
}

/// One bank's bounded MPMC submission queue.
///
/// The mutex guards a queue that is only ever updated whole (a job is
/// pushed or it is not), so recovering a poisoned guard
/// ([`lock_unpoisoned`]) serves structurally valid state and beats
/// deadlocking every submitter.
#[derive(Debug)]
struct BankQueue {
    state: Mutex<BankState>,
    /// Workers park here when the queue is empty.
    not_empty: Condvar,
    /// Blocking submitters park here when the queue is at its bound.
    not_full: Condvar,
}

impl BankQueue {
    fn new() -> Self {
        BankQueue {
            state: Mutex::new(BankState {
                queue: VecDeque::new(),
                open: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Worker side: the next job, parking while the queue is empty and
    /// open. `None` once the queue is closed *and* drained — the worker's
    /// signal to exit.
    fn pop(&self) -> Option<Job> {
        let mut state = lock_unpoisoned(&self.state);
        loop {
            if let Some(job) = state.queue.pop_front() {
                self.not_full.notify_one();
                return Some(job);
            }
            if !state.open {
                return None;
            }
            state = wait_unpoisoned(&self.not_empty, state);
        }
    }

    /// Submitter side, blocking: waits for space (recording one
    /// backpressure stall if it had to), then enqueues. Returns the
    /// post-push depth, or the job back once the queue closes (shutdown or
    /// quarantine — the caller distinguishes them).
    #[allow(clippy::result_large_err)] // Err is the job handed back by design
    fn push(&self, job: Job, depth: usize, recorder: &dyn Recorder) -> Result<usize, Job> {
        let mut state = lock_unpoisoned(&self.state);
        let mut stalled = false;
        while state.open && state.queue.len() >= depth {
            stalled = true;
            state = wait_unpoisoned(&self.not_full, state);
        }
        if !state.open {
            return Err(job);
        }
        if stalled {
            recorder.add(Counter::SchedBackpressureWaits, 1);
        }
        state.queue.push_back(job);
        let occupied = state.queue.len();
        self.not_empty.notify_one();
        Ok(occupied)
    }

    /// Submitter side, non-blocking: enqueues only if the bank is open and
    /// has space. Returns the post-push depth, or the job back.
    // Handing the whole job back on refusal is the point of the API — the
    // caller resubmits it without a copy — so the large Err is deliberate.
    #[allow(clippy::result_large_err)]
    fn try_push(&self, job: Job, depth: usize) -> Result<usize, Job> {
        let mut state = lock_unpoisoned(&self.state);
        if !state.open || state.queue.len() >= depth {
            return Err(job);
        }
        state.queue.push_back(job);
        let occupied = state.queue.len();
        self.not_empty.notify_one();
        Ok(occupied)
    }

    /// Whether the queue accepts new submissions.
    fn is_open(&self) -> bool {
        lock_unpoisoned(&self.state).open
    }

    /// Closes the queue: submissions refuse, and parked workers and
    /// submitters wake to observe the closure. Queued jobs stay put — the
    /// caller either lets the worker drain them (shutdown) or
    /// [`drain_jobs`](BankQueue::drain_jobs)s them (quarantine).
    fn close(&self) {
        let mut state = lock_unpoisoned(&self.state);
        state.open = false;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Removes every queued job (quarantine: the caller fails each one
    /// with [`SpeError::JobNeverRan`]).
    fn drain_jobs(&self) -> Vec<Job> {
        let mut state = lock_unpoisoned(&self.state);
        let jobs: Vec<Job> = state.queue.drain(..).collect();
        drop(state);
        self.not_full.notify_all();
        jobs
    }
}

/// Per-bank supervision state, shared between the bank's supervisor
/// thread and the routing logic.
#[derive(Debug)]
struct BankMonitor {
    /// [`BankHealth`] encoded as `HEALTH_*`.
    state: AtomicU8,
    /// Consecutive worker failures since the last successful job.
    consecutive: AtomicU32,
    /// Per-bank job sequence number feeding the chaos draw. Monotonic
    /// across respawns — a fresh incarnation continues the stream, so one
    /// chaos seed describes one schedule regardless of how often the bank
    /// died along the way.
    seq: AtomicU64,
}

impl BankMonitor {
    fn new() -> Self {
        BankMonitor {
            state: AtomicU8::new(HEALTH_HEALTHY),
            consecutive: AtomicU32::new(0),
            seq: AtomicU64::new(0),
        }
    }

    fn health(&self) -> BankHealth {
        match self.state.load(Ordering::Relaxed) {
            HEALTH_HEALTHY => BankHealth::Healthy,
            HEALTH_DEGRADED => BankHealth::Degraded,
            _ => BankHealth::Quarantined,
        }
    }

    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// A job ran to completion: the failure streak resets and a degraded
    /// bank heals. Quarantine is terminal, so only `Degraded → Healthy`
    /// is allowed here.
    fn record_success(&self) {
        self.consecutive.store(0, Ordering::Relaxed);
        let _ = self.state.compare_exchange(
            HEALTH_DEGRADED,
            HEALTH_HEALTHY,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// A worker incarnation died: bumps the streak, degrades the bank at
    /// the policy threshold, and returns the new streak for the
    /// quarantine decision.
    fn record_failure(&self, policy: &HealthPolicy) -> u32 {
        let streak = self.consecutive.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= policy.degrade_after() {
            let _ = self.state.compare_exchange(
                HEALTH_HEALTHY,
                HEALTH_DEGRADED,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
        streak
    }

    /// Withdraws the bank permanently. Set *before* the queue closes so a
    /// submitter refused by the closed queue re-selects a different bank.
    fn quarantine(&self) {
        self.state.store(HEALTH_QUARANTINED, Ordering::Relaxed);
    }
}

/// The persistent multi-bank request scheduler: per-bank worker threads
/// fed by bounded submission queues of [`CipherRequest`]s, completing into
/// [`CipherTicket`]s, supervised through the [`BankHealth`] machine.
///
/// Built once and reused across batches — the whole point is that no
/// thread is ever spawned on the hot path. All submission methods take
/// `&self`; clones of the owning [`crate::parallel::ParallelSpecu`] share
/// one scheduler behind an [`Arc`].
#[derive(Debug)]
pub struct BankScheduler {
    banks: Vec<Arc<BankQueue>>,
    monitors: Vec<Arc<BankMonitor>>,
    workers: Vec<JoinHandle<()>>,
    context: SpeContext,
    /// Tenant resolution for tenant-tagged requests; `None` schedulers
    /// serve single-tenant traffic only.
    registry: Option<Arc<TenantRegistry>>,
    config: SchedulerConfig,
    /// Set by [`BankScheduler::shutdown`]; distinguishes a queue closed by
    /// shutdown from one closed by quarantine.
    closed: AtomicBool,
    /// Requests accepted but not yet completed (queued + executing).
    in_flight: Arc<AtomicU64>,
    /// Round-robin cursor for requests with no address affinity.
    cursor: AtomicUsize,
    /// Keyed routing permutation ([`SchedulerConfig::scramble_routing`]):
    /// bank selection sees scrambled addresses, so the per-bank access
    /// pattern is placement-secret.
    scrambler: Option<AddressScrambler>,
}

impl BankScheduler {
    /// Spawns `config.banks` persistent, supervised workers over clones of
    /// `context`. Workers share the context's calibration, schedule cache
    /// and telemetry recorder, so the pipelined datapath is the serial
    /// one, many times over.
    pub fn new(context: SpeContext, config: SchedulerConfig) -> Self {
        BankScheduler::build(context, config, None)
    }

    /// Like [`BankScheduler::new`], but bank workers additionally serve
    /// mixed-tenant traffic: a request tagged with
    /// [`CipherRequest::with_tenant`](crate::request::CipherRequest::with_tenant)
    /// resolves the tenant's *current* context from `registry` at
    /// execution time (typed [`SpeError::UnknownTenant`] when none is
    /// live). Untagged requests still run on the shared `context`.
    pub fn with_registry(
        context: SpeContext,
        config: SchedulerConfig,
        registry: Arc<TenantRegistry>,
    ) -> Self {
        BankScheduler::build(context, config, Some(registry))
    }

    fn build(
        context: SpeContext,
        config: SchedulerConfig,
        registry: Option<Arc<TenantRegistry>>,
    ) -> Self {
        let config = SchedulerConfig {
            banks: config.banks.max(1),
            queue_depth: config.queue_depth.max(1),
            ..config
        };
        let in_flight = Arc::new(AtomicU64::new(0));
        let banks: Vec<Arc<BankQueue>> = (0..config.banks)
            .map(|_| Arc::new(BankQueue::new()))
            .collect();
        let monitors: Vec<Arc<BankMonitor>> = (0..config.banks)
            .map(|_| Arc::new(BankMonitor::new()))
            .collect();
        let workers = banks
            .iter()
            .zip(&monitors)
            .enumerate()
            .map(|(b, (queue, monitor))| {
                let queue = Arc::clone(queue);
                let monitor = Arc::clone(monitor);
                let ctx = context.clone();
                let registry = registry.clone();
                let in_flight = Arc::clone(&in_flight);
                let health = config.health;
                let chaos = config.chaos;
                std::thread::Builder::new()
                    .name(format!("spe-bank-{b}"))
                    .spawn(move || {
                        supervise(
                            b,
                            &queue,
                            &monitor,
                            BankCipher {
                                context: &ctx,
                                registry: registry.as_deref(),
                            },
                            &in_flight,
                            health,
                            chaos,
                        )
                    })
                    .expect("spawn SPECU bank worker")
            })
            .collect();
        let scrambler = config.scramble_routing.then(|| {
            let mut s =
                AddressScrambler::new(context.routing_key(), context.key_epoch(), ROUTING_DOMAIN);
            s.set_recorder(Arc::clone(context.recorder()));
            s
        });
        BankScheduler {
            banks,
            monitors,
            workers,
            context,
            registry,
            config,
            closed: AtomicBool::new(false),
            in_flight,
            cursor: AtomicUsize::new(0),
            scrambler,
        }
    }

    /// The shared keyed context the workers execute against.
    pub fn context(&self) -> &SpeContext {
        &self.context
    }

    /// The tenant registry, when this scheduler serves mixed-tenant
    /// traffic ([`BankScheduler::with_registry`]).
    pub fn registry(&self) -> Option<&Arc<TenantRegistry>> {
        self.registry.as_ref()
    }

    /// The number of SPECU banks (worker threads).
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// The bound on each bank's submission queue.
    pub fn queue_depth(&self) -> usize {
        self.config.queue_depth
    }

    /// Requests currently accepted but not yet completed.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// The full scheduler configuration (normalised geometry plus health
    /// and chaos policies), sufficient to rebuild an identical scheduler.
    pub fn config(&self) -> SchedulerConfig {
        self.config
    }

    /// One bank's position in the health state machine.
    pub fn bank_health(&self, bank: usize) -> BankHealth {
        self.monitors[bank].health()
    }

    /// Banks still accepting work (healthy or degraded).
    pub fn serving_banks(&self) -> usize {
        self.monitors
            .iter()
            .filter(|m| m.health() != BankHealth::Quarantined)
            .count()
    }

    /// Whether every bank has been quarantined (submissions now fail with
    /// [`SpeError::AllBanksQuarantined`]).
    pub fn all_quarantined(&self) -> bool {
        self.serving_banks() == 0
    }

    /// Whether the scheduler still accepts submissions (not shut down).
    pub fn is_open(&self) -> bool {
        !self.closed.load(Ordering::Relaxed)
    }

    /// The bank a request is routed to: its block tweak / line address,
    /// modulo the bank count — the same static address-interleaving a
    /// memory controller uses, so one hot bank backpressures without
    /// stalling the others. Under
    /// [`SchedulerConfig::scramble_routing`] the address is first run
    /// through the pool's keyed [`AddressScrambler`], so the *scrambled*
    /// address determines placement: which bank serves a logical line is
    /// a function of the key and epoch, not of the public address map.
    /// Requests with no address (an empty sealed line) round-robin.
    /// Health-aware selection
    /// ([`select_bank`](BankScheduler::select_bank)) starts from this
    /// preference.
    fn route(&self, request: &CipherRequest) -> usize {
        let banks = self.banks.len();
        let key = match &request.payload {
            Payload::Block(_) | Payload::Line(_) => Some(request.tweak),
            Payload::SealedBlock(block) => Some(block.tweak()),
            Payload::SealedLine(line) => line
                .blocks
                .first()
                .map(|b| b.tweak() / BLOCKS_PER_LINE as u64),
        };
        match key {
            Some(k) => {
                let routed = match &self.scrambler {
                    // Fold the (rare) high bits in so distinct giant
                    // addresses keep distinct routing keys, then permute
                    // within the routing domain.
                    Some(s) => s.scramble((k ^ (k >> 32)) % ROUTING_DOMAIN),
                    None => k,
                };
                (routed % banks as u64) as usize
            }
            None => self.cursor.fetch_add(1, Ordering::Relaxed) % banks,
        }
    }

    /// The first serving bank at or after `preferred`: healthy banks win,
    /// degraded ones serve when no healthy bank remains, and
    /// [`SpeError::AllBanksQuarantined`] reports a fully-withdrawn pool.
    fn select_bank(&self, preferred: usize) -> Result<usize, SpeError> {
        let n = self.banks.len();
        for want in [BankHealth::Healthy, BankHealth::Degraded] {
            for i in 0..n {
                let b = (preferred + i) % n;
                if self.monitors[b].health() == want {
                    return Ok(b);
                }
            }
        }
        Err(SpeError::AllBanksQuarantined)
    }

    /// Books one accepted request in the telemetry. The in-flight gauge
    /// was raised *before* the enqueue (so a fast worker completing the
    /// request first can never drive it below zero); this reads the
    /// current value.
    fn record_accept(&self, occupied: usize) {
        let rec = self.context.recorder();
        if rec.enabled() {
            rec.add(Counter::SchedSubmitted, 1);
            rec.observe(Histogram::SchedQueueDepth, occupied as u64);
            rec.observe(
                Histogram::SchedInFlight,
                self.in_flight.load(Ordering::Relaxed),
            );
        }
    }

    /// Submits a request, blocking while its bank's queue is full
    /// (backpressure). Plaintext payloads encrypt; sealed payloads
    /// decrypt. A bank that quarantines between selection and enqueue
    /// hands the job back and the submission re-routes to a survivor.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::SchedulerShutdown`] after [`shutdown`], or
    /// [`SpeError::AllBanksQuarantined`] once every bank has been
    /// withdrawn (the request is consumed; use [`try_submit`] to get it
    /// back).
    ///
    /// [`shutdown`]: BankScheduler::shutdown
    /// [`try_submit`]: BankScheduler::try_submit
    pub fn submit(&self, request: CipherRequest) -> Result<CipherTicket, SpeError> {
        let preferred = self.route(&request);
        let (mut job, ticket) = Job::new(request);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        // Bounded structurally: every extra iteration requires one more
        // bank to have closed under us, and there are only `banks` banks.
        for _ in 0..=self.banks.len() {
            let bank = match self.select_bank(preferred) {
                Ok(b) => b,
                Err(e) => {
                    self.in_flight.fetch_sub(1, Ordering::Relaxed);
                    drop(job); // fails the unused ticket's cell; ticket is discarded
                    return Err(e);
                }
            };
            match self.banks[bank].push(
                job,
                self.config.queue_depth,
                self.context.recorder().as_ref(),
            ) {
                Ok(occupied) => {
                    self.record_accept(occupied);
                    return Ok(ticket);
                }
                Err(returned) => {
                    job = returned;
                    if self.closed.load(Ordering::Relaxed) {
                        self.in_flight.fetch_sub(1, Ordering::Relaxed);
                        drop(job);
                        return Err(SpeError::SchedulerShutdown);
                    }
                    // Closed by quarantine: the monitor is already marked
                    // (quarantine precedes the close), so the next
                    // selection steers elsewhere.
                }
            }
        }
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        drop(job);
        Err(SpeError::AllBanksQuarantined)
    }

    /// Submits a request only if a serving bank has queue space, refusing
    /// with the request handed back otherwise.
    ///
    /// # Errors
    ///
    /// [`SubmitError::WouldBlock`] when the selected bank's queue is at
    /// its bound, [`SubmitError::Shutdown`] after
    /// [`BankScheduler::shutdown`], [`SubmitError::Quarantined`] when
    /// every bank is withdrawn.
    // The refusal carries the request back to the caller by value so it can
    // be resubmitted without a copy; the large Err variant is deliberate.
    #[allow(clippy::result_large_err)]
    pub fn try_submit(&self, request: CipherRequest) -> Result<CipherTicket, SubmitError> {
        let preferred = self.route(&request);
        let (mut job, ticket) = Job::new(request);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        let mut quarantined_pool = false;
        for _ in 0..=self.banks.len() {
            let bank = match self.select_bank(preferred) {
                Ok(b) => b,
                Err(_) => {
                    quarantined_pool = true;
                    break;
                }
            };
            match self.banks[bank].try_push(job, self.config.queue_depth) {
                Ok(occupied) => {
                    self.record_accept(occupied);
                    return Ok(ticket);
                }
                Err(returned) => {
                    job = returned;
                    if self.banks[bank].is_open() {
                        // Genuinely full (not closed): refuse politely.
                        self.in_flight.fetch_sub(1, Ordering::Relaxed);
                        let request = job.into_request();
                        self.context
                            .recorder()
                            .add(Counter::SchedRejectedWouldBlock, 1);
                        return Err(SubmitError::WouldBlock(request));
                    }
                    if self.closed.load(Ordering::Relaxed) {
                        break;
                    }
                    // Closed by quarantine: re-select a surviving bank.
                }
            }
        }
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        let request = job.into_request();
        if !self.closed.load(Ordering::Relaxed) && quarantined_pool {
            Err(SubmitError::Quarantined(request))
        } else {
            Err(SubmitError::Shutdown(request))
        }
    }

    /// Submits a whole batch with blocking per-bank backpressure,
    /// returning tickets in submission order.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::SchedulerShutdown`] if the scheduler closes
    /// mid-batch (or [`SpeError::AllBanksQuarantined`] if the pool
    /// withdraws); already-submitted requests still complete.
    pub fn submit_batch<I>(&self, requests: I) -> Result<Vec<CipherTicket>, SpeError>
    where
        I: IntoIterator<Item = CipherRequest>,
    {
        requests.into_iter().map(|r| self.submit(r)).collect()
    }

    /// Closes every bank queue: accepted requests drain to completion,
    /// new submissions are refused, and the workers exit once their
    /// queues are dry. Idempotent; also invoked by drop (which then joins
    /// the workers).
    pub fn shutdown(&self) {
        self.closed.store(true, Ordering::Relaxed);
        for bank in &self.banks {
            bank.close();
        }
    }

    /// Test-only: submit a raw job kind to bank 0.
    #[cfg(test)]
    fn submit_kind(&self, kind: JobKind) -> Result<CipherTicket, SpeError> {
        let (job, ticket) = Job::with_kind(kind);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        match self.banks[0].push(
            job,
            self.config.queue_depth,
            self.context.recorder().as_ref(),
        ) {
            Ok(occupied) => {
                self.record_accept(occupied);
                Ok(ticket)
            }
            Err(job) => {
                self.in_flight.fetch_sub(1, Ordering::Relaxed);
                drop(job);
                Err(SpeError::SchedulerShutdown)
            }
        }
    }
}

impl Drop for BankScheduler {
    fn drop(&mut self) {
        self.shutdown();
        for worker in self.workers.drain(..) {
            // A supervisor that somehow died anyway just yields its panic
            // payload here; every ticket was still completed by the Job
            // drop net, so discarding the join error is safe.
            let _ = worker.join();
        }
    }
}

/// One bank's supervisor: runs worker incarnations until the queue closes
/// or the bank quarantines.
///
/// A panic anywhere in [`worker_main`] (a poisoned request, or
/// chaos-injected) unwinds through the executing job — whose drop fails
/// its ticket with [`SpeError::BankPoisoned`] — and lands here. The
/// supervisor settles the books for that one job, walks the health
/// machine, and either respawns the worker logic (same OS thread, fresh
/// incarnation) or quarantines the bank: monitor marked, queue closed,
/// every still-queued job failed with [`SpeError::JobNeverRan`].
/// The cipher-resolution surface a bank worker executes against: the
/// pool's shared context plus the optional tenant registry that
/// tenant-tagged requests resolve their current context through.
#[derive(Clone, Copy)]
struct BankCipher<'a> {
    context: &'a SpeContext,
    registry: Option<&'a TenantRegistry>,
}

fn supervise(
    bank: usize,
    queue: &BankQueue,
    monitor: &BankMonitor,
    cipher: BankCipher<'_>,
    in_flight: &AtomicU64,
    health: HealthPolicy,
    chaos: ChaosPolicy,
) {
    loop {
        let run = catch_unwind(AssertUnwindSafe(|| {
            worker_main(bank, queue, monitor, cipher, in_flight, chaos)
        }));
        if run.is_ok() {
            // Queue closed and drained: clean exit.
            return;
        }
        // Exactly one job was executing when the incarnation died; its
        // unwinding drop already poisoned the ticket.
        in_flight.fetch_sub(1, Ordering::Relaxed);
        let rec = cipher.context.recorder();
        rec.add(Counter::SchedCompleted, 1);
        let streak = monitor.record_failure(&health);
        if streak < health.quarantine_after() {
            rec.add(Counter::BankRespawns, 1);
            continue;
        }
        // Quarantine. Mark the monitor first so a submitter bounced off
        // the closing queue re-routes instead of re-selecting this bank.
        monitor.quarantine();
        rec.add(Counter::BankQuarantines, 1);
        queue.close();
        for job in queue.drain_jobs() {
            job.fail(SpeError::JobNeverRan);
            in_flight.fetch_sub(1, Ordering::Relaxed);
            rec.add(Counter::SchedCompleted, 1);
        }
        return;
    }
}

/// One worker incarnation: drain the queue until it closes. Chaos (if
/// configured) is drawn per job from the bank's monotonic sequence
/// number; expired requests are load-shed with
/// [`SpeError::DeadlineExceeded`] before any cipher work happens.
///
/// Panics propagate to [`supervise`] — worker death is the supervisor's
/// input signal, not something to hide here.
fn worker_main(
    bank: usize,
    queue: &BankQueue,
    monitor: &BankMonitor,
    cipher: BankCipher<'_>,
    in_flight: &AtomicU64,
    chaos: ChaosPolicy,
) {
    while let Some(job) = queue.pop() {
        match chaos.draw(bank, monitor.next_seq()) {
            ChaosEvent::Panic => panic!("chaos-injected bank panic"),
            ChaosEvent::Stall => std::thread::sleep(Duration::from_micros(chaos.stall_us)),
            ChaosEvent::Slow => std::thread::sleep(Duration::from_micros(chaos.slow_us)),
            ChaosEvent::None => {}
        }
        if job.expired(Instant::now()) {
            job.fail(SpeError::DeadlineExceeded);
            in_flight.fetch_sub(1, Ordering::Relaxed);
            cipher.context.recorder().add(Counter::DeadlineExpired, 1);
            continue;
        }
        job.run(cipher);
        in_flight.fetch_sub(1, Ordering::Relaxed);
        cipher.context.recorder().add(Counter::SchedCompleted, 1);
        monitor.record_success();
    }
}

/// The one cipher execution path every scheduler-backed surface shares:
/// resolve the context (the tenant's current registry context for
/// tenant-tagged requests, the shared pool context otherwise) and run
/// the request through it. Also used by
/// [`crate::parallel::ParallelSpecu`]'s serial degraded mode so fallback
/// honors tenant routing identically.
pub(crate) fn execute_cipher(
    context: &SpeContext,
    registry: Option<&TenantRegistry>,
    request: &CipherRequest,
) -> Result<CipherResponse, SpeError> {
    request.validate()?;
    let resolved;
    let context = match request.tenant {
        Some(tenant) => match registry.and_then(|r| r.context(tenant)) {
            Some(ctx) => {
                resolved = ctx;
                resolved.as_ref()
            }
            None => return Err(SpeError::UnknownTenant(tenant)),
        },
        None => context,
    };
    match request.payload {
        Payload::Block(_) | Payload::Line(_) => context.encrypt(request.clone()),
        Payload::SealedBlock(_) | Payload::SealedLine(_) => context.decrypt(request.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;
    use crate::specu::{Specu, LINE_BYTES};
    use spe_telemetry::{AtomicRecorder, TelemetryHandle};
    use std::sync::OnceLock;

    fn context() -> SpeContext {
        static CACHE: OnceLock<Specu> = OnceLock::new();
        CACHE
            .get_or_init(|| {
                Specu::builder()
                    .key(Key::from_seed(0x5C4E))
                    .build()
                    .expect("specu")
            })
            .context()
            .expect("context")
            .clone()
    }

    fn recorded_context() -> (SpeContext, Arc<AtomicRecorder>) {
        let recorder = Arc::new(AtomicRecorder::new());
        let mut ctx = context();
        let handle: TelemetryHandle = recorder.clone();
        ctx.set_recorder(handle);
        (ctx, recorder)
    }

    fn line(seed: u64) -> [u8; LINE_BYTES] {
        core::array::from_fn(|i| {
            let x = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(i as u64 * 0x2B);
            (x >> 29) as u8
        })
    }

    #[test]
    fn pipelined_requests_match_serial_and_roundtrip() {
        let ctx = context();
        let sched = BankScheduler::new(ctx.clone(), SchedulerConfig::with_banks(4));
        let tickets = sched
            .submit_batch((0..8u64).map(|a| CipherRequest::line(line(a), a)))
            .expect("submit");
        let mut sealed = Vec::new();
        for (a, t) in tickets.into_iter().enumerate() {
            let got = t.wait().expect("encrypt").into_line().expect("line");
            let serial = ctx
                .encrypt(CipherRequest::line(line(a as u64), a as u64))
                .expect("serial")
                .into_line()
                .expect("line");
            assert_eq!(got, serial, "pipelined != serial at {a}");
            sealed.push(got);
        }
        for (a, s) in sealed.into_iter().enumerate() {
            let back = sched
                .submit(CipherRequest::sealed_line(s))
                .expect("submit")
                .wait()
                .expect("decrypt")
                .into_plain_line()
                .expect("plain");
            assert_eq!(back, line(a as u64));
        }
        // The worker decrements the gauge just after completing the
        // ticket, so give it a moment to settle.
        for _ in 0..100 {
            if sched.in_flight() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(sched.in_flight(), 0);
    }

    #[test]
    fn worker_panic_poisons_the_ticket_not_the_bank() {
        let (ctx, recorder) = recorded_context();
        let sched = BankScheduler::new(ctx, SchedulerConfig::with_banks(1));
        let poisoned = sched.submit_kind(JobKind::Panic).expect("submit");
        assert_eq!(poisoned.wait(), Err(SpeError::BankPoisoned));
        // The bank respawns and keeps servicing requests behind the panic:
        // no deadlocked submitter, no dead queue.
        let after = sched
            .submit(CipherRequest::line(line(9), 9))
            .expect("submit after panic")
            .wait()
            .expect("encrypt")
            .into_line()
            .expect("line");
        assert!(!after.blocks.is_empty());
        let snap = recorder.snapshot();
        assert_eq!(snap.counter(Counter::BankRespawns), 1);
        assert_eq!(snap.counter(Counter::BankQuarantines), 0);
        // The successful request healed the streak.
        assert_eq!(sched.bank_health(0), BankHealth::Healthy);
    }

    #[test]
    fn fatal_panic_quarantines_the_bank_and_fail_drains_its_queue() {
        let (ctx, recorder) = recorded_context();
        let config = SchedulerConfig::with_banks(1).with_health(HealthPolicy {
            degrade_after: 1,
            quarantine_after: 1,
        });
        let sched = BankScheduler::new(ctx, config);
        // Park the worker so the fatal panic and a real request queue up
        // behind it deterministically.
        let gate = Arc::new(StallGate::default());
        let stalled = sched
            .submit_kind(JobKind::Stall(Arc::clone(&gate)))
            .expect("stall");
        let fatal = sched.submit_kind(JobKind::Panic).expect("submit");
        let queued = sched
            .submit(CipherRequest::line(line(1), 1))
            .expect("queued behind the fatal panic");
        gate.release();
        assert_eq!(stalled.wait(), Err(SpeError::Internal("stall job")));
        assert_eq!(fatal.wait(), Err(SpeError::BankPoisoned));
        // Quarantine must fail the queued request with the never-ran
        // marker, not leave it hanging (or falsely poisoned).
        assert_eq!(queued.wait(), Err(SpeError::JobNeverRan));
        // The pool is gone: submissions now report it, typed.
        assert!(sched.all_quarantined());
        assert_eq!(sched.bank_health(0), BankHealth::Quarantined);
        assert!(matches!(
            sched.submit(CipherRequest::line(line(2), 2)),
            Err(SpeError::AllBanksQuarantined)
        ));
        assert!(matches!(
            sched.try_submit(CipherRequest::line(line(2), 2)),
            Err(SubmitError::Quarantined(_))
        ));
        // Join the supervisor (drop = shutdown + join) so its counter
        // writes are visible before asserting on them.
        drop(sched);
        let snap = recorder.snapshot();
        assert_eq!(snap.counter(Counter::BankQuarantines), 1);
        // Conservation: everything accepted resolved exactly once.
        assert_eq!(
            snap.counter(Counter::SchedSubmitted),
            snap.counter(Counter::SchedCompleted) + snap.counter(Counter::DeadlineExpired)
        );
    }

    #[test]
    fn consecutive_failures_degrade_and_success_heals() {
        let (ctx, _) = recorded_context();
        let config = SchedulerConfig::with_banks(1).with_health(HealthPolicy {
            degrade_after: 2,
            quarantine_after: u32::MAX,
        });
        let sched = BankScheduler::new(ctx, config);
        for _ in 0..2 {
            let t = sched.submit_kind(JobKind::Panic).expect("submit");
            assert_eq!(t.wait(), Err(SpeError::BankPoisoned));
        }
        // The supervisor books the second failure just after the ticket
        // resolves; poll briefly for the transition.
        for _ in 0..200 {
            if sched.bank_health(0) == BankHealth::Degraded {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(sched.bank_health(0), BankHealth::Degraded);
        // A degraded bank still serves, and one success heals it.
        sched
            .submit(CipherRequest::line(line(5), 5))
            .expect("degraded bank still accepts")
            .wait()
            .expect("encrypt");
        for _ in 0..200 {
            if sched.bank_health(0) == BankHealth::Healthy {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(sched.bank_health(0), BankHealth::Healthy);
    }

    #[test]
    fn requests_reroute_away_from_a_quarantined_bank() {
        let (ctx, _) = recorded_context();
        let config = SchedulerConfig::with_banks(2).with_health(HealthPolicy {
            degrade_after: 1,
            quarantine_after: 1,
        });
        let sched = BankScheduler::new(ctx.clone(), config);
        // submit_kind targets bank 0; one panic quarantines it.
        let dead = sched.submit_kind(JobKind::Panic).expect("submit");
        assert_eq!(dead.wait(), Err(SpeError::BankPoisoned));
        // Wait for the supervisor to finish the quarantine transition.
        for _ in 0..200 {
            if sched.bank_health(0) == BankHealth::Quarantined {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(sched.bank_health(0), BankHealth::Quarantined);
        assert_eq!(sched.serving_banks(), 1);
        // Even-tweak requests prefer bank 0; they must reroute to bank 1
        // and still produce serial-identical ciphertext.
        for tweak in [0u64, 2, 4, 6] {
            let got = sched
                .submit(CipherRequest::line(line(tweak), tweak))
                .expect("rerouted submit")
                .wait()
                .expect("encrypt")
                .into_line()
                .expect("line");
            let serial = ctx
                .encrypt(CipherRequest::line(line(tweak), tweak))
                .expect("serial")
                .into_line()
                .expect("line");
            assert_eq!(got, serial, "rerouted != serial at {tweak}");
        }
        assert_eq!(sched.bank_health(1), BankHealth::Healthy);
    }

    #[test]
    fn expired_requests_are_load_shed_with_a_typed_error() {
        let (ctx, recorder) = recorded_context();
        let sched = BankScheduler::new(ctx, SchedulerConfig::with_banks(1));
        // Hold the worker so the deadline lapses while the request queues.
        let gate = Arc::new(StallGate::default());
        let stalled = sched
            .submit_kind(JobKind::Stall(Arc::clone(&gate)))
            .expect("stall");
        let doomed = sched
            .submit(CipherRequest::line(line(3), 3).with_timeout(Duration::from_micros(1)))
            .expect("submit");
        std::thread::sleep(Duration::from_millis(5));
        gate.release();
        assert_eq!(stalled.wait(), Err(SpeError::Internal("stall job")));
        assert_eq!(doomed.wait(), Err(SpeError::DeadlineExceeded));
        // A deadline-free request behind it is untouched.
        sched
            .submit(CipherRequest::line(line(4), 4))
            .expect("submit")
            .wait()
            .expect("encrypt");
        // Workers book completions just after resolving tickets; join them
        // (drop = shutdown + join) before reading the counters.
        drop(sched);
        let snap = recorder.snapshot();
        assert_eq!(snap.counter(Counter::DeadlineExpired), 1);
        assert_eq!(
            snap.counter(Counter::SchedSubmitted),
            snap.counter(Counter::SchedCompleted) + snap.counter(Counter::DeadlineExpired)
        );
    }

    #[test]
    fn wait_timeout_hands_the_ticket_back_until_completion() {
        let sched = BankScheduler::new(context(), SchedulerConfig::with_banks(1));
        let gate = Arc::new(StallGate::default());
        let stalled = sched
            .submit_kind(JobKind::Stall(Arc::clone(&gate)))
            .expect("stall");
        let pending = match stalled.wait_timeout(Duration::from_millis(5)) {
            Err(ticket) => ticket,
            Ok(r) => panic!("stalled job resolved early: {r:?}"),
        };
        assert!(!pending.is_done());
        gate.release();
        match pending.wait_timeout(Duration::from_secs(5)) {
            Ok(result) => assert_eq!(result, Err(SpeError::Internal("stall job"))),
            Err(_) => panic!("released stall job must resolve within the timeout"),
        }
    }

    #[test]
    fn chaos_panics_are_survived_with_exact_accounting() {
        let (ctx, recorder) = recorded_context();
        let config = SchedulerConfig::with_banks(2)
            .with_health(HealthPolicy::never_quarantine())
            .with_chaos(ChaosPolicy::panics(0.3, 0xC4A05));
        let sched = BankScheduler::new(ctx.clone(), config);
        let n = 40u64;
        let tickets = sched
            .submit_batch((0..n).map(|a| CipherRequest::line(line(a), a)))
            .expect("submit under chaos");
        let mut ok = 0u64;
        let mut poisoned = 0u64;
        for (a, t) in tickets.into_iter().enumerate() {
            match t.wait() {
                Ok(resp) => {
                    let serial = ctx
                        .encrypt(CipherRequest::line(line(a as u64), a as u64))
                        .expect("serial");
                    assert_eq!(
                        resp.into_line().expect("line"),
                        serial.into_line().expect("line"),
                        "chaos survivor {a} diverged from serial"
                    );
                    ok += 1;
                }
                Err(SpeError::BankPoisoned) => poisoned += 1,
                Err(other) => panic!("unexpected chaos outcome: {other:?}"),
            }
        }
        assert_eq!(ok + poisoned, n, "every ticket resolved");
        assert!(poisoned > 0, "a 30% panic rate over 40 jobs must fire");
        assert!(ok > 0, "respawn keeps the pool serving");
        drop(sched);
        let snap = recorder.snapshot();
        assert_eq!(snap.counter(Counter::BankRespawns), poisoned);
        assert_eq!(
            snap.counter(Counter::SchedSubmitted),
            snap.counter(Counter::SchedCompleted) + snap.counter(Counter::DeadlineExpired)
        );
    }

    #[test]
    fn full_queue_refuses_with_would_block_and_recovers() {
        let ctx = context();
        let sched = BankScheduler::new(
            ctx.clone(),
            SchedulerConfig {
                banks: 1,
                queue_depth: 1,
                ..SchedulerConfig::default()
            },
        );
        // Stall the only worker, then fill the queue bound behind it.
        let gate = Arc::new(StallGate::default());
        let stalled = sched
            .submit_kind(JobKind::Stall(Arc::clone(&gate)))
            .expect("stall");
        let queued = sched
            .submit(CipherRequest::line(line(0), 0))
            .expect("queued");
        // Deterministically full: the non-blocking path must refuse and
        // hand the request back.
        let refused = sched.try_submit(CipherRequest::line(line(1), 1));
        match refused {
            Err(SubmitError::WouldBlock(request)) => {
                assert_eq!(request.tweak, 1, "the refused request is handed back")
            }
            other => panic!("expected WouldBlock, got {other:?}"),
        }
        gate.release();
        assert_eq!(stalled.wait(), Err(SpeError::Internal("stall job")));
        queued.wait().expect("queued request completes");
        // With the bank drained the same request is accepted.
        sched
            .try_submit(CipherRequest::line(line(1), 1))
            .expect("accepted after drain")
            .wait()
            .expect("encrypt");
    }

    #[test]
    fn shutdown_drains_in_flight_then_refuses() {
        let sched = BankScheduler::new(context(), SchedulerConfig::with_banks(2));
        let tickets = sched
            .submit_batch((0..6u64).map(|a| CipherRequest::line(line(a), a)))
            .expect("submit");
        sched.shutdown();
        assert!(!sched.is_open());
        // Every request accepted before shutdown still completes…
        for t in tickets {
            t.wait().expect("accepted request drains to completion");
        }
        // …and both submission paths now refuse.
        assert!(matches!(
            sched.submit(CipherRequest::line(line(7), 7)),
            Err(SpeError::SchedulerShutdown)
        ));
        assert!(matches!(
            sched.try_submit(CipherRequest::line(line(7), 7)),
            Err(SubmitError::Shutdown(_))
        ));
    }

    #[test]
    fn tickets_complete_out_of_order() {
        let ctx = context();
        let sched = BankScheduler::new(ctx.clone(), SchedulerConfig::with_banks(3));
        let mut tickets: Vec<(u64, CipherTicket)> = (0..9u64)
            .map(|a| {
                (
                    a,
                    sched
                        .submit(CipherRequest::line(line(a), a))
                        .expect("submit"),
                )
            })
            .collect();
        // Wait in reverse submission order: each ticket still matches its
        // own request.
        tickets.reverse();
        for (a, t) in tickets {
            let got = t.wait().expect("encrypt").into_line().expect("line");
            let serial = ctx
                .encrypt(CipherRequest::line(line(a), a))
                .expect("serial")
                .into_line()
                .expect("line");
            assert_eq!(got, serial, "ticket {a} matched the wrong response");
        }
    }

    #[test]
    fn address_routing_is_stable() {
        let sched = BankScheduler::new(context(), SchedulerConfig::with_banks(4));
        for tweak in 0..16u64 {
            let req = CipherRequest::line(line(tweak), tweak);
            assert_eq!(sched.route(&req), (tweak % 4) as usize);
        }
    }

    #[test]
    fn health_policy_clamps_its_thresholds() {
        let p = HealthPolicy {
            degrade_after: 0,
            quarantine_after: 0,
        };
        assert_eq!(p.degrade_after(), 1);
        assert_eq!(p.quarantine_after(), 1);
        let q = HealthPolicy {
            degrade_after: 5,
            quarantine_after: 2,
        };
        assert_eq!(q.quarantine_after(), 5, "quarantine never before degrade");
    }
}
