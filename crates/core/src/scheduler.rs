//! The persistent bank-scheduler pipeline.
//!
//! PR 5's schedule cache removed derivation cost from the warm line path,
//! which exposed the next bottleneck: the multi-bank datapath forked and
//! joined a fresh [`std::thread::scope`] per batch, and on warm working
//! sets that per-batch spawn overhead made four banks *slower* than one.
//! This module replaces fork-join with a memory-controller-style request
//! scheduler:
//!
//! * **Persistent workers** — one thread per SPECU bank, spawned once when
//!   the [`BankScheduler`] is built and parked on a condvar when idle.
//! * **Bounded per-bank queues** — every [`CipherRequest`] is routed to a
//!   bank by its address (block tweak / line address), giving each bank an
//!   independent bounded submission queue. [`BankScheduler::submit`]
//!   blocks when the target queue is full (backpressure);
//!   [`BankScheduler::try_submit`] refuses with
//!   [`SubmitError::WouldBlock`] instead.
//! * **Tickets** — each accepted request returns a
//!   [`CipherTicket`](crate::request::CipherTicket); banks complete out of
//!   order and the ticket matches each response to its submission.
//! * **Deterministic shutdown** — [`BankScheduler::shutdown`] (and drop)
//!   closes the queues; workers drain every accepted request before they
//!   exit, so a ticket obtained before shutdown always completes. New
//!   submissions are refused with [`SpeError::SchedulerShutdown`].
//! * **Panic isolation** — a panicking job fails its own ticket with
//!   [`SpeError::BankPoisoned`] and the worker keeps servicing the queue;
//!   a submitter can never deadlock on a dead bank.
//!
//! The workers execute requests through the exact same
//! [`SpeCipher`](crate::request::SpeCipher) implementation the serial
//! context uses, so pipelined ciphertexts are byte-identical to serial
//! ones by construction. [`crate::parallel::ParallelSpecu`] keeps its
//! batch API as a thin façade over this scheduler.

use crate::error::SpeError;
use crate::request::{CipherRequest, CipherTicket, Payload, SpeCipher, TicketCell};
use crate::specu::{SpeContext, BLOCKS_PER_LINE};
use spe_telemetry::{Counter, Histogram, Recorder};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Default bound on each bank's submission queue (requests).
pub const DEFAULT_QUEUE_DEPTH: usize = 64;

/// Bank-scheduler geometry: worker count and per-bank queue bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// SPECU banks (worker threads); clamped to at least one.
    pub banks: usize,
    /// Bounded depth of each bank's submission queue; clamped to at least
    /// one. Submissions beyond it block (or refuse, for
    /// [`BankScheduler::try_submit`]).
    pub queue_depth: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            banks: BLOCKS_PER_LINE,
            queue_depth: DEFAULT_QUEUE_DEPTH,
        }
    }
}

impl SchedulerConfig {
    /// A configuration with `banks` workers and the default queue depth.
    pub fn with_banks(banks: usize) -> Self {
        SchedulerConfig {
            banks,
            ..SchedulerConfig::default()
        }
    }
}

/// Why a non-blocking submission was refused. Both variants hand the
/// request back so the caller can retry or reroute without cloning.
#[derive(Debug)]
pub enum SubmitError {
    /// The target bank's queue is at its bound; retrying later (or
    /// switching to the blocking [`BankScheduler::submit`]) will succeed
    /// once the bank drains.
    WouldBlock(CipherRequest),
    /// The scheduler is shut down; no bank will ever accept the request.
    Shutdown(CipherRequest),
}

impl SubmitError {
    /// Recovers the refused request.
    pub fn into_request(self) -> CipherRequest {
        match self {
            SubmitError::WouldBlock(r) | SubmitError::Shutdown(r) => r,
        }
    }
}

/// What a queued job asks its bank worker to do.
#[derive(Debug)]
enum JobKind {
    /// Run the request through the shared context's cipher datapath
    /// (plaintext payloads encrypt, sealed payloads decrypt).
    Cipher(CipherRequest),
    /// Panic inside the worker — exercises the poison/no-deadlock path.
    #[cfg(test)]
    Panic,
    /// Park until the gate opens — holds the bank busy so tests can fill
    /// its queue deterministically.
    #[cfg(test)]
    Stall(Arc<StallGate>),
}

/// One queued unit of work plus its completion ticket.
///
/// The `Drop` impl is the no-deadlock safety net: however a job leaves the
/// system — executed, abandoned during a panic unwind, or discarded by a
/// drain — its ticket is completed exactly once.
#[derive(Debug)]
struct Job {
    kind: JobKind,
    cell: Arc<TicketCell>,
}

impl Job {
    fn new(request: CipherRequest) -> (Self, CipherTicket) {
        Job::with_kind(JobKind::Cipher(request))
    }

    fn with_kind(kind: JobKind) -> (Self, CipherTicket) {
        let cell = Arc::new(TicketCell::default());
        let ticket = CipherTicket::new(Arc::clone(&cell));
        (Job { kind, cell }, ticket)
    }

    /// Executes the job on the shared context and publishes the result.
    fn run(self, context: &SpeContext) {
        match &self.kind {
            JobKind::Cipher(request) => {
                let result = match request.payload {
                    Payload::Block(_) | Payload::Line(_) => context.encrypt(request.clone()),
                    Payload::SealedBlock(_) | Payload::SealedLine(_) => {
                        context.decrypt(request.clone())
                    }
                };
                self.cell.complete(result);
            }
            #[cfg(test)]
            JobKind::Panic => panic!("test-injected bank panic"),
            #[cfg(test)]
            JobKind::Stall(gate) => {
                gate.wait_open();
                self.cell.complete(Err(SpeError::Internal("stall job")));
            }
        }
    }
}

impl Drop for Job {
    fn drop(&mut self) {
        // First write wins in `complete`, so this is a no-op after a
        // normal run and the poison marker otherwise.
        self.cell.complete(Err(SpeError::BankPoisoned));
    }
}

/// A test gate a stall job parks on until opened.
#[cfg(test)]
#[derive(Debug, Default)]
struct StallGate {
    open: Mutex<bool>,
    bell: Condvar,
}

#[cfg(test)]
impl StallGate {
    fn wait_open(&self) {
        let mut open = self.open.lock().unwrap_or_else(|p| p.into_inner());
        while !*open {
            open = self.bell.wait(open).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn release(&self) {
        *self.open.lock().unwrap_or_else(|p| p.into_inner()) = true;
        self.bell.notify_all();
    }
}

/// The guarded state of one bank's submission queue.
#[derive(Debug, Default)]
struct BankState {
    queue: VecDeque<Job>,
    /// Cleared by shutdown: workers drain what is queued, then exit, and
    /// new submissions are refused.
    open: bool,
}

/// One bank's bounded MPMC submission queue.
#[derive(Debug)]
struct BankQueue {
    state: Mutex<BankState>,
    /// Workers park here when the queue is empty.
    not_empty: Condvar,
    /// Blocking submitters park here when the queue is at its bound.
    not_full: Condvar,
}

/// Recovers a guard from a poisoned bank lock: the queue is either
/// observed with a job or without it, never half-pushed, so serving the
/// state after a panic elsewhere is safe (and beats deadlocking every
/// submitter).
fn lock_bank(queue: &BankQueue) -> MutexGuard<'_, BankState> {
    queue
        .state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl BankQueue {
    fn new() -> Self {
        BankQueue {
            state: Mutex::new(BankState {
                queue: VecDeque::new(),
                open: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Worker side: the next job, parking while the queue is empty and
    /// open. `None` once the queue is closed *and* drained — the worker's
    /// signal to exit.
    fn pop(&self) -> Option<Job> {
        let mut state = lock_bank(self);
        loop {
            if let Some(job) = state.queue.pop_front() {
                self.not_full.notify_one();
                return Some(job);
            }
            if !state.open {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Submitter side, blocking: waits for space (recording one
    /// backpressure stall if it had to), then enqueues. Returns the
    /// post-push depth.
    fn push(&self, job: Job, depth: usize, recorder: &dyn Recorder) -> Result<usize, SpeError> {
        let mut state = lock_bank(self);
        let mut stalled = false;
        while state.open && state.queue.len() >= depth {
            stalled = true;
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        if !state.open {
            return Err(SpeError::SchedulerShutdown);
        }
        if stalled {
            recorder.add(Counter::SchedBackpressureWaits, 1);
        }
        state.queue.push_back(job);
        let occupied = state.queue.len();
        self.not_empty.notify_one();
        Ok(occupied)
    }

    /// Submitter side, non-blocking: enqueues only if the bank has space.
    /// Returns the post-push depth, or the job back.
    // Handing the whole job back on refusal is the point of the API — the
    // caller resubmits it without a copy — so the large Err is deliberate.
    #[allow(clippy::result_large_err)]
    fn try_push(&self, job: Job, depth: usize) -> Result<usize, Job> {
        let mut state = lock_bank(self);
        if !state.open || state.queue.len() >= depth {
            return Err(job);
        }
        state.queue.push_back(job);
        let occupied = state.queue.len();
        self.not_empty.notify_one();
        Ok(occupied)
    }

    /// Whether the queue accepts new submissions.
    fn is_open(&self) -> bool {
        lock_bank(self).open
    }

    /// Closes the queue: queued jobs still drain, submissions refuse, and
    /// parked workers/submitters wake to observe the closure.
    fn close(&self) {
        let mut state = lock_bank(self);
        state.open = false;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// The persistent multi-bank request scheduler: per-bank worker threads
/// fed by bounded submission queues of [`CipherRequest`]s, completing into
/// [`CipherTicket`]s.
///
/// Built once and reused across batches — the whole point is that no
/// thread is ever spawned on the hot path. All submission methods take
/// `&self`; clones of the owning [`crate::parallel::ParallelSpecu`] share
/// one scheduler behind an [`Arc`].
#[derive(Debug)]
pub struct BankScheduler {
    banks: Vec<Arc<BankQueue>>,
    workers: Vec<JoinHandle<()>>,
    context: SpeContext,
    queue_depth: usize,
    /// Requests accepted but not yet completed (queued + executing).
    in_flight: Arc<AtomicU64>,
    /// Round-robin cursor for requests with no address affinity.
    cursor: AtomicUsize,
}

impl BankScheduler {
    /// Spawns `config.banks` persistent workers over clones of `context`.
    /// Workers share the context's calibration, schedule cache and
    /// telemetry recorder, so the pipelined datapath is the serial one,
    /// many times over.
    pub fn new(context: SpeContext, config: SchedulerConfig) -> Self {
        let bank_count = config.banks.max(1);
        let queue_depth = config.queue_depth.max(1);
        let in_flight = Arc::new(AtomicU64::new(0));
        let banks: Vec<Arc<BankQueue>> = (0..bank_count)
            .map(|_| Arc::new(BankQueue::new()))
            .collect();
        let workers = banks
            .iter()
            .enumerate()
            .map(|(b, queue)| {
                let queue = Arc::clone(queue);
                let ctx = context.clone();
                let in_flight = Arc::clone(&in_flight);
                std::thread::Builder::new()
                    .name(format!("spe-bank-{b}"))
                    .spawn(move || worker_main(&queue, &ctx, &in_flight))
                    .expect("spawn SPECU bank worker")
            })
            .collect();
        BankScheduler {
            banks,
            workers,
            context,
            queue_depth,
            in_flight,
            cursor: AtomicUsize::new(0),
        }
    }

    /// The shared keyed context the workers execute against.
    pub fn context(&self) -> &SpeContext {
        &self.context
    }

    /// The number of SPECU banks (worker threads).
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// The bound on each bank's submission queue.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Requests currently accepted but not yet completed.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// The scheduler geometry.
    pub fn config(&self) -> SchedulerConfig {
        SchedulerConfig {
            banks: self.banks.len(),
            queue_depth: self.queue_depth,
        }
    }

    /// Whether the scheduler still accepts submissions.
    pub fn is_open(&self) -> bool {
        self.banks.iter().all(|b| b.is_open())
    }

    /// The bank a request is routed to: its block tweak / line address,
    /// modulo the bank count — the same static address-interleaving a
    /// memory controller uses, so one hot bank backpressures without
    /// stalling the others. Requests with no address (an empty sealed
    /// line) round-robin.
    fn route(&self, request: &CipherRequest) -> usize {
        let banks = self.banks.len();
        let key = match &request.payload {
            Payload::Block(_) | Payload::Line(_) => Some(request.tweak),
            Payload::SealedBlock(block) => Some(block.tweak()),
            Payload::SealedLine(line) => line
                .blocks
                .first()
                .map(|b| b.tweak() / BLOCKS_PER_LINE as u64),
        };
        match key {
            Some(k) => (k % banks as u64) as usize,
            None => self.cursor.fetch_add(1, Ordering::Relaxed) % banks,
        }
    }

    /// Books one accepted request in the telemetry. The in-flight gauge
    /// was raised *before* the enqueue (so a fast worker completing the
    /// request first can never drive it below zero); this reads the
    /// current value.
    fn record_accept(&self, occupied: usize) {
        let rec = self.context.recorder();
        if rec.enabled() {
            rec.add(Counter::SchedSubmitted, 1);
            rec.observe(Histogram::SchedQueueDepth, occupied as u64);
            rec.observe(
                Histogram::SchedInFlight,
                self.in_flight.load(Ordering::Relaxed),
            );
        }
    }

    /// Submits a request, blocking while its bank's queue is full
    /// (backpressure). Plaintext payloads encrypt; sealed payloads
    /// decrypt.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::SchedulerShutdown`] after [`shutdown`]
    /// (the request is consumed; use [`try_submit`] to get it back).
    ///
    /// [`shutdown`]: BankScheduler::shutdown
    /// [`try_submit`]: BankScheduler::try_submit
    pub fn submit(&self, request: CipherRequest) -> Result<CipherTicket, SpeError> {
        let bank = self.route(&request);
        let (job, ticket) = Job::new(request);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        match self.banks[bank].push(job, self.queue_depth, self.context.recorder().as_ref()) {
            Ok(occupied) => {
                self.record_accept(occupied);
                Ok(ticket)
            }
            Err(e) => {
                self.in_flight.fetch_sub(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Submits a request only if its bank has queue space, refusing with
    /// [`SubmitError::WouldBlock`] (request handed back) otherwise.
    ///
    /// # Errors
    ///
    /// [`SubmitError::WouldBlock`] when the bank queue is at its bound,
    /// [`SubmitError::Shutdown`] after [`BankScheduler::shutdown`].
    // The refusal carries the request back to the caller by value so it can
    // be resubmitted without a copy; the large Err variant is deliberate.
    #[allow(clippy::result_large_err)]
    pub fn try_submit(&self, request: CipherRequest) -> Result<CipherTicket, SubmitError> {
        let bank = &self.banks[self.route(&request)];
        let (job, ticket) = Job::new(request);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        match bank.try_push(job, self.queue_depth) {
            Ok(occupied) => {
                self.record_accept(occupied);
                Ok(ticket)
            }
            Err(job) => {
                self.in_flight.fetch_sub(1, Ordering::Relaxed);
                let open = bank.is_open();
                let request = match job.kind {
                    JobKind::Cipher(ref r) => r.clone(),
                    #[cfg(test)]
                    _ => unreachable!("try_submit only builds cipher jobs"),
                };
                drop(job); // fails the unused ticket's cell; ticket is discarded
                if open {
                    let rec = self.context.recorder();
                    rec.add(Counter::SchedRejectedWouldBlock, 1);
                    Err(SubmitError::WouldBlock(request))
                } else {
                    Err(SubmitError::Shutdown(request))
                }
            }
        }
    }

    /// Submits a whole batch with blocking per-bank backpressure,
    /// returning tickets in submission order.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::SchedulerShutdown`] if the scheduler closes
    /// mid-batch; already-submitted requests still complete.
    pub fn submit_batch<I>(&self, requests: I) -> Result<Vec<CipherTicket>, SpeError>
    where
        I: IntoIterator<Item = CipherRequest>,
    {
        requests.into_iter().map(|r| self.submit(r)).collect()
    }

    /// Closes every bank queue: accepted requests drain to completion,
    /// new submissions are refused, and the workers exit once their
    /// queues are dry. Idempotent; also invoked by drop (which then joins
    /// the workers).
    pub fn shutdown(&self) {
        for bank in &self.banks {
            bank.close();
        }
    }

    /// Test-only: submit a raw job kind to bank 0.
    #[cfg(test)]
    fn submit_kind(&self, kind: JobKind) -> Result<CipherTicket, SpeError> {
        let (job, ticket) = Job::with_kind(kind);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        match self.banks[0].push(job, self.queue_depth, self.context.recorder().as_ref()) {
            Ok(occupied) => {
                self.record_accept(occupied);
                Ok(ticket)
            }
            Err(e) => {
                self.in_flight.fetch_sub(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }
}

impl Drop for BankScheduler {
    fn drop(&mut self) {
        self.shutdown();
        for worker in self.workers.drain(..) {
            // A worker that somehow died already just yields its panic
            // payload here; every ticket was still completed by the Job
            // drop net, so discarding the join error is safe.
            let _ = worker.join();
        }
    }
}

/// One bank worker: drain the queue until it closes, isolating job panics
/// so a poisoned request can never take the bank (or a submitter) down
/// with it.
fn worker_main(queue: &BankQueue, context: &SpeContext, in_flight: &AtomicU64) {
    while let Some(job) = queue.pop() {
        // On panic the unwinding drop of `job` completes its ticket with
        // `SpeError::BankPoisoned`; catching here keeps the worker alive
        // for the requests behind it.
        let outcome = catch_unwind(AssertUnwindSafe(|| job.run(context)));
        in_flight.fetch_sub(1, Ordering::Relaxed);
        context.recorder().add(Counter::SchedCompleted, 1);
        drop(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;
    use crate::specu::{Specu, LINE_BYTES};
    use std::sync::OnceLock;

    fn context() -> SpeContext {
        static CACHE: OnceLock<Specu> = OnceLock::new();
        CACHE
            .get_or_init(|| Specu::new(Key::from_seed(0x5C4E)).expect("specu"))
            .context()
            .expect("context")
            .clone()
    }

    fn line(seed: u64) -> [u8; LINE_BYTES] {
        core::array::from_fn(|i| {
            let x = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(i as u64 * 0x2B);
            (x >> 29) as u8
        })
    }

    #[test]
    fn pipelined_requests_match_serial_and_roundtrip() {
        let ctx = context();
        let sched = BankScheduler::new(ctx.clone(), SchedulerConfig::with_banks(4));
        let tickets = sched
            .submit_batch((0..8u64).map(|a| CipherRequest::line(line(a), a)))
            .expect("submit");
        let mut sealed = Vec::new();
        for (a, t) in tickets.into_iter().enumerate() {
            let got = t.wait().expect("encrypt").into_line().expect("line");
            let serial = ctx
                .encrypt(CipherRequest::line(line(a as u64), a as u64))
                .expect("serial")
                .into_line()
                .expect("line");
            assert_eq!(got, serial, "pipelined != serial at {a}");
            sealed.push(got);
        }
        for (a, s) in sealed.into_iter().enumerate() {
            let back = sched
                .submit(CipherRequest::sealed_line(s))
                .expect("submit")
                .wait()
                .expect("decrypt")
                .into_plain_line()
                .expect("plain");
            assert_eq!(back, line(a as u64));
        }
        // The worker decrements the gauge just after completing the
        // ticket, so give it a moment to settle.
        for _ in 0..100 {
            if sched.in_flight() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(sched.in_flight(), 0);
    }

    #[test]
    fn worker_panic_poisons_the_ticket_not_the_bank() {
        let sched = BankScheduler::new(context(), SchedulerConfig::with_banks(1));
        let poisoned = sched.submit_kind(JobKind::Panic).expect("submit");
        assert_eq!(poisoned.wait(), Err(SpeError::BankPoisoned));
        // The bank survives and keeps servicing requests behind the panic:
        // no deadlocked submitter, no dead queue.
        let after = sched
            .submit(CipherRequest::line(line(9), 9))
            .expect("submit after panic")
            .wait()
            .expect("encrypt")
            .into_line()
            .expect("line");
        assert!(!after.blocks.is_empty());
    }

    #[test]
    fn full_queue_refuses_with_would_block_and_recovers() {
        let ctx = context();
        let sched = BankScheduler::new(
            ctx.clone(),
            SchedulerConfig {
                banks: 1,
                queue_depth: 1,
            },
        );
        // Stall the only worker, then fill the queue bound behind it.
        let gate = Arc::new(StallGate::default());
        let stalled = sched
            .submit_kind(JobKind::Stall(Arc::clone(&gate)))
            .expect("stall");
        let queued = sched
            .submit(CipherRequest::line(line(0), 0))
            .expect("queued");
        // Deterministically full: the non-blocking path must refuse and
        // hand the request back.
        let refused = sched.try_submit(CipherRequest::line(line(1), 1));
        match refused {
            Err(SubmitError::WouldBlock(request)) => {
                assert_eq!(request.tweak, 1, "the refused request is handed back")
            }
            other => panic!("expected WouldBlock, got {other:?}"),
        }
        gate.release();
        assert_eq!(stalled.wait(), Err(SpeError::Internal("stall job")));
        queued.wait().expect("queued request completes");
        // With the bank drained the same request is accepted.
        sched
            .try_submit(CipherRequest::line(line(1), 1))
            .expect("accepted after drain")
            .wait()
            .expect("encrypt");
    }

    #[test]
    fn shutdown_drains_in_flight_then_refuses() {
        let sched = BankScheduler::new(context(), SchedulerConfig::with_banks(2));
        let tickets = sched
            .submit_batch((0..6u64).map(|a| CipherRequest::line(line(a), a)))
            .expect("submit");
        sched.shutdown();
        assert!(!sched.is_open());
        // Every request accepted before shutdown still completes…
        for t in tickets {
            t.wait().expect("accepted request drains to completion");
        }
        // …and both submission paths now refuse.
        assert!(matches!(
            sched.submit(CipherRequest::line(line(7), 7)),
            Err(SpeError::SchedulerShutdown)
        ));
        assert!(matches!(
            sched.try_submit(CipherRequest::line(line(7), 7)),
            Err(SubmitError::Shutdown(_))
        ));
    }

    #[test]
    fn tickets_complete_out_of_order() {
        let ctx = context();
        let sched = BankScheduler::new(ctx.clone(), SchedulerConfig::with_banks(3));
        let mut tickets: Vec<(u64, CipherTicket)> = (0..9u64)
            .map(|a| {
                (
                    a,
                    sched
                        .submit(CipherRequest::line(line(a), a))
                        .expect("submit"),
                )
            })
            .collect();
        // Wait in reverse submission order: each ticket still matches its
        // own request.
        tickets.reverse();
        for (a, t) in tickets {
            let got = t.wait().expect("encrypt").into_line().expect("line");
            let serial = ctx
                .encrypt(CipherRequest::line(line(a), a))
                .expect("serial")
                .into_line()
                .expect("line");
            assert_eq!(got, serial, "ticket {a} matched the wrong response");
        }
    }

    #[test]
    fn address_routing_is_stable() {
        let sched = BankScheduler::new(context(), SchedulerConfig::with_banks(4));
        for tweak in 0..16u64 {
            let req = CipherRequest::line(line(tweak), tweak);
            assert_eq!(sched.route(&req), (tweak % 4) as usize);
        }
    }
}
