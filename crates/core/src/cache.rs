//! The line-datapath schedule cache.
//!
//! Everything the SPECU derives per block that does *not* depend on the
//! payload — the keyed PoE permutation + pulse schedule and, for the
//! closed-loop variant, the fully expanded per-round pulse trains — is a
//! pure function of `(key, tweak, calibration)`. The cache memoizes that
//! derivation so consecutive line operations (an L2 miss stream hitting
//! the same working set) pay only the cheap payload-dependent apply step.
//!
//! ## Key-epoch invalidation
//!
//! Entries are keyed by `(key epoch, tweak)`. The cache never inspects key
//! material: every keyed context holds an [`EpochHandle`] drawn from
//! [`ScheduleCache::next_epoch`], so entries derived under an old key can
//! never be returned to a context holding a new one — a stale schedule
//! cannot decrypt a block sealed after rotation. Orphaned epochs age out
//! through normal LRU eviction.
//!
//! ### The rotation invariant
//!
//! `next_epoch` returns an explicit [`EpochHandle`] rather than a bare
//! integer so epoch allocation is a visible, auditable event owned by
//! whoever constructs the context — the builder by default, or a
//! [`crate::tenant::TenantRegistry`] driving live key rotation. The
//! invariant every allocator must uphold: **one handle per keyed context,
//! never reused across keys**. A handle is unique for the lifetime of the
//! cache (a monotonic allocator, never recycled), so
//!
//! 1. a context built *after* a rotation can never observe schedules
//!    derived under the pre-rotation key (its fresh epoch matches no
//!    existing entry), and
//! 2. a *retained* pre-rotation context keeps resolving its own entries —
//!    in-flight decrypts of old-epoch ciphertext drain safely while new
//!    traffic seals under the new epoch.
//!
//! Registry-driven rotation is therefore just "build a new context via the
//! builder (which draws a fresh handle) and swap the map entry"; no cache
//! flush is needed, and none is provided.
//!
//! ## Concurrency
//!
//! The map is sharded by tweak (one shard per group of banks), so the
//! multi-bank datapath's workers fan out over disjoint shards. The hit
//! path takes only a shared read guard and bumps a relaxed atomic LRU
//! stamp — no exclusive lock is ever held while reading. Exclusive locks
//! are confined to the miss path (insert + possible eviction).
//!
//! ## Memory bound
//!
//! Capacity is fixed at construction and divided evenly across shards;
//! each shard evicts its least-recently-stamped entry before growing past
//! its share, so the total entry count never exceeds
//! `shard_count * ceil(capacity / shard_count)`. One entry holds a 16-step
//! pulse schedule plus `rounds × 16` trains of ~11 member cells — a few
//! KiB — so the default capacity of [`DEFAULT_CACHE_LINES`] blocks stays
//! in the low MiB.

use crate::schedule::PulseSchedule;
use spe_crossbar::CellAddr;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One closed-loop pulse train: the PoE it fires at, its member cells,
/// per-member keyed level steps and the pulse polarity.
///
/// `idxs` holds the members' flat row-major indices, resolved once at
/// derivation time: the address→index mapping is payload-independent, so
/// caching it here keeps the per-step apply loop free of address
/// arithmetic (see [`crate::discrete::DiscreteArray::apply_train_indexed`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Train {
    /// The point of encryption this train fires at.
    pub poe: CellAddr,
    /// Member cells, sorted in address order.
    pub members: Vec<CellAddr>,
    /// `members` resolved to flat row-major indices on the cipher array.
    pub idxs: Vec<u16>,
    /// Independent keyed level step per member.
    pub steps: Vec<u8>,
    /// Pulse polarity (`1` set, `-1` reset).
    pub dir: i8,
}

/// Default schedule-cache capacity in blocks (four per cache line).
pub const DEFAULT_CACHE_LINES: usize = 1024;

/// An explicit, owned key-epoch allocation from
/// [`ScheduleCache::next_epoch`].
///
/// Each handle names one keyed context's slice of the cache key space.
/// Handles are allocated monotonically and never recycled, so holding one
/// is proof that no *other* key's schedules can collide with yours — the
/// rotation invariant in the module docs. The raw value is exposed via
/// [`EpochHandle::value`] for telemetry and diagnostics only; treat it as
/// opaque everywhere else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EpochHandle(u64);

impl EpochHandle {
    /// The raw epoch number (diagnostic/telemetry use).
    pub fn value(self) -> u64 {
        self.0
    }
}

/// Shards the cache map so bank workers contend on disjoint locks.
const SHARD_COUNT: usize = 8;

/// Everything payload-independent the SPECU derives for one block tweak:
/// the keyed pulse schedule and (closed-loop variant) the expanded pulse
/// trains for every round. Shared read-only behind an [`Arc`] once built.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedSchedule {
    /// The keyed PoE permutation + pulse selection.
    pub schedule: PulseSchedule,
    /// Per-round pulse trains (empty for the analog variant, which applies
    /// the schedule directly).
    pub trains: Vec<Vec<Train>>,
}

#[derive(Debug)]
struct Entry {
    /// Relaxed LRU stamp: bumped on every hit, compared on eviction.
    stamp: AtomicU64,
    plan: Arc<DerivedSchedule>,
}

#[derive(Debug, Default)]
struct Shard {
    map: RwLock<HashMap<(u64, u64), Entry>>,
}

/// A bounded, sharded, key-epoch-invalidated memo of derived schedules.
///
/// See the module docs for the invalidation and concurrency contract.
#[derive(Debug)]
pub struct ScheduleCache {
    shards: Vec<Shard>,
    shard_capacity: usize,
    /// Monotonic logical clock for LRU stamps.
    clock: AtomicU64,
    /// Key-epoch allocator: every keyed context draws one.
    epochs: AtomicU64,
}

/// Recovers a read guard from a poisoned lock: a panic elsewhere cannot
/// corrupt the map structurally (entries are inserted/removed whole), so
/// serving stale-but-consistent entries beats poisoning every bank. See
/// [`crate::sync`] for the contract.
fn read_map(shard: &Shard) -> std::sync::RwLockReadGuard<'_, HashMap<(u64, u64), Entry>> {
    crate::sync::read_unpoisoned(&shard.map)
}

fn write_map(shard: &Shard) -> std::sync::RwLockWriteGuard<'_, HashMap<(u64, u64), Entry>> {
    crate::sync::write_unpoisoned(&shard.map)
}

impl ScheduleCache {
    /// A cache holding at most (about) `capacity` derived block schedules;
    /// `0` disables caching entirely (every lookup misses, inserts are
    /// dropped).
    pub fn new(capacity: usize) -> Self {
        let shard_capacity = capacity.div_ceil(SHARD_COUNT);
        ScheduleCache {
            shards: (0..SHARD_COUNT).map(|_| Shard::default()).collect(),
            shard_capacity,
            clock: AtomicU64::new(0),
            epochs: AtomicU64::new(0),
        }
    }

    /// Whether the cache stores anything at all.
    pub fn is_enabled(&self) -> bool {
        self.shard_capacity > 0
    }

    /// The per-shard entry bound times the shard count: the hard ceiling
    /// on resident entries.
    pub fn capacity(&self) -> usize {
        self.shard_capacity * SHARD_COUNT
    }

    /// Allocates a fresh key epoch. Called once per keyed context (by the
    /// builder, or by a rotating [`crate::tenant::TenantRegistry`]); the
    /// returned handle has never been issued before, so no cached entry
    /// can match it until the owning context inserts one.
    pub fn next_epoch(&self) -> EpochHandle {
        EpochHandle(self.epochs.fetch_add(1, Ordering::Relaxed))
    }

    fn shard(&self, tweak: u64) -> &Shard {
        &self.shards[(tweak as usize) & (SHARD_COUNT - 1)]
    }

    /// Looks up the derived schedule for `(epoch, tweak)`, refreshing its
    /// LRU stamp on a hit. Read-lock only.
    pub fn get(&self, epoch: EpochHandle, tweak: u64) -> Option<Arc<DerivedSchedule>> {
        if !self.is_enabled() {
            return None;
        }
        let map = read_map(self.shard(tweak));
        map.get(&(epoch.0, tweak)).map(|entry| {
            entry.stamp.store(
                self.clock.fetch_add(1, Ordering::Relaxed),
                Ordering::Relaxed,
            );
            Arc::clone(&entry.plan)
        })
    }

    /// Inserts a freshly derived schedule, evicting least-recently-used
    /// entries if the shard is full. Returns how many entries were
    /// evicted (for the caller's telemetry).
    pub fn insert(&self, epoch: EpochHandle, tweak: u64, plan: Arc<DerivedSchedule>) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        let mut map = write_map(self.shard(tweak));
        let mut evicted = 0;
        let key = (epoch.0, tweak);
        while !map.contains_key(&key) && map.len() >= self.shard_capacity {
            let victim = map
                .iter()
                .min_by_key(|(_, e)| e.stamp.load(Ordering::Relaxed))
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    map.remove(&k);
                    evicted += 1;
                }
                None => break,
            }
        }
        map.insert(
            key,
            Entry {
                stamp: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
                plan,
            },
        );
        evicted
    }

    /// Resident entry count across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| read_map(s).len()).sum()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for ScheduleCache {
    fn default() -> Self {
        ScheduleCache::new(DEFAULT_CACHE_LINES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> Arc<DerivedSchedule> {
        Arc::new(DerivedSchedule {
            schedule: PulseSchedule::default(),
            trains: Vec::new(),
        })
    }

    /// Tweaks that all land in shard 0 (low bits zero), so per-shard
    /// capacity is exercised deterministically.
    fn same_shard_tweak(i: u64) -> u64 {
        i * SHARD_COUNT as u64
    }

    #[test]
    fn get_misses_then_hits_after_insert() {
        let cache = ScheduleCache::new(16);
        let epoch = cache.next_epoch();
        assert!(cache.get(epoch, 7).is_none());
        cache.insert(epoch, 7, plan());
        let hit = cache.get(epoch, 7).expect("hit");
        assert!(hit.trains.is_empty());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn epochs_partition_the_key_space() {
        // Key rotation = a fresh epoch: entries derived under the old key
        // are unreachable from the new context, so a stale schedule can
        // never decrypt a block sealed under the new key.
        let cache = ScheduleCache::new(16);
        let old = cache.next_epoch();
        cache.insert(old, 3, plan());
        let new = cache.next_epoch();
        assert_ne!(old, new);
        assert!(cache.get(new, 3).is_none(), "stale entry must not match");
        assert!(cache.get(old, 3).is_some(), "old epoch still resolves");
    }

    #[test]
    fn eviction_respects_lru_order() {
        // Per-shard capacity 2 (total 16 across 8 shards); fill one shard.
        let cache = ScheduleCache::new(16);
        let epoch = cache.next_epoch();
        cache.insert(epoch, same_shard_tweak(1), plan());
        cache.insert(epoch, same_shard_tweak(2), plan());
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(epoch, same_shard_tweak(1)).is_some());
        let evicted = cache.insert(epoch, same_shard_tweak(3), plan());
        assert_eq!(evicted, 1);
        assert!(cache.get(epoch, same_shard_tweak(1)).is_some());
        assert!(cache.get(epoch, same_shard_tweak(2)).is_none(), "LRU gone");
        assert!(cache.get(epoch, same_shard_tweak(3)).is_some());
    }

    #[test]
    fn capacity_bounds_resident_entries() {
        let cache = ScheduleCache::new(16);
        let epoch = cache.next_epoch();
        for t in 0..200 {
            cache.insert(epoch, t, plan());
        }
        assert!(cache.len() <= cache.capacity());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ScheduleCache::new(0);
        let epoch = cache.next_epoch();
        assert_eq!(cache.insert(epoch, 1, plan()), 0);
        assert!(cache.get(epoch, 1).is_none());
        assert!(cache.is_empty());
        assert!(!cache.is_enabled());
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache = ScheduleCache::new(16);
        let epoch = cache.next_epoch();
        cache.insert(epoch, same_shard_tweak(1), plan());
        cache.insert(epoch, same_shard_tweak(2), plan());
        assert_eq!(cache.insert(epoch, same_shard_tweak(2), plan()), 0);
        assert!(cache.get(epoch, same_shard_tweak(1)).is_some());
    }
}
