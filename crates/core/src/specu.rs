//! The Sneak-Path Encryption Control Unit (SPECU).
//!
//! The datapath is split into three layers so the functional engine can be
//! shared across threads and replicated across banks (Fig. 7/8's
//! SPE-parallel mode, one SPECU bank per mat):
//!
//! * [`SpeCalibration`] — key-independent hardware state (calibrated
//!   kernel, behavioral dynamics constants, LUTs, template array). Built
//!   once per configuration; shared by reference ([`std::sync::Arc`]).
//! * [`SpeContext`] — an immutable keyed context over a calibration. All
//!   cipher operations take `&self`; the type is `Send + Sync`, so any
//!   number of banks can encrypt concurrently. Per-call scratch (the
//!   crossbar being pulsed) lives on the stack of the call. Encryption
//!   and decryption go through the unified request API
//!   ([`crate::request::SpeCipher`]).
//! * [`Specu`] — the thin stateful facade with the paper's power lifecycle
//!   (volatile key register, `load_key`/`clear_key`).
//!
//! The payload-independent half of every block operation — the keyed
//! schedule and the expanded pulse trains — is memoized in the
//! calibration's [`ScheduleCache`] under the context's key epoch, so a
//! line working set pays derivation once and apply cost thereafter.
//!
//! Multi-bank line/batch encryption lives in [`crate::parallel`].

use crate::cache::{DerivedSchedule, EpochHandle, ScheduleCache, Train};
use crate::error::SpeError;
use crate::key::Key;
use crate::lut::{AddressLut, VoltageLut};
use crate::recovery::{commit_train, FaultCounters, FaultPolicy, RemapTable};
use crate::schedule::{PulseSchedule, DEFAULT_POE_PLACEMENT};
use spe_crossbar::fast::FastParams;
use spe_crossbar::{CellAddr, Dims, FastArray, Kernel, WireParams};
use spe_ilp::{PlacementProblem, PolyominoShape};
use spe_memristor::{DeviceParams, MlcLevel};
use spe_telemetry::{noop, Counter, Histogram, PowerSample, Span, SpanTimer, TelemetryHandle};
use std::fmt;
use std::sync::Arc;

/// Bytes encrypted per crossbar block (64 MLC-2 cells = 128 bits).
pub const BLOCK_BYTES: usize = 16;
/// Bytes per cache line (four crossbar blocks, §6.2.1).
pub const LINE_BYTES: usize = 64;
/// Crossbar blocks (mats) per cache line.
pub const BLOCKS_PER_LINE: usize = LINE_BYTES / BLOCK_BYTES;

/// Which physical realization of the sneak pulse the SPECU drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpeVariant {
    /// Single open-loop analog pulse per PoE (the paper's literal
    /// description). Exactly invertible, but the ciphertext level
    /// distribution is bimodal — see EXPERIMENTS.md (Table 2 discussion).
    Analog,
    /// Closed-loop program-verify pulse train per PoE: keyed cyclic level
    /// steps with context mixing ([`crate::discrete`]). Statistically flat
    /// ciphertext; the default.
    ClosedLoop,
}

/// How the SPECU schedules pulse energy on the supply rail.
///
/// The keyed pulse trains dissipate data-dependent energy (`Σ v²·g` over
/// the member cells — the conductances *are* the stored data), so a
/// supply-rail probe collecting per-train energy samples can run
/// correlation power analysis ([`crate::attack::power_trace_cpa`]) and
/// recover the keyed PoE order. The policy decides what the rail sees;
/// the level arithmetic — and therefore the ciphertext — is identical
/// under every policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Pulse trains draw exactly the energy the data demands. Fastest,
    /// but the supply rail leaks the schedule.
    #[default]
    Unbalanced,
    /// Every train is padded with complementary dummy pulses up to the
    /// calibration's uniform worst-case budget
    /// ([`SpeCalibration::power_budget_fj`]), so each slot draws the same
    /// energy regardless of data or PoE and the CPA statistic collapses
    /// to chance. Dummy activity is counted on
    /// [`Counter::DummyPulses`].
    PowerBalanced,
}

/// Scale from the closed-loop leakage model's dimensionless `v²·g·w`
/// units to femtojoules (a full-drive max-conductance verify step lands
/// in the picojoule range, matching the analog engine's order of
/// magnitude).
const TRAIN_ENERGY_SCALE_FJ: f64 = 250.0;

/// SPECU configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecuConfig {
    /// The sneak-pulse realization.
    pub variant: SpeVariant,
    /// Memristor device parameters.
    pub device: DeviceParams,
    /// Crossbar wire/periphery parameters.
    pub wires: WireParams,
    /// Number of PoEs per 8×8 block (paper: 16).
    pub poe_count: usize,
    /// Encryption rounds (full passes over the schedule). The paper's
    /// single analog pass is `1`; the closed-loop default is `2`, the
    /// smallest count with full plaintext avalanche (see EXPERIMENTS.md).
    pub rounds: usize,
    /// Strength of the cross-cell data coupling inside a polyomino
    /// (analog variant).
    pub context_beta: f64,
    /// Membership voltage threshold of closed-loop pulse trains. Trains
    /// accumulate sub-threshold programming over many verify pulses, so
    /// they reach further than a single open-loop pulse; the default keeps
    /// the polyomino near the paper's ~11 cells with heavy overlap.
    pub train_threshold: f64,
    /// Kernel calibration samples against the circuit engine.
    pub calibration_samples: usize,
    /// Capacity of the line-datapath schedule cache in *blocks* (four per
    /// cache line): how many derived `(key epoch, tweak)` schedules stay
    /// resident. `0` disables caching (every block re-derives).
    pub schedule_cache_lines: usize,
}

impl SpecuConfig {
    /// The paper-literal configuration: single open-loop analog pulses.
    pub fn paper_analog() -> Self {
        SpecuConfig {
            variant: SpeVariant::Analog,
            rounds: 1,
            ..SpecuConfig::default()
        }
    }

    /// The statistical-grade operating point used by the Table 2 harness:
    /// closed-loop trains, 3 rounds (binomial per-block dispersion).
    pub fn statistical() -> Self {
        SpecuConfig {
            rounds: 3,
            ..SpecuConfig::default()
        }
    }
}

impl Default for SpecuConfig {
    fn default() -> Self {
        SpecuConfig {
            variant: SpeVariant::ClosedLoop,
            device: DeviceParams::default(),
            wires: WireParams::default(),
            poe_count: 16,
            rounds: 2,
            context_beta: 2.0,
            train_threshold: 0.35,
            calibration_samples: 4,
            schedule_cache_lines: crate::cache::DEFAULT_CACHE_LINES,
        }
    }
}

/// An encrypted crossbar block: the analog cell states the NVMM physically
/// holds after SPE (in the model's logit coordinates), plus the schedule
/// tweak it was encrypted under.
///
/// An attacker reading the stolen NVMM sees only the quantized
/// [`data`](CipherBlock::data); decryption needs the analog state *and* the
/// key — which is exactly the paper's "decryptable only on the same NVMM"
/// property.
#[derive(Debug, Clone, PartialEq)]
pub struct CipherBlock {
    pub(crate) states: Vec<f64>,
    pub(crate) data: [u8; BLOCK_BYTES],
    pub(crate) tweak: u64,
    /// Keyed integrity tag over the plaintext, present only on blocks
    /// written through the resilient (write-verify) path. Checked decrypts
    /// use it to detect unrecoverable corruption instead of returning
    /// silently wrong plaintext.
    pub(crate) tag: Option<u64>,
}

impl CipherBlock {
    /// The quantized ciphertext bytes (what a probe reads out).
    pub fn data(&self) -> [u8; BLOCK_BYTES] {
        self.data
    }

    /// Quantizes analog-variant states under explicit device parameters
    /// (used by the hardware-avalanche study, where the reader's thresholds
    /// differ from the writer's).
    pub fn data_with_device(&self, device: &DeviceParams) -> [u8; BLOCK_BYTES] {
        let mut out = [0u8; BLOCK_BYTES];
        for (i, u) in self.states.iter().enumerate() {
            let x = 1.0 / (1.0 + (-u.clamp(-40.0, 40.0)).exp());
            let level = MlcLevel::quantize(device.resistance_at(x), device);
            out[i / 4] |= level.bits() << (6 - 2 * (i % 4));
        }
        out
    }

    /// The raw cell states the NVMM physically holds (logit coordinates for
    /// the analog variant, level values for the closed-loop variant).
    pub fn states(&self) -> &[f64] {
        &self.states
    }

    /// The schedule tweak (block address).
    pub fn tweak(&self) -> u64 {
        self.tweak
    }

    /// The keyed integrity tag, if the block was written through the
    /// resilient path.
    pub fn tag(&self) -> Option<u64> {
        self.tag
    }

    /// Rebuilds a block from its parts (e.g. NVMM storage).
    pub fn from_parts(states: Vec<f64>, data: [u8; BLOCK_BYTES], tweak: u64) -> Self {
        CipherBlock {
            states,
            data,
            tweak,
            tag: None,
        }
    }

    /// Rebuilds a tagged block (resilient-path NVMM storage).
    pub fn from_parts_tagged(
        states: Vec<f64>,
        data: [u8; BLOCK_BYTES],
        tweak: u64,
        tag: u64,
    ) -> Self {
        CipherBlock {
            states,
            data,
            tweak,
            tag: Some(tag),
        }
    }
}

/// An encrypted 64-byte cache line (four blocks).
#[derive(Debug, Clone, PartialEq)]
pub struct CipherLine {
    /// The four crossbar blocks of the line.
    pub blocks: Vec<CipherBlock>,
}

impl CipherLine {
    /// The quantized 64-byte ciphertext.
    pub fn data(&self) -> [u8; LINE_BYTES] {
        let mut out = [0u8; LINE_BYTES];
        for (i, b) in self.blocks.iter().enumerate() {
            out[i * BLOCK_BYTES..(i + 1) * BLOCK_BYTES].copy_from_slice(&b.data());
        }
        out
    }
}

/// Key-independent SPECU hardware state: the calibrated behavioral model,
/// the PoE placement and the pulse LUTs. Built once per configuration
/// (kernel calibration against the circuit engine dominates construction)
/// and shared by `Arc` between contexts, sessions and banks.
pub struct SpeCalibration {
    config: SpecuConfig,
    fast_params: FastParams,
    addresses: AddressLut,
    voltages: VoltageLut,
    /// The calibrated template crossbar. Owns the kernel; per-call scratch
    /// arrays are cloned from it.
    template: FastArray,
    /// The shared line-datapath schedule cache: derived `(key epoch,
    /// tweak)` schedules, reused by every context/bank over this
    /// calibration.
    schedule_cache: ScheduleCache,
    /// Lazily computed uniform per-train energy budget for
    /// [`SchedulePolicy::PowerBalanced`] (femtojoules).
    power_budget: std::sync::OnceLock<u64>,
}

impl fmt::Debug for SpeCalibration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpeCalibration")
            .field("poes", &self.addresses.len())
            .field("variant", &self.config.variant)
            .field("rounds", &self.config.rounds)
            .finish()
    }
}

impl SpeCalibration {
    /// Calibrates the behavioral model for a configuration and derives the
    /// PoE placement (pinned default for the paper's 16-PoE geometry,
    /// re-derived with the ILP otherwise).
    ///
    /// # Errors
    ///
    /// Returns [`SpeError`] if calibration fails or the ILP cannot place
    /// `poe_count` PoEs covering every cell.
    pub fn new(config: SpecuConfig) -> Result<Self, SpeError> {
        SpeCalibration::new_recorded(config, noop())
    }

    /// Like [`SpeCalibration::new`], but circuit calibration solves and
    /// placement-LUT traffic report into `recorder`.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError`] if calibration fails or the ILP cannot place
    /// `poe_count` PoEs covering every cell.
    pub fn new_recorded(config: SpecuConfig, recorder: TelemetryHandle) -> Result<Self, SpeError> {
        let mut kernel = Kernel::calibrate_recorded(
            &config.device,
            &config.wires,
            config.calibration_samples,
            0xDAC2014,
            recorder.clone(),
        )?;
        kernel.context_beta = config.context_beta;
        let fast_params = FastParams::calibrated(&config.device)?;
        let dims = Dims::square8();

        let is_default_geometry = config.poe_count == 16
            && config.device == DeviceParams::default()
            && config.wires == WireParams::default();
        let poes: Vec<CellAddr> = if is_default_geometry {
            DEFAULT_POE_PLACEMENT
                .iter()
                .map(|(r, c)| CellAddr::new(*r, *c))
                .collect()
        } else {
            let shape =
                PolyominoShape::from_offsets(kernel.member_offsets(1.0, config.device.v_threshold));
            cached_placement(&shape, config.poe_count, &recorder)?
        };
        // The template owns the kernel and device copies; everything else
        // reads them back through its accessors (no duplicate storage).
        let template = FastArray::new(dims, config.device.clone(), fast_params, kernel)?;
        let schedule_cache = ScheduleCache::new(config.schedule_cache_lines);
        Ok(SpeCalibration {
            config,
            fast_params,
            addresses: AddressLut::new(poes),
            voltages: VoltageLut::default(),
            template,
            schedule_cache,
            power_budget: std::sync::OnceLock::new(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &SpecuConfig {
        &self.config
    }

    /// The PoE address LUT.
    pub fn addresses(&self) -> &AddressLut {
        &self.addresses
    }

    /// The pulse LUT.
    pub fn voltages(&self) -> &VoltageLut {
        &self.voltages
    }

    /// The calibrated attenuation kernel.
    pub fn kernel(&self) -> &Kernel {
        self.template.kernel()
    }

    /// The calibrated behavioral dynamics constants.
    pub fn fast_params(&self) -> &FastParams {
        &self.fast_params
    }

    /// The shared schedule cache (bounded, key-epoch-invalidated).
    pub fn schedule_cache(&self) -> &ScheduleCache {
        &self.schedule_cache
    }

    /// Encryption latency in NVMM cycles: one write pulse per PoE per round
    /// (§6.4 sizes the cold-boot window from these operations).
    pub fn encryption_cycles(&self) -> u32 {
        (self.addresses.len() * self.config.rounds) as u32
    }

    /// The uniform per-train energy budget of
    /// [`SchedulePolicy::PowerBalanced`], in femtojoules: the worst case
    /// over every PoE with every reachable cell at maximum conductance and
    /// maximum step weight. Constant across PoEs *and* data by
    /// construction, so a balanced trace carries no information about
    /// either. Computed once per calibration on first use.
    pub fn power_budget_fj(&self) -> u64 {
        *self.power_budget.get_or_init(|| match self.config.variant {
            SpeVariant::ClosedLoop => {
                // Rigorous bound for the discrete leakage model: train
                // members are a subset of the in-bounds kernel support,
                // conductance weights top out at max(CONDUCTANCE) and the
                // per-member step weight at 1 + 3.
                let dims = Dims::square8();
                let g_max = crate::discrete::CONDUCTANCE
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(3) as f64;
                let mut worst = 0.0_f64;
                for poe in self.addresses.poes() {
                    let mut e = 0.0;
                    for (dr, dc) in self.kernel().member_offsets(1.0, 1e-9) {
                        let r = poe.row as isize + dr;
                        let c = poe.col as isize + dc;
                        if r < 0 || c < 0 {
                            continue;
                        }
                        let a = CellAddr::new(r as usize, c as usize);
                        if !dims.contains(a) {
                            continue;
                        }
                        let v = self.kernel().at(dr, dc);
                        e += v * v * g_max * 4.0;
                    }
                    worst = worst.max(e);
                }
                (worst * TRAIN_ENERGY_SCALE_FJ).ceil() as u64
            }
            SpeVariant::Analog => {
                // Engineering bound for the analog engine: every cell at
                // its highest-conductance level, driven by the widest LUT
                // pulse at the worst PoE, doubled for the cross-cell
                // context modulation on mixed states.
                let widest = spe_memristor::Pulse {
                    voltage: 1.0,
                    width: self
                        .voltages
                        .pulses()
                        .iter()
                        .map(|p| p.width)
                        .fold(0.0, f64::max),
                };
                let mut worst = 0.0_f64;
                for level in [MlcLevel::L00, MlcLevel::L01, MlcLevel::L10, MlcLevel::L11] {
                    let mut arr = self.template.clone();
                    if arr.write_levels(&[level; 64]).is_err() {
                        continue;
                    }
                    for poe in self.addresses.poes() {
                        if let Ok(e) = arr.pulse_energy(*poe, widest) {
                            worst = worst.max(e.total());
                        }
                    }
                }
                (worst * 2.0 * 1.0e15).ceil() as u64
            }
        })
    }

    /// The member cells of a closed-loop train at a PoE (kernel offsets at
    /// the train threshold, clipped to the array).
    pub(crate) fn train_members(&self, poe: CellAddr, amplitude: f64) -> Vec<CellAddr> {
        let dims = Dims::square8();
        let mut cells = Vec::new();
        for (dr, dc) in self
            .kernel()
            .member_offsets(amplitude, self.config.train_threshold)
        {
            let r = poe.row as isize + dr;
            let c = poe.col as isize + dc;
            if r >= 0 && c >= 0 {
                let a = CellAddr::new(r as usize, c as usize);
                if dims.contains(a) {
                    cells.push(a);
                }
            }
        }
        cells.sort();
        cells
    }
}

/// An immutable keyed encryption context: a calibration plus the loaded
/// key. All operations take `&self`; the type is `Send + Sync` and cheap to
/// clone (the calibration is behind an `Arc`), so banks and worker threads
/// share one calibration freely.
#[derive(Debug, Clone)]
pub struct SpeContext {
    calibration: Arc<SpeCalibration>,
    key: Key,
    /// This context's slice of the shared schedule cache: drawn fresh from
    /// the calibration's epoch allocator at construction, so entries
    /// derived under any other key (or an earlier load of the same key)
    /// can never be returned here.
    epoch: EpochHandle,
    recorder: TelemetryHandle,
    /// What the supply rail sees per pulse train (telemetry emission
    /// only; never the level arithmetic).
    policy: SchedulePolicy,
}

impl SpeContext {
    /// Entry point of the unified construction API (an alias for
    /// [`Specu::builder`]); finish with [`SpecuBuilder::build_context`].
    pub fn builder() -> SpecuBuilder {
        SpecuBuilder::new()
    }

    /// The one true context constructor every public construction path
    /// funnels through: the builder, [`Specu::load_key`], [`rekeyed`]
    /// and the tenant registry all assemble the same four parts. The
    /// caller supplies the epoch handle, which is what lets
    /// [`crate::tenant::TenantRegistry::rotate`] make the epoch draw
    /// explicit.
    ///
    /// [`rekeyed`]: SpeContext::rekeyed
    pub(crate) fn from_parts(
        key: Key,
        calibration: Arc<SpeCalibration>,
        epoch: EpochHandle,
        recorder: TelemetryHandle,
    ) -> Self {
        SpeContext {
            calibration,
            key,
            epoch,
            recorder,
            policy: SchedulePolicy::default(),
        }
    }

    /// The loaded key register (crate-internal: the bank scheduler
    /// derives its routing [`AddressScrambler`](crate::scramble) from
    /// it; the key itself never leaves the crate).
    pub(crate) fn routing_key(&self) -> &Key {
        &self.key
    }

    /// The same context under a different key (cheap: `Arc` clone plus a
    /// fresh cache epoch — stale schedules are unreachable from the new
    /// key). The telemetry recorder carries over.
    pub fn rekeyed(&self, key: Key) -> SpeContext {
        SpeContext {
            calibration: Arc::clone(&self.calibration),
            key,
            epoch: self.calibration.schedule_cache.next_epoch(),
            recorder: Arc::clone(&self.recorder),
            policy: self.policy,
        }
    }

    /// The key epoch this context caches derived schedules under, as a
    /// raw number (see [`SpeContext::epoch_handle`] for the typed form).
    pub fn key_epoch(&self) -> u64 {
        self.epoch.value()
    }

    /// The typed epoch handle this context resolves schedules under.
    pub fn epoch_handle(&self) -> EpochHandle {
        self.epoch
    }

    /// Attaches a telemetry recorder in place.
    pub fn set_recorder(&mut self, recorder: TelemetryHandle) {
        self.recorder = recorder;
    }

    /// The active power-trace scheduling policy.
    pub fn schedule_policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// Switches the power-trace scheduling policy in place. Affects only
    /// what the supply rail (telemetry power channel) sees; ciphertexts
    /// are byte-identical under every policy.
    pub fn set_schedule_policy(&mut self, policy: SchedulePolicy) {
        self.policy = policy;
    }

    /// The same context under a different scheduling policy.
    #[must_use]
    pub fn with_schedule_policy(mut self, policy: SchedulePolicy) -> SpeContext {
        self.policy = policy;
        self
    }

    /// The attached telemetry recorder (the shared no-op by default).
    pub fn recorder(&self) -> &TelemetryHandle {
        &self.recorder
    }

    /// The shared calibration.
    pub fn calibration(&self) -> &Arc<SpeCalibration> {
        &self.calibration
    }

    /// The configuration.
    pub fn config(&self) -> &SpecuConfig {
        self.calibration.config()
    }

    /// Encryption latency in NVMM cycles for one block.
    pub fn encryption_cycles(&self) -> u32 {
        self.calibration.encryption_cycles()
    }

    /// The schedule for a block tweak under this context's key.
    pub fn schedule(&self, tweak: u64) -> PulseSchedule {
        let mut schedule = PulseSchedule::default();
        self.schedule_into(tweak, &mut schedule);
        schedule
    }

    /// Derives the schedule for a block tweak into a reused buffer (the
    /// line datapath derives four schedules per line; one buffer serves
    /// them all).
    pub fn schedule_into(&self, tweak: u64, into: &mut PulseSchedule) {
        self.recorder.add(Counter::ScheduleDerivations, 1);
        PulseSchedule::generate_into(
            &self.key,
            tweak,
            &self.calibration.addresses,
            &self.calibration.voltages,
            into,
        );
    }

    /// Records the telemetry of one applied pulse (forward or inverse) at
    /// a PoE touching `touched` member cells.
    fn record_pulse(&self, poe: CellAddr, touched: usize) {
        self.recorder.add(Counter::PoePulses, 1);
        self.recorder
            .observe(Histogram::PoePulseIndex, (poe.row * 8 + poe.col) as u64);
        self.recorder
            .add(Counter::SneakPathActivations, touched as u64);
    }

    /// The leakage a supply-rail probe integrates over one closed-loop
    /// train: `Σ v²·g·w` over the members, evaluated against the
    /// *pre-train* levels (the verify comparator reads the cells before
    /// programming them), in femtojoules. The conductance weights are the
    /// stored data — this is the quantity CPA correlates against.
    fn train_energy_fj(&self, levels: &[u8], train: &Train) -> u64 {
        let kernel = self.calibration.kernel();
        let mut e = 0.0_f64;
        for ((m, &idx), &step) in train.members.iter().zip(&train.idxs).zip(&train.steps) {
            let (dr, dc) = m.offset_from(train.poe);
            let v = kernel.at(dr, dc);
            let g = crate::discrete::CONDUCTANCE[levels[idx as usize] as usize] as f64;
            e += v * v * g * (1.0 + step as f64);
        }
        (e * TRAIN_ENERGY_SCALE_FJ).round() as u64
    }

    /// Emits one closed-loop train's power sample under the active
    /// [`SchedulePolicy`]. Called with the levels *before* the train is
    /// applied; only ever reached when the recorder is enabled.
    fn record_train_power(&self, levels: &[u8], train: &Train) {
        let poe_index = (train.poe.row * 8 + train.poe.col) as u8;
        let energy_fj = match self.policy {
            SchedulePolicy::Unbalanced => self.train_energy_fj(levels, train),
            SchedulePolicy::PowerBalanced => {
                // Complementary dummy pulses pad the train up to the
                // uniform budget; the rail sees the same draw for every
                // slot, every PoE and every plaintext.
                self.recorder.add(Counter::DummyPulses, 1);
                self.calibration.power_budget_fj()
            }
        };
        self.recorder.record_power(PowerSample {
            poe_index,
            energy_fj,
        });
    }

    /// Emits one analog pulse's power sample from the behavioral energy
    /// model ([`FastArray::pulse_energy`]), evaluated against the
    /// pre-pulse states. Only ever reached when the recorder is enabled.
    fn record_analog_power(
        &self,
        arr: &FastArray,
        poe: CellAddr,
        pulse: spe_memristor::Pulse,
    ) -> Result<(), SpeError> {
        let poe_index = (poe.row * 8 + poe.col) as u8;
        let sample = match self.policy {
            SchedulePolicy::Unbalanced => {
                let e = arr.pulse_energy(poe, pulse)?;
                PowerSample::from_joules(poe_index, e.total())
            }
            SchedulePolicy::PowerBalanced => {
                self.recorder.add(Counter::DummyPulses, 1);
                PowerSample {
                    poe_index,
                    energy_fj: self.calibration.power_budget_fj(),
                }
            }
        };
        self.recorder.record_power(sample);
        Ok(())
    }

    /// The payload-independent derivation for a block tweak: schedule plus
    /// expanded pulse trains, served from the shared [`ScheduleCache`]
    /// under this context's key epoch, derived (and inserted) on a miss.
    ///
    /// Cached and fresh derivations are the same pure function of
    /// `(key, tweak, calibration)`, so ciphertexts are byte-identical
    /// either way.
    pub fn derived_schedule(&self, tweak: u64) -> Arc<DerivedSchedule> {
        let cache = &self.calibration.schedule_cache;
        if cache.is_enabled() {
            if let Some(hit) = cache.get(self.epoch, tweak) {
                self.recorder.add(Counter::ScheduleCacheHits, 1);
                return hit;
            }
            self.recorder.add(Counter::ScheduleCacheMisses, 1);
        }
        let plan = {
            let _derive = SpanTimer::start(self.recorder.as_ref(), Span::ScheduleDerive);
            let mut schedule = PulseSchedule::default();
            self.schedule_into(tweak, &mut schedule);
            let trains = match self.calibration.config.variant {
                SpeVariant::ClosedLoop => self.train_steps(&schedule, tweak),
                SpeVariant::Analog => Vec::new(),
            };
            Arc::new(DerivedSchedule { schedule, trains })
        };
        if cache.is_enabled() {
            let evicted = cache.insert(self.epoch, tweak, Arc::clone(&plan));
            if evicted > 0 {
                self.recorder.add(Counter::ScheduleCacheEvictions, evicted);
            }
        }
        plan
    }

    /// Encrypts a 16-byte block under a block-address tweak.
    pub(crate) fn encrypt_block(
        &self,
        plaintext: &[u8; BLOCK_BYTES],
        tweak: u64,
    ) -> Result<CipherBlock, SpeError> {
        let plan = self.derived_schedule(tweak);
        self.encrypt_block_plan(plaintext, tweak, &plan)
    }

    /// Encrypts one block with an already-derived plan: only the
    /// payload-dependent apply step remains.
    fn encrypt_block_plan(
        &self,
        plaintext: &[u8; BLOCK_BYTES],
        tweak: u64,
        plan: &DerivedSchedule,
    ) -> Result<CipherBlock, SpeError> {
        let cal = &*self.calibration;
        self.recorder.add(Counter::BlocksEncrypted, 1);
        let _apply = SpanTimer::start(self.recorder.as_ref(), Span::ScheduleApply);
        match cal.config.variant {
            SpeVariant::Analog => {
                // Per-call scratch: the session state of this encryption.
                let mut arr = cal.template.clone();
                arr.write_levels(&bytes_to_levels(plaintext))?;
                for _ in 0..cal.config.rounds {
                    for (poe, pulse) in plan.schedule.steps() {
                        if self.recorder.enabled() {
                            self.record_analog_power(&arr, *poe, *pulse)?;
                        }
                        let members = arr.apply_pulse(*poe, *pulse)?;
                        self.record_pulse(*poe, members.len());
                    }
                }
                let states = arr.states().to_vec();
                let block = CipherBlock {
                    states,
                    data: [0; BLOCK_BYTES],
                    tweak,
                    tag: None,
                };
                let data = block.data_with_device(&cal.config.device);
                Ok(CipherBlock { data, ..block })
            }
            SpeVariant::ClosedLoop => {
                let mut arr = crate::discrete::DiscreteArray::new(Dims::square8());
                arr.set_levels(&bytes_to_level_values(plaintext))?;
                for round_trains in &plan.trains {
                    for t in round_trains {
                        self.record_pulse(t.poe, t.members.len());
                        self.recorder.add(Counter::TrainSteps, t.steps.len() as u64);
                        if self.recorder.enabled() {
                            self.record_train_power(arr.levels(), t);
                        }
                        arr.apply_train_indexed(&t.idxs, &t.steps, t.dir, false);
                    }
                }
                let data = level_values_to_bytes(arr.levels());
                Ok(CipherBlock {
                    states: arr.levels().iter().map(|l| *l as f64).collect(),
                    data,
                    tweak,
                    tag: None,
                })
            }
        }
    }

    /// Decrypts a block in place on the same (modelled) crossbar.
    pub(crate) fn decrypt_block(&self, block: &CipherBlock) -> Result<[u8; BLOCK_BYTES], SpeError> {
        let plan = self.derived_schedule(block.tweak);
        self.decrypt_block_plan(block, &plan)
    }

    /// Decrypts one block with its already-derived *forward* plan (both
    /// variants walk the forward schedule backwards).
    fn decrypt_block_plan(
        &self,
        block: &CipherBlock,
        plan: &DerivedSchedule,
    ) -> Result<[u8; BLOCK_BYTES], SpeError> {
        let cal = &*self.calibration;
        self.recorder.add(Counter::BlocksDecrypted, 1);
        let _apply = SpanTimer::start(self.recorder.as_ref(), Span::ScheduleApply);
        match cal.config.variant {
            SpeVariant::Analog => {
                let mut arr = cal.template.clone();
                arr.set_states(&block.states)?;
                for _ in 0..cal.config.rounds {
                    for (poe, pulse) in plan.schedule.steps().iter().rev() {
                        if self.recorder.enabled() {
                            self.record_analog_power(&arr, *poe, *pulse)?;
                        }
                        let members = arr.apply_pulse_inverse(*poe, *pulse)?;
                        self.record_pulse(*poe, members.len());
                    }
                }
                Ok(levels_to_bytes(&arr.levels()))
            }
            SpeVariant::ClosedLoop => {
                let mut arr = crate::discrete::DiscreteArray::new(Dims::square8());
                let levels: Vec<u8> = block.states.iter().map(|l| *l as u8).collect();
                arr.set_levels(&levels)?;
                // The per-member step stream was derived in *forward*
                // order; walk it backwards (the closed-loop inverse
                // replays trains in reverse with inverted steps).
                for round_trains in plan.trains.iter().rev() {
                    for t in round_trains.iter().rev() {
                        self.record_pulse(t.poe, t.members.len());
                        self.recorder.add(Counter::TrainSteps, t.steps.len() as u64);
                        if self.recorder.enabled() {
                            self.record_train_power(arr.levels(), t);
                        }
                        arr.apply_train_indexed(&t.idxs, &t.steps, t.dir, true);
                    }
                }
                Ok(level_values_to_bytes(arr.levels()))
            }
        }
    }

    /// Encrypts a 64-byte cache line (four blocks, per-block tweaks derived
    /// from the line address).
    pub(crate) fn encrypt_line(
        &self,
        plaintext: &[u8; LINE_BYTES],
        line_address: u64,
    ) -> Result<CipherLine, SpeError> {
        self.recorder.add(Counter::LinesEncrypted, 1);
        let _line = SpanTimer::start(self.recorder.as_ref(), Span::EncryptLine);
        let mut blocks = Vec::with_capacity(BLOCKS_PER_LINE);
        for i in 0..BLOCKS_PER_LINE {
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(&plaintext[i * BLOCK_BYTES..(i + 1) * BLOCK_BYTES]);
            let tweak = line_address * BLOCKS_PER_LINE as u64 + i as u64;
            let plan = self.derived_schedule(tweak);
            blocks.push(self.encrypt_block_plan(&block, tweak, &plan)?);
        }
        Ok(CipherLine { blocks })
    }

    /// Decrypts a 64-byte cache line.
    pub(crate) fn decrypt_line(&self, line: &CipherLine) -> Result<[u8; LINE_BYTES], SpeError> {
        if line.blocks.len() != BLOCKS_PER_LINE {
            return Err(SpeError::BadLength {
                expected: BLOCKS_PER_LINE,
                actual: line.blocks.len(),
            });
        }
        self.recorder.add(Counter::LinesDecrypted, 1);
        let _line = SpanTimer::start(self.recorder.as_ref(), Span::DecryptLine);
        let mut out = [0u8; LINE_BYTES];
        for (i, block) in line.blocks.iter().enumerate() {
            let plan = self.derived_schedule(block.tweak);
            let pt = self.decrypt_block_plan(block, &plan)?;
            out[i * BLOCK_BYTES..(i + 1) * BLOCK_BYTES].copy_from_slice(&pt);
        }
        Ok(out)
    }

    /// Encrypts a block with write-verify, bounded retry and polyomino
    /// remapping under `policy`, and seals the result with a keyed
    /// integrity tag (checked by the verified decrypt path).
    ///
    /// The fault machinery acts on the *physical commit* of each pulse
    /// train: transiently skipped writes are re-pulsed with exponential
    /// pulse-width backoff, and hard failures migrate the whole polyomino
    /// to a spare region. The logical level arithmetic is exact either
    /// way, so a successfully committed block round-trips bit-exactly.
    pub(crate) fn encrypt_block_resilient(
        &self,
        plaintext: &[u8; BLOCK_BYTES],
        tweak: u64,
        policy: &FaultPolicy,
    ) -> Result<(CipherBlock, FaultCounters), SpeError> {
        let cal = &*self.calibration;
        let dims = Dims::square8();
        let mut counters = FaultCounters::default();
        let mut remap = RemapTable::new(policy.spare_regions);
        let mut block = match cal.config.variant {
            SpeVariant::Analog => {
                // The analog variant programs the whole mat once per round
                // (a single open-loop pulse per PoE has no per-train verify
                // loop to hang a retry on), so the commit granularity is
                // the full block.
                let all: Vec<usize> = (0..dims.cells()).collect();
                for round in 0..cal.config.rounds {
                    commit_train(
                        policy,
                        &mut remap,
                        &mut counters,
                        tweak,
                        (round as u64) << 32,
                        &all,
                        self.recorder.as_ref(),
                    )?;
                }
                self.encrypt_block(plaintext, tweak)?
            }
            SpeVariant::ClosedLoop => {
                let plan = self.derived_schedule(tweak);
                self.recorder.add(Counter::BlocksEncrypted, 1);
                let mut arr = crate::discrete::DiscreteArray::new(dims);
                arr.set_levels(&bytes_to_level_values(plaintext))?;
                for (round, round_trains) in plan.trains.iter().enumerate() {
                    for (t, train) in round_trains.iter().enumerate() {
                        let cells: Vec<usize> = train.idxs.iter().map(|&i| i as usize).collect();
                        let epoch = ((round as u64) << 32) | t as u64;
                        commit_train(
                            policy,
                            &mut remap,
                            &mut counters,
                            tweak,
                            epoch,
                            &cells,
                            self.recorder.as_ref(),
                        )?;
                        self.record_pulse(train.poe, train.members.len());
                        self.recorder
                            .add(Counter::TrainSteps, train.steps.len() as u64);
                        if self.recorder.enabled() {
                            self.record_train_power(arr.levels(), train);
                        }
                        arr.apply_train_indexed(&train.idxs, &train.steps, train.dir, false);
                    }
                }
                let data = level_values_to_bytes(arr.levels());
                CipherBlock {
                    states: arr.levels().iter().map(|l| *l as f64).collect(),
                    data,
                    tweak,
                    tag: None,
                }
            }
        };
        block.tag = Some(self.block_tag(tweak, plaintext));
        Ok((block, counters))
    }

    /// Decrypts a block and verifies its keyed integrity tag.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::IntegrityViolation`] if the block carries no tag
    /// or the recovered plaintext does not match it — i.e. the stored line
    /// is unrecoverably corrupted. Plaintext is never returned in that
    /// case.
    pub(crate) fn decrypt_block_checked(
        &self,
        block: &CipherBlock,
    ) -> Result<[u8; BLOCK_BYTES], SpeError> {
        let pt = self.decrypt_block(block)?;
        match block.tag {
            Some(tag) if tag == self.block_tag(block.tweak, &pt) => {
                self.recorder.add(Counter::TagsVerified, 1);
                Ok(pt)
            }
            _ => {
                self.recorder.add(Counter::IntegrityFailures, 1);
                Err(SpeError::IntegrityViolation { tweak: block.tweak })
            }
        }
    }

    /// Encrypts a cache line through the resilient path, merging the four
    /// blocks' fault counters.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::FaultExhausted`] if any block's polyomino
    /// cannot be committed.
    pub(crate) fn encrypt_line_resilient(
        &self,
        plaintext: &[u8; LINE_BYTES],
        line_address: u64,
        policy: &FaultPolicy,
    ) -> Result<(CipherLine, FaultCounters), SpeError> {
        self.recorder.add(Counter::LinesEncrypted, 1);
        let _line = SpanTimer::start(self.recorder.as_ref(), Span::EncryptLine);
        let mut blocks = Vec::with_capacity(BLOCKS_PER_LINE);
        let mut counters = FaultCounters::default();
        for i in 0..BLOCKS_PER_LINE {
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(&plaintext[i * BLOCK_BYTES..(i + 1) * BLOCK_BYTES]);
            let (cb, c) = self.encrypt_block_resilient(
                &block,
                line_address * BLOCKS_PER_LINE as u64 + i as u64,
                policy,
            )?;
            counters.merge(&c);
            blocks.push(cb);
        }
        Ok((CipherLine { blocks }, counters))
    }

    /// Decrypts a cache line, verifying every block's integrity tag.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::IntegrityViolation`] for the first corrupted or
    /// untagged block, or [`SpeError::BadLength`] if the line is malformed.
    pub(crate) fn decrypt_line_checked(
        &self,
        line: &CipherLine,
    ) -> Result<[u8; LINE_BYTES], SpeError> {
        if line.blocks.len() != BLOCKS_PER_LINE {
            return Err(SpeError::BadLength {
                expected: BLOCKS_PER_LINE,
                actual: line.blocks.len(),
            });
        }
        self.recorder.add(Counter::LinesDecrypted, 1);
        let _line = SpanTimer::start(self.recorder.as_ref(), Span::DecryptLine);
        let mut out = [0u8; LINE_BYTES];
        for (i, block) in line.blocks.iter().enumerate() {
            let pt = self.decrypt_block_checked(block)?;
            out[i * BLOCK_BYTES..(i + 1) * BLOCK_BYTES].copy_from_slice(&pt);
        }
        Ok(out)
    }

    /// The keyed integrity tag of a plaintext block: a MAC-like fold of
    /// the plaintext into a key/tweak-seeded PRNG stream (its own domain,
    /// disjoint from schedule and train-step generation).
    fn block_tag(&self, tweak: u64, plaintext: &[u8; BLOCK_BYTES]) -> u64 {
        const TAG_DOMAIN: u64 = 0x5350_4554_4147_3744; // "SPETAG" ‖ 0x3744
        let mut stream = crate::prng::CoupledLcg::with_tweak(&self.key, tweak ^ TAG_DOMAIN);
        let mut acc = stream.next_u64();
        for &b in plaintext {
            let mut z = acc ^ (b as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ stream.next_u64();
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            acc = z ^ (z >> 31);
        }
        acc
    }

    /// Expands a schedule into closed-loop pulse trains: for every round and
    /// PoE, the member cells, an independent keyed 2-bit level step *per
    /// member* (drawn from the PRNG stream, §5.4), and the pulse polarity.
    fn train_steps(&self, schedule: &PulseSchedule, tweak: u64) -> Vec<Vec<Train>> {
        let cal = &*self.calibration;
        // A separate PRNG domain from the schedule generation, bound to
        // this crossbar's calibrated hardware fingerprint: the verify
        // thresholds of the pulse trains derive from the device response,
        // so a ciphertext is only invertible on the hardware that made it.
        let mut stream = crate::prng::CoupledLcg::with_tweak(
            &self.key,
            tweak ^ 0x5350_4543_5F54_524E ^ cal.kernel().fingerprint(),
        );
        let mut rounds = Vec::with_capacity(cal.config.rounds);
        for round in 0..cal.config.rounds {
            // Alternate the PoE direction between rounds so every cell gets
            // both an early and a late position in the sweep (symmetric
            // diffusion for the avalanche datasets).
            let mut trains = Vec::with_capacity(schedule.len());
            let mut push_train = |stream: &mut crate::prng::CoupledLcg,
                                  poe: &CellAddr,
                                  pulse: &spe_memristor::Pulse| {
                let members = cal.train_members(*poe, pulse.voltage);
                // Each member's step folds in a quantized image of its
                // calibrated sneak attenuation: the pulse train's verify
                // loop terminates against device-specific analog levels, so
                // the ciphertext is bound to this crossbar's physical
                // parameters (the hardware-avalanche property of §6.1 and
                // the "decrypt only on the same NVMM" claim).
                let steps: Vec<u8> = members
                    .iter()
                    .map(|m| {
                        let (dr, dc) = m.offset_from(*poe);
                        let q = (cal.kernel().at(dr, dc) * 59.0).floor() as u64;
                        ((stream.next_below(4) + q) % 4) as u8
                    })
                    .collect();
                let dir = if pulse.voltage >= 0.0 { 1 } else { -1 };
                // Resolve member addresses to flat indices once, here at
                // derivation time: the cached apply loop is then pure
                // level arithmetic.
                let dims = Dims::square8();
                let idxs: Vec<u16> = members
                    .iter()
                    .map(|m| u16::try_from(dims.index(*m)).expect("8x8 indices fit u16"))
                    .collect();
                trains.push(Train {
                    poe: *poe,
                    members,
                    idxs,
                    steps,
                    dir,
                });
            };
            if round % 2 == 1 {
                for (poe, pulse) in schedule.steps().iter().rev() {
                    push_train(&mut stream, poe, pulse);
                }
            } else {
                for (poe, pulse) in schedule.steps() {
                    push_train(&mut stream, poe, pulse);
                }
            }
            rounds.push(trains);
        }
        rounds
    }
}

/// The Sneak-Path Encryption Control Unit facade.
///
/// Wraps a shared [`SpeCalibration`] and an optional loaded key (the
/// volatile key register of the paper's power lifecycle). Encryption and
/// decryption take `&self` and delegate to the loaded [`SpeContext`].
#[derive(Clone)]
pub struct Specu {
    calibration: Arc<SpeCalibration>,
    context: Option<SpeContext>,
}

impl fmt::Debug for Specu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Specu")
            .field("key_loaded", &self.context.is_some())
            .field("poes", &self.calibration.addresses.len())
            .field("rounds", &self.calibration.config.rounds)
            .finish()
    }
}

impl Specu {
    /// Starts the unified construction API shared by every SPECU surface:
    /// finish with [`SpecuBuilder::build`] (this facade),
    /// [`SpecuBuilder::build_context`] ([`SpeContext`]) or
    /// [`SpecuBuilder::build_parallel`]
    /// ([`crate::parallel::ParallelSpecu`]).
    ///
    /// ```no_run
    /// # use spe_core::{Key, Specu, SpecuConfig};
    /// # fn main() -> Result<(), spe_core::SpeError> {
    /// let specu = Specu::builder()
    ///     .key(Key::from_seed(7))
    ///     .config(SpecuConfig::default())
    ///     .build()?;
    /// # let _ = specu; Ok(()) }
    /// ```
    pub fn builder() -> SpecuBuilder {
        SpecuBuilder::new()
    }

    /// The shared key-independent calibration.
    pub fn calibration(&self) -> &Arc<SpeCalibration> {
        &self.calibration
    }

    /// The configuration.
    pub fn config(&self) -> &SpecuConfig {
        self.calibration.config()
    }

    /// The PoE address LUT.
    pub fn addresses(&self) -> &AddressLut {
        self.calibration.addresses()
    }

    /// The pulse LUT.
    pub fn voltages(&self) -> &VoltageLut {
        self.calibration.voltages()
    }

    /// The calibrated attenuation kernel.
    pub fn kernel(&self) -> &Kernel {
        self.calibration.kernel()
    }

    /// The calibrated behavioral dynamics constants.
    pub fn fast_params(&self) -> &FastParams {
        self.calibration.fast_params()
    }

    /// Whether a key is currently loaded.
    pub fn key_loaded(&self) -> bool {
        self.context.is_some()
    }

    /// Clears the volatile key register (power-down).
    pub fn clear_key(&mut self) {
        self.context = None;
    }

    /// Loads a key (power-up, after TPM authentication). Cheap: the
    /// calibration is reused, only the keyed context is rebuilt. An
    /// attached telemetry recorder carries over to the new context.
    pub fn load_key(&mut self, key: Key) {
        let recorder = self
            .context
            .as_ref()
            .map(|ctx| Arc::clone(ctx.recorder()))
            .unwrap_or_else(noop);
        // The scheduling policy is a hardware knob, not key material: it
        // survives the power cycle like the recorder does.
        let policy = self
            .context
            .as_ref()
            .map(|ctx| ctx.schedule_policy())
            .unwrap_or_default();
        let epoch = self.calibration.schedule_cache.next_epoch();
        self.context = Some(
            SpeContext::from_parts(key, Arc::clone(&self.calibration), epoch, recorder)
                .with_schedule_policy(policy),
        );
    }

    /// Attaches a telemetry recorder to the loaded context: all datapath
    /// operations (schedule derivations, pulses, retries, …) report into
    /// it. Survives [`Specu::load_key`]; a no-op when no key is loaded.
    pub fn attach_recorder(&mut self, recorder: TelemetryHandle) {
        if let Some(ctx) = self.context.as_mut() {
            ctx.set_recorder(recorder);
        }
    }

    /// The immutable keyed context (shareable across threads).
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::KeyNotLoaded`] after power-down.
    pub fn context(&self) -> Result<&SpeContext, SpeError> {
        self.context.as_ref().ok_or(SpeError::KeyNotLoaded)
    }

    /// A multi-bank parallel datapath over this SPECU's context (one SPECU
    /// bank per mat, §7 / Fig. 7).
    ///
    /// This spawns the persistent bank-scheduler worker pool
    /// ([`crate::scheduler::BankScheduler`]): build it once and reuse it
    /// across batches rather than constructing one per batch.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::KeyNotLoaded`] after power-down.
    pub fn parallel(&self, banks: usize) -> Result<crate::parallel::ParallelSpecu, SpeError> {
        Ok(crate::parallel::ParallelSpecu::with_scheduler_config(
            self.context()?.clone(),
            crate::scheduler::SchedulerConfig::with_banks(banks),
        ))
    }

    /// The schedule for a block tweak under the current key.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::KeyNotLoaded`] after power-down.
    pub fn schedule(&self, tweak: u64) -> Result<PulseSchedule, SpeError> {
        Ok(self.context()?.schedule(tweak))
    }

    /// Encryption latency in NVMM cycles: one write pulse per PoE (§6.4
    /// sizes the cold-boot window from these 16 operations).
    pub fn encryption_cycles(&self) -> u32 {
        self.calibration.encryption_cycles()
    }
}

/// The unified constructor behind every SPECU surface.
///
/// The old constructor zoo (`new` / `with_config` / `with_calibration` /
/// `with_recorder`, duplicated across [`SpeContext`], [`Specu`] and
/// [`crate::parallel::ParallelSpecu`]) collapses into one chain:
///
/// ```no_run
/// # use spe_core::{Key, Specu, SpecuConfig};
/// # use std::sync::Arc;
/// # fn main() -> Result<(), spe_core::SpeError> {
/// let specu = Specu::builder()
///     .key(Key::from_seed(1))
///     .config(SpecuConfig::default())
///     .build()?;
/// let shared = Arc::clone(specu.calibration());
/// let context = Specu::builder()
///     .key(Key::from_seed(2))
///     .calibration(shared)
///     .build_context()?;
/// # let _ = context; Ok(()) }
/// ```
///
/// Construction rules:
///
/// * A key is required; [`SpecuBuilder::build`] and friends return
///   [`SpeError::BadRequest`] without one.
/// * `calibration` reuses existing hardware state (no recalibration);
///   `config` calibrates fresh. Supplying both is allowed only when the
///   config matches the calibration's — anything else is a
///   [`SpeError::BadRequest`], not a silent recalibration.
/// * `recorder` attaches telemetry to the built context. When the
///   builder also calibrates, the calibration run itself reports into
///   the same recorder.
/// * `epoch` pins the schedule-cache epoch handle explicitly; by default
///   a fresh one is drawn from the calibration's allocator. Only the
///   tenant registry's rotation path needs this.
/// * `banks` / `scheduler_config` apply to
///   [`SpecuBuilder::build_parallel`] only (an explicit `banks` count
///   overrides the scheduler config's).
#[derive(Debug, Clone, Default)]
pub struct SpecuBuilder {
    key: Option<Key>,
    config: Option<SpecuConfig>,
    calibration: Option<Arc<SpeCalibration>>,
    recorder: Option<TelemetryHandle>,
    epoch: Option<EpochHandle>,
    policy: Option<SchedulePolicy>,
    banks: Option<usize>,
    scheduler: Option<crate::scheduler::SchedulerConfig>,
}

impl SpecuBuilder {
    /// An empty builder; [`Specu::builder`] is the idiomatic entry point.
    pub fn new() -> Self {
        SpecuBuilder::default()
    }

    /// The key to load (required).
    #[must_use]
    pub fn key(mut self, key: Key) -> Self {
        self.key = Some(key);
        self
    }

    /// Calibrate this configuration from scratch. Without `config` or
    /// `calibration` the default configuration is calibrated.
    #[must_use]
    pub fn config(mut self, config: SpecuConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Reuse an existing shared calibration (cheap: no recalibration).
    #[must_use]
    pub fn calibration(mut self, calibration: Arc<SpeCalibration>) -> Self {
        self.calibration = Some(calibration);
        self
    }

    /// Attach a telemetry recorder to the built context (and to the
    /// calibration run, when the builder calibrates).
    #[must_use]
    pub fn recorder(mut self, recorder: TelemetryHandle) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Pin the schedule-cache epoch handle instead of drawing a fresh
    /// one. Intended for [`crate::tenant::TenantRegistry::rotate`], which
    /// draws the handle itself to make the rotation invariant explicit.
    #[must_use]
    pub fn epoch(mut self, epoch: EpochHandle) -> Self {
        self.epoch = Some(epoch);
        self
    }

    /// The power-trace scheduling policy of the built context
    /// ([`SchedulePolicy::Unbalanced`] by default). Balancing changes
    /// only what the supply rail sees; ciphertexts are identical.
    #[must_use]
    pub fn schedule_policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Bank count for [`SpecuBuilder::build_parallel`].
    #[must_use]
    pub fn banks(mut self, banks: usize) -> Self {
        self.banks = Some(banks);
        self
    }

    /// Full scheduler configuration for [`SpecuBuilder::build_parallel`].
    #[must_use]
    pub fn scheduler_config(mut self, config: crate::scheduler::SchedulerConfig) -> Self {
        self.scheduler = Some(config);
        self
    }

    /// Resolves the calibration source per the rules in the type docs.
    fn resolve_calibration(
        calibration: Option<Arc<SpeCalibration>>,
        config: Option<SpecuConfig>,
        recorder: &TelemetryHandle,
    ) -> Result<Arc<SpeCalibration>, SpeError> {
        match (calibration, config) {
            (Some(calibration), Some(config)) => {
                if *calibration.config() != config {
                    return Err(SpeError::BadRequest(
                        "SpecuBuilder: config differs from the supplied calibration's",
                    ));
                }
                Ok(calibration)
            }
            (Some(calibration), None) => Ok(calibration),
            (None, config) => {
                let config = config.unwrap_or_default();
                Ok(Arc::new(SpeCalibration::new_recorded(
                    config,
                    Arc::clone(recorder),
                )?))
            }
        }
    }

    /// Builds an immutable keyed [`SpeContext`].
    ///
    /// # Errors
    ///
    /// [`SpeError::BadRequest`] when no key was supplied or the config
    /// conflicts with the calibration; any calibration error when the
    /// builder calibrates from scratch.
    pub fn build_context(self) -> Result<SpeContext, SpeError> {
        let key = self
            .key
            .ok_or(SpeError::BadRequest("SpecuBuilder: a key is required"))?;
        let recorder = self.recorder.unwrap_or_else(noop);
        let calibration = Self::resolve_calibration(self.calibration, self.config, &recorder)?;
        let epoch = self
            .epoch
            .unwrap_or_else(|| calibration.schedule_cache.next_epoch());
        Ok(SpeContext::from_parts(key, calibration, epoch, recorder)
            .with_schedule_policy(self.policy.unwrap_or_default()))
    }

    /// Builds the stateful [`Specu`] facade with the key loaded.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`SpecuBuilder::build_context`].
    pub fn build(self) -> Result<Specu, SpeError> {
        let context = self.build_context()?;
        Ok(Specu {
            calibration: Arc::clone(context.calibration()),
            context: Some(context),
        })
    }

    /// Builds a multi-bank [`crate::parallel::ParallelSpecu`] (spawns the
    /// persistent bank-scheduler worker pool).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`SpecuBuilder::build_context`].
    pub fn build_parallel(self) -> Result<crate::parallel::ParallelSpecu, SpeError> {
        let scheduler = match (self.scheduler, self.banks) {
            (Some(config), Some(banks)) => crate::scheduler::SchedulerConfig { banks, ..config },
            (Some(config), None) => config,
            (None, Some(banks)) => crate::scheduler::SchedulerConfig::with_banks(banks),
            (None, None) => crate::scheduler::SchedulerConfig::default(),
        };
        let context = SpecuBuilder {
            banks: None,
            scheduler: None,
            ..self
        }
        .build_context()?;
        Ok(crate::parallel::ParallelSpecu::with_scheduler_config(
            context, scheduler,
        ))
    }
}

/// Process-wide memo of ILP placements, keyed by (shape, PoE count): the
/// hardware-avalanche dataset constructs many SPECUs over the same few
/// perturbed geometries and the placement solve dominates construction.
fn cached_placement(
    shape: &PolyominoShape,
    poe_count: usize,
    recorder: &TelemetryHandle,
) -> Result<Vec<CellAddr>, SpeError> {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    type PlacementKey = (Vec<(isize, isize)>, usize);
    static CACHE: OnceLock<Mutex<HashMap<PlacementKey, Vec<CellAddr>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (shape.offsets().to_vec(), poe_count);
    // A poisoned lock means a worker panicked mid-solve on another thread;
    // the map itself is still structurally valid (inserts are atomic), so
    // recover the guard instead of propagating the panic into this bank.
    let lock = crate::sync::lock_unpoisoned::<HashMap<PlacementKey, Vec<CellAddr>>>;
    if let Some(hit) = lock(cache).get(&key) {
        recorder.add(Counter::PlacementCacheHits, 1);
        return Ok(hit.clone());
    }
    recorder.add(Counter::PlacementCacheMisses, 1);
    let dims = Dims::square8();
    let problem = PlacementProblem {
        rows: dims.rows,
        cols: dims.cols,
        shape: shape.clone(),
        security_margin: 0,
        max_coverage: 2,
    };
    let solution = problem.with_poe_count(poe_count)?;
    let poes: Vec<CellAddr> = solution
        .poes
        .iter()
        .map(|(r, c)| CellAddr::new(*r, *c))
        .collect();
    lock(cache).insert(key, poes.clone());
    Ok(poes)
}

/// Expands 16 bytes into 64 raw 2-bit level values (MSB-first pairs).
pub fn bytes_to_level_values(bytes: &[u8; BLOCK_BYTES]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    for b in bytes {
        for k in 0..4 {
            out.push(b >> (6 - 2 * k) & 0b11);
        }
    }
    out
}

/// Packs 64 raw 2-bit level values back into 16 bytes.
///
/// # Panics
///
/// Panics if `levels` does not hold exactly 64 entries.
pub fn level_values_to_bytes(levels: &[u8]) -> [u8; BLOCK_BYTES] {
    assert_eq!(levels.len(), 64, "a block holds 64 cells");
    let mut out = [0u8; BLOCK_BYTES];
    for (i, level) in levels.iter().enumerate() {
        out[i / 4] |= (level & 0b11) << (6 - 2 * (i % 4));
    }
    out
}

/// Expands 16 bytes into 64 MLC-2 levels (MSB-first pairs).
pub fn bytes_to_levels(bytes: &[u8; BLOCK_BYTES]) -> Vec<MlcLevel> {
    let mut levels = Vec::with_capacity(64);
    for b in bytes {
        for k in 0..4 {
            levels.push(MlcLevel::from_masked(b >> (6 - 2 * k) & 0b11));
        }
    }
    levels
}

/// Packs 64 MLC-2 levels back into 16 bytes.
///
/// # Panics
///
/// Panics if `levels` does not hold exactly 64 entries.
pub fn levels_to_bytes(levels: &[MlcLevel]) -> [u8; BLOCK_BYTES] {
    assert_eq!(levels.len(), 64, "a block holds 64 cells");
    let mut out = [0u8; BLOCK_BYTES];
    for (i, level) in levels.iter().enumerate() {
        out[i / 4] |= level.bits() << (6 - 2 * (i % 4));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{CipherRequest, SpeCipher};
    use std::sync::OnceLock;

    // SPECU construction calibrates against the circuit engine; share one
    // instance across tests. Cloning is cheap now (shared calibration).
    fn specu() -> Specu {
        static CACHE: OnceLock<Specu> = OnceLock::new();
        CACHE
            .get_or_init(|| {
                Specu::builder()
                    .key(Key::from_seed(0xDAC))
                    .build()
                    .expect("specu")
            })
            .clone()
    }

    /// Deterministic pseudo-random bytes for loop-based property tests.
    fn splitmix_block(seed: u64) -> [u8; BLOCK_BYTES] {
        let mut s = seed;
        core::array::from_fn(|_| {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            (z ^ (z >> 31)) as u8
        })
    }

    #[test]
    fn bytes_levels_roundtrip() {
        let bytes: [u8; 16] = core::array::from_fn(|i| (i * 37 + 5) as u8);
        assert_eq!(levels_to_bytes(&bytes_to_levels(&bytes)), bytes);
    }

    #[test]
    fn default_placement_covers_fully() {
        // The pinned placement must cover all 64 cells (decryptability) and
        // respect the saturation cap under the calibrated five-cell plus.
        let shape = PolyominoShape::from_offsets([(-1, 0), (0, -1), (0, 0), (0, 1), (1, 0)]);
        let mut coverage = vec![0usize; 64];
        for (r, c) in DEFAULT_POE_PLACEMENT {
            for (cr, cc) in shape.covered(8, 8, (r, c)) {
                coverage[cr * 8 + cc] += 1;
            }
        }
        assert!(
            coverage.iter().all(|c| *c >= 1),
            "uncovered cells: {:?}",
            coverage
                .iter()
                .enumerate()
                .filter(|(_, c)| **c == 0)
                .map(|(i, _)| (i / 8, i % 8))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn context_is_send_and_sync() {
        // Compile-time assertion: the shared context must be safe to hand
        // to SPECU banks on worker threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpeContext>();
        assert_send_sync::<SpeCalibration>();
        assert_send_sync::<Specu>();
    }

    #[test]
    fn encrypt_through_shared_reference() {
        // The whole point of the split: encrypt/decrypt through &self.
        let s = specu();
        let ctx = s.context().expect("context");
        let pt = *b"shared referenc!";
        let ct = ctx.encrypt_block(&pt, 0).expect("encrypt");
        assert_eq!(ctx.decrypt_block(&ct).expect("decrypt"), pt);
        // And concurrently from two threads over one &SpeContext.
        std::thread::scope(|scope| {
            let a = scope.spawn(|| ctx.encrypt_block(&pt, 0).expect("encrypt").data());
            let b = scope.spawn(|| ctx.encrypt_block(&pt, 0).expect("encrypt").data());
            assert_eq!(a.join().expect("join"), b.join().expect("join"));
        });
    }

    #[test]
    fn rekeyed_context_shares_calibration() {
        let s = specu();
        let ctx = s.context().expect("context");
        let other = ctx.rekeyed(Key::from_seed(99));
        assert!(Arc::ptr_eq(ctx.calibration(), other.calibration()));
        assert_ne!(
            ctx.key_epoch(),
            other.key_epoch(),
            "rekeying must draw a fresh cache epoch"
        );
        let pt = *b"rekeyed context!";
        let a = ctx.encrypt_block(&pt, 0).expect("encrypt");
        let b = other.encrypt_block(&pt, 0).expect("encrypt");
        assert_ne!(a.data(), b.data(), "different keys, different ciphertext");
    }

    #[test]
    fn encrypt_changes_ciphertext() {
        let s = specu();
        let pt = *b"sixteen byte msg";
        let ct = s
            .encrypt(CipherRequest::block(pt))
            .expect("encrypt")
            .into_block()
            .expect("block");
        assert_ne!(ct.data(), pt);
        // A healthy fraction of the 128 bits should flip.
        let flips: u32 = ct
            .data()
            .iter()
            .zip(&pt)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert!(flips >= 16, "only {flips}/128 ciphertext bits differ");
    }

    #[test]
    fn decrypt_recovers_plaintext() {
        let s = specu();
        let ctx = s.context().expect("context");
        for seed in 0..8u8 {
            let pt: [u8; 16] =
                core::array::from_fn(|i| seed.wrapping_mul(31).wrapping_add(i as u8));
            let ct = ctx.encrypt_block(&pt, 0).expect("encrypt");
            assert_eq!(ctx.decrypt_block(&ct).expect("decrypt"), pt, "seed {seed}");
        }
    }

    #[test]
    fn wrong_key_fails_to_decrypt() {
        let s = specu();
        let pt = *b"top secret block";
        let ct = s
            .context()
            .expect("context")
            .encrypt_block(&pt, 0)
            .expect("encrypt");
        let mut other = specu();
        other.load_key(Key::from_seed(999));
        let wrong = other
            .context()
            .expect("context")
            .decrypt_block(&ct)
            .expect("runs");
        assert_ne!(wrong, pt, "a different key must not decrypt");
    }

    #[test]
    fn ciphertext_depends_on_tweak() {
        let s = specu();
        let ctx = s.context().expect("context");
        let pt = [0u8; 16];
        let a = ctx.encrypt_block(&pt, 0).expect("encrypt");
        let b = ctx.encrypt_block(&pt, 1).expect("encrypt");
        assert_ne!(a.data(), b.data(), "tweak must decorrelate blocks");
    }

    #[test]
    fn line_roundtrip() {
        let s = specu();
        let ctx = s.context().expect("context");
        let pt: [u8; 64] = core::array::from_fn(|i| (i * 11 + 3) as u8);
        let line = ctx.encrypt_line(&pt, 0x40).expect("encrypt");
        assert_ne!(line.data(), pt);
        assert_eq!(ctx.decrypt_line(&line).expect("decrypt"), pt);
    }

    #[test]
    fn power_down_clears_key() {
        let mut s = specu();
        s.clear_key();
        assert!(!s.key_loaded());
        assert!(matches!(
            s.encrypt(CipherRequest::block([0; 16])),
            Err(SpeError::KeyNotLoaded)
        ));
        s.load_key(Key::from_seed(0xDAC));
        assert!(s.encrypt(CipherRequest::block([0; 16])).is_ok());
    }

    #[test]
    fn encryption_cycles_match_poe_count() {
        let s = specu();
        // Two rounds over 16 PoEs.
        assert_eq!(s.encryption_cycles(), 32);
    }

    #[test]
    fn statistical_preset_roundtrips() {
        // Odd round counts use the alternating-direction schedule; the
        // reverse replay must still be exact.
        let s = Specu::builder()
            .key(Key::from_seed(5))
            .config(SpecuConfig::statistical())
            .build()
            .expect("specu");
        let ctx = s.context().expect("context");
        for seed in 0..4u8 {
            let pt: [u8; 16] =
                core::array::from_fn(|i| seed.wrapping_mul(53).wrapping_add(i as u8 * 7));
            let ct = ctx.encrypt_block(&pt, seed as u64).expect("encrypt");
            assert_eq!(ctx.decrypt_block(&ct).expect("decrypt"), pt);
        }
    }

    #[test]
    fn config_presets_differ_as_documented() {
        let analog = SpecuConfig::paper_analog();
        assert_eq!(analog.variant, SpeVariant::Analog);
        assert_eq!(analog.rounds, 1);
        let stat = SpecuConfig::statistical();
        assert_eq!(stat.variant, SpeVariant::ClosedLoop);
        assert_eq!(stat.rounds, 3);
        assert_eq!(SpecuConfig::default().rounds, 2);
    }

    #[test]
    fn ciphertext_is_bound_to_the_hardware() {
        // §6.1 hardware avalanche / "decrypt only on the same NVMM": the
        // same key and plaintext on perturbed hardware give a different
        // ciphertext, and the foreign ciphertext does not decrypt here.
        use spe_memristor::Variation;
        let nominal = specu();
        let config = SpecuConfig {
            device: DeviceParams::default().with_variation(&Variation::uniform(0.08)),
            ..SpecuConfig::default()
        };
        let foreign = Specu::builder()
            .key(Key::from_seed(0xDAC))
            .config(config)
            .build()
            .expect("specu");
        let pt = *b"hardware boundpt";
        let nominal_ctx = nominal.context().expect("context");
        let c_nominal = nominal_ctx.encrypt_block(&pt, 0).expect("encrypt");
        let c_foreign = foreign
            .context()
            .expect("context")
            .encrypt_block(&pt, 0)
            .expect("encrypt");
        assert_ne!(
            c_nominal.data(),
            c_foreign.data(),
            "perturbed hardware must change the ciphertext"
        );
        // Moving the foreign ciphertext onto the nominal device fails.
        let migrated = nominal_ctx.decrypt_block(&c_foreign).expect("runs");
        assert_ne!(
            migrated, pt,
            "ciphertext must not decrypt on other hardware"
        );
    }

    #[test]
    fn roundtrip_random_blocks() {
        let s = specu();
        let ctx = s.context().expect("context");
        for case in 0..16u64 {
            let pt = splitmix_block(case.wrapping_mul(0x1234_5678).wrapping_add(1));
            let tweak = case * 67 % 1000;
            let ct = ctx.encrypt_block(&pt, tweak).expect("encrypt");
            assert_eq!(ctx.decrypt_block(&ct).expect("decrypt"), pt, "case {case}");
        }
    }

    #[test]
    fn encryption_is_injective() {
        // Two distinct plaintexts never collide in ciphertext (bijection).
        let s = specu();
        let ctx = s.context().expect("context");
        for case in 0..12u64 {
            let a = splitmix_block(case * 2 + 1);
            let b = splitmix_block(case * 2 + 2);
            if a == b {
                continue;
            }
            let ca = ctx.encrypt_block(&a, 0).expect("encrypt");
            let cb = ctx.encrypt_block(&b, 0).expect("encrypt");
            assert_ne!(ca.data(), cb.data(), "case {case}");
        }
    }

    #[test]
    fn cached_and_uncached_ciphertexts_are_byte_identical() {
        // The schedule cache memoizes a pure function of (key, tweak,
        // calibration): disabling it entirely must not change a single
        // ciphertext byte, and either side can decrypt the other's output.
        let cached = specu();
        let uncached = Specu::builder()
            .key(Key::from_seed(0xDAC))
            .config(SpecuConfig {
                schedule_cache_lines: 0,
                ..SpecuConfig::default()
            })
            .build()
            .expect("specu");
        let cached_ctx = cached.context().expect("context");
        let uncached_ctx = uncached.context().expect("context");
        assert!(!uncached_ctx.calibration().schedule_cache().is_enabled());
        for addr in 0..4u64 {
            let pt: [u8; 64] = core::array::from_fn(|i| (i as u8).wrapping_mul(addr as u8 + 3));
            let warm = cached_ctx.encrypt_line(&pt, addr).expect("encrypt");
            // Second pass is served from the cache; must be identical.
            let hot = cached_ctx.encrypt_line(&pt, addr).expect("encrypt");
            let cold = uncached_ctx.encrypt_line(&pt, addr).expect("encrypt");
            assert_eq!(warm, hot, "addr {addr}: cache hit changed ciphertext");
            assert_eq!(warm, cold, "addr {addr}: cached != uncached");
            assert_eq!(uncached_ctx.decrypt_line(&warm).expect("decrypt"), pt);
            assert_eq!(cached_ctx.decrypt_line(&cold).expect("decrypt"), pt);
        }
    }

    #[test]
    fn balanced_scheduling_never_changes_ciphertext() {
        // The policy only pads what the supply rail sees; the level
        // arithmetic is untouched, so ciphertexts are byte-identical and
        // either side decrypts the other's output.
        let s = specu();
        let plain_ctx = s.context().expect("context").clone();
        let balanced_ctx = plain_ctx
            .clone()
            .with_schedule_policy(SchedulePolicy::PowerBalanced);
        assert_eq!(
            balanced_ctx.schedule_policy(),
            SchedulePolicy::PowerBalanced
        );
        for addr in 0..3u64 {
            let pt: [u8; 64] = core::array::from_fn(|i| (i as u8).wrapping_mul(addr as u8 + 7));
            let open = plain_ctx.encrypt_line(&pt, addr).expect("encrypt");
            let closed = balanced_ctx.encrypt_line(&pt, addr).expect("encrypt");
            assert_eq!(open, closed, "addr {addr}: balancing changed ciphertext");
            assert_eq!(plain_ctx.decrypt_line(&closed).expect("decrypt"), pt);
            assert_eq!(balanced_ctx.decrypt_line(&open).expect("decrypt"), pt);
        }
    }

    #[test]
    fn power_trace_is_data_dependent_until_balanced() {
        use spe_telemetry::AtomicRecorder;
        let s = specu();
        let mut ctx = s.context().expect("context").clone();
        let recorder = Arc::new(AtomicRecorder::new());
        ctx.set_recorder(recorder.clone());

        let trains_per_block = ctx.config().poe_count * ctx.config().rounds;
        let trace_of = |ctx: &SpeContext, pt: &[u8; BLOCK_BYTES]| {
            recorder.reset();
            ctx.encrypt_block(pt, 0).expect("encrypt");
            recorder.power_trace().into_samples()
        };

        // Unbalanced: one sample per train, data-dependent energies.
        let a = trace_of(&ctx, &[0u8; BLOCK_BYTES]);
        let b = trace_of(&ctx, &[0xFFu8; BLOCK_BYTES]);
        assert_eq!(a.len(), trains_per_block);
        assert_eq!(b.len(), trains_per_block);
        assert_ne!(
            a.iter().map(|s| s.energy_fj).collect::<Vec<_>>(),
            b.iter().map(|s| s.energy_fj).collect::<Vec<_>>(),
            "different plaintexts must draw different power"
        );

        // Balanced: every slot draws exactly the uniform budget, which
        // rigorously dominates every real train energy, and the dummy
        // padding is accounted.
        let budget = ctx.calibration().power_budget_fj();
        for s in a.iter().chain(&b) {
            assert!(
                s.energy_fj <= budget,
                "budget {budget} must dominate real sample {}",
                s.energy_fj
            );
        }
        ctx.set_schedule_policy(SchedulePolicy::PowerBalanced);
        let flat = trace_of(&ctx, &[0u8; BLOCK_BYTES]);
        assert_eq!(flat.len(), trains_per_block);
        assert!(
            flat.iter().all(|s| s.energy_fj == budget),
            "balanced slots must all draw the budget"
        );
        assert_eq!(
            recorder.snapshot().counter(Counter::DummyPulses),
            trains_per_block as u64
        );
    }

    #[test]
    fn schedule_policy_survives_key_rotation_and_builder() {
        let built = Specu::builder()
            .key(Key::from_seed(0x90))
            .calibration(Arc::clone(specu().calibration()))
            .schedule_policy(SchedulePolicy::PowerBalanced)
            .build()
            .expect("specu");
        let mut s = built;
        assert_eq!(
            s.context().expect("context").schedule_policy(),
            SchedulePolicy::PowerBalanced
        );
        s.load_key(Key::from_seed(0x91));
        assert_eq!(
            s.context().expect("context").schedule_policy(),
            SchedulePolicy::PowerBalanced,
            "the policy is a hardware knob; it survives rekeying"
        );
        let rekeyed = s.context().expect("context").rekeyed(Key::from_seed(0x92));
        assert_eq!(rekeyed.schedule_policy(), SchedulePolicy::PowerBalanced);
    }

    #[test]
    fn schedule_cache_accounts_hits_and_misses() {
        use spe_telemetry::AtomicRecorder;
        let recorder = Arc::new(AtomicRecorder::new());
        let mut s = Specu::builder()
            .key(Key::from_seed(0x71))
            .build()
            .expect("specu");
        s.attach_recorder(recorder.clone());
        let ctx = s.context().expect("context");
        let pt: [u8; 64] = core::array::from_fn(|i| i as u8);
        ctx.encrypt_line(&pt, 0x10).expect("encrypt");
        let snap = recorder.snapshot();
        assert_eq!(snap.counter(Counter::ScheduleCacheMisses), 4);
        assert_eq!(snap.counter(Counter::ScheduleCacheHits), 0);
        assert_eq!(snap.counter(Counter::ScheduleDerivations), 4);
        // The same line again: all four block schedules come from the
        // cache, nothing is re-derived.
        ctx.encrypt_line(&pt, 0x10).expect("encrypt");
        let snap = recorder.snapshot();
        assert_eq!(snap.counter(Counter::ScheduleCacheMisses), 4);
        assert_eq!(snap.counter(Counter::ScheduleCacheHits), 4);
        assert_eq!(snap.counter(Counter::ScheduleDerivations), 4);
        // Decrypting the line also hits (same tweaks, same epoch).
        let line = ctx.encrypt_line(&pt, 0x10).expect("encrypt");
        ctx.decrypt_line(&line).expect("decrypt");
        let snap = recorder.snapshot();
        assert_eq!(snap.counter(Counter::ScheduleCacheHits), 12);
        assert_eq!(snap.counter(Counter::ScheduleDerivations), 4);
    }

    #[test]
    fn schedule_cache_evicts_at_capacity() {
        use spe_telemetry::AtomicRecorder;
        let recorder = Arc::new(AtomicRecorder::new());
        let mut s = Specu::builder()
            .key(Key::from_seed(0x72))
            .config(SpecuConfig {
                schedule_cache_lines: 8,
                ..SpecuConfig::default()
            })
            .build()
            .expect("specu");
        s.attach_recorder(recorder.clone());
        let ctx = s.context().expect("context");
        let pt: [u8; 64] = core::array::from_fn(|i| i as u8 ^ 0x3C);
        // Far more distinct block tweaks than the cache holds.
        for addr in 0..64u64 {
            ctx.encrypt_line(&pt, addr).expect("encrypt");
        }
        let snap = recorder.snapshot();
        assert!(
            snap.counter(Counter::ScheduleCacheEvictions) > 0,
            "a 8-block cache must evict under 256 distinct tweaks"
        );
        let cache = ctx.calibration().schedule_cache();
        assert!(cache.len() <= cache.capacity());
        // Correctness is unaffected by eviction churn.
        let line = ctx.encrypt_line(&pt, 7).expect("encrypt");
        assert_eq!(ctx.decrypt_line(&line).expect("decrypt"), pt);
    }

    #[test]
    fn key_rotation_never_reuses_stale_schedules() {
        use spe_telemetry::AtomicRecorder;
        let recorder = Arc::new(AtomicRecorder::new());
        let mut s = Specu::builder()
            .key(Key::from_seed(0x73))
            .build()
            .expect("specu");
        s.attach_recorder(recorder.clone());
        let pt: [u8; 64] = core::array::from_fn(|i| (i as u8).wrapping_mul(5));
        let old_line = s
            .context()
            .expect("context")
            .encrypt_line(&pt, 0x20)
            .expect("encrypt");
        let hits_before = recorder.snapshot().counter(Counter::ScheduleCacheHits);
        // Rotate the key: same tweaks, but a fresh epoch — the warm
        // entries must be unreachable.
        s.load_key(Key::from_seed(0x74));
        let ctx = s.context().expect("context");
        let new_line = ctx.encrypt_line(&pt, 0x20).expect("encrypt");
        let snap = recorder.snapshot();
        assert_eq!(
            snap.counter(Counter::ScheduleCacheHits),
            hits_before,
            "no cache hit may cross a key rotation"
        );
        assert_ne!(old_line, new_line, "new key, new ciphertext");
        // A block sealed under the new key decrypts correctly (fresh
        // derivation, not a stale schedule)...
        assert_eq!(ctx.decrypt_line(&new_line).expect("decrypt"), pt);
        // ...and the old ciphertext no longer decrypts to the plaintext.
        assert_ne!(ctx.decrypt_line(&old_line).expect("runs"), pt);
    }
}
