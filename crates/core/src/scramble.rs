//! Keyed address-space scrambling: the first stage of the secure memory
//! datapath (address scrambler → SPECU cipher → integrity check).
//!
//! The paper encrypts line *contents* but leaves the address map public:
//! an attacker who can observe the NVMM channel (or the physical wear
//! pattern) still learns which logical lines are hot, and an attacker
//! who can address the module directly can hammer a chosen physical
//! line. Both Secure Memory Unit exemplars pair the encryptor with an
//! address scrambler for exactly this reason: placement becomes a keyed
//! secret, so the *physical* access pattern decorrelates from the
//! logical one and a targeted-cell (Rowhammer/endurance) attacker can
//! no longer choose its victim.
//!
//! [`AddressScrambler`] is a 4-round Feistel permutation over line
//! addresses, keyed by the SPECU [`Key`] and the context's schedule
//! epoch. Keying by epoch makes rotation re-scramble placement for
//! free: a [`TenantRegistry::rotate`](crate::tenant::TenantRegistry)
//! draws a fresh epoch, so the tenant's lines land on a fresh
//! permutation without any extra key material.
//!
//! The [`Remapper`] trait is the composition surface: the scrambler,
//! the start-gap wear leveler in `spe-memsim`, and [`ComposedRemapper`]
//! (scramble *then* level) all implement it, so the memory system and
//! the attack simulators can treat any placement policy uniformly.

use crate::key::Key;
use spe_telemetry::{noop, Counter, Span, SpanTimer, TelemetryHandle};

/// A line-address placement policy: an injective map from logical line
/// indices `0..domain()` into physical line indices.
///
/// Implementors: [`AddressScrambler`] (keyed Feistel permutation),
/// [`IdentityRemapper`] (the public layout — the "scrambling off"
/// baseline), [`ComposedRemapper`] (stage composition), and
/// `spe-memsim`'s `StartGap` wear leveler (whose physical range is one
/// spare line larger than its domain).
pub trait Remapper {
    /// Number of logical line addresses the policy accepts.
    fn domain(&self) -> u64;

    /// The physical line for `logical`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `logical >= self.domain()`.
    fn remap(&self, logical: u64) -> u64;
}

/// The public (unscrambled) layout: physical = logical. The baseline
/// every attack experiment compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdentityRemapper {
    domain: u64,
}

impl IdentityRemapper {
    /// An identity map over `domain` lines.
    ///
    /// # Panics
    ///
    /// Panics if `domain == 0`.
    pub fn new(domain: u64) -> Self {
        assert!(domain > 0, "empty address space");
        IdentityRemapper { domain }
    }
}

impl Remapper for IdentityRemapper {
    fn domain(&self) -> u64 {
        self.domain
    }

    fn remap(&self, logical: u64) -> u64 {
        assert!(logical < self.domain, "logical line out of range");
        logical
    }
}

/// splitmix64 finalizer — the same mixing primitive the recovery
/// ladder's `phys_cell` uses, so the scrambler adds no new PRNG family.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Feistel rounds. Four rounds of an unbalanced-safe construction give
/// full diffusion over the halves; the permutation does not need to be
/// cryptographically strong on its own (contents are SPE-encrypted),
/// it needs to be keyed, bijective and cheap.
const ROUNDS: usize = 4;

/// A keyed, epoch-aware permutation over line addresses `0..domain`.
///
/// Construction: split the address into two halves of `bits/2` bits
/// (`bits` = domain width rounded up to an even number of bits) and run
/// a [`ROUNDS`]-round Feistel network whose round function is
/// [`mix`]`(half ^ round_key)`. For non-power-of-four domains the
/// output may overflow the domain; cycle-walking (re-applying the
/// permutation until the value lands inside) keeps the map a bijection
/// on `0..domain` — the classic format-preserving trick, with expected
/// < 4 walks for any domain.
///
/// ```
/// use spe_core::{AddressScrambler, Key, Remapper};
/// let s = AddressScrambler::new(&Key::from_seed(7), 1, 1024);
/// let phys = s.remap(42);
/// assert!(phys < 1024);
/// assert_eq!(s.descramble(phys), 42, "the permutation inverts");
/// ```
#[derive(Debug, Clone)]
pub struct AddressScrambler {
    domain: u64,
    half_bits: u32,
    round_keys: [u64; ROUNDS],
    epoch: u64,
    recorder: TelemetryHandle,
}

impl AddressScrambler {
    /// A scrambler over `domain` line addresses, keyed by `key` and
    /// `epoch`. A context rotation (fresh epoch, same or new key) yields
    /// a statistically independent permutation.
    ///
    /// # Panics
    ///
    /// Panics if `domain == 0` (no address space). A one-line domain is
    /// degenerate but legal: the only permutation of one element is the
    /// identity, and cycle-walking terminates because the Feistel pass is
    /// itself a permutation (its orbit through values ≥ `domain` must
    /// return to the start, which is in-domain).
    pub fn new(key: &Key, epoch: u64, domain: u64) -> Self {
        assert!(domain >= 1, "scrambling needs a non-empty address space");
        // Even bit width covering the domain, at least 2 (1 bit/half).
        let bits = (64 - domain.saturating_sub(1).leading_zeros()).max(2);
        let bits = bits + (bits & 1);
        let half_bits = bits / 2;
        // Round keys fold the full 128-bit key register with the epoch;
        // each round gets an independently mixed word.
        let lo = key.value() as u64;
        let hi = (key.value() >> 64) as u64;
        let mut round_keys = [0u64; ROUNDS];
        for (r, slot) in round_keys.iter_mut().enumerate() {
            *slot = mix(lo ^ mix(hi ^ mix(epoch ^ (r as u64).wrapping_mul(0xA5A5_A5A5_A5A5_A5A5))));
        }
        AddressScrambler {
            domain,
            half_bits,
            round_keys,
            epoch,
            recorder: noop(),
        }
    }

    /// Attaches a telemetry recorder: every remap counts under
    /// `scramble_remaps` and times into the `scramble_latency` span.
    pub fn set_recorder(&mut self, recorder: TelemetryHandle) {
        self.recorder = recorder;
    }

    /// The epoch the permutation is keyed under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn half_mask(&self) -> u64 {
        (1u64 << self.half_bits) - 1
    }

    /// One forward pass of the Feistel network (may leave the domain).
    fn feistel(&self, a: u64) -> u64 {
        let mask = self.half_mask();
        let mut left = (a >> self.half_bits) & mask;
        let mut right = a & mask;
        for k in self.round_keys {
            let f = mix(right ^ k) & mask;
            let new_right = left ^ f;
            left = right;
            right = new_right;
        }
        (left << self.half_bits) | right
    }

    /// One inverse pass of the Feistel network.
    fn feistel_inverse(&self, a: u64) -> u64 {
        let mask = self.half_mask();
        let mut left = (a >> self.half_bits) & mask;
        let mut right = a & mask;
        for k in self.round_keys.iter().rev() {
            let f = mix(left ^ k) & mask;
            let new_left = right ^ f;
            right = left;
            left = new_left;
        }
        (left << self.half_bits) | right
    }

    /// The physical line for `logical` (cycle-walked into the domain).
    ///
    /// # Panics
    ///
    /// Panics if `logical >= domain`.
    pub fn scramble(&self, logical: u64) -> u64 {
        assert!(logical < self.domain, "logical line out of range");
        let _span = SpanTimer::start(self.recorder.as_ref(), Span::ScrambleLatency);
        let mut a = self.feistel(logical);
        while a >= self.domain {
            a = self.feistel(a);
        }
        self.recorder.add(Counter::ScrambleRemaps, 1);
        a
    }

    /// The logical line stored at physical line `physical` — the exact
    /// inverse of [`scramble`](AddressScrambler::scramble).
    ///
    /// # Panics
    ///
    /// Panics if `physical >= domain`.
    pub fn descramble(&self, physical: u64) -> u64 {
        assert!(physical < self.domain, "physical line out of range");
        let mut a = self.feistel_inverse(physical);
        while a >= self.domain {
            a = self.feistel_inverse(a);
        }
        a
    }
}

impl Remapper for AddressScrambler {
    fn domain(&self) -> u64 {
        self.domain
    }

    fn remap(&self, logical: u64) -> u64 {
        self.scramble(logical)
    }
}

/// Two placement stages applied in sequence: `first`, then `second`.
///
/// The canonical composition is scrambler → start-gap: the keyed
/// permutation hides *which* physical line a logical line occupies, and
/// the wear leveler keeps rotating everything underneath so repeated
/// writes spread regardless. The second stage's domain must cover the
/// first stage's outputs (which [`AddressScrambler`] confines to its
/// own domain).
#[derive(Debug, Clone)]
pub struct ComposedRemapper<A, B> {
    first: A,
    second: B,
}

impl<A: Remapper, B: Remapper> ComposedRemapper<A, B> {
    /// Composes `first` then `second`.
    ///
    /// # Panics
    ///
    /// Panics if `second` cannot accept every output of `first`
    /// (`second.domain() < first.domain()`).
    pub fn new(first: A, second: B) -> Self {
        assert!(
            second.domain() >= first.domain(),
            "second stage domain must cover the first stage's range"
        );
        ComposedRemapper { first, second }
    }

    /// The first stage.
    pub fn first(&self) -> &A {
        &self.first
    }

    /// The second stage.
    pub fn second(&self) -> &B {
        &self.second
    }

    /// The second stage, mutably (start-gap needs `on_write` calls to
    /// advance its gap).
    pub fn second_mut(&mut self) -> &mut B {
        &mut self.second
    }
}

impl<A: Remapper, B: Remapper> Remapper for ComposedRemapper<A, B> {
    fn domain(&self) -> u64 {
        self.first.domain()
    }

    fn remap(&self, logical: u64) -> u64 {
        self.second.remap(self.first.remap(logical))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_telemetry::AtomicRecorder;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn scramble_is_a_bijection_on_awkward_domains() {
        // Powers of four, odd sizes, primes — cycle-walking must keep
        // every domain a permutation.
        for domain in [2u64, 3, 16, 17, 64, 100, 257, 1024, 1000] {
            let s = AddressScrambler::new(&Key::from_seed(0x5C12), 9, domain);
            let image: HashSet<u64> = (0..domain).map(|a| s.scramble(a)).collect();
            assert_eq!(image.len() as u64, domain, "not injective at {domain}");
            assert!(image.iter().all(|&p| p < domain), "escaped {domain}");
        }
    }

    #[test]
    fn degenerate_one_line_domain_is_the_identity_and_terminates() {
        // The only permutation of one element: every key and epoch must
        // map line 0 to line 0, and the cycle walk must not spin forever.
        for seed in [0u64, 1, 0xDEAD, u64::MAX] {
            for epoch in [0u64, 7] {
                let s = AddressScrambler::new(&Key::from_seed(seed), epoch, 1);
                assert_eq!(s.domain(), 1);
                assert_eq!(s.scramble(0), 0);
                assert_eq!(s.descramble(0), 0);
            }
        }
    }

    #[test]
    fn small_non_power_of_two_domains_stay_bijective() {
        // Tiny awkward domains stress the cycle walk hardest: most of the
        // 2^bits Feistel space lies outside the domain.
        for domain in [2u64, 3, 5, 6, 7, 9, 11, 13, 15] {
            for seed in [0x51u64, 0x52, 0x53] {
                let s = AddressScrambler::new(&Key::from_seed(seed), 2, domain);
                let image: HashSet<u64> = (0..domain).map(|a| s.scramble(a)).collect();
                assert_eq!(
                    image.len() as u64,
                    domain,
                    "seed {seed:#x} domain {domain} not injective"
                );
                assert!(image.iter().all(|&p| p < domain));
                for a in 0..domain {
                    assert_eq!(s.descramble(s.scramble(a)), a);
                }
            }
        }
    }

    #[test]
    fn descramble_inverts_scramble() {
        let s = AddressScrambler::new(&Key::from_seed(0xFE15), 3, 500);
        for a in 0..500 {
            assert_eq!(s.descramble(s.scramble(a)), a);
        }
    }

    #[test]
    fn key_and_epoch_both_re_key_the_permutation() {
        let domain = 4096u64;
        let base = AddressScrambler::new(&Key::from_seed(1), 1, domain);
        let other_key = AddressScrambler::new(&Key::from_seed(2), 1, domain);
        let other_epoch = AddressScrambler::new(&Key::from_seed(1), 2, domain);
        let differs = |s: &AddressScrambler| {
            (0..domain)
                .filter(|&a| s.scramble(a) != base.scramble(a))
                .count()
        };
        // Independent permutations agree on ~1 point of n; demand that
        // almost everything moved.
        assert!(differs(&other_key) > (domain as usize * 9) / 10);
        assert!(differs(&other_epoch) > (domain as usize * 9) / 10);
    }

    #[test]
    fn same_inputs_same_permutation() {
        let a = AddressScrambler::new(&Key::from_seed(77), 4, 300);
        let b = AddressScrambler::new(&Key::from_seed(77), 4, 300);
        assert!((0..300).all(|x| a.scramble(x) == b.scramble(x)));
    }

    #[test]
    fn scrambled_placement_is_not_the_public_layout() {
        let domain = 1024u64;
        let s = AddressScrambler::new(&Key::from_seed(0xD0C), 1, domain);
        let fixed = (0..domain).filter(|&a| s.scramble(a) == a).count();
        // A random permutation fixes ~1 point; allow generous slack.
        assert!(fixed < 16, "{fixed} fixed points looks like identity");
    }

    #[test]
    fn identity_remapper_is_the_baseline() {
        let id = IdentityRemapper::new(64);
        assert_eq!(id.domain(), 64);
        assert!((0..64).all(|a| id.remap(a) == a));
    }

    #[test]
    fn composition_chains_stages() {
        let s = AddressScrambler::new(&Key::from_seed(3), 1, 64);
        let expected: Vec<u64> = (0..64).map(|a| s.scramble(a)).collect();
        let composed = ComposedRemapper::new(s, IdentityRemapper::new(64));
        for (a, want) in expected.iter().enumerate() {
            assert_eq!(composed.remap(a as u64), *want);
        }
        assert_eq!(composed.domain(), 64);
    }

    #[test]
    fn telemetry_counts_remaps() {
        let recorder = Arc::new(AtomicRecorder::new());
        let mut s = AddressScrambler::new(&Key::from_seed(9), 1, 128);
        s.set_recorder(recorder.clone());
        for a in 0..10 {
            s.scramble(a);
        }
        assert_eq!(recorder.counter(Counter::ScrambleRemaps), 10);
    }
}
