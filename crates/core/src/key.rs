//! The 88-bit SPE secret key.

use std::fmt;

/// Number of key bits (§5.4: 44-bit PoE-sequence seed + 44-bit voltage
/// seed for an 8×8 crossbar).
pub const KEY_BITS: usize = 88;

/// The SPE secret key.
///
/// The key is held in volatile SPECU storage and provisioned by the TPM at
/// power-on; it never persists in the NVMM.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key {
    /// The 88-bit value, in the low bits of a `u128`.
    value: u128,
}

impl Key {
    /// Mask of the valid 88 bits.
    const MASK: u128 = (1u128 << KEY_BITS) - 1;

    /// Builds a key from its raw 88-bit value (upper bits discarded).
    pub fn from_value(value: u128) -> Self {
        Key {
            value: value & Self::MASK,
        }
    }

    /// Expands a small seed into a full-width key (SplitMix64 over two
    /// words) — convenient for tests and examples.
    ///
    /// # Example
    ///
    /// ```
    /// let k = spe_core::Key::from_seed(42);
    /// assert_ne!(k, spe_core::Key::from_seed(43));
    /// ```
    pub fn from_seed(seed: u64) -> Self {
        fn mix(mut z: u64) -> u64 {
            z = z.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        let lo = mix(seed);
        let hi = mix(seed ^ 0xA5A5_5A5A_1234_8765);
        Key::from_value(((hi as u128) << 64) | lo as u128)
    }

    /// The all-zero key (used by the plaintext-avalanche dataset).
    pub fn zero() -> Self {
        Key { value: 0 }
    }

    /// The all-ones key (high-density key dataset).
    pub fn ones() -> Self {
        Key { value: Self::MASK }
    }

    /// The raw 88-bit value.
    pub fn value(&self) -> u128 {
        self.value
    }

    /// The 44-bit address (PoE-sequence) seed — the low half.
    pub fn address_seed(&self) -> u64 {
        (self.value & ((1 << 44) - 1)) as u64
    }

    /// The 44-bit voltage seed — the high half.
    pub fn voltage_seed(&self) -> u64 {
        ((self.value >> 44) & ((1 << 44) - 1)) as u64
    }

    /// Returns the key with bit `i` flipped (key-avalanche dataset).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 88`.
    pub fn flip_bit(&self, i: usize) -> Key {
        assert!(i < KEY_BITS, "key bit {i} out of range");
        Key {
            value: self.value ^ (1u128 << i),
        }
    }

    /// The number of set bits.
    pub fn weight(&self) -> u32 {
        self.value.count_ones()
    }

    /// Every key of Hamming weight one (88 keys — low-density dataset).
    pub fn weight_one_keys() -> impl Iterator<Item = Key> {
        (0..KEY_BITS).map(|i| Key::zero().flip_bit(i))
    }

    /// Every key of Hamming weight two (88·87/2 keys).
    pub fn weight_two_keys() -> impl Iterator<Item = Key> {
        (0..KEY_BITS)
            .flat_map(|i| ((i + 1)..KEY_BITS).map(move |j| Key::zero().flip_bit(i).flip_bit(j)))
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Keys are secrets: show only a short fingerprint in debug output.
        write!(
            f,
            "Key(fp={:04x})",
            (self.value ^ (self.value >> 41)) as u16
        )
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:022x}", self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_to_88_bits() {
        let k = Key::from_value(u128::MAX);
        assert_eq!(k.value() >> KEY_BITS, 0);
        assert_eq!(k, Key::ones());
        assert_eq!(k.weight(), 88);
    }

    #[test]
    fn seed_halves_partition_the_key() {
        let k = Key::from_value((0xABC_DEF0_1234 << 44) | 0x555_AAAA_0F0F);
        assert_eq!(k.address_seed(), 0x555_AAAA_0F0F);
        assert_eq!(k.voltage_seed(), 0xABC_DEF0_1234);
    }

    #[test]
    fn flip_bit_is_involutive() {
        let k = Key::from_seed(9);
        for i in [0, 43, 44, 87] {
            assert_eq!(k.flip_bit(i).flip_bit(i), k);
            assert_ne!(k.flip_bit(i), k);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_bit_bounds() {
        let _ = Key::zero().flip_bit(88);
    }

    #[test]
    fn density_key_family_sizes() {
        assert_eq!(Key::weight_one_keys().count(), 88);
        assert_eq!(Key::weight_two_keys().count(), 88 * 87 / 2);
        assert!(Key::weight_one_keys().all(|k| k.weight() == 1));
        assert!(Key::weight_two_keys().all(|k| k.weight() == 2));
    }

    #[test]
    fn debug_does_not_leak_value() {
        let k = Key::from_seed(1234);
        let dbg = format!("{k:?}");
        let shown = format!("{k}");
        assert!(!dbg.contains(&shown));
    }
}
