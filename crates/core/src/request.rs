//! The unified cipher-request API.
//!
//! The SPECU grew a 3×3 method matrix (block/line × plain/resilient/
//! checked) across [`SpeContext`], [`Specu`] and [`ParallelSpecu`]. This
//! module collapses it into one request type and one two-method trait:
//!
//! * [`CipherRequest`] — *what* to process (a plaintext block/line or a
//!   sealed one), under *which* tweak, with *how much* resilience
//!   (optional write-verify [`FaultPolicy`]) and verification (integrity
//!   [`Verify::Tag`]).
//! * [`SpeCipher`] — `encrypt(request)` / `decrypt(request)`, implemented
//!   by every datapath. Call sites pick the backend (serial context,
//!   stateful facade, multi-bank parallel) without changing the request.
//!
//! The request path routes through the same crate-private cipher
//! implementations every backend shares, so all surfaces stay
//! bit-identical.
//!
//! ```
//! use spe_core::{CipherRequest, Key, SpeCipher, Specu};
//!
//! # fn main() -> Result<(), spe_core::SpeError> {
//! let specu = Specu::builder().key(Key::from_seed(7)).build()?;
//! let plaintext = *b"attack at dawn!!";
//! let sealed = specu
//!     .encrypt(CipherRequest::block(plaintext).with_tweak(0x40))?
//!     .into_block()?;
//! let recovered = specu
//!     .decrypt(CipherRequest::sealed_block(sealed))?
//!     .into_plain_block()?;
//! assert_eq!(recovered, plaintext);
//! # Ok(())
//! # }
//! ```

use crate::error::SpeError;
use crate::key::Key;
use crate::parallel::ParallelSpecu;
use crate::recovery::{FaultCounters, FaultPolicy};
use crate::specu::{CipherBlock, CipherLine, SpeContext, Specu, BLOCK_BYTES, LINE_BYTES};
use crate::sync::{lock_unpoisoned, wait_timeout_unpoisoned, wait_unpoisoned};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How much verification a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Verify {
    /// No integrity checking (the plain datapath).
    #[default]
    None,
    /// Seal with / check against the keyed integrity tag. On encrypt this
    /// routes through the resilient write-verify path (tags are only
    /// attached there); on decrypt a missing or mismatching tag is
    /// [`SpeError::IntegrityViolation`].
    Tag,
}

/// The data a [`CipherRequest`] operates on.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A 16-byte plaintext block (encrypt requests).
    Block([u8; BLOCK_BYTES]),
    /// A 64-byte plaintext cache line (encrypt requests).
    Line([u8; LINE_BYTES]),
    /// An encrypted block (decrypt requests).
    SealedBlock(CipherBlock),
    /// An encrypted cache line (decrypt requests).
    SealedLine(CipherLine),
}

/// One request against an SPE datapath: payload + tweak + policies.
///
/// Build with the payload constructors ([`CipherRequest::block`],
/// [`CipherRequest::line`], [`CipherRequest::sealed_block`],
/// [`CipherRequest::sealed_line`]) and refine with the builder methods.
#[derive(Debug, Clone, PartialEq)]
pub struct CipherRequest {
    /// The data to process.
    pub payload: Payload,
    /// The schedule tweak: the block address for block payloads, the line
    /// address for line payloads. Ignored on decrypt (sealed payloads
    /// carry their own tweaks).
    pub tweak: u64,
    /// Write-verify/retry/remap policy; `Some` routes encryption through
    /// the resilient path and seals blocks with integrity tags.
    pub resilience: Option<FaultPolicy>,
    /// Integrity verification mode.
    pub verify: Verify,
    /// Key override: `Some` runs the request under a cheap
    /// [`SpeContext::rekeyed`] context sharing the datapath's calibration
    /// (the Table 2 avalanche/density datasets rotate keys per block).
    pub key: Option<Key>,
    /// Completion deadline: a bank worker that dequeues the request after
    /// this instant drops it (load-shedding) and fails its ticket with
    /// [`SpeError::DeadlineExceeded`] instead of doing stale work. `None`
    /// never expires.
    pub deadline: Option<Instant>,
    /// Tenant routing: `Some` asks a registry-backed datapath
    /// ([`crate::scheduler::BankScheduler`] /
    /// [`ParallelSpecu::with_registry`]) to resolve the tenant's current
    /// context from its [`crate::tenant::TenantRegistry`] and execute
    /// under it (typed [`SpeError::UnknownTenant`] when no context is
    /// live). A bare [`SpeContext`] ignores this field — tenant
    /// resolution is a scheduling-layer concern, and the context a
    /// request ultimately lands on *is* the resolution's result.
    pub tenant: Option<crate::tenant::TenantId>,
}

impl CipherRequest {
    fn new(payload: Payload) -> Self {
        CipherRequest {
            payload,
            tweak: 0,
            resilience: None,
            verify: Verify::None,
            key: None,
            deadline: None,
            tenant: None,
        }
    }

    /// An encrypt request for a 16-byte block (tweak 0).
    pub fn block(plaintext: [u8; BLOCK_BYTES]) -> Self {
        CipherRequest::new(Payload::Block(plaintext))
    }

    /// An encrypt request for a 64-byte cache line at `address`.
    pub fn line(plaintext: [u8; LINE_BYTES], address: u64) -> Self {
        CipherRequest::new(Payload::Line(plaintext)).with_tweak(address)
    }

    /// A decrypt request for a sealed block.
    pub fn sealed_block(block: CipherBlock) -> Self {
        CipherRequest::new(Payload::SealedBlock(block))
    }

    /// A decrypt request for a sealed line.
    pub fn sealed_line(line: CipherLine) -> Self {
        CipherRequest::new(Payload::SealedLine(line))
    }

    /// Sets the schedule tweak (block address / line address).
    #[must_use]
    pub fn with_tweak(mut self, tweak: u64) -> Self {
        self.tweak = tweak;
        self
    }

    /// Routes encryption through the write-verify/retry/remap path under
    /// `policy` (and seals blocks with integrity tags).
    #[must_use]
    pub fn resilient(mut self, policy: FaultPolicy) -> Self {
        self.resilience = Some(policy);
        self
    }

    /// Requests integrity verification: tags on encrypt, tag checking on
    /// decrypt.
    #[must_use]
    pub fn verified(mut self) -> Self {
        self.verify = Verify::Tag;
        self
    }

    /// Runs the request under `key` instead of the datapath's loaded key
    /// (a cheap context rekey; the calibration is shared).
    #[must_use]
    pub fn with_key(mut self, key: Key) -> Self {
        self.key = Some(key);
        self
    }

    /// Drops the request (typed [`SpeError::DeadlineExceeded`]) if no bank
    /// worker has started it by `deadline`.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline `budget` from now
    /// ([`with_deadline`](CipherRequest::with_deadline) with a relative
    /// duration).
    #[must_use]
    pub fn with_timeout(self, budget: Duration) -> Self {
        self.with_deadline(Instant::now() + budget)
    }

    /// Tags the request with a tenant: registry-backed datapaths resolve
    /// the tenant's current context (and therefore its current key and
    /// cache epoch) at execution time, so a request submitted just before
    /// a [`crate::tenant::TenantRegistry::rotate`] lands on whichever
    /// context is live when a bank worker picks it up.
    #[must_use]
    pub fn with_tenant(mut self, tenant: crate::tenant::TenantId) -> Self {
        self.tenant = Some(tenant);
        self
    }

    /// Checks the request for internally conflicting fields.
    ///
    /// [`with_tenant`](CipherRequest::with_tenant) and
    /// [`with_key`](CipherRequest::with_key) both choose the key the
    /// request runs under — a tenant tag resolves to that tenant's
    /// *current* key, an explicit key overrides the datapath's. Carrying
    /// both is ambiguous, and silently letting one win would run traffic
    /// under a key the caller did not intend, so every datapath rejects
    /// the combination up front.
    ///
    /// # Errors
    ///
    /// [`SpeError::BadRequest`] when both a tenant tag and a key override
    /// are set, regardless of the order the builders were called in.
    pub fn validate(&self) -> Result<(), SpeError> {
        if self.tenant.is_some() && self.key.is_some() {
            return Err(SpeError::BadRequest(
                "with_tenant conflicts with with_key: a tenant tag already selects the key",
            ));
        }
        Ok(())
    }

    /// Whether the request's deadline has passed at `now`.
    pub fn expired_at(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now > d)
    }

    /// Whether encryption must take the resilient (write-verify) path:
    /// either an explicit policy was attached, or integrity tags were
    /// requested (only the resilient path seals them).
    fn wants_resilient(&self) -> bool {
        self.resilience.is_some() || self.verify == Verify::Tag
    }

    /// The effective fault policy of a resilient encrypt.
    fn policy(&self) -> FaultPolicy {
        self.resilience.unwrap_or_else(FaultPolicy::none)
    }
}

/// The data produced by a [`CipherRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum CipherOutput {
    /// An encrypted block.
    Block(CipherBlock),
    /// An encrypted line.
    Line(CipherLine),
    /// A decrypted 16-byte block.
    PlainBlock([u8; BLOCK_BYTES]),
    /// A decrypted 64-byte line.
    PlainLine([u8; LINE_BYTES]),
}

/// The result of a [`CipherRequest`]: the output payload plus the fault
/// counters the resilient path accumulated (zero on the plain path).
#[derive(Debug, Clone, PartialEq)]
pub struct CipherResponse {
    /// The produced payload.
    pub output: CipherOutput,
    /// Fault-recovery counters (all zero unless the request was
    /// resilient).
    pub faults: FaultCounters,
}

impl CipherResponse {
    fn plain(output: CipherOutput) -> Self {
        CipherResponse {
            output,
            faults: FaultCounters::default(),
        }
    }

    /// The fault-recovery counters.
    pub fn faults(&self) -> &FaultCounters {
        &self.faults
    }

    /// Unwraps an encrypted block.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::BadRequest`] if the response holds a different
    /// payload kind.
    pub fn into_block(self) -> Result<CipherBlock, SpeError> {
        match self.output {
            CipherOutput::Block(b) => Ok(b),
            _ => Err(SpeError::BadRequest("response is not a sealed block")),
        }
    }

    /// Unwraps an encrypted line.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::BadRequest`] if the response holds a different
    /// payload kind.
    pub fn into_line(self) -> Result<CipherLine, SpeError> {
        match self.output {
            CipherOutput::Line(l) => Ok(l),
            _ => Err(SpeError::BadRequest("response is not a sealed line")),
        }
    }

    /// Unwraps a decrypted block.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::BadRequest`] if the response holds a different
    /// payload kind.
    pub fn into_plain_block(self) -> Result<[u8; BLOCK_BYTES], SpeError> {
        match self.output {
            CipherOutput::PlainBlock(b) => Ok(b),
            _ => Err(SpeError::BadRequest("response is not a plaintext block")),
        }
    }

    /// Unwraps a decrypted line.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::BadRequest`] if the response holds a different
    /// payload kind.
    pub fn into_plain_line(self) -> Result<[u8; LINE_BYTES], SpeError> {
        match self.output {
            CipherOutput::PlainLine(l) => Ok(l),
            _ => Err(SpeError::BadRequest("response is not a plaintext line")),
        }
    }
}

/// Completion state shared between a submitted request and the bank worker
/// servicing it: a one-shot result slot plus the condvar waiters park on.
///
/// `complete` is first-write-wins, so the scheduler's drop-safety net (a
/// job dropped mid-unwind fails its ticket with
/// [`SpeError::BankPoisoned`]) can never clobber a real result.
#[derive(Debug, Default)]
pub(crate) struct TicketCell {
    slot: Mutex<Option<Result<CipherResponse, SpeError>>>,
    done: Condvar,
}

impl TicketCell {
    /// Publishes the request's result and wakes every waiter, returning
    /// whether this call was the winning (first) write. A no-op returning
    /// `false` if a result was already published.
    ///
    /// The slot holds a plain `Option` that is either fully written or
    /// not, so recovering a poisoned guard ([`lock_unpoisoned`]) can never
    /// expose a half-updated result.
    pub(crate) fn complete(&self, result: Result<CipherResponse, SpeError>) -> bool {
        let mut slot = lock_unpoisoned(&self.slot);
        if slot.is_none() {
            *slot = Some(result);
            self.done.notify_all();
            true
        } else {
            false
        }
    }
}

/// A completion handle for a [`CipherRequest`] submitted to the bank
/// scheduler: requests complete out of order across banks, and the ticket
/// matches each response back to its submission.
///
/// Obtained from [`crate::scheduler::BankScheduler::submit`] /
/// [`crate::scheduler::BankScheduler::try_submit`]. Dropping a ticket is
/// fine — the in-flight request still completes, its result is discarded.
#[derive(Debug)]
pub struct CipherTicket {
    cell: Arc<TicketCell>,
}

impl CipherTicket {
    /// Wraps a completion cell (scheduler-internal).
    pub(crate) fn new(cell: Arc<TicketCell>) -> Self {
        CipherTicket { cell }
    }

    /// Whether the request has completed (non-blocking poll).
    pub fn is_done(&self) -> bool {
        lock_unpoisoned(&self.cell.slot).is_some()
    }

    /// Blocks until the bank worker completes the request and returns its
    /// result.
    ///
    /// Never deadlocks: a worker panic fails the ticket with
    /// [`SpeError::BankPoisoned`], quarantine fails still-queued jobs with
    /// [`SpeError::JobNeverRan`], and scheduler shutdown drains every
    /// accepted request before the workers exit.
    ///
    /// # Errors
    ///
    /// Whatever the datapath returned, [`SpeError::BankPoisoned`] if the
    /// servicing worker panicked, [`SpeError::DeadlineExceeded`] if the
    /// request expired before it ran.
    pub fn wait(self) -> Result<CipherResponse, SpeError> {
        let mut slot = lock_unpoisoned(&self.cell.slot);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = wait_unpoisoned(&self.cell.done, slot);
        }
    }

    /// Waits at most `timeout` for the request to complete.
    ///
    /// Returns `Ok(result)` once the bank resolves the request, or hands
    /// the ticket back as `Err(self)` if it is still pending when the
    /// timeout elapses — the caller can keep waiting, poll
    /// [`is_done`](CipherTicket::is_done), or drop the ticket (the
    /// in-flight request still completes; its result is discarded).
    ///
    /// # Errors
    ///
    /// `Err(ticket)` only signals a timeout; datapath errors arrive inside
    /// the `Ok` variant, exactly as [`wait`](CipherTicket::wait) returns
    /// them.
    #[allow(clippy::result_large_err)] // Err is the ticket handed back by design
    pub fn wait_timeout(self, timeout: Duration) -> Result<Result<CipherResponse, SpeError>, Self> {
        let deadline = Instant::now() + timeout;
        let mut slot = lock_unpoisoned(&self.cell.slot);
        loop {
            if let Some(result) = slot.take() {
                return Ok(result);
            }
            let now = Instant::now();
            if now >= deadline {
                drop(slot);
                return Err(self);
            }
            let (reacquired, _timed_out) =
                wait_timeout_unpoisoned(&self.cell.done, slot, deadline - now);
            slot = reacquired;
        }
    }
}

/// The unified SPE datapath interface: every backend (serial context,
/// stateful SPECU facade, multi-bank parallel datapath) processes the same
/// [`CipherRequest`]s. Object-safe, so harnesses like the memsim fault
/// campaign drive any backend through `&dyn SpeCipher`.
pub trait SpeCipher {
    /// Encrypts a plaintext payload.
    ///
    /// # Errors
    ///
    /// [`SpeError::BadRequest`] for sealed payloads, plus any datapath
    /// error ([`SpeError::FaultExhausted`], [`SpeError::KeyNotLoaded`], …).
    fn encrypt(&self, request: CipherRequest) -> Result<CipherResponse, SpeError>;

    /// Decrypts a sealed payload.
    ///
    /// # Errors
    ///
    /// [`SpeError::BadRequest`] for plaintext payloads,
    /// [`SpeError::IntegrityViolation`] on tag mismatch under
    /// [`Verify::Tag`], plus any datapath error.
    fn decrypt(&self, request: CipherRequest) -> Result<CipherResponse, SpeError>;
}

impl SpeCipher for SpeContext {
    fn encrypt(&self, request: CipherRequest) -> Result<CipherResponse, SpeError> {
        request.validate()?;
        if let Some(key) = request.key {
            let request = CipherRequest {
                key: None,
                ..request
            };
            return self.rekeyed(key).encrypt(request);
        }
        match &request.payload {
            Payload::Block(pt) => {
                if request.wants_resilient() {
                    let (block, faults) =
                        self.encrypt_block_resilient(pt, request.tweak, &request.policy())?;
                    Ok(CipherResponse {
                        output: CipherOutput::Block(block),
                        faults,
                    })
                } else {
                    let block = self.encrypt_block(pt, request.tweak)?;
                    Ok(CipherResponse::plain(CipherOutput::Block(block)))
                }
            }
            Payload::Line(pt) => {
                if request.wants_resilient() {
                    let (line, faults) =
                        self.encrypt_line_resilient(pt, request.tweak, &request.policy())?;
                    Ok(CipherResponse {
                        output: CipherOutput::Line(line),
                        faults,
                    })
                } else {
                    let line = self.encrypt_line(pt, request.tweak)?;
                    Ok(CipherResponse::plain(CipherOutput::Line(line)))
                }
            }
            Payload::SealedBlock(_) | Payload::SealedLine(_) => {
                Err(SpeError::BadRequest("encrypt requires a plaintext payload"))
            }
        }
    }

    fn decrypt(&self, request: CipherRequest) -> Result<CipherResponse, SpeError> {
        request.validate()?;
        if let Some(key) = request.key {
            let request = CipherRequest {
                key: None,
                ..request
            };
            return self.rekeyed(key).decrypt(request);
        }
        match &request.payload {
            Payload::SealedBlock(block) => {
                let pt = match request.verify {
                    Verify::Tag => self.decrypt_block_checked(block)?,
                    Verify::None => self.decrypt_block(block)?,
                };
                Ok(CipherResponse::plain(CipherOutput::PlainBlock(pt)))
            }
            Payload::SealedLine(line) => {
                let pt = match request.verify {
                    Verify::Tag => self.decrypt_line_checked(line)?,
                    Verify::None => self.decrypt_line(line)?,
                };
                Ok(CipherResponse::plain(CipherOutput::PlainLine(pt)))
            }
            Payload::Block(_) | Payload::Line(_) => {
                Err(SpeError::BadRequest("decrypt requires a sealed payload"))
            }
        }
    }
}

impl SpeCipher for Specu {
    fn encrypt(&self, request: CipherRequest) -> Result<CipherResponse, SpeError> {
        self.context()?.encrypt(request)
    }

    fn decrypt(&self, request: CipherRequest) -> Result<CipherResponse, SpeError> {
        self.context()?.decrypt(request)
    }
}

impl SpeCipher for ParallelSpecu {
    fn encrypt(&self, request: CipherRequest) -> Result<CipherResponse, SpeError> {
        // Tenant-tagged requests go through the scheduler whole so the
        // executing bank resolves the tenant's current context (the mat
        // fan-out below would discard the tag).
        if request.tenant.is_some() {
            return self.resolve_tenant(&request);
        }
        match &request.payload {
            // Line payloads shard their four mats across the banks.
            Payload::Line(pt) => {
                if request.wants_resilient() {
                    let (line, faults) =
                        self.encrypt_line_resilient(pt, request.tweak, &request.policy())?;
                    Ok(CipherResponse {
                        output: CipherOutput::Line(line),
                        faults,
                    })
                } else {
                    let line = self.encrypt_line(pt, request.tweak)?;
                    Ok(CipherResponse::plain(CipherOutput::Line(line)))
                }
            }
            // A single block is one mat: no fan-out to win, run in place.
            _ => self.context().encrypt(request),
        }
    }

    fn decrypt(&self, request: CipherRequest) -> Result<CipherResponse, SpeError> {
        if request.tenant.is_some() {
            return self.resolve_tenant(&request);
        }
        match (&request.payload, request.verify) {
            (Payload::SealedLine(line), Verify::Tag) => {
                let pt = self.decrypt_line_checked(line)?;
                Ok(CipherResponse::plain(CipherOutput::PlainLine(pt)))
            }
            (Payload::SealedLine(line), Verify::None) => {
                let pt = self.decrypt_line(line)?;
                Ok(CipherResponse::plain(CipherOutput::PlainLine(pt)))
            }
            _ => self.context().decrypt(request),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;

    fn specu() -> Specu {
        use std::sync::OnceLock;
        static CACHE: OnceLock<Specu> = OnceLock::new();
        CACHE
            .get_or_init(|| {
                Specu::builder()
                    .key(Key::from_seed(0xDAC))
                    .build()
                    .expect("specu")
            })
            .clone()
    }

    #[test]
    fn block_roundtrip_through_requests() {
        let s = specu();
        let pt = *b"unified request!";
        let sealed = s
            .encrypt(CipherRequest::block(pt).with_tweak(9))
            .expect("encrypt")
            .into_block()
            .expect("block");
        assert_eq!(sealed.tweak(), 9);
        let out = s
            .decrypt(CipherRequest::sealed_block(sealed))
            .expect("decrypt")
            .into_plain_block()
            .expect("plain");
        assert_eq!(out, pt);
    }

    #[test]
    fn verified_requests_seal_and_check_tags() {
        let s = specu();
        let pt: [u8; LINE_BYTES] = core::array::from_fn(|i| (i * 7 + 1) as u8);
        let resp = s
            .encrypt(CipherRequest::line(pt, 0x88).verified())
            .expect("encrypt");
        assert!(resp.faults().cell_commits > 0);
        let line = resp.into_line().expect("line");
        assert!(line.blocks.iter().all(|b| b.tag().is_some()));
        let out = s
            .decrypt(CipherRequest::sealed_line(line).verified())
            .expect("decrypt")
            .into_plain_line()
            .expect("plain");
        assert_eq!(out, pt);
    }

    #[test]
    fn mismatched_payloads_are_rejected() {
        let s = specu();
        let pt = *b"wrong side block";
        let sealed = s
            .encrypt(CipherRequest::block(pt))
            .expect("encrypt")
            .into_block()
            .expect("block");
        assert!(matches!(
            s.encrypt(CipherRequest::sealed_block(sealed.clone())),
            Err(SpeError::BadRequest(_))
        ));
        assert!(matches!(
            s.decrypt(CipherRequest::block(pt)),
            Err(SpeError::BadRequest(_))
        ));
        // And the response accessors police their kinds.
        let resp = s.encrypt(CipherRequest::block(pt)).expect("encrypt");
        assert!(matches!(
            resp.into_plain_line(),
            Err(SpeError::BadRequest(_))
        ));
        let _ = sealed;
    }

    #[test]
    fn requests_match_the_context_datapath() {
        let s = specu();
        let pt = *b"two surfaces, 1!";
        let direct = s
            .context()
            .expect("context")
            .encrypt_block(&pt, 3)
            .expect("direct");
        let requested = s
            .encrypt(CipherRequest::block(pt).with_tweak(3))
            .expect("request")
            .into_block()
            .expect("block");
        assert_eq!(direct, requested, "both surfaces share one datapath");
    }

    #[test]
    fn parallel_backend_honours_the_same_requests() {
        let s = specu();
        let par = s.parallel(4).expect("parallel");
        let pt: [u8; LINE_BYTES] = core::array::from_fn(|i| (i * 3 + 2) as u8);
        let serial = s
            .encrypt(CipherRequest::line(pt, 5).resilient(FaultPolicy::transient(0.02, 7)))
            .expect("serial");
        let banked = par
            .encrypt(CipherRequest::line(pt, 5).resilient(FaultPolicy::transient(0.02, 7)))
            .expect("banked");
        assert_eq!(serial, banked, "bank count must not change the response");
    }

    #[test]
    fn deadlines_default_off_and_expire_strictly_after_the_instant() {
        let req = CipherRequest::block(*b"no deadline here");
        assert!(req.deadline.is_none());
        assert!(!req.expired_at(Instant::now()), "no deadline never expires");
        let at = Instant::now();
        let timed = CipherRequest::block(*b"deadline carrier").with_deadline(at);
        assert!(!timed.expired_at(at), "not expired at the deadline itself");
        assert!(timed.expired_at(at + Duration::from_micros(1)));
        let budgeted = CipherRequest::block(*b"budget carrier!!").with_timeout(Duration::ZERO);
        assert!(budgeted.deadline.is_some());
    }

    #[test]
    fn tenant_plus_key_is_a_typed_conflict_in_either_order() {
        let s = specu();
        let tenant = crate::tenant::TenantId::new(7);
        let pt = *b"conflicted block";
        for req in [
            CipherRequest::block(pt)
                .with_tenant(tenant)
                .with_key(Key::from_seed(9)),
            CipherRequest::block(pt)
                .with_key(Key::from_seed(9))
                .with_tenant(tenant),
        ] {
            assert!(matches!(req.validate(), Err(SpeError::BadRequest(_))));
            assert!(matches!(
                s.encrypt(req.clone()),
                Err(SpeError::BadRequest(_))
            ));
            assert!(matches!(s.decrypt(req), Err(SpeError::BadRequest(_))));
        }
        // Either field alone stays valid.
        CipherRequest::block(pt)
            .with_tenant(tenant)
            .validate()
            .expect("tenant alone");
        CipherRequest::block(pt)
            .with_key(Key::from_seed(9))
            .validate()
            .expect("key alone");
    }

    #[test]
    fn ticket_cell_first_write_wins() {
        let cell = TicketCell::default();
        assert!(cell.complete(Err(SpeError::BankPoisoned)), "first write");
        assert!(
            !cell.complete(Err(SpeError::JobNeverRan)),
            "second write is refused"
        );
        let ticket = CipherTicket::new(Arc::new(cell));
        assert!(ticket.is_done());
        assert_eq!(ticket.wait(), Err(SpeError::BankPoisoned));
    }

    #[test]
    fn wait_timeout_on_a_pending_cell_returns_the_ticket() {
        let cell = Arc::new(TicketCell::default());
        let ticket = CipherTicket::new(Arc::clone(&cell));
        let pending = match ticket.wait_timeout(Duration::from_millis(2)) {
            Err(t) => t,
            Ok(r) => panic!("nothing completed the cell, got {r:?}"),
        };
        cell.complete(Err(SpeError::DeadlineExceeded));
        match pending.wait_timeout(Duration::from_secs(1)) {
            Ok(result) => assert_eq!(result, Err(SpeError::DeadlineExceeded)),
            Err(_) => panic!("completed cell must resolve within the timeout"),
        }
    }

    #[test]
    fn wait_timeout_zero_duration_polls_without_blocking() {
        // A zero timeout is an instant poll: a pending cell hands the
        // ticket straight back...
        let cell = Arc::new(TicketCell::default());
        let ticket = CipherTicket::new(Arc::clone(&cell));
        let pending = match ticket.wait_timeout(Duration::ZERO) {
            Err(t) => t,
            Ok(r) => panic!("pending cell resolved a zero-duration wait: {r:?}"),
        };
        // ...but a completed result is never forfeited to the deadline:
        // the result check runs before the deadline check.
        cell.complete(Err(SpeError::JobNeverRan));
        match pending.wait_timeout(Duration::ZERO) {
            Ok(result) => assert_eq!(result, Err(SpeError::JobNeverRan)),
            Err(_) => panic!("a completed cell must resolve even at zero timeout"),
        }
    }

    #[test]
    fn wait_timeout_never_loses_a_result_racing_the_deadline() {
        // Completion racing the deadline from another thread: whichever
        // way a round goes, the result must end up observed exactly once —
        // either inside the Ok variant or via the returned ticket.
        for round in 0..32u64 {
            let cell = Arc::new(TicketCell::default());
            let ticket = CipherTicket::new(Arc::clone(&cell));
            let completer = {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    // Jitter the completion around the waiter's deadline.
                    if round % 2 == 0 {
                        std::thread::yield_now();
                    }
                    cell.complete(Err(SpeError::BankPoisoned));
                })
            };
            let outcome = ticket.wait_timeout(Duration::from_micros(round * 13));
            completer.join().expect("completer thread");
            match outcome {
                Ok(result) => assert_eq!(result, Err(SpeError::BankPoisoned), "round {round}"),
                Err(returned) => {
                    // Timed out first — the published result is still
                    // there for the ticket.
                    assert!(returned.is_done(), "round {round}: result lost");
                    assert_eq!(returned.wait(), Err(SpeError::BankPoisoned));
                }
            }
        }
    }
}
