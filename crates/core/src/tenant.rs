//! Multi-tenant SPECU: a concurrent registry of per-tenant keyed
//! contexts over one shared calibration, with live key rotation.
//!
//! One physical NVMM serves many protection domains — per-VM keys on a
//! virtualized host, per-enclave keys, or simply per-process keys under
//! an OS that treats the SPECU key register as part of the address-space
//! context. The expensive part of a SPECU (calibrated kernel, behavioral
//! constants, LUTs, PoE placement — [`SpeCalibration`]) is
//! key-*independent*, so all tenants share one `Arc<SpeCalibration>` and
//! a tenant context is nothing but `(key, epoch handle, recorder)` on
//! top of it: thousands of contexts per second are cheap by
//! construction.
//!
//! # Registry shape
//!
//! [`TenantRegistry`] is a sharded `TenantId -> Arc<SpeContext>` map:
//! lookups take one shard's read lock, so mixed-tenant traffic across
//! bank workers does not serialize on a single registry lock. The shard
//! count is fixed at construction ([`TenantRegistry::with_shards`]) and
//! swept by `tenant_bench`.
//!
//! # Live key rotation
//!
//! [`TenantRegistry::rotate`] builds a *new* context for the tenant —
//! drawing a fresh [`EpochHandle`] from the shared
//! [`ScheduleCache`](crate::cache::ScheduleCache) allocator — and swaps
//! the map entry. The epoch handle is the entire correctness story (see
//! the rotation invariant in [`crate::cache`]):
//!
//! * schedules derived under the old key are cached under the *old*
//!   handle, which the new context does not hold, so a stale schedule
//!   can never be served to post-rotation traffic — no flush, no
//!   barrier;
//! * in-flight work holding the retired `Arc<SpeContext>` keeps
//!   resolving its own epoch's schedules and drains correctly.
//!
//! Rotation returns both contexts ([`TenantRotation`]) because
//! ciphertext sealed under the retired key is only recoverable through
//! the retired context: callers re-encrypting data at rest decrypt via
//! [`TenantRotation::retired`] and re-seal via the active context.
//! Requests routed *by tenant id* (via
//! [`CipherRequest::with_tenant`](crate::request::CipherRequest::with_tenant))
//! always resolve to whichever context is live at execution time.

use crate::cache::EpochHandle;
use crate::error::SpeError;
use crate::key::Key;
use crate::specu::{SpeCalibration, SpeContext, SpecuBuilder};
use crate::sync::{read_unpoisoned, write_unpoisoned};
use spe_telemetry::{noop, Counter, Gauge, TelemetryHandle};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A tenant (protection domain) identifier — a VM, enclave or process
/// id as far as the SPECU is concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(u64);

impl TenantId {
    /// Wraps a raw tenant number.
    pub fn new(id: u64) -> Self {
        TenantId(id)
    }

    /// The raw tenant number.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for TenantId {
    fn from(id: u64) -> Self {
        TenantId(id)
    }
}

/// Default shard count for the tenant map. Enough to keep 8 bank
/// workers off each other's locks; `tenant_bench` sweeps alternatives.
pub const DEFAULT_TENANT_SHARDS: usize = 16;

/// The pair of contexts a [`TenantRegistry::rotate`] hands back.
#[derive(Debug, Clone)]
pub struct TenantRotation {
    /// The pre-rotation context. Ciphertext sealed under the old key is
    /// only recoverable through this; it stays fully functional (its
    /// epoch handle, and therefore its cached schedules, are retained)
    /// until the last `Arc` drops.
    pub retired: Arc<SpeContext>,
    /// The post-rotation context now served by the registry.
    pub active: Arc<SpeContext>,
    /// The fresh epoch handle the active context resolves schedules
    /// under — never equal to any handle drawn before.
    pub epoch: EpochHandle,
}

/// A concurrent `TenantId -> Arc<SpeContext>` map over one shared
/// [`SpeCalibration`], with per-tenant live key rotation.
///
/// ```no_run
/// # use spe_core::{Key, Specu, SpecuConfig, TenantId, TenantRegistry, SpeCalibration};
/// # use std::sync::Arc;
/// # fn main() -> Result<(), spe_core::SpeError> {
/// let calibration = Arc::new(SpeCalibration::new(SpecuConfig::default())?);
/// let registry = TenantRegistry::new(Arc::clone(&calibration));
/// let vm7 = TenantId::new(7);
/// registry.register(vm7, Key::from_seed(0x01));
/// let ctx = registry.context(vm7).expect("registered");
/// let rotation = registry.rotate(vm7, Key::from_seed(0x02))?;
/// assert_ne!(ctx.key_epoch(), rotation.active.key_epoch());
/// # Ok(()) }
/// ```
#[derive(Debug)]
pub struct TenantRegistry {
    calibration: Arc<SpeCalibration>,
    shards: Vec<RwLock<HashMap<TenantId, Arc<SpeContext>>>>,
    recorder: TelemetryHandle,
    /// Live tenant count, mirrored into [`Gauge::TenantContextsLive`].
    live: AtomicU64,
}

impl TenantRegistry {
    /// A registry over `calibration` with [`DEFAULT_TENANT_SHARDS`] and
    /// no telemetry.
    pub fn new(calibration: Arc<SpeCalibration>) -> Self {
        TenantRegistry::with_shards(calibration, DEFAULT_TENANT_SHARDS, noop())
    }

    /// A registry with an explicit shard count (clamped to at least 1)
    /// and a telemetry recorder. The recorder receives the registry's
    /// own counters *and* is attached to every tenant context it builds,
    /// so per-tenant datapath activity (schedule cache hits/misses,
    /// pulses) aggregates in one place.
    pub fn with_shards(
        calibration: Arc<SpeCalibration>,
        shards: usize,
        recorder: TelemetryHandle,
    ) -> Self {
        let shards = shards.max(1);
        TenantRegistry {
            calibration,
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            recorder,
            live: AtomicU64::new(0),
        }
    }

    fn shard(&self, tenant: TenantId) -> &RwLock<HashMap<TenantId, Arc<SpeContext>>> {
        let index = (tenant.0 as usize) % self.shards.len();
        &self.shards[index]
    }

    /// Builds a context for `tenant` under `key`. The epoch draw is
    /// explicit so rotation reads as what it is: a fresh handle, then a
    /// swap.
    fn build_context(&self, key: Key) -> (Arc<SpeContext>, EpochHandle) {
        let epoch = self.calibration.schedule_cache().next_epoch();
        let context = SpecuBuilder::new()
            .key(key)
            .calibration(Arc::clone(&self.calibration))
            .recorder(Arc::clone(&self.recorder))
            .epoch(epoch)
            .build_context()
            .unwrap_or_else(|never| {
                // Key + calibration are both supplied, so the builder has
                // nothing left to reject; keep the API infallible.
                unreachable!("context over an existing calibration cannot fail: {never}")
            });
        (Arc::new(context), epoch)
    }

    fn publish_live(&self, delta: i64) {
        let live = if delta >= 0 {
            self.live.fetch_add(delta as u64, Ordering::Relaxed) + delta as u64
        } else {
            self.live
                .fetch_sub(delta.unsigned_abs(), Ordering::Relaxed)
                .saturating_sub(delta.unsigned_abs())
        };
        self.recorder.set_gauge(Gauge::TenantContextsLive, live);
    }

    /// Registers (or replaces) `tenant` with a context under `key` and
    /// returns the live context. Replacing an existing tenant behaves
    /// like a rotation without returning the retired context — prefer
    /// [`TenantRegistry::rotate`] when the old ciphertext still matters.
    pub fn register(&self, tenant: TenantId, key: Key) -> Arc<SpeContext> {
        let (context, _) = self.build_context(key);
        let replaced = {
            let mut shard = write_unpoisoned(self.shard(tenant));
            shard.insert(tenant, Arc::clone(&context))
        };
        self.recorder.add(Counter::TenantCreated, 1);
        if replaced.is_none() {
            self.publish_live(1);
        }
        context
    }

    /// The tenant's current context, if registered.
    pub fn context(&self, tenant: TenantId) -> Option<Arc<SpeContext>> {
        let found = read_unpoisoned(self.shard(tenant)).get(&tenant).cloned();
        match found {
            Some(context) => {
                self.recorder.add(Counter::TenantLookupHits, 1);
                Some(context)
            }
            None => {
                self.recorder.add(Counter::TenantLookupMisses, 1);
                None
            }
        }
    }

    /// Rotates `tenant` to `key` *live*: builds a fresh context under a
    /// fresh [`EpochHandle`] and swaps it in while lookups continue on
    /// other shards (and on this shard, before/after the brief write
    /// lock). In-flight requests holding the retired `Arc` drain on the
    /// old epoch; requests resolved after the swap — including
    /// tenant-tagged requests already queued in the bank scheduler — run
    /// under the new key and can never see the old epoch's schedules.
    ///
    /// # Errors
    ///
    /// [`SpeError::UnknownTenant`] when the tenant is not registered —
    /// rotation never implicitly creates a tenant, because the caller
    /// would lose the "retired ciphertext is still recoverable" handoff
    /// that [`TenantRotation`] exists to provide.
    pub fn rotate(&self, tenant: TenantId, key: Key) -> Result<TenantRotation, SpeError> {
        let (active, epoch) = self.build_context(key);
        let retired = {
            let mut shard = write_unpoisoned(self.shard(tenant));
            match shard.get_mut(&tenant) {
                Some(slot) => std::mem::replace(slot, Arc::clone(&active)),
                None => return Err(SpeError::UnknownTenant(tenant)),
            }
        };
        self.recorder.add(Counter::TenantRotated, 1);
        Ok(TenantRotation {
            retired,
            active,
            epoch,
        })
    }

    /// Removes a tenant, returning its final context (still usable for
    /// draining decrypts of data sealed under it).
    pub fn remove(&self, tenant: TenantId) -> Option<Arc<SpeContext>> {
        let removed = write_unpoisoned(self.shard(tenant)).remove(&tenant);
        if removed.is_some() {
            self.publish_live(-1);
        }
        removed
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| read_unpoisoned(s).len()).sum()
    }

    /// Whether no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shard count (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shared calibration every tenant context is built over.
    pub fn calibration(&self) -> &Arc<SpeCalibration> {
        &self.calibration
    }

    /// The registry's telemetry recorder.
    pub fn recorder(&self) -> &TelemetryHandle {
        &self.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{CipherRequest, SpeCipher};
    use crate::specu::SpecuConfig;
    use spe_telemetry::AtomicRecorder;

    fn calibration() -> Arc<SpeCalibration> {
        use std::sync::OnceLock;
        static CACHE: OnceLock<Arc<SpeCalibration>> = OnceLock::new();
        Arc::clone(CACHE.get_or_init(|| {
            Arc::new(SpeCalibration::new(SpecuConfig::default()).expect("calibration"))
        }))
    }

    #[test]
    fn register_lookup_remove_roundtrip() {
        let registry = TenantRegistry::new(calibration());
        assert!(registry.is_empty());
        let a = TenantId::new(1);
        let b = TenantId::new(2);
        registry.register(a, Key::from_seed(10));
        registry.register(b, Key::from_seed(20));
        assert_eq!(registry.len(), 2);
        assert!(registry.context(a).is_some());
        assert!(registry.context(TenantId::new(99)).is_none());
        assert!(registry.remove(a).is_some());
        assert!(registry.context(a).is_none());
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn contexts_share_the_calibration_and_differ_by_epoch() {
        let cal = calibration();
        let registry = TenantRegistry::new(Arc::clone(&cal));
        let a = registry.register(TenantId::new(1), Key::from_seed(1));
        let b = registry.register(TenantId::new(2), Key::from_seed(2));
        assert!(Arc::ptr_eq(a.calibration(), &cal));
        assert!(Arc::ptr_eq(b.calibration(), &cal));
        assert_ne!(a.key_epoch(), b.key_epoch());
    }

    #[test]
    fn rotation_swaps_the_live_context_and_retains_the_old() {
        let registry = TenantRegistry::new(calibration());
        let tenant = TenantId::new(7);
        registry.register(tenant, Key::from_seed(0xAA));

        let pt: [u8; 64] = core::array::from_fn(|i| (i as u8).wrapping_mul(37).wrapping_add(11));
        let old_sealed = registry
            .context(tenant)
            .expect("registered")
            .encrypt(CipherRequest::line(pt, 0x40))
            .expect("encrypt")
            .into_line()
            .expect("line");

        let rotation = registry
            .rotate(tenant, Key::from_seed(0xBB))
            .expect("rotate");
        assert_ne!(rotation.retired.key_epoch(), rotation.active.key_epoch());
        assert_eq!(rotation.epoch, rotation.active.epoch_handle());
        let live = registry.context(tenant).expect("still registered");
        assert!(Arc::ptr_eq(&live, &rotation.active));

        // Old ciphertext recovers through the retired context only.
        let recovered = rotation
            .retired
            .decrypt(CipherRequest::sealed_line(old_sealed))
            .expect("decrypt")
            .into_plain_line()
            .expect("plain");
        assert_eq!(recovered, pt);

        // The active context seals differently and round-trips.
        let new_sealed = rotation
            .active
            .encrypt(CipherRequest::line(pt, 0x40))
            .expect("encrypt")
            .into_line()
            .expect("line");
        let round = rotation
            .active
            .decrypt(CipherRequest::sealed_line(new_sealed))
            .expect("decrypt")
            .into_plain_line()
            .expect("plain");
        assert_eq!(round, pt);
    }

    #[test]
    fn rotating_an_unknown_tenant_is_a_typed_error() {
        let registry = TenantRegistry::new(calibration());
        let missing = TenantId::new(404);
        match registry.rotate(missing, Key::from_seed(1)) {
            Err(SpeError::UnknownTenant(t)) => assert_eq!(t, missing),
            other => panic!("expected UnknownTenant, got {other:?}"),
        }
    }

    #[test]
    fn telemetry_counts_registry_traffic() {
        let recorder = Arc::new(AtomicRecorder::new());
        let registry = TenantRegistry::with_shards(calibration(), 4, recorder.clone());
        let a = TenantId::new(3);
        registry.register(a, Key::from_seed(1));
        let _ = registry.context(a);
        let _ = registry.context(TenantId::new(999));
        registry.rotate(a, Key::from_seed(2)).expect("rotate");
        assert_eq!(recorder.counter(Counter::TenantCreated), 1);
        assert_eq!(recorder.counter(Counter::TenantRotated), 1);
        assert_eq!(recorder.counter(Counter::TenantLookupHits), 1);
        assert_eq!(recorder.counter(Counter::TenantLookupMisses), 1);
        assert_eq!(recorder.gauge(Gauge::TenantContextsLive), 1);
        registry.remove(a);
        assert_eq!(recorder.gauge(Gauge::TenantContextsLive), 0);
    }

    #[test]
    fn shard_count_is_clamped_and_distributes_tenants() {
        let registry = TenantRegistry::with_shards(calibration(), 0, noop());
        assert_eq!(registry.shard_count(), 1);
        let registry = TenantRegistry::with_shards(calibration(), 4, noop());
        for id in 0..32 {
            registry.register(TenantId::new(id), Key::from_seed(id));
        }
        assert_eq!(registry.len(), 32);
        let occupied = registry
            .shards
            .iter()
            .filter(|s| !read_unpoisoned(s).is_empty())
            .count();
        assert_eq!(occupied, 4, "sequential ids must spread across shards");
    }
}
