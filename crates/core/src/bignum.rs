//! Minimal arbitrary-precision unsigned integers.
//!
//! The §6.2 brute-force analysis multiplies `P(64,16)` by `32¹⁶` — about
//! 10⁵² — far beyond `u128`. This module provides exactly the operations
//! that analysis needs (multiply, add, compare, decimal rendering, log₁₀),
//! keeping the workspace free of external bignum dependencies.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer (little-endian 32-bit limbs).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Limbs, least significant first; no trailing zero limbs.
    limbs: Vec<u32>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        BigUint::from_u64(1)
    }

    /// Builds from a `u64`.
    ///
    /// # Example
    ///
    /// ```
    /// let n = spe_core::BigUint::from_u64(1 << 40);
    /// assert_eq!(n.to_string(), "1099511627776");
    /// ```
    pub fn from_u64(v: u64) -> Self {
        let mut limbs = vec![v as u32, (v >> 32) as u32];
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Adds another value.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let mut out = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u64;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = *self.limbs.get(i).unwrap_or(&0) as u64;
            let b = *other.limbs.get(i).unwrap_or(&0) as u64;
            let s = a + b + carry;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        BigUint { limbs: out }
    }

    /// Multiplies by a small value.
    pub fn mul_u64(&self, m: u64) -> BigUint {
        self.mul(&BigUint::from_u64(m))
    }

    /// Full multiplication.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u64 + (*a as u64) * (*b as u64) + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let t = out[k] as u64 + carry;
                out[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        BigUint { limbs: out }
    }

    /// Raises a base to a power.
    ///
    /// # Example
    ///
    /// ```
    /// let n = spe_core::BigUint::from_u64(32).pow(16);
    /// assert_eq!(n.to_string(), "1208925819614629174706176"); // 2^80
    /// ```
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(&base);
            }
            base = base.mul(&base);
            exp >>= 1;
        }
        acc
    }

    /// Divides by a small value, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_rem_u32(&self, d: u32) -> (BigUint, u32) {
        assert!(d != 0, "division by zero");
        let mut out = vec![0u32; self.limbs.len()];
        let mut rem = 0u64;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 32) | self.limbs[i] as u64;
            out[i] = (cur / d as u64) as u32;
            rem = cur % d as u64;
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        (BigUint { limbs: out }, rem as u32)
    }

    /// Approximate base-10 logarithm.
    pub fn log10(&self) -> f64 {
        if self.is_zero() {
            return f64::NEG_INFINITY;
        }
        // Use the top two limbs for the mantissa.
        let n = self.limbs.len();
        let hi = self.limbs[n - 1] as f64;
        let lo = if n >= 2 {
            self.limbs[n - 2] as f64
        } else {
            0.0
        };
        let mantissa = hi + lo / 4294967296.0;
        mantissa.log10()
            + (n as f64 - 1.0) * 32.0 * std::f64::consts::LN_2 / std::f64::consts::LN_10
    }

    /// Converts to `f64` (may lose precision or overflow to infinity).
    pub fn to_f64(&self) -> f64 {
        self.limbs
            .iter()
            .rev()
            .fold(0.0f64, |acc, limb| acc * 4294967296.0 + *limb as f64)
    }

    /// The falling factorial / number of permutations `P(n, k) = n!/(n−k)!`.
    ///
    /// # Example
    ///
    /// ```
    /// // P(5, 2) = 20
    /// assert_eq!(spe_core::BigUint::permutations(5, 2).to_string(), "20");
    /// ```
    pub fn permutations(n: u64, k: u64) -> BigUint {
        assert!(k <= n, "P(n, k) requires k <= n");
        let mut acc = BigUint::one();
        for i in 0..k {
            acc = acc.mul_u64(n - i);
        }
        acc
    }

    /// Factorial `n!`.
    pub fn factorial(n: u64) -> BigUint {
        BigUint::permutations(n, n)
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.limbs
            .len()
            .cmp(&other.limbs.len())
            .then_with(|| self.limbs.iter().rev().cmp(other.limbs.iter().rev()))
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u32(10);
            digits.push((b'0' + r as u8) as char);
            cur = q;
        }
        for d in digits.iter().rev() {
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_arithmetic() {
        let a = BigUint::from_u64(123456789);
        let b = BigUint::from_u64(987654321);
        assert_eq!(a.add(&b).to_string(), "1111111110");
        assert_eq!(a.mul(&b).to_string(), "121932631112635269");
    }

    #[test]
    fn factorial_values() {
        assert_eq!(BigUint::factorial(0).to_string(), "1");
        assert_eq!(BigUint::factorial(10).to_string(), "3628800");
        assert_eq!(BigUint::factorial(20).to_string(), "2432902008176640000");
        // 16! used by the "attacker knows the ILP" analysis.
        assert_eq!(BigUint::factorial(16).to_string(), "20922789888000");
    }

    #[test]
    fn permutations_p64_16() {
        // P(64,16) = 64!/48!; verified digit count and leading digits via
        // log10 ≈ 28.33.
        let p = BigUint::permutations(64, 16);
        let s = p.to_string();
        assert_eq!(s.len(), 29);
        assert!(p.log10() > 28.0 && p.log10() < 29.0);
    }

    #[test]
    fn pow_of_two_chain() {
        let two = BigUint::from_u64(2);
        assert_eq!(two.pow(100).log10().round() as i64, 30);
        assert_eq!(two.pow(64).to_string(), "18446744073709551616");
    }

    #[test]
    fn comparison_ordering() {
        let a = BigUint::from_u64(u64::MAX);
        let b = a.add(&BigUint::one());
        assert!(b > a);
        assert!(BigUint::zero() < BigUint::one());
    }

    #[test]
    fn div_rem_roundtrip() {
        let n = BigUint::factorial(25);
        let (q, r) = n.div_rem_u32(7);
        assert_eq!(q.mul_u64(7).add(&BigUint::from_u64(r as u64)), n);
    }

    #[test]
    fn log10_matches_f64_for_small() {
        for v in [1u64, 10, 999, 12345678901234567] {
            let b = BigUint::from_u64(v);
            assert!((b.log10() - (v as f64).log10()).abs() < 1e-9, "{v}");
        }
    }

    #[test]
    fn to_f64_tracks_magnitude() {
        let n = BigUint::from_u64(1 << 52);
        assert_eq!(n.to_f64(), (1u64 << 52) as f64);
        let big = BigUint::from_u64(2).pow(200);
        assert!((big.to_f64().log2() - 200.0).abs() < 1e-9);
        assert_eq!(BigUint::zero().to_f64(), 0.0);
    }

    #[test]
    fn zero_and_one_behave() {
        assert!(BigUint::zero().is_zero());
        assert!(!BigUint::one().is_zero());
        assert_eq!(BigUint::zero().mul(&BigUint::from_u64(99)), BigUint::zero());
        assert_eq!(BigUint::one().mul(&BigUint::from_u64(99)).to_string(), "99");
        assert_eq!(BigUint::from_u64(5).pow(0), BigUint::one());
    }

    /// Deterministic pseudo-random u64 stream for loop-based properties.
    fn lcg_stream(seed: u64, n: usize) -> Vec<u64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                s ^ (s >> 29)
            })
            .collect()
    }

    #[test]
    fn add_matches_u128() {
        for pair in lcg_stream(0xADD, 64).chunks_exact(2) {
            let (a, b) = (pair[0], pair[1]);
            let sum = BigUint::from_u64(a).add(&BigUint::from_u64(b));
            assert_eq!(sum.to_string(), (a as u128 + b as u128).to_string());
        }
    }

    #[test]
    fn mul_matches_u128() {
        for pair in lcg_stream(0xA1F, 64).chunks_exact(2) {
            let (a, b) = (pair[0], pair[1]);
            let prod = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
            assert_eq!(prod.to_string(), (a as u128 * b as u128).to_string());
        }
    }
}
