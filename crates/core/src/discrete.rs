//! Closed-loop SPE: the program-verify variant of the sneak pulse.
//!
//! The open-loop analog variant ([`crate::specu::SpeVariant::Analog`])
//! applies a single voltage pulse per PoE. Empirically (see EXPERIMENTS.md)
//! that leaves the ciphertext level distribution bimodal — cells either
//! stay near their plaintext level or rail — which cannot pass the paper's
//! Table 2 randomness criteria.
//!
//! MLC NVMMs do not program cells with single open-loop pulses in the first
//! place: the write path uses *closed-loop program-verify pulse trains*
//! (§5.1 notes the crossbar "uses several different pulse widths to program
//! the memory cells"). This module models SPE built on that machinery: the
//! pulse train at a PoE moves every polyomino member by an *independently
//! keyed number of level steps*, cyclically through the level ladder, with
//! each step additionally mixed with a weighted, nonlinear (conductance)
//! image of the other members' levels.
//!
//! * **Exactly invertible** — the member sweep is triangular (predecessors
//!   updated, successors original), so the reverse sweep reconstructs each
//!   member's context and subtracts the same step count.
//! * **Order-sensitive** — contexts change between pulses, so replaying
//!   PoEs in the wrong order fails (Fig. 2b), exactly like the analog
//!   variant.
//! * **Balanced** — level steps are uniform over ℤ₄, so ciphertext levels
//!   are uniform and the Table 2 datasets are statistically flat.

use crate::error::SpeError;
use spe_crossbar::{CellAddr, Dims};

/// Number of MLC levels.
const LEVELS: u8 = 4;

/// Nonlinear level-to-conductance contribution table. Cell conductance is a
/// nonlinear function of its level (resistance steps are equal, conductance
/// steps are not), so the verify comparator's view of a neighbouring cell
/// is a *nonlinear* image of its level. Without this nonlinearity the
/// between-run difference dynamics are linear mod 4 and diffusion stalls in
/// small invariant subspaces.
pub(crate) const CONDUCTANCE: [u32; 4] = [0, 1, 3, 2];

/// A crossbar's quantized level state under closed-loop SPE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscreteArray {
    dims: Dims,
    levels: Vec<u8>,
}

impl DiscreteArray {
    /// Creates an array with every cell at level 0 (`00`).
    pub fn new(dims: Dims) -> Self {
        DiscreteArray {
            levels: vec![0; dims.cells()],
            dims,
        }
    }

    /// The per-cell levels, row-major (values 0..4).
    pub fn levels(&self) -> &[u8] {
        &self.levels
    }

    /// Overwrites the level state.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::BadLength`] on a size mismatch.
    ///
    /// # Panics
    ///
    /// Panics if any level is outside `0..4`.
    pub fn set_levels(&mut self, levels: &[u8]) -> Result<(), SpeError> {
        if levels.len() != self.levels.len() {
            return Err(SpeError::BadLength {
                expected: self.levels.len(),
                actual: levels.len(),
            });
        }
        assert!(levels.iter().all(|l| *l < LEVELS), "levels must be 0..4");
        self.levels.copy_from_slice(levels);
        Ok(())
    }

    /// Applies one PoE pulse train: member cell `k` moves by
    /// `dir · (steps[k] + mix_k)` (mod 4), where `steps[k]` is that member's
    /// independent keyed level step and `mix_k` a weighted mod-4 sum of the
    /// *other* members' levels under the triangular sweep.
    ///
    /// `members` must be sorted and distinct (the SPECU passes the
    /// geometric membership in address order).
    ///
    /// The receiver-dependent context weight `w = 1 + 2·((k + m) & 1)`
    /// depends only on the *parity* of `k + m`, so each member's mix is a
    /// combination of two running conductance sums (even-position and
    /// odd-position members) maintained incrementally across the sweep.
    /// That makes the whole train O(members) instead of O(members²) —
    /// with the same arithmetic, bit for bit — which is what lets the
    /// schedule cache turn line ops into pure apply cost.
    ///
    /// # Panics
    ///
    /// Panics if `steps.len() != members.len()`.
    pub fn apply_train(&mut self, members: &[CellAddr], steps: &[u8], dir: i8, inverse: bool) {
        debug_assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "members must be sorted and distinct"
        );
        let idxs: Vec<u16> = members
            .iter()
            .map(|a| u16::try_from(self.dims.index(*a)).expect("cipher array exceeds u16 indices"))
            .collect();
        self.apply_train_indexed(&idxs, steps, dir, inverse);
    }

    /// [`Self::apply_train`] over pre-resolved flat cell indices — the
    /// cached-schedule hot path. The address→index mapping is
    /// payload-independent, so derivation resolves it once
    /// ([`crate::cache::Train::idxs`]) and every subsequent apply skips the
    /// per-step address arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `steps.len() != idxs.len()` or an index is out of range.
    pub fn apply_train_indexed(&mut self, idxs: &[u16], steps: &[u8], dir: i8, inverse: bool) {
        assert_eq!(steps.len(), idxs.len(), "one step per member");
        // Running context sums over the *current* levels: the triangular
        // sweep updates one member at a time, so each step only moves its
        // own conductance contribution between the sums. The independent
        // per-member steps keep deltas uniform over the key even though
        // the context is data-dependent, and the triangular sweep keeps
        // the whole train exactly reconstructible during inversion.
        let mut even_sum = 0u32;
        let mut odd_sum = 0u32;
        for (m, &idx) in idxs.iter().enumerate() {
            let c = CONDUCTANCE[self.levels[idx as usize] as usize];
            if m & 1 == 0 {
                even_sum += c;
            } else {
                odd_sum += c;
            }
        }
        let n = idxs.len();
        if inverse {
            for k in (0..n).rev() {
                self.train_step(idxs, steps, dir, true, k, &mut even_sum, &mut odd_sum);
            }
        } else {
            for k in 0..n {
                self.train_step(idxs, steps, dir, false, k, &mut even_sum, &mut odd_sum);
            }
        }
    }

    /// One member update of a pulse train: member `k` moves by its keyed
    /// step plus the weighted conductance context of the other members
    /// (weights 1 and 3 — the units mod 4 — patterned on the parity of
    /// `k + m` so every member sees its neighbours differently).
    #[allow(clippy::too_many_arguments)]
    fn train_step(
        &mut self,
        idxs: &[u16],
        steps: &[u8],
        dir: i8,
        inverse: bool,
        k: usize,
        even_sum: &mut u32,
        odd_sum: &mut u32,
    ) {
        let idx = idxs[k] as usize;
        let c_before = CONDUCTANCE[self.levels[idx] as usize];
        // Same-parity members contribute with weight 1 (minus self),
        // opposite-parity members with weight 3.
        let mix = if k & 1 == 0 {
            (*even_sum - c_before) + 3 * *odd_sum
        } else {
            3 * *even_sum + (*odd_sum - c_before)
        };
        let delta = (steps[k] as u32 + mix) % LEVELS as u32;
        let delta = if dir < 0 {
            (LEVELS as u32 - delta) % LEVELS as u32
        } else {
            delta
        };
        let cur = self.levels[idx] as u32;
        let next = if inverse {
            ((cur + LEVELS as u32 - delta) % LEVELS as u32) as u8
        } else {
            ((cur + delta) % LEVELS as u32) as u8
        };
        self.levels[idx] = next;
        let c_after = CONDUCTANCE[next as usize];
        if k & 1 == 0 {
            *even_sum = *even_sum - c_before + c_after;
        } else {
            *odd_sum = *odd_sum - c_before + c_after;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(cells: &[(usize, usize)]) -> Vec<CellAddr> {
        let mut v: Vec<CellAddr> = cells.iter().map(|(r, c)| CellAddr::new(*r, *c)).collect();
        v.sort();
        v
    }

    fn random_levels(seed: u64, n: usize) -> Vec<u8> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) % 4) as u8
            })
            .collect()
    }

    #[test]
    fn train_then_inverse_is_identity() {
        let dims = Dims::square8();
        let mut arr = DiscreteArray::new(dims);
        arr.set_levels(&random_levels(3, 64)).expect("set");
        let before = arr.levels().to_vec();
        let m = members(&[(2, 2), (2, 3), (3, 2), (1, 2), (2, 1)]);
        let steps = vec![3u8, 1, 0, 2, 3];
        arr.apply_train(&m, &steps, 1, false);
        assert_ne!(arr.levels(), &before[..]);
        arr.apply_train(&m, &steps, 1, true);
        assert_eq!(arr.levels(), &before[..]);
    }

    #[test]
    fn sequences_invert_in_reverse_order() {
        let dims = Dims::square8();
        let mut arr = DiscreteArray::new(dims);
        arr.set_levels(&random_levels(5, 64)).expect("set");
        let before = arr.levels().to_vec();
        let trains = [
            (members(&[(1, 1), (1, 2), (2, 1)]), vec![2u8, 0, 1], 1i8),
            (members(&[(2, 1), (2, 2), (3, 2)]), vec![1, 3, 2], -1),
            (members(&[(1, 2), (2, 2), (2, 3)]), vec![3, 3, 0], 1),
        ];
        for (m, s, d) in &trains {
            arr.apply_train(m, s, *d, false);
        }
        for (m, s, d) in trains.iter().rev() {
            arr.apply_train(m, s, *d, true);
        }
        assert_eq!(arr.levels(), &before[..]);
    }

    #[test]
    fn wrong_order_fails() {
        let dims = Dims::square8();
        let mut arr = DiscreteArray::new(dims);
        arr.set_levels(&random_levels(7, 64)).expect("set");
        let before = arr.levels().to_vec();
        let trains = [
            (members(&[(1, 1), (1, 2), (2, 1)]), vec![2u8, 1, 3], 1i8),
            (members(&[(2, 1), (2, 2), (1, 2)]), vec![1, 0, 2], 1),
        ];
        for (m, s, d) in &trains {
            arr.apply_train(m, s, *d, false);
        }
        // Invert in forward (wrong) order.
        for (m, s, d) in &trains {
            arr.apply_train(m, s, *d, true);
        }
        assert_ne!(arr.levels(), &before[..], "order must matter");
    }

    #[test]
    fn context_diffuses_neighbour_changes() {
        let dims = Dims::square8();
        let m = members(&[(1, 1), (1, 2), (2, 1), (2, 2)]);
        let mut a = DiscreteArray::new(dims);
        let mut b = DiscreteArray::new(dims);
        let mut levels = random_levels(9, 64);
        a.set_levels(&levels).expect("set");
        levels[9] = (levels[9] + 1) % 4; // cell (1,1)
        b.set_levels(&levels).expect("set");
        a.apply_train(&m, &[1, 2, 0, 3], 1, false);
        b.apply_train(&m, &[1, 2, 0, 3], 1, false);
        let diffs = a
            .levels()
            .iter()
            .zip(b.levels())
            .enumerate()
            .filter(|(i, (x, y))| *i != 9 && x != y)
            .count();
        assert!(diffs > 0, "a member change must affect other members");
    }

    #[test]
    fn negative_direction_is_inverse_of_positive_without_context() {
        // With a single member there is no context; +step then -step with
        // the same magnitude returns to start.
        let dims = Dims::square8();
        let mut arr = DiscreteArray::new(dims);
        arr.set_levels(&random_levels(11, 64)).expect("set");
        let before = arr.levels().to_vec();
        let m = members(&[(4, 4)]);
        arr.apply_train(&m, &[3], 1, false);
        arr.apply_train(&m, &[3], -1, false);
        assert_eq!(arr.levels(), &before[..]);
    }

    #[test]
    fn set_levels_validates() {
        let mut arr = DiscreteArray::new(Dims::square8());
        assert!(arr.set_levels(&[0; 10]).is_err());
    }

    /// The original O(members²) mix loop, kept as the semantic reference
    /// for the incremental parity-sum sweep.
    fn reference_apply_train(
        arr: &mut DiscreteArray,
        members: &[CellAddr],
        steps: &[u8],
        dir: i8,
        inverse: bool,
    ) {
        let idxs: Vec<usize> = members.iter().map(|a| arr.dims.index(*a)).collect();
        let order: Vec<usize> = if inverse {
            (0..idxs.len()).rev().collect()
        } else {
            (0..idxs.len()).collect()
        };
        for k in order {
            let mut mix = 0u32;
            for (m, idx) in idxs.iter().enumerate() {
                if m != k {
                    let w = 1 + 2 * ((k as u32 + m as u32) & 1);
                    mix += w * CONDUCTANCE[arr.levels[*idx] as usize];
                }
            }
            let delta = (steps[k] as u32 + mix) % LEVELS as u32;
            let delta = if dir < 0 {
                (LEVELS as u32 - delta) % LEVELS as u32
            } else {
                delta
            };
            let idx = idxs[k];
            let cur = arr.levels[idx] as u32;
            arr.levels[idx] = if inverse {
                ((cur + LEVELS as u32 - delta) % LEVELS as u32) as u8
            } else {
                ((cur + delta) % LEVELS as u32) as u8
            };
        }
    }

    #[test]
    fn parity_sum_sweep_matches_quadratic_reference() {
        // The O(members) rewrite must be arithmetically identical to the
        // original loop — cached and uncached ciphertexts both rest on it.
        let dims = Dims::square8();
        let m = members(&[(1, 1), (1, 2), (2, 1), (2, 2), (3, 1), (0, 2), (2, 0)]);
        for seed in 0..8u64 {
            let steps = random_levels(seed.wrapping_mul(77).wrapping_add(5), m.len());
            for (dir, inverse) in [(1i8, false), (1, true), (-1, false), (-1, true)] {
                let mut fast = DiscreteArray::new(dims);
                fast.set_levels(&random_levels(seed, 64)).expect("set");
                let mut slow = fast.clone();
                fast.apply_train(&m, &steps, dir, inverse);
                reference_apply_train(&mut slow, &m, &steps, dir, inverse);
                assert_eq!(
                    fast.levels(),
                    slow.levels(),
                    "seed {seed} dir {dir} inverse {inverse}"
                );
            }
        }
    }
}
