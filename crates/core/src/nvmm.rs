//! The SPE-protected main memory (SNVMM) with its power lifecycle.
//!
//! Ties together the SPECU, the TPM and a line-granular memory map, and
//! implements the two policies of §7:
//!
//! * **SPE-serial** — a read decrypts the line *in place*; it stays
//!   plaintext on the NVMM until written back (or scrubbed), leaving a
//!   small exposure window (99.4 % encrypted on average in the paper).
//! * **SPE-parallel** — the line is re-encrypted immediately after the read
//!   (100 % encrypted, extra 16-cycle latency).

use crate::error::SpeError;
use crate::specu::{CipherLine, Specu, LINE_BYTES};
use crate::tpm::Tpm;
use std::collections::HashMap;

/// SPE operating policy (§7's two variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpeMode {
    /// Decrypted lines linger until write-back.
    Serial,
    /// Lines are re-encrypted immediately after each read.
    Parallel,
}

/// A line slot on the NVMM.
#[derive(Debug, Clone)]
enum LineSlot {
    /// Ciphertext at rest.
    Encrypted(CipherLine),
    /// Plaintext (SPE-serial exposure window).
    Plain([u8; LINE_BYTES]),
}

/// An SPE-protected non-volatile main memory.
#[derive(Debug)]
pub struct SecureNvmm {
    id: u64,
    mode: SpeMode,
    specu: Specu,
    lines: HashMap<u64, LineSlot>,
    powered: bool,
}

impl SecureNvmm {
    /// Builds an SNVMM around a SPECU; `id` is the identity the TPM is
    /// bound to.
    pub fn new(id: u64, specu: Specu, mode: SpeMode) -> Self {
        SecureNvmm {
            id,
            mode,
            specu,
            lines: HashMap::new(),
            powered: true,
        }
    }

    /// The NVMM identity.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The operating policy.
    pub fn mode(&self) -> SpeMode {
        self.mode
    }

    /// Writes a 64-byte line (write phase + encryption phase, §4.1).
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::KeyNotLoaded`] when powered down.
    pub fn write_line(&mut self, address: u64, data: &[u8; LINE_BYTES]) -> Result<(), SpeError> {
        if !self.powered {
            return Err(SpeError::KeyNotLoaded);
        }
        let line = self.specu.context()?.encrypt_line(data, address)?;
        self.lines.insert(address, LineSlot::Encrypted(line));
        Ok(())
    }

    /// Reads a 64-byte line (decryption phase + read phase).
    ///
    /// Under [`SpeMode::Serial`] the line remains plaintext on the NVMM
    /// afterwards; under [`SpeMode::Parallel`] it is immediately
    /// re-encrypted.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::KeyNotLoaded`] when powered down. Reading an
    /// address never written returns all zeroes (erased cells).
    pub fn read_line(&mut self, address: u64) -> Result<[u8; LINE_BYTES], SpeError> {
        if !self.powered {
            return Err(SpeError::KeyNotLoaded);
        }
        let Some(slot) = self.lines.get(&address) else {
            return Ok([0u8; LINE_BYTES]);
        };
        match slot {
            LineSlot::Plain(data) => Ok(*data),
            LineSlot::Encrypted(line) => {
                let data = self.specu.context()?.decrypt_line(line)?;
                match self.mode {
                    SpeMode::Parallel => {
                        // Fresh encryption (the schedule is deterministic in
                        // the tweak, but the analog path is replayed).
                        let line = self.specu.context()?.encrypt_line(&data, address)?;
                        self.lines.insert(address, LineSlot::Encrypted(line));
                    }
                    SpeMode::Serial => {
                        self.lines.insert(address, LineSlot::Plain(data));
                    }
                }
                Ok(data)
            }
        }
    }

    /// Fraction of resident lines currently encrypted (Fig. 8's metric;
    /// 1.0 when empty — erased memory holds no plaintext).
    pub fn fraction_encrypted(&self) -> f64 {
        if self.lines.is_empty() {
            return 1.0;
        }
        let enc = self
            .lines
            .values()
            .filter(|s| matches!(s, LineSlot::Encrypted(_)))
            .count();
        enc as f64 / self.lines.len() as f64
    }

    /// Number of plaintext lines currently exposed (SPE-serial only).
    pub fn exposed_lines(&self) -> usize {
        self.lines
            .values()
            .filter(|s| matches!(s, LineSlot::Plain(_)))
            .count()
    }

    /// Scrubs: re-encrypts every exposed line (SPE-serial background duty
    /// or the power-down sweep). Returns the number of lines encrypted.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::KeyNotLoaded`] when powered down.
    pub fn scrub(&mut self) -> Result<usize, SpeError> {
        if !self.powered {
            return Err(SpeError::KeyNotLoaded);
        }
        let exposed: Vec<(u64, [u8; LINE_BYTES])> = self
            .lines
            .iter()
            .filter_map(|(a, s)| match s {
                LineSlot::Plain(d) => Some((*a, *d)),
                _ => None,
            })
            .collect();
        let count = exposed.len();
        for (address, data) in exposed {
            let line = self.specu.context()?.encrypt_line(&data, address)?;
            self.lines.insert(address, LineSlot::Encrypted(line));
        }
        Ok(count)
    }

    /// Powers down: scrubs every exposed line, then clears the volatile
    /// key. Returns the number of lines that had to be encrypted — the
    /// basis of the §6.4 cold-boot window.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError`] if the final scrub fails.
    pub fn power_down(&mut self) -> Result<usize, SpeError> {
        let scrubbed = self.scrub()?;
        self.specu.clear_key();
        self.powered = false;
        Ok(scrubbed)
    }

    /// Rotates the encryption key: decrypts every resident line under the
    /// current key and re-encrypts it under `new_key`. The paper's TPM owns
    /// key provisioning, so rotation models a re-provisioning event (e.g.
    /// scheduled key hygiene or a suspected SPECU compromise).
    ///
    /// Returns the number of lines re-encrypted.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::KeyNotLoaded`] when powered down; on an internal
    /// decryption failure the memory is left unchanged for already-processed
    /// lines (line-granular rotation, as hardware would do it).
    pub fn rekey(&mut self, new_key: crate::key::Key) -> Result<usize, SpeError> {
        if !self.powered {
            return Err(SpeError::KeyNotLoaded);
        }
        // Phase 1: decrypt everything under the current key.
        let addresses: Vec<u64> = self.lines.keys().copied().collect();
        let mut plaintexts = Vec::with_capacity(addresses.len());
        for address in &addresses {
            plaintexts.push((*address, self.read_line(*address)?));
        }
        // Phase 2: re-encrypt everything under the new key.
        self.specu.load_key(new_key);
        for (address, data) in &plaintexts {
            let line = self.specu.context()?.encrypt_line(data, *address)?;
            self.lines.insert(*address, LineSlot::Encrypted(line));
        }
        Ok(plaintexts.len())
    }

    /// Powers up: authenticates against the TPM and reloads the key.
    ///
    /// # Errors
    ///
    /// Returns [`SpeError::AuthenticationFailed`] if this NVMM is not the
    /// one the TPM was provisioned for.
    pub fn power_up(&mut self, tpm: &Tpm) -> Result<(), SpeError> {
        let key = tpm.authenticate(self.id)?;
        self.specu.load_key(key);
        self.powered = true;
        Ok(())
    }

    /// What a physical probe of the powered-down (or stolen) NVMM reads:
    /// the quantized contents of every resident line, with no key needed.
    pub fn probe(&self) -> Vec<(u64, [u8; LINE_BYTES])> {
        let mut out: Vec<(u64, [u8; LINE_BYTES])> = self
            .lines
            .iter()
            .map(|(a, s)| {
                let bytes = match s {
                    LineSlot::Plain(d) => *d,
                    LineSlot::Encrypted(line) => line.data(),
                };
                (*a, bytes)
            })
            .collect();
        out.sort_by_key(|(a, _)| *a);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;
    use std::sync::OnceLock;

    fn specu() -> Specu {
        static CACHE: OnceLock<Specu> = OnceLock::new();
        CACHE
            .get_or_init(|| {
                Specu::builder()
                    .key(Key::from_seed(0xFEED))
                    .build()
                    .expect("specu")
            })
            .clone()
    }

    fn line(seed: u8) -> [u8; LINE_BYTES] {
        core::array::from_fn(|i| seed.wrapping_mul(17).wrapping_add(i as u8))
    }

    #[test]
    fn write_read_roundtrip() {
        let mut mem = SecureNvmm::new(1, specu(), SpeMode::Parallel);
        mem.write_line(0x40, &line(1)).expect("write");
        assert_eq!(mem.read_line(0x40).expect("read"), line(1));
        assert_eq!(mem.read_line(0x999).expect("read"), [0u8; 64]);
    }

    #[test]
    fn parallel_mode_keeps_everything_encrypted() {
        let mut mem = SecureNvmm::new(1, specu(), SpeMode::Parallel);
        for a in 0..4 {
            mem.write_line(a * 64, &line(a as u8)).expect("write");
        }
        for a in 0..4 {
            mem.read_line(a * 64).expect("read");
        }
        assert_eq!(mem.fraction_encrypted(), 1.0);
        assert_eq!(mem.exposed_lines(), 0);
    }

    #[test]
    fn serial_mode_exposes_until_scrub() {
        let mut mem = SecureNvmm::new(1, specu(), SpeMode::Serial);
        for a in 0..4 {
            mem.write_line(a * 64, &line(a as u8)).expect("write");
        }
        mem.read_line(0).expect("read");
        mem.read_line(64).expect("read");
        assert_eq!(mem.exposed_lines(), 2);
        assert!((mem.fraction_encrypted() - 0.5).abs() < 1e-12);
        assert_eq!(mem.scrub().expect("scrub"), 2);
        assert_eq!(mem.fraction_encrypted(), 1.0);
        // Scrubbed lines still decrypt correctly.
        assert_eq!(mem.read_line(0).expect("read"), line(0));
    }

    #[test]
    fn probe_of_encrypted_memory_hides_plaintext() {
        let mut mem = SecureNvmm::new(1, specu(), SpeMode::Parallel);
        mem.write_line(0, &line(7)).expect("write");
        let probed = mem.probe();
        assert_eq!(probed.len(), 1);
        assert_ne!(probed[0].1, line(7), "probe must not see plaintext");
    }

    #[test]
    fn probe_of_serial_exposure_sees_plaintext() {
        let mut mem = SecureNvmm::new(1, specu(), SpeMode::Serial);
        mem.write_line(0, &line(7)).expect("write");
        mem.read_line(0).expect("read");
        assert_eq!(mem.probe()[0].1, line(7), "exposure window is real");
    }

    #[test]
    fn probe_is_sorted_by_address() {
        let mut mem = SecureNvmm::new(1, specu(), SpeMode::Parallel);
        for a in [0x400u64, 0x40, 0x200, 0x0] {
            mem.write_line(a, &line(3)).expect("write");
        }
        let addrs: Vec<u64> = mem.probe().into_iter().map(|(a, _)| a).collect();
        assert_eq!(addrs, vec![0x0, 0x40, 0x200, 0x400]);
    }

    #[test]
    fn power_lifecycle() {
        let key = Key::from_seed(0xFEED);
        let tpm = Tpm::provision(key, 1);
        let mut mem = SecureNvmm::new(1, specu(), SpeMode::Serial);
        mem.write_line(0, &line(9)).expect("write");
        mem.read_line(0).expect("read"); // expose
        let scrubbed = mem.power_down().expect("power down");
        assert_eq!(scrubbed, 1);
        assert!(matches!(mem.read_line(0), Err(SpeError::KeyNotLoaded)));
        assert_eq!(mem.fraction_encrypted(), 1.0);
        mem.power_up(&tpm).expect("power up");
        assert_eq!(mem.read_line(0).expect("read"), line(9), "instant-on");
    }

    #[test]
    fn rekey_preserves_contents_and_changes_ciphertext() {
        let mut mem = SecureNvmm::new(4, specu(), SpeMode::Parallel);
        for a in 0..4u64 {
            mem.write_line(a * 64, &line(a as u8)).expect("write");
        }
        let before = mem.probe();
        let rotated = mem.rekey(Key::from_seed(0xEE)).expect("rekey");
        assert_eq!(rotated, 4);
        // Contents still read back correctly under the new key...
        for a in 0..4u64 {
            assert_eq!(mem.read_line(a * 64).expect("read"), line(a as u8));
        }
        // ...while the ciphertext at rest changed.
        let after = mem.probe();
        assert_ne!(before, after, "rotation must change the stored ciphertext");
        assert_eq!(mem.fraction_encrypted(), 1.0);
    }

    #[test]
    fn rekey_requires_power() {
        let mut mem = SecureNvmm::new(4, specu(), SpeMode::Serial);
        mem.power_down().expect("power down");
        assert!(matches!(
            mem.rekey(Key::from_seed(1)),
            Err(SpeError::KeyNotLoaded)
        ));
    }

    #[test]
    fn foreign_tpm_is_rejected() {
        let tpm = Tpm::provision(Key::from_seed(0xFEED), 2); // bound to NVMM 2
        let mut mem = SecureNvmm::new(1, specu(), SpeMode::Serial);
        mem.power_down().expect("power down");
        assert!(matches!(
            mem.power_up(&tpm),
            Err(SpeError::AuthenticationFailed { .. })
        ));
    }
}
