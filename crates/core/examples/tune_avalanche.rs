//! Development aid: sweep SPECU parameters and measure avalanche balance.

use spe_core::datasets;
use spe_core::{CipherRequest, Key, SpeCipher, Specu, SpecuConfig};

fn bias(bytes: &[u8]) -> f64 {
    let ones: u64 = bytes.iter().map(|b| b.count_ones() as u64).sum();
    ones as f64 / (bytes.len() * 8) as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for rounds in [1usize, 2] {
        for beta in [1.0f64] {
            let config = SpecuConfig {
                rounds,
                context_beta: beta,
                ..SpecuConfig::default()
            };
            let mut specu = Specu::builder()
                .key(Key::from_seed(1))
                .config(config)
                .build()?;
            // Ciphertext level histogram for all-zero plaintext, random keys.
            let mut hist = [0usize; 4];
            for seed in 0..200u64 {
                specu.load_key(Key::from_seed(seed * 7 + 1));
                let ct = specu
                    .encrypt(CipherRequest::block([0u8; 16]))?
                    .into_block()?;
                for byte in ct.data() {
                    for k in 0..4 {
                        hist[(byte >> (6 - 2 * k) & 3) as usize] += 1;
                    }
                }
            }
            let total: usize = hist.iter().sum();
            let ka = datasets::key_avalanche(&specu, 32 * 1024, 11)?;
            let pa = datasets::plaintext_avalanche(&specu, 32 * 1024, 12)?;
            let ld = datasets::density_pt(&specu, 32 * 1024, 13, false)?;
            println!(
                "rounds={rounds} beta={beta}: hist {:?} key-aval {:.3} pt-aval {:.3} lowden {:.3}",
                hist.map(|h| (h as f64 / total as f64 * 100.0).round() as i64),
                bias(&ka),
                bias(&pa),
                bias(&ld)
            );
        }
    }
    Ok(())
}
