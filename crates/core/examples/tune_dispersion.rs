//! Development aid: per-block popcount dispersion of the PT-avalanche
//! stream (block-frequency test proxy; binomial(128, 0.5) has variance 32).

use spe_core::datasets;
use spe_core::{Key, Specu, SpecuConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (rounds, threshold) in [(2usize, 0.35f64), (2, 0.30), (3, 0.35), (3, 0.30)] {
        let config = SpecuConfig {
            rounds,
            train_threshold: threshold,
            ..SpecuConfig::default()
        };
        let specu = Specu::builder()
            .key(Key::from_seed(1))
            .config(config)
            .build()?;
        let bytes = datasets::plaintext_avalanche(&specu, 256 * 1024, 5)?;
        let counts: Vec<f64> = bytes
            .chunks(16)
            .map(|b| b.iter().map(|x| x.count_ones() as f64).sum())
            .collect();
        let mean: f64 = counts.iter().sum::<f64>() / counts.len() as f64;
        let var: f64 =
            counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / counts.len() as f64;
        println!(
            "rounds={rounds} th={threshold}: mean {mean:.1} var {var:.1} (binomial: 64.0 / 32.0)"
        );
    }
    Ok(())
}
