//! Cache-line encryption modes built on AES-128.
//!
//! The NVMM is encrypted at cache-block granularity (64 bytes = four AES
//! blocks). Two modes are provided:
//!
//! * [`AesEcb`] — direct block encryption, the simple "AES" baseline of the
//!   paper's Fig. 7 (no per-line metadata, deterministic per block).
//! * [`AesCtr`] — counter mode with an address/version tweak, the usual
//!   choice for real memory encryption engines (pad can be precomputed).

use crate::aes::Aes128;

/// Size of one cache line, in bytes.
pub const LINE_BYTES: usize = 64;

/// AES-128 in ECB over 64-byte cache lines.
#[derive(Debug, Clone)]
pub struct AesEcb {
    aes: Aes128,
}

impl AesEcb {
    /// Creates the mode from a 128-bit key.
    pub fn new(key: &[u8; 16]) -> Self {
        AesEcb {
            aes: Aes128::new(key),
        }
    }

    /// Encrypts a 64-byte line in place.
    pub fn encrypt_line(&self, line: &mut [u8; LINE_BYTES]) {
        for c in 0..4 {
            let mut block = [0u8; 16];
            block.copy_from_slice(&line[c * 16..(c + 1) * 16]);
            let ct = self.aes.encrypt_block(&block);
            line[c * 16..(c + 1) * 16].copy_from_slice(&ct);
        }
    }

    /// Decrypts a 64-byte line in place.
    pub fn decrypt_line(&self, line: &mut [u8; LINE_BYTES]) {
        for c in 0..4 {
            let mut block = [0u8; 16];
            block.copy_from_slice(&line[c * 16..(c + 1) * 16]);
            let pt = self.aes.decrypt_block(&block);
            line[c * 16..(c + 1) * 16].copy_from_slice(&pt);
        }
    }
}

/// AES-128 in counter mode, tweaked by line address and version.
#[derive(Debug, Clone)]
pub struct AesCtr {
    aes: Aes128,
}

impl AesCtr {
    /// Creates the mode from a 128-bit key.
    pub fn new(key: &[u8; 16]) -> Self {
        AesCtr {
            aes: Aes128::new(key),
        }
    }

    /// Encrypts or decrypts (XOR symmetry) a 64-byte line in place.
    ///
    /// The pad for 16-byte block `c` of the line is
    /// `AES_K(address ∥ version ∥ c)`.
    pub fn apply_line(&self, line: &mut [u8; LINE_BYTES], address: u64, version: u64) {
        for c in 0..4 {
            let mut ctr = [0u8; 16];
            ctr[..8].copy_from_slice(&address.to_le_bytes());
            ctr[8..15].copy_from_slice(&version.to_le_bytes()[..7]);
            ctr[15] = c as u8;
            let pad = self.aes.encrypt_block(&ctr);
            for (b, p) in line[c * 16..(c + 1) * 16].iter_mut().zip(pad) {
                *b ^= p;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(seed: u8) -> [u8; LINE_BYTES] {
        core::array::from_fn(|i| seed.wrapping_mul(31).wrapping_add(i as u8))
    }

    #[test]
    fn ecb_roundtrip() {
        let mode = AesEcb::new(&[9; 16]);
        let original = line(3);
        let mut l = original;
        mode.encrypt_line(&mut l);
        assert_ne!(l, original);
        mode.decrypt_line(&mut l);
        assert_eq!(l, original);
    }

    #[test]
    fn ecb_is_deterministic_per_block() {
        // The ECB weakness: identical blocks encrypt identically.
        let mode = AesEcb::new(&[9; 16]);
        let mut l = [0u8; LINE_BYTES];
        mode.encrypt_line(&mut l);
        assert_eq!(l[0..16], l[16..32]);
    }

    #[test]
    fn ctr_roundtrip_and_tweak() {
        let mode = AesCtr::new(&[7; 16]);
        let original = line(5);
        let mut a = original;
        mode.apply_line(&mut a, 0x1000, 1);
        assert_ne!(a, original);
        let mut b = a;
        mode.apply_line(&mut b, 0x1000, 1);
        assert_eq!(b, original);
        // A different address gives a different ciphertext.
        let mut c = original;
        mode.apply_line(&mut c, 0x1040, 1);
        assert_ne!(c, a);
        // A different version too (no pad reuse after rewrite).
        let mut d = original;
        mode.apply_line(&mut d, 0x1000, 2);
        assert_ne!(d, a);
    }

    #[test]
    fn ctr_roundtrips_any_line() {
        let mode = AesCtr::new(&[1; 16]);
        let mut s = 0xC7Au64;
        for _ in 0..32 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let seed = (s >> 33) as u8;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = s;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let ver = s;
            let original = line(seed);
            let mut l = original;
            mode.apply_line(&mut l, addr, ver);
            mode.apply_line(&mut l, addr, ver);
            assert_eq!(l, original);
        }
    }
}
