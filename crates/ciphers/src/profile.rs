//! Latency/area profiles of the encryption schemes (Table 3 inputs).

use std::fmt;

/// Static cost profile of a memory-encryption scheme.
///
/// These are the per-scheme constants of the paper's Table 3; the measured
/// columns (performance impact, % memory secure) come out of the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeProfile {
    /// Scheme name as printed in Table 3.
    pub name: &'static str,
    /// Extra cycles added to an NVMM read (decryption on the critical path).
    pub read_latency: u32,
    /// Extra cycles added to an NVMM write (encryption).
    pub write_latency: u32,
    /// Extra cycles to re-encrypt after a read (SPE-parallel only).
    pub reencrypt_latency: u32,
    /// Area overhead in mm².
    pub area_mm2: f64,
    /// Technology node of the area figure, in nm (`None` if unspecified in
    /// the source).
    pub technology_nm: Option<u32>,
}

impl SchemeProfile {
    /// AES block cipher over every line (80-cycle engine).
    pub fn aes() -> Self {
        SchemeProfile {
            name: "AES",
            read_latency: 80,
            write_latency: 80,
            reencrypt_latency: 0,
            area_mm2: 8.0,
            technology_nm: Some(180),
        }
    }

    /// i-NVMM: hot pages in plaintext, so most accesses see no latency; the
    /// 80-cycle AES cost applies only when an inert page is re-heated.
    pub fn invmm() -> Self {
        SchemeProfile {
            name: "i-NVMM",
            read_latency: 80,
            write_latency: 0,
            reencrypt_latency: 0,
            area_mm2: 5.3,
            technology_nm: None,
        }
    }

    /// SPE-serial: 16-cycle decryption on read, 16-cycle encryption on
    /// write-back; data stays decrypted on the NVMM between (hence 32
    /// cycles total latency in Table 3 but a small exposure window).
    pub fn spe_serial() -> Self {
        SchemeProfile {
            name: "SPE-serial",
            read_latency: 16,
            write_latency: 16,
            reencrypt_latency: 0,
            area_mm2: 1.3,
            technology_nm: Some(65),
        }
    }

    /// SPE-parallel: re-encrypts immediately after every read (16 + 16
    /// cycles on the read path, 100 % encrypted at all times).
    pub fn spe_parallel() -> Self {
        SchemeProfile {
            name: "SPE-parallel",
            read_latency: 16,
            write_latency: 16,
            reencrypt_latency: 16,
            area_mm2: 1.3,
            technology_nm: Some(65),
        }
    }

    /// Stream cipher with precomputed pads: 1 cycle, big pad store.
    pub fn stream() -> Self {
        SchemeProfile {
            name: "Stream cipher",
            read_latency: 1,
            write_latency: 1,
            reencrypt_latency: 0,
            area_mm2: 6.18,
            technology_nm: Some(65),
        }
    }

    /// Unencrypted baseline.
    pub fn none() -> Self {
        SchemeProfile {
            name: "None",
            read_latency: 0,
            write_latency: 0,
            reencrypt_latency: 0,
            area_mm2: 0.0,
            technology_nm: None,
        }
    }

    /// Total read-path latency including any post-read re-encryption the
    /// scheme serializes before the next access to the same bank.
    pub fn total_read_latency(&self) -> u32 {
        self.read_latency + self.reencrypt_latency
    }
}

impl fmt::Display for SchemeProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (read +{} cyc, write +{} cyc, {:.2} mm²)",
            self.name, self.read_latency, self.write_latency, self.area_mm2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_latency_ordering() {
        // Table 3: stream (1) < SPE-parallel path (16+16) ~ SPE-serial (32)
        // < AES (80).
        assert!(SchemeProfile::stream().read_latency < SchemeProfile::spe_serial().read_latency);
        assert_eq!(SchemeProfile::spe_parallel().total_read_latency(), 32);
        assert!(
            SchemeProfile::spe_parallel().total_read_latency() < SchemeProfile::aes().read_latency
        );
    }

    #[test]
    fn table3_area_ordering() {
        // SPE is the smallest; stream ciphers ~5x SPE; AES largest at 180nm.
        let spe = SchemeProfile::spe_serial().area_mm2;
        assert!(SchemeProfile::stream().area_mm2 > 4.0 * spe);
        assert!(SchemeProfile::aes().area_mm2 > SchemeProfile::stream().area_mm2);
    }

    #[test]
    fn display_mentions_name() {
        assert!(SchemeProfile::aes().to_string().contains("AES"));
    }
}
