//! Baseline memory-encryption schemes the paper compares SPE against.
//!
//! Three baselines appear in the paper's Figs. 7–8 and Table 3:
//!
//! * **AES block cipher** — full-strength encryption of every cache line
//!   ([`Aes128`] implemented from first principles: the S-box is *computed*
//!   from the GF(2⁸) inverse + affine map rather than transcribed, and the
//!   cipher is validated against the FIPS-197 test vectors). Line-level
//!   modes live in [`modes`].
//! * **Stream cipher** \[5, 8\] — pad-ahead XOR encryption with low read
//!   latency but large pad-storage area. The keystream generator is a full
//!   [`Trivium`] implementation; [`StreamMemoryCipher`] applies it per cache
//!   line with an address/version tweak.
//! * **i-NVMM** \[4\] — incremental encryption of *inert* pages (pages not
//!   touched for a window), with the remainder encrypted at power-down;
//!   modelled by [`InertPageTracker`].
//!
//! [`SchemeProfile`] carries the latency/area figures of the paper's
//! Table 3 so the cycle-level simulator and the harness share one source of
//! truth.

#![deny(unsafe_code)]

pub mod aes;
pub mod invmm;
pub mod modes;
pub mod profile;
pub mod stream;
pub mod trivium;

pub use aes::Aes128;
pub use invmm::InertPageTracker;
pub use modes::{AesCtr, AesEcb};
pub use profile::SchemeProfile;
pub use stream::StreamMemoryCipher;
pub use trivium::Trivium;
