//! Stream-cipher memory encryption (paper refs [5, 8]).
//!
//! Each cache line is XORed with a Trivium pad derived from the key and a
//! per-line (address, version) tweak. Real designs precompute pads to hide
//! latency — that is why Table 3 credits stream ciphers with a 1-cycle read
//! latency and charges them a large pad-storage area.

use crate::trivium::Trivium;

/// Size of one cache line, in bytes.
use crate::modes::LINE_BYTES;

/// Stream-cipher line encryption with per-line tweaked pads.
#[derive(Debug, Clone)]
pub struct StreamMemoryCipher {
    key: [u8; 10],
}

impl StreamMemoryCipher {
    /// Creates the cipher from an 80-bit key.
    pub fn new(key: [u8; 10]) -> Self {
        StreamMemoryCipher { key }
    }

    /// The 64-byte pad for a line (precomputable ahead of the access).
    pub fn pad(&self, address: u64, version: u32) -> [u8; LINE_BYTES] {
        let mut iv = [0u8; 10];
        iv[..8].copy_from_slice(&(address >> 6).to_le_bytes()); // line index
        iv[8] = version as u8;
        iv[9] = (version >> 8) as u8;
        let mut t = Trivium::new(&self.key, &iv);
        let mut pad = [0u8; LINE_BYTES];
        for b in pad.iter_mut() {
            *b = t.next_byte();
        }
        pad
    }

    /// Encrypts or decrypts a line in place (XOR symmetry).
    pub fn apply_line(&self, line: &mut [u8; LINE_BYTES], address: u64, version: u32) {
        let pad = self.pad(address, version);
        for (b, p) in line.iter_mut().zip(pad) {
            *b ^= p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let cipher = StreamMemoryCipher::new([0x11; 10]);
        let original: [u8; LINE_BYTES] = core::array::from_fn(|i| i as u8);
        let mut l = original;
        cipher.apply_line(&mut l, 0x4000, 0);
        assert_ne!(l, original);
        cipher.apply_line(&mut l, 0x4000, 0);
        assert_eq!(l, original);
    }

    #[test]
    fn pads_differ_per_line_and_version() {
        let cipher = StreamMemoryCipher::new([0x22; 10]);
        let a = cipher.pad(0x4000, 0);
        let b = cipher.pad(0x4040, 0);
        let c = cipher.pad(0x4000, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn pad_is_reproducible() {
        let cipher = StreamMemoryCipher::new([0x33; 10]);
        assert_eq!(cipher.pad(0x8000, 7), cipher.pad(0x8000, 7));
    }
}
