//! The i-NVMM incremental-encryption model (paper ref \[4\]).
//!
//! i-NVMM keeps *hot* pages in plaintext for speed and encrypts *inert*
//! pages — pages not accessed for a window — in the background; everything
//! left is encrypted at power-down. The model tracks page states against a
//! cycle clock so the simulator can sample the encrypted fraction over time
//! (Fig. 8) and size the power-down exposure window (the 14.6 s the paper
//! quotes against i-NVMM in §2).

use std::collections::HashMap;

/// Page lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Plaintext in memory (recently used).
    Hot,
    /// Encrypted in memory.
    Encrypted,
}

/// Tracks page heat and drives incremental background encryption.
#[derive(Debug, Clone)]
pub struct InertPageTracker {
    /// Bytes per page.
    pub page_bytes: u64,
    /// Idle window (in cycles) after which a page is considered inert.
    pub inert_window: u64,
    pages: HashMap<u64, PageEntry>,
}

#[derive(Debug, Clone, Copy)]
struct PageEntry {
    last_access: u64,
    state: PageState,
}

impl InertPageTracker {
    /// Creates a tracker (the reference design uses 4 KiB pages).
    pub fn new(page_bytes: u64, inert_window: u64) -> Self {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        InertPageTracker {
            page_bytes,
            inert_window,
            pages: HashMap::new(),
        }
    }

    /// Page index of a byte address.
    pub fn page_of(&self, address: u64) -> u64 {
        address / self.page_bytes
    }

    /// Records an access at cycle `now`. Returns `true` if the page had to
    /// be decrypted first (the access pays the decryption latency).
    ///
    /// A page touched for the first time holds no ciphertext yet (it was
    /// never written through the engine), so only *re-heating* a page the
    /// background scrub previously encrypted pays the decryption cost.
    pub fn on_access(&mut self, address: u64, now: u64) -> bool {
        let page = self.page_of(address);
        let entry = self.pages.entry(page).or_insert(PageEntry {
            last_access: now,
            state: PageState::Hot,
        });
        let was_encrypted = entry.state == PageState::Encrypted;
        entry.state = PageState::Hot;
        entry.last_access = now;
        was_encrypted
    }

    /// Background scrub at cycle `now`: encrypts every hot page idle for at
    /// least the inert window. Returns the number of pages encrypted.
    pub fn scrub(&mut self, now: u64) -> usize {
        let window = self.inert_window;
        let mut encrypted = 0;
        for entry in self.pages.values_mut() {
            if entry.state == PageState::Hot && now.saturating_sub(entry.last_access) >= window {
                entry.state = PageState::Encrypted;
                encrypted += 1;
            }
        }
        encrypted
    }

    /// Number of pages ever touched.
    pub fn touched_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of currently hot (plaintext) pages.
    pub fn hot_pages(&self) -> usize {
        self.pages
            .values()
            .filter(|e| e.state == PageState::Hot)
            .count()
    }

    /// Fraction of touched memory currently encrypted (1.0 when nothing has
    /// been touched — untouched memory is ciphertext at rest).
    pub fn fraction_encrypted(&self) -> f64 {
        if self.pages.is_empty() {
            return 1.0;
        }
        1.0 - self.hot_pages() as f64 / self.pages.len() as f64
    }

    /// Power-down: encrypts every remaining hot page. Returns
    /// `(pages_encrypted, seconds)` given an AES engine throughput in
    /// bytes/second — the attacker's cold-boot window against i-NVMM.
    pub fn power_down(&mut self, aes_bytes_per_second: f64) -> (usize, f64) {
        let hot = self.hot_pages();
        for entry in self.pages.values_mut() {
            entry.state = PageState::Encrypted;
        }
        let bytes = hot as u64 * self.page_bytes;
        (hot, bytes as f64 / aes_bytes_per_second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> InertPageTracker {
        InertPageTracker::new(4096, 1_000_000)
    }

    #[test]
    fn first_touch_is_free_reheat_decrypts() {
        let mut t = tracker();
        assert!(!t.on_access(0x1234, 0), "fresh page holds no ciphertext");
        assert!(!t.on_access(0x1000, 10), "same page already hot");
        assert_eq!(t.hot_pages(), 1);
        t.scrub(5_000_000);
        assert!(t.on_access(0x1000, 5_000_001), "re-heat pays decryption");
    }

    #[test]
    fn scrub_encrypts_idle_pages_only() {
        let mut t = tracker();
        t.on_access(0x0000, 0); // page 0
        t.on_access(0x2000, 900_000); // page 2, recent
        assert_eq!(t.scrub(1_000_000), 1);
        assert_eq!(t.hot_pages(), 1);
        assert!((t.fraction_encrypted() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rehot_after_scrub_pays_decryption() {
        let mut t = tracker();
        t.on_access(0x0000, 0);
        t.scrub(2_000_000);
        assert!(t.on_access(0x0000, 2_000_001), "re-access decrypts again");
    }

    #[test]
    fn untouched_memory_counts_encrypted() {
        let t = tracker();
        assert_eq!(t.fraction_encrypted(), 1.0);
    }

    #[test]
    fn power_down_encrypts_everything_with_window() {
        let mut t = tracker();
        for p in 0..10u64 {
            t.on_access(p * 4096, 0);
        }
        // 10 hot 4 KiB pages at 100 MB/s -> 40960/1e8 s.
        let (pages, secs) = t.power_down(100.0e6);
        assert_eq!(pages, 10);
        assert!((secs - 40960.0 / 100.0e6).abs() < 1e-12);
        assert_eq!(t.fraction_encrypted(), 1.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_page_size() {
        InertPageTracker::new(1000, 1);
    }
}
