//! The Trivium hardware stream cipher (eSTREAM portfolio).
//!
//! Trivium's tiny footprint is why stream-cipher NVMM protection (paper
//! refs \[5, 8\]) is attractive; its weakness — pad storage and stream
//! cipher attacks \[9\] — is what motivates the paper's comparison. Bit
//! ordering within key/IV bytes is LSB-first (an implementation convention;
//! this module's tests pin determinism, period behaviour and roundtrips).

/// Trivium keystream generator: 80-bit key, 80-bit IV, 288-bit state.
#[derive(Debug, Clone)]
pub struct Trivium {
    /// Registers A (93 bits), B (84 bits), C (111 bits), index 0 = s1.
    a: [u8; 93],
    b: [u8; 84],
    c: [u8; 111],
}

impl Trivium {
    /// Initializes the cipher with a key and IV (10 bytes each), running
    /// the specified 4×288 warm-up rounds.
    ///
    /// # Example
    ///
    /// ```
    /// use spe_ciphers::Trivium;
    /// let mut t = Trivium::new(&[7u8; 10], &[1u8; 10]);
    /// let pad = t.keystream_bytes(16);
    /// assert_eq!(pad.len(), 16);
    /// ```
    pub fn new(key: &[u8; 10], iv: &[u8; 10]) -> Self {
        let mut t = Trivium {
            a: [0; 93],
            b: [0; 84],
            c: [0; 111],
        };
        for i in 0..80 {
            t.a[i] = key[i / 8] >> (i % 8) & 1;
            t.b[i] = iv[i / 8] >> (i % 8) & 1;
        }
        t.c[108] = 1;
        t.c[109] = 1;
        t.c[110] = 1;
        for _ in 0..4 * 288 {
            t.round();
        }
        t
    }

    /// One state update; returns the output bit.
    fn round(&mut self) -> u8 {
        let t1 = self.a[65] ^ self.a[92];
        let t2 = self.b[68] ^ self.b[83];
        let t3 = self.c[65] ^ self.c[110];
        let z = t1 ^ t2 ^ t3;
        let t1 = t1 ^ (self.a[90] & self.a[91]) ^ self.b[77];
        let t2 = t2 ^ (self.b[81] & self.b[82]) ^ self.c[86];
        let t3 = t3 ^ (self.c[108] & self.c[109]) ^ self.a[68];
        self.a.rotate_right(1);
        self.a[0] = t3;
        self.b.rotate_right(1);
        self.b[0] = t1;
        self.c.rotate_right(1);
        self.c[0] = t2;
        z
    }

    /// The next keystream bit.
    pub fn next_bit(&mut self) -> u8 {
        self.round()
    }

    /// The next keystream byte (LSB first).
    pub fn next_byte(&mut self) -> u8 {
        let mut byte = 0u8;
        for k in 0..8 {
            byte |= self.round() << k;
        }
        byte
    }

    /// Generates `n` keystream bytes.
    pub fn keystream_bytes(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.next_byte()).collect()
    }

    /// XORs the keystream into a buffer (encrypt == decrypt).
    pub fn apply(&mut self, data: &mut [u8]) {
        for b in data.iter_mut() {
            *b ^= self.next_byte();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_key_iv() {
        let a = Trivium::new(&[3; 10], &[9; 10]).keystream_bytes(64);
        let b = Trivium::new(&[3; 10], &[9; 10]).keystream_bytes(64);
        assert_eq!(a, b);
    }

    #[test]
    fn different_iv_different_stream() {
        let a = Trivium::new(&[3; 10], &[0; 10]).keystream_bytes(64);
        let b = Trivium::new(&[3; 10], &[1; 10]).keystream_bytes(64);
        assert_ne!(a, b);
        // And substantially different, not just one byte.
        let diff = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        assert!(diff > 48, "only {diff}/64 bytes differ");
    }

    #[test]
    fn key_avalanche() {
        let mut k1 = [0x5Au8; 10];
        let a = Trivium::new(&k1, &[7; 10]).keystream_bytes(128);
        k1[0] ^= 1;
        let b = Trivium::new(&k1, &[7; 10]).keystream_bytes(128);
        let bit_diff: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
        assert!(
            (384..=640).contains(&bit_diff),
            "single key bit flip changed {bit_diff}/1024 keystream bits"
        );
    }

    #[test]
    fn xor_roundtrip() {
        let mut data = *b"secret page data in the NVMM!!!!";
        let original = data;
        Trivium::new(&[1; 10], &[2; 10]).apply(&mut data);
        assert_ne!(data, original);
        Trivium::new(&[1; 10], &[2; 10]).apply(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn keystream_is_balanced() {
        let bytes = Trivium::new(&[0xAB; 10], &[0xCD; 10]).keystream_bytes(4096);
        let ones: u32 = bytes.iter().map(|b| b.count_ones()).sum();
        let total = 4096 * 8;
        let ratio = ones as f64 / total as f64;
        assert!(
            (0.47..0.53).contains(&ratio),
            "keystream bias: {ratio} ones"
        );
    }
}
