//! AES-128 from first principles.
//!
//! The S-box is derived at construction time from the multiplicative
//! inverse in GF(2⁸) followed by the affine transformation, so no 256-entry
//! table needs to be transcribed (and a transcription error is impossible —
//! the FIPS-197 test vectors in this module's tests pin the behaviour).

/// Multiplication in GF(2⁸) modulo the AES polynomial `x⁸+x⁴+x³+x+1`.
pub(crate) fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 == 1 {
            p ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    p
}

/// Builds the AES S-box from the field inverse + affine map.
fn build_sbox() -> [u8; 256] {
    // Field inverses by brute force (tiny, done once).
    let mut inv = [0u8; 256];
    for a in 1..=255u8 {
        for b in 1..=255u8 {
            if gf_mul(a, b) == 1 {
                inv[a as usize] = b;
                break;
            }
        }
    }
    let mut sbox = [0u8; 256];
    for (i, item) in sbox.iter_mut().enumerate() {
        let x = inv[i];
        *item =
            x ^ x.rotate_left(1) ^ x.rotate_left(2) ^ x.rotate_left(3) ^ x.rotate_left(4) ^ 0x63;
    }
    sbox
}

/// AES-128 block cipher (16-byte blocks, 10 rounds).
#[derive(Debug, Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
}

impl Aes128 {
    /// Expands a 128-bit key.
    ///
    /// # Example
    ///
    /// ```
    /// use spe_ciphers::Aes128;
    /// let aes = Aes128::new(&[0u8; 16]);
    /// let ct = aes.encrypt_block(&[0u8; 16]);
    /// assert_eq!(aes.decrypt_block(&ct), [0u8; 16]);
    /// ```
    pub fn new(key: &[u8; 16]) -> Self {
        let sbox = build_sbox();
        let mut inv_sbox = [0u8; 256];
        for (i, s) in sbox.iter().enumerate() {
            inv_sbox[*s as usize] = i as u8;
        }
        let mut round_keys = [[0u8; 16]; 11];
        round_keys[0] = *key;
        let mut rcon = 1u8;
        for r in 1..11 {
            let prev = round_keys[r - 1];
            let mut word = [prev[12], prev[13], prev[14], prev[15]];
            // RotWord + SubWord + Rcon.
            word.rotate_left(1);
            for b in word.iter_mut() {
                *b = sbox[*b as usize];
            }
            word[0] ^= rcon;
            rcon = gf_mul(rcon, 2);
            for c in 0..4 {
                for i in 0..4 {
                    let prev_word = prev[c * 4 + i];
                    let x = if c == 0 {
                        word[i] ^ prev_word
                    } else {
                        round_keys[r][(c - 1) * 4 + i] ^ prev_word
                    };
                    round_keys[r][c * 4 + i] = x;
                }
            }
        }
        Aes128 {
            round_keys,
            sbox,
            inv_sbox,
        }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, plaintext: &[u8; 16]) -> [u8; 16] {
        let mut s = *plaintext;
        add_round_key(&mut s, &self.round_keys[0]);
        for r in 1..10 {
            self.sub_bytes(&mut s);
            shift_rows(&mut s);
            mix_columns(&mut s);
            add_round_key(&mut s, &self.round_keys[r]);
        }
        self.sub_bytes(&mut s);
        shift_rows(&mut s);
        add_round_key(&mut s, &self.round_keys[10]);
        s
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, ciphertext: &[u8; 16]) -> [u8; 16] {
        let mut s = *ciphertext;
        add_round_key(&mut s, &self.round_keys[10]);
        inv_shift_rows(&mut s);
        self.inv_sub_bytes(&mut s);
        for r in (1..10).rev() {
            add_round_key(&mut s, &self.round_keys[r]);
            inv_mix_columns(&mut s);
            inv_shift_rows(&mut s);
            self.inv_sub_bytes(&mut s);
        }
        add_round_key(&mut s, &self.round_keys[0]);
        s
    }

    fn sub_bytes(&self, s: &mut [u8; 16]) {
        for b in s.iter_mut() {
            *b = self.sbox[*b as usize];
        }
    }

    fn inv_sub_bytes(&self, s: &mut [u8; 16]) {
        for b in s.iter_mut() {
            *b = self.inv_sbox[*b as usize];
        }
    }
}

fn add_round_key(s: &mut [u8; 16], k: &[u8; 16]) {
    for (b, kb) in s.iter_mut().zip(k) {
        *b ^= kb;
    }
}

/// State layout: column-major, `s[c*4 + r]` = row r, column c (FIPS order).
fn shift_rows(s: &mut [u8; 16]) {
    let orig = *s;
    for r in 1..4 {
        for c in 0..4 {
            s[c * 4 + r] = orig[((c + r) % 4) * 4 + r];
        }
    }
}

fn inv_shift_rows(s: &mut [u8; 16]) {
    let orig = *s;
    for r in 1..4 {
        for c in 0..4 {
            s[((c + r) % 4) * 4 + r] = orig[c * 4 + r];
        }
    }
}

fn mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[c * 4], s[c * 4 + 1], s[c * 4 + 2], s[c * 4 + 3]];
        s[c * 4] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        s[c * 4 + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        s[c * 4 + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        s[c * 4 + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

fn inv_mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[c * 4], s[c * 4 + 1], s[c * 4 + 2], s[c * 4 + 3]];
        s[c * 4] = gf_mul(col[0], 0x0E)
            ^ gf_mul(col[1], 0x0B)
            ^ gf_mul(col[2], 0x0D)
            ^ gf_mul(col[3], 0x09);
        s[c * 4 + 1] = gf_mul(col[0], 0x09)
            ^ gf_mul(col[1], 0x0E)
            ^ gf_mul(col[2], 0x0B)
            ^ gf_mul(col[3], 0x0D);
        s[c * 4 + 2] = gf_mul(col[0], 0x0D)
            ^ gf_mul(col[1], 0x09)
            ^ gf_mul(col[2], 0x0E)
            ^ gf_mul(col[3], 0x0B);
        s[c * 4 + 3] = gf_mul(col[0], 0x0B)
            ^ gf_mul(col[1], 0x0D)
            ^ gf_mul(col[2], 0x09)
            ^ gf_mul(col[3], 0x0E);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_has_known_landmarks() {
        let sbox = build_sbox();
        // Canonical spot values from FIPS-197.
        assert_eq!(sbox[0x00], 0x63);
        assert_eq!(sbox[0x01], 0x7C);
        assert_eq!(sbox[0x53], 0xED);
        assert_eq!(sbox[0xFF], 0x16);
    }

    #[test]
    fn sbox_is_a_permutation() {
        let sbox = build_sbox();
        let mut seen = [false; 256];
        for v in sbox {
            assert!(!seen[v as usize], "duplicate S-box value {v:#x}");
            seen[v as usize] = true;
        }
    }

    #[test]
    fn gf_mul_basics() {
        assert_eq!(gf_mul(0x57, 0x83), 0xC1); // FIPS-197 §4.2 example
        assert_eq!(gf_mul(0x57, 0x13), 0xFE);
        assert_eq!(gf_mul(1, 0xAB), 0xAB);
        assert_eq!(gf_mul(0, 0xAB), 0);
    }

    #[test]
    fn fips197_appendix_b_vector() {
        let key = [
            0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF,
            0x4F, 0x3C,
        ];
        let pt = [
            0x32, 0x43, 0xF6, 0xA8, 0x88, 0x5A, 0x30, 0x8D, 0x31, 0x31, 0x98, 0xA2, 0xE0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1D, 0x02, 0xDC, 0x09, 0xFB, 0xDC, 0x11, 0x85, 0x97, 0x19, 0x6A,
            0x0B, 0x32,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt_block(&pt), expected);
        assert_eq!(aes.decrypt_block(&expected), pt);
    }

    #[test]
    fn fips197_appendix_c_vector() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
        let expected = [
            0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30, 0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4,
            0xC5, 0x5A,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt_block(&pt), expected);
        assert_eq!(aes.decrypt_block(&expected), pt);
    }

    #[test]
    fn avalanche_in_plaintext() {
        let aes = Aes128::new(&[0x42; 16]);
        let a = aes.encrypt_block(&[0u8; 16]);
        let mut flipped = [0u8; 16];
        flipped[0] = 1;
        let b = aes.encrypt_block(&flipped);
        let diff: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
        assert!(
            (40..=88).contains(&diff),
            "single-bit flip changed {diff}/128 bits"
        );
    }

    #[test]
    fn roundtrip() {
        let mut s = 0xAE5_128u64;
        let mut block = move || {
            let mut out = [0u8; 16];
            for b in out.iter_mut() {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *b = (s >> 33) as u8;
            }
            out
        };
        for _ in 0..32 {
            let (key, pt) = (block(), block());
            let aes = Aes128::new(&key);
            assert_eq!(aes.decrypt_block(&aes.encrypt_block(&pt)), pt);
        }
    }
}
