//! The full test suite runner (the paper's Table 2 machinery).

use crate::bits::Bits;
use crate::tests::{self, TestResult};
use std::fmt;

/// Names of the fifteen tests, in the order of the paper's Table 2.
pub const TEST_NAMES: [&str; 15] = [
    "frequency",
    "block-frequency",
    "runs",
    "longest-run",
    "matrix-rank",
    "dft",
    "non-overlapping-template",
    "overlapping-template",
    "universal",
    "linear-complexity",
    "serial",
    "approximate-entropy",
    "cusum",
    "random-excursions",
    "random-excursions-variant",
];

/// Configuration of the suite (parameterized tests use these values).
#[derive(Debug, Clone, PartialEq)]
pub struct Suite {
    /// Significance level (the paper uses 0.01).
    pub alpha: f64,
    /// Block frequency block size.
    pub block_frequency_m: usize,
    /// Serial test pattern length.
    pub serial_m: usize,
    /// Approximate entropy block length.
    pub approximate_entropy_m: usize,
    /// Linear complexity block size.
    pub linear_complexity_m: usize,
    /// Non-overlapping template.
    pub template: Vec<u8>,
}

impl Default for Suite {
    fn default() -> Self {
        Suite {
            alpha: 0.01,
            block_frequency_m: 128,
            serial_m: 5,
            approximate_entropy_m: 3,
            linear_complexity_m: 500,
            template: tests::DEFAULT_APERIODIC_TEMPLATE.to_vec(),
        }
    }
}

impl Suite {
    /// Creates the suite with the reference parameters.
    pub fn new() -> Self {
        Suite::default()
    }

    /// Runs every test on a sequence.
    pub fn run(&self, bits: &Bits) -> SuiteReport {
        let results = vec![
            tests::frequency(bits),
            tests::block_frequency(bits, self.block_frequency_m),
            tests::runs(bits),
            tests::longest_run(bits),
            tests::matrix_rank(bits),
            tests::dft(bits),
            tests::non_overlapping_template(bits, &self.template),
            tests::overlapping_template(bits),
            tests::universal(bits),
            tests::linear_complexity(bits, self.linear_complexity_m),
            tests::serial(bits, self.serial_m),
            tests::approximate_entropy(bits, self.approximate_entropy_m),
            tests::cusum(bits),
            tests::random_excursions(bits),
            tests::random_excursions_variant(bits),
        ];
        SuiteReport {
            alpha: self.alpha,
            results,
        }
    }

    /// Runs the suite over many sequences and tallies failures per test —
    /// exactly the numbers the paper's Table 2 reports ("number of failed
    /// sequences out of 150 for each test").
    pub fn tally<'a, I>(&self, sequences: I) -> FailureTally
    where
        I: IntoIterator<Item = &'a Bits>,
    {
        let mut failed = [0usize; 15];
        let mut applicable = [0usize; 15];
        let mut not_applicable = [0usize; 15];
        let mut p_values: [Vec<f64>; 15] = Default::default();
        let mut total = 0usize;
        for bits in sequences {
            total += 1;
            let report = self.run(bits);
            for (i, result) in report.results.iter().enumerate() {
                match result.passes(self.alpha) {
                    Some(pass) => {
                        applicable[i] += 1;
                        if !pass {
                            failed[i] += 1;
                        }
                        if let TestResult::Done { p_values: ps } = result {
                            p_values[i].extend_from_slice(ps);
                        }
                    }
                    None => not_applicable[i] += 1,
                }
            }
        }
        FailureTally {
            sequences: total,
            failed,
            applicable,
            not_applicable,
            p_values,
        }
    }
}

/// Second-level analysis of a batch of p-values (SP 800-22 §4.2.2): the
/// p-values of a good generator are themselves uniform on [0, 1]; this
/// checks uniformity with a 10-bin chi-square and returns the P-value of
/// the P-values.
///
/// Returns `None` for fewer than 55 samples (the reference suite's minimum
/// for the 10-bin chi-square approximation).
///
/// # Example
///
/// ```
/// let uniform: Vec<f64> = (0..100).map(|i| (i as f64 + 0.5) / 100.0).collect();
/// let p = spe_nist::suite::pvalue_uniformity(&uniform).unwrap();
/// assert!(p > 0.99, "perfectly uniform p-values score high");
/// ```
pub fn pvalue_uniformity(p_values: &[f64]) -> Option<f64> {
    if p_values.len() < 55 {
        return None;
    }
    let mut bins = [0usize; 10];
    for p in p_values {
        let b = ((p * 10.0) as usize).min(9);
        bins[b] += 1;
    }
    let expected = p_values.len() as f64 / 10.0;
    let chi2: f64 = bins
        .iter()
        .map(|o| {
            let d = *o as f64 - expected;
            d * d / expected
        })
        .sum();
    Some(crate::special::igamc(4.5, chi2 / 2.0))
}

/// Per-sequence results for all fifteen tests.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteReport {
    alpha: f64,
    results: Vec<TestResult>,
}

/// One test's outcome in a [`SuiteReport`].
#[derive(Debug, Clone, PartialEq)]
pub enum TestOutcome {
    /// All (Bonferroni-adjusted) p-values at or above threshold.
    Passed,
    /// At least one p-value below threshold.
    Failed {
        /// The smallest p-value observed.
        min_p: f64,
    },
    /// The sequence was too short for this test.
    NotApplicable {
        /// Why the test could not run.
        reason: String,
    },
}

impl SuiteReport {
    /// The raw [`TestResult`] for a test by name.
    pub fn result(&self, name: &str) -> Option<&TestResult> {
        let idx = TEST_NAMES.iter().position(|n| *n == name)?;
        self.results.get(idx)
    }

    /// Whether the sequence passed a test (None if unknown name or not
    /// applicable).
    pub fn passed(&self, name: &str) -> Option<bool> {
        self.result(name)?.passes(self.alpha)
    }

    /// The outcome of every test, in [`TEST_NAMES`] order.
    pub fn outcomes(&self) -> Vec<(&'static str, TestOutcome)> {
        TEST_NAMES
            .iter()
            .zip(&self.results)
            .map(|(name, result)| {
                let outcome = match result.passes(self.alpha) {
                    Some(true) => TestOutcome::Passed,
                    Some(false) => TestOutcome::Failed {
                        min_p: result.min_p().unwrap_or(0.0),
                    },
                    None => match result {
                        TestResult::NotApplicable { reason } => TestOutcome::NotApplicable {
                            reason: reason.clone(),
                        },
                        _ => unreachable!("Done results always report pass/fail"),
                    },
                };
                (*name, outcome)
            })
            .collect()
    }

    /// Number of applicable tests the sequence failed.
    pub fn failures(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.passes(self.alpha) == Some(false))
            .count()
    }
}

/// Failure counts across a batch of sequences (one Table 2 column).
#[derive(Debug, Clone, PartialEq)]
pub struct FailureTally {
    /// Number of sequences examined.
    pub sequences: usize,
    /// Failures per test, in [`TEST_NAMES`] order.
    pub failed: [usize; 15],
    /// Applicable sequence count per test.
    pub applicable: [usize; 15],
    /// Sequences per test that were too short to run it at all. A test
    /// that never ran reports `0 / 0` failures, not a pass — these counts
    /// keep that visible.
    pub not_applicable: [usize; 15],
    /// Every p-value observed per test (for second-level uniformity).
    pub p_values: [Vec<f64>; 15],
}

impl FailureTally {
    /// Whether the batch satisfies the paper's acceptance rule: at
    /// significance 0.01 and 150 sequences, no more than `max_failures`
    /// failures per test.
    pub fn passes(&self, max_failures: usize) -> bool {
        self.failed.iter().all(|f| *f <= max_failures)
    }

    /// Failure count for a test by name.
    pub fn failures_for(&self, name: &str) -> Option<usize> {
        let idx = TEST_NAMES.iter().position(|n| *n == name)?;
        Some(self.failed[idx])
    }

    /// Not-applicable sequence count for a test by name.
    pub fn not_applicable_for(&self, name: &str) -> Option<usize> {
        let idx = TEST_NAMES.iter().position(|n| *n == name)?;
        Some(self.not_applicable[idx])
    }

    /// Second-level uniformity P-value per test (SP 800-22 §4.2.2), `None`
    /// where too few p-values accumulated.
    pub fn uniformity(&self) -> [Option<f64>; 15] {
        core::array::from_fn(|i| pvalue_uniformity(&self.p_values[i]))
    }
}

impl fmt::Display for FailureTally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "failures out of {} sequences:", self.sequences)?;
        for (i, name) in TEST_NAMES.iter().enumerate() {
            write!(
                f,
                "  {name:<28} {:>3} / {:>3}",
                self.failed[i], self.applicable[i]
            )?;
            if self.not_applicable[i] > 0 {
                write!(f, "  ({} not applicable)", self.not_applicable[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod suite_tests {
    use super::*;

    fn prng_bits(len: usize, seed: u64) -> Bits {
        let mut state = seed;
        Bits::from_fn(len, |_| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            (z ^ (z >> 31)) >> 63 == 1
        })
    }

    #[test]
    fn good_stream_passes_every_applicable_test() {
        let bits = prng_bits(1 << 16, 1234);
        let report = Suite::new().run(&bits);
        for (name, outcome) in report.outcomes() {
            if let TestOutcome::Failed { min_p } = outcome {
                panic!("{name} failed with min p {min_p}");
            }
        }
    }

    #[test]
    fn constant_stream_fails_many_tests() {
        let bits = Bits::from_fn(1 << 16, |_| true);
        let report = Suite::new().run(&bits);
        assert!(report.failures() >= 4, "got {} failures", report.failures());
        assert_eq!(report.passed("frequency"), Some(false));
        assert_eq!(report.passed("runs"), Some(false));
    }

    #[test]
    fn tally_counts_failures() {
        let good: Vec<Bits> = (0..4).map(|s| prng_bits(1 << 14, s)).collect();
        let tally = Suite::new().tally(good.iter());
        assert_eq!(tally.sequences, 4);
        assert!(tally.passes(1), "{tally}");
        let bad = vec![Bits::from_fn(1 << 14, |_| false); 2];
        let tally = Suite::new().tally(bad.iter());
        assert!(!tally.passes(0));
        assert_eq!(tally.failures_for("frequency"), Some(2));
    }

    #[test]
    fn tally_reports_not_applicable_instead_of_zero_failures() {
        // Sequences far too short for the long-range tests: those rows
        // must show up as not-applicable, not as clean 0-failure passes.
        let short: Vec<Bits> = (0..3).map(|s| prng_bits(256, s)).collect();
        let tally = Suite::new().tally(short.iter());
        assert_eq!(tally.sequences, 3);
        let na: usize = tally.not_applicable.iter().sum();
        assert!(na > 0, "256-bit sequences must skip some tests");
        // Per test, applicable + not-applicable account for every sequence.
        for i in 0..15 {
            assert_eq!(tally.applicable[i] + tally.not_applicable[i], 3);
        }
        // The Display output names the skipped rows.
        let text = tally.to_string();
        assert!(text.contains("not applicable"), "{text}");
        // Sequences long enough for the short-range tests report them as
        // fully applicable; data-dependent skips (e.g. too few random-walk
        // cycles for the excursions tests) stay accounted per test.
        let long: Vec<Bits> = (0..2).map(|s| prng_bits(1 << 16, s)).collect();
        let tally = Suite::new().tally(long.iter());
        assert_eq!(tally.not_applicable_for("frequency"), Some(0));
        assert_eq!(tally.not_applicable_for("runs"), Some(0));
        for i in 0..15 {
            assert_eq!(tally.applicable[i] + tally.not_applicable[i], 2);
        }
    }

    #[test]
    fn report_lookup_by_name() {
        let bits = prng_bits(1 << 14, 5);
        let report = Suite::new().run(&bits);
        assert!(report.result("frequency").is_some());
        assert!(report.result("nonexistent").is_none());
        assert_eq!(report.passed("nonexistent"), None);
    }
}
