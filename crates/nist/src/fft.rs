//! Iterative radix-2 complex FFT for the spectral (DFT) test.

use std::f64::consts::PI;

/// In-place iterative radix-2 Cooley–Tukey FFT over interleaved complex
/// values `(re, im)`.
///
/// # Panics
///
/// Panics if the number of complex points is not a power of two.
pub fn fft_in_place(data: &mut [(f64, f64)]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut start = 0;
        while start < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ar, ai) = data[start + k];
                let (br, bi) = data[start + k + len / 2];
                let (tr, ti) = (br * cr - bi * ci, br * ci + bi * cr);
                data[start + k] = (ar + tr, ai + ti);
                data[start + k + len / 2] = (ar - tr, ai - ti);
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            start += len;
        }
        len <<= 1;
    }
}

/// Magnitudes of the first `n/2` FFT bins of a real-valued signal.
///
/// # Panics
///
/// Panics if `signal.len()` is not a power of two.
pub fn half_spectrum_magnitudes(signal: &[f64]) -> Vec<f64> {
    let mut data: Vec<(f64, f64)> = signal.iter().map(|x| (*x, 0.0)).collect();
    fft_in_place(&mut data);
    data[..signal.len() / 2]
        .iter()
        .map(|(re, im)| (re * re + im * im).sqrt())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dft_naive(signal: &[f64]) -> Vec<(f64, f64)> {
        let n = signal.len();
        (0..n)
            .map(|k| {
                let mut re = 0.0;
                let mut im = 0.0;
                for (t, x) in signal.iter().enumerate() {
                    let ang = -2.0 * PI * k as f64 * t as f64 / n as f64;
                    re += x * ang.cos();
                    im += x * ang.sin();
                }
                (re, im)
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        let signal: Vec<f64> = (0..32).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let mut data: Vec<(f64, f64)> = signal.iter().map(|x| (*x, 0.0)).collect();
        fft_in_place(&mut data);
        let expected = dft_naive(&signal);
        for ((ar, ai), (br, bi)) in data.iter().zip(&expected) {
            assert!((ar - br).abs() < 1e-9 && (ai - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut signal = vec![0.0; 64];
        signal[0] = 1.0;
        let mags = half_spectrum_magnitudes(&signal);
        for m in mags {
            assert!((m - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_concentrates_at_dc() {
        let signal = vec![1.0; 64];
        let mags = half_spectrum_magnitudes(&signal);
        assert!((mags[0] - 64.0).abs() < 1e-9);
        for m in &mags[1..] {
            assert!(m.abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let signal: Vec<f64> = (0..128)
            .map(|i| ((i * 31 + 17) % 97) as f64 / 48.0 - 1.0)
            .collect();
        let mut data: Vec<(f64, f64)> = signal.iter().map(|x| (*x, 0.0)).collect();
        fft_in_place(&mut data);
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let freq_energy: f64 =
            data.iter().map(|(r, i)| r * r + i * i).sum::<f64>() / signal.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut data = vec![(0.0, 0.0); 12];
        fft_in_place(&mut data);
    }
}
