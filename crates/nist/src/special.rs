//! Special functions used by the test statistics: `erfc`, the regularized
//! incomplete gamma function and the standard normal CDF.

/// Complementary error function.
///
/// Uses the rational Chebyshev approximation of Numerical Recipes (absolute
/// error below `1.2e-7`, ample for p-value thresholds at `α = 0.01`).
///
/// # Example
///
/// ```
/// let v = spe_nist::special::erfc(1.0);
/// assert!((v - 0.157299).abs() < 1e-5);
/// ```
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function (`1 − erfc`).
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Standard normal cumulative distribution function.
///
/// # Example
///
/// ```
/// assert!((spe_nist::special::normal_cdf(0.0) - 0.5).abs() < 1e-6);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Natural log of the gamma function (Lanczos approximation).
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos g=5, n=6 coefficients.
    const COF: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for c in COF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn igam(a: f64, x: f64) -> f64 {
    1.0 - igamc(a, x)
}

/// Regularized upper incomplete gamma function `Q(a, x)` — the workhorse of
/// the chi-square based NIST tests.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
///
/// # Example
///
/// ```
/// // Q(0.5, x) = erfc(sqrt(x))
/// let q = spe_nist::special::igamc(0.5, 1.0);
/// assert!((q - spe_nist::special::erfc(1.0)).abs() < 1e-6);
/// ```
pub fn igamc(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "igamc requires a > 0");
    assert!(x >= 0.0, "igamc requires x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cf(a, x)
    }
}

/// Series representation of `P(a, x)` (valid for `x < a + 1`).
fn gamma_series(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - gln).exp()
}

/// Continued-fraction representation of `Q(a, x)` (valid for `x >= a + 1`).
fn gamma_cf(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - gln).exp() * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 1.0),
            (0.5, 0.479500),
            (1.0, 0.157299),
            (2.0, 0.004678),
            (-1.0, 1.842701),
        ];
        for (x, expected) in cases {
            assert!(
                (erfc(x) - expected).abs() < 2e-6,
                "erfc({x}) = {} vs {expected}",
                erfc(x)
            );
        }
    }

    #[test]
    fn erf_plus_erfc_is_one() {
        for i in -30..=30 {
            let x = i as f64 * 0.1;
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        for i in 0..=20 {
            let x = i as f64 * 0.2;
            // The erfc approximation is accurate to ~1.2e-7.
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-6);
        }
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..=10 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-10,
                "ln_gamma({n})"
            );
        }
        // Γ(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn igamc_half_is_erfc_sqrt() {
        for i in 1..=20 {
            let x = i as f64 * 0.3;
            assert!(
                (igamc(0.5, x) - erfc(x.sqrt())).abs() < 1e-7,
                "igamc(0.5, {x})"
            );
        }
    }

    #[test]
    fn igamc_integer_a_matches_poisson_tail() {
        // Q(n, x) = P[Poisson(x) < n] = sum_{k<n} e^-x x^k / k!
        for (a, x) in [(1.0f64, 0.5f64), (2.0, 1.0), (3.0, 2.5), (5.0, 7.0)] {
            let n = a as usize;
            let mut term = (-x).exp();
            let mut sum = 0.0;
            for k in 0..n {
                if k > 0 {
                    term *= x / k as f64;
                }
                sum += term;
            }
            assert!(
                (igamc(a, x) - sum).abs() < 1e-10,
                "igamc({a}, {x}) = {} vs {sum}",
                igamc(a, x)
            );
        }
    }

    #[test]
    fn igamc_boundaries() {
        assert_eq!(igamc(1.0, 0.0), 1.0);
        assert!(igamc(1.0, 50.0) < 1e-20);
        assert!(igam(1.0, 50.0) > 1.0 - 1e-12);
    }

    #[test]
    #[should_panic(expected = "a > 0")]
    fn igamc_rejects_bad_a() {
        igamc(0.0, 1.0);
    }
}
