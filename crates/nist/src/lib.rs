//! NIST SP 800-22 statistical randomness test suite.
//!
//! A self-contained Rust implementation of the fifteen statistical tests
//! the paper uses for its Table 2 security evaluation (Rukhin et al., *A
//! Statistical Test Suite for Random and Pseudorandom Number Generators for
//! Cryptographic Applications*):
//!
//! | # | Test | Module |
//! |---|------|--------|
//! | 1 | Frequency (monobit) | [`tests::frequency`] |
//! | 2 | Block frequency | [`tests::block_frequency`] |
//! | 3 | Runs | [`tests::runs`] |
//! | 4 | Longest run of ones | [`tests::longest_run`] |
//! | 5 | Binary matrix rank | [`tests::matrix_rank`] |
//! | 6 | Discrete Fourier transform | [`tests::dft`] |
//! | 7 | Non-overlapping template matching | [`tests::non_overlapping_template`] |
//! | 8 | Overlapping template matching | [`tests::overlapping_template`] |
//! | 9 | Maurer's universal | [`tests::universal`] |
//! | 10 | Linear complexity | [`tests::linear_complexity`] |
//! | 11 | Serial | [`tests::serial`] |
//! | 12 | Approximate entropy | [`tests::approximate_entropy`] |
//! | 13 | Cumulative sums | [`tests::cusum`] |
//! | 14 | Random excursions | [`tests::random_excursions`] |
//! | 15 | Random excursions variant | [`tests::random_excursions_variant`] |
//!
//! Supporting numerics (`erfc`, regularized incomplete gamma, an FFT and
//! GF(2) matrix rank) are implemented in [`special`], [`fft`] and inside the
//! test modules — no external math dependencies.
//!
//! # Example
//!
//! ```
//! use spe_nist::{Bits, Suite};
//!
//! // A clearly non-random sequence fails the monobit test...
//! let zeros = Bits::from_fn(2048, |_| false);
//! let report = Suite::new().run(&zeros);
//! assert!(!report.passed("frequency").unwrap());
//!
//! // ...while a decent PRNG stream passes it.
//! let mut s = 0x1234_5678_9ABC_DEFu64;
//! let random = Bits::from_fn(2048, |_| {
//!     s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
//!     (s >> 63) == 1
//! });
//! let report = Suite::new().run(&random);
//! assert!(report.passed("frequency").unwrap());
//! ```

#![deny(unsafe_code)]

pub mod bits;
pub mod fft;
pub mod special;
pub mod suite;
pub mod tests;

pub use bits::Bits;
pub use suite::{Suite, SuiteReport, TestOutcome, TEST_NAMES};
pub use tests::TestResult;
