//! Packed bit sequences.

use std::fmt;

/// A packed sequence of bits (most-significant-bit-first within each input
/// byte, matching the NIST reference tooling).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bits {
    len: usize,
    words: Vec<u64>,
}

impl Bits {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Bits::default()
    }

    /// Creates a sequence of `len` bits from a generator function.
    ///
    /// # Example
    ///
    /// ```
    /// let alt = spe_nist::Bits::from_fn(8, |i| i % 2 == 0);
    /// assert_eq!(alt.ones(), 4);
    /// ```
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut bits = Bits::with_capacity(len);
        for i in 0..len {
            bits.push(f(i));
        }
        bits
    }

    /// Creates an empty sequence with reserved capacity.
    pub fn with_capacity(len: usize) -> Self {
        Bits {
            len: 0,
            words: Vec::with_capacity(len.div_ceil(64)),
        }
    }

    /// Builds a sequence from bytes, MSB first.
    ///
    /// # Example
    ///
    /// ```
    /// let b = spe_nist::Bits::from_bytes(&[0b1000_0001]);
    /// assert!(b.get(0) && b.get(7) && !b.get(1));
    /// ```
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut bits = Bits::with_capacity(bytes.len() * 8);
        for byte in bytes {
            for k in (0..8).rev() {
                bits.push(byte >> k & 1 == 1);
            }
        }
        bits
    }

    /// Builds a sequence from 0/1 values.
    ///
    /// # Panics
    ///
    /// Panics if any value is neither 0 nor 1.
    pub fn from_bits(values: &[u8]) -> Self {
        Bits::from_fn(values.len(), |i| match values[i] {
            0 => false,
            1 => true,
            v => panic!("bit value must be 0 or 1, got {v}"),
        })
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        let off = self.len % 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << off;
        }
        self.len += 1;
    }

    /// Appends every bit of another sequence.
    pub fn extend_bits(&mut self, other: &Bits) {
        for i in 0..other.len {
            self.push(other.get(i));
        }
    }

    /// Appends the bits of a byte slice (MSB first).
    pub fn extend_bytes(&mut self, bytes: &[u8]) {
        for byte in bytes {
            for k in (0..8).rev() {
                self.push(byte >> k & 1 == 1);
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        self.words[index / 64] >> (index % 64) & 1 == 1
    }

    /// The bit at `index` as 0/1.
    #[inline]
    pub fn bit(&self, index: usize) -> u8 {
        self.get(index) as u8
    }

    /// Number of one bits.
    pub fn ones(&self) -> usize {
        // The final partial word has zero padding, so popcount is exact.
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// A sub-sequence `[start, start + count)` copied out.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the sequence.
    pub fn slice(&self, start: usize, count: usize) -> Bits {
        assert!(start + count <= self.len, "slice out of range");
        Bits::from_fn(count, |i| self.get(start + i))
    }

    /// Iterates over the bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// XOR of two equal-length sequences.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor(&self, other: &Bits) -> Bits {
        assert_eq!(self.len, other.len, "XOR requires equal lengths");
        let mut out = self.clone();
        for (w, o) in out.words.iter_mut().zip(&other.words) {
            *w ^= o;
        }
        out
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 64;
        for i in 0..self.len.min(PREVIEW) {
            write!(f, "{}", self.bit(i))?;
        }
        if self.len > PREVIEW {
            write!(f, "... ({} bits)", self.len)?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for Bits {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut bits = Bits::new();
        for b in iter {
            bits.push(b);
        }
        bits
    }
}

impl Extend<bool> for Bits {
    fn extend<T: IntoIterator<Item = bool>>(&mut self, iter: T) {
        for b in iter {
            self.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let pattern = [true, false, true, true, false, false, true, false, true];
        let bits: Bits = pattern.iter().copied().collect();
        assert_eq!(bits.len(), 9);
        for (i, b) in pattern.iter().enumerate() {
            assert_eq!(bits.get(i), *b);
        }
    }

    #[test]
    fn from_bytes_is_msb_first() {
        let b = Bits::from_bytes(&[0b1010_0000, 0xFF]);
        assert!(b.get(0));
        assert!(!b.get(1));
        assert!(b.get(2));
        assert_eq!(b.ones(), 10);
        assert_eq!(b.len(), 16);
    }

    #[test]
    fn ones_counts_across_words() {
        let bits = Bits::from_fn(200, |i| i % 3 == 0);
        assert_eq!(bits.ones(), (0..200).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn slice_copies_range() {
        let bits = Bits::from_fn(100, |i| i % 2 == 0);
        let s = bits.slice(10, 5);
        assert_eq!(s.len(), 5);
        for i in 0..5 {
            assert_eq!(s.get(i), (10 + i) % 2 == 0);
        }
    }

    #[test]
    fn xor_differences() {
        let a = Bits::from_fn(70, |i| i % 2 == 0);
        let b = Bits::from_fn(70, |i| i % 4 == 0);
        let x = a.xor(&b);
        assert_eq!(
            x.ones(),
            (0..70).filter(|i| (i % 2 == 0) != (i % 4 == 0)).count()
        );
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn xor_length_mismatch_panics() {
        let a = Bits::from_fn(8, |_| true);
        let b = Bits::from_fn(9, |_| true);
        let _ = a.xor(&b);
    }

    #[test]
    fn display_truncates() {
        let bits = Bits::from_fn(100, |_| true);
        let s = bits.to_string();
        assert!(s.contains("(100 bits)"));
    }

    #[test]
    fn extend_variants() {
        let mut bits = Bits::from_bytes(&[0xF0]);
        bits.extend_bytes(&[0x0F]);
        assert_eq!(bits.len(), 16);
        assert_eq!(bits.ones(), 8);
        let mut other = Bits::new();
        other.extend_bits(&bits);
        assert_eq!(other, bits);
        other.extend([true, false]);
        assert_eq!(other.len(), 18);
        assert_eq!(other.ones(), 9);
    }

    #[test]
    fn from_bits_and_iter() {
        let b = Bits::from_bits(&[1, 0, 1, 1]);
        let collected: Vec<bool> = b.iter().collect();
        assert_eq!(collected, vec![true, false, true, true]);
    }

    #[test]
    #[should_panic(expected = "0 or 1")]
    fn from_bits_rejects_other_values() {
        let _ = Bits::from_bits(&[2]);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut s = 0x4249u64;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s
        };
        for case in 0..64usize {
            let bytes: Vec<u8> = (0..case % 64).map(|_| (next() >> 33) as u8).collect();
            let bits = Bits::from_bytes(&bytes);
            assert_eq!(bits.len(), bytes.len() * 8);
            let expected: usize = bytes.iter().map(|b| b.count_ones() as usize).sum();
            assert_eq!(bits.ones(), expected);
        }
    }
}
