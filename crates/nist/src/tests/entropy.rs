//! Entropy-family tests: serial, approximate entropy and Maurer's
//! universal statistical test.

use crate::bits::Bits;
use crate::special::{erfc, igamc};
use crate::tests::TestResult;

/// Frequency of every overlapping `m`-bit pattern with cyclic wrap-around.
fn pattern_counts(bits: &Bits, m: usize) -> Vec<u64> {
    let n = bits.len();
    let mut counts = vec![0u64; 1 << m];
    let mask = (1usize << m) - 1;
    // Build the initial window.
    let mut window = 0usize;
    for k in 0..m {
        window = (window << 1) | bits.bit(k % n) as usize;
    }
    for i in 0..n {
        counts[window & mask] += 1;
        let next = bits.bit((i + m) % n) as usize;
        window = ((window << 1) | next) & mask;
    }
    counts
}

/// The `ψ²_m` statistic of the serial test (0 for m = 0).
fn psi_squared(bits: &Bits, m: usize) -> f64 {
    if m == 0 {
        return 0.0;
    }
    let n = bits.len() as f64;
    let counts = pattern_counts(bits, m);
    let sum_sq: f64 = counts.iter().map(|c| (*c as f64) * (*c as f64)).sum();
    (1u64 << m) as f64 / n * sum_sq - n
}

/// Test 11 — Serial, with pattern length `m` (two p-values).
///
/// # Panics
///
/// Panics if `m < 2`.
pub fn serial(bits: &Bits, m: usize) -> TestResult {
    assert!(m >= 2, "serial test needs m >= 2");
    let n = bits.len();
    if n < (1 << (m + 2)) {
        return TestResult::skip(format!(
            "serial test with m = {m} needs n >= {}",
            1 << (m + 2)
        ));
    }
    let psi_m = psi_squared(bits, m);
    let psi_m1 = psi_squared(bits, m - 1);
    let psi_m2 = psi_squared(bits, m.saturating_sub(2));
    let d1 = psi_m - psi_m1;
    let d2 = psi_m - 2.0 * psi_m1 + psi_m2;
    let p1 = igamc(2f64.powi(m as i32 - 2), d1 / 2.0);
    let p2 = igamc(2f64.powi(m as i32 - 3), d2 / 2.0);
    TestResult::Done {
        p_values: vec![p1, p2],
    }
}

/// Test 12 — Approximate entropy with block length `m`.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn approximate_entropy(bits: &Bits, m: usize) -> TestResult {
    assert!(m > 0, "approximate entropy needs m >= 1");
    let n = bits.len();
    if n < (1 << (m + 5)) {
        return TestResult::skip(format!(
            "approximate entropy with m = {m} needs n >= {}",
            1 << (m + 5)
        ));
    }
    let phi = |mm: usize| -> f64 {
        let counts = pattern_counts(bits, mm);
        let nf = n as f64;
        counts
            .iter()
            .filter(|c| **c > 0)
            .map(|c| {
                let p = *c as f64 / nf;
                p * p.ln()
            })
            .sum()
    };
    let apen = phi(m) - phi(m + 1);
    let chi2 = 2.0 * n as f64 * (std::f64::consts::LN_2 - apen);
    TestResult::single(igamc(2f64.powi(m as i32 - 1), chi2 / 2.0))
}

/// Expected value and variance of Maurer's statistic per block length L.
const UNIVERSAL_TABLE: [(f64, f64); 15] = [
    (1.5374383, 1.338), // L = 2
    (2.4016068, 1.901), // L = 3
    (3.3112247, 2.358), // L = 4
    (4.2534266, 2.705), // L = 5
    (5.2177052, 2.954), // L = 6
    (6.1962507, 3.125), // L = 7
    (7.1836656, 3.238), // L = 8
    (8.1764248, 3.311), // L = 9
    (9.1723243, 3.356), // L = 10
    (10.170032, 3.384), // L = 11
    (11.168765, 3.401), // L = 12
    (12.168070, 3.410), // L = 13
    (13.167693, 3.416), // L = 14
    (14.167488, 3.419), // L = 15
    (15.167379, 3.421), // L = 16
];

/// Test 9 — Maurer's universal statistical test.
///
/// The block length `L` is chosen from the sequence length so that the test
/// segment holds roughly `1000·2^L` blocks (the reference suite's sizing
/// rule, extended down to `L = 4` so that the paper's ~10⁵-bit sequences
/// remain testable — a documented deviation; below `L = 4` the asymptotic
/// expectation/variance table is measurably off and the false-positive
/// rate exceeds the significance level).
pub fn universal(bits: &Bits) -> TestResult {
    let n = bits.len();
    // Largest L with n >= 1010 * 2^L * L.
    let mut l = 0usize;
    for cand in (4..=16).rev() {
        if n >= 1010 * (1usize << cand) * cand {
            l = cand;
            break;
        }
    }
    if l < 4 {
        return TestResult::skip(format!("universal test needs n >= 64640, got {n}"));
    }
    let q = 10 * (1usize << l);
    let total_blocks = n / l;
    let k = total_blocks - q;
    let (expected, variance) = UNIVERSAL_TABLE[l - 2];

    let mut last_seen = vec![0usize; 1 << l];
    let block_value = |i: usize| -> usize {
        let mut v = 0usize;
        for b in 0..l {
            v = (v << 1) | bits.bit(i * l + b) as usize;
        }
        v
    };
    // Initialization segment.
    for i in 0..q {
        last_seen[block_value(i)] = i + 1;
    }
    // Test segment.
    let mut sum = 0.0;
    for i in q..total_blocks {
        let v = block_value(i);
        let distance = (i + 1 - last_seen[v]) as f64;
        sum += distance.log2();
        last_seen[v] = i + 1;
    }
    let fn_stat = sum / k as f64;
    let c =
        0.7 - 0.8 / l as f64 + (4.0 + 32.0 / l as f64) * (k as f64).powf(-3.0 / l as f64) / 15.0;
    let sigma = c * (variance / k as f64).sqrt();
    TestResult::single(erfc(
        ((fn_stat - expected) / sigma).abs() / std::f64::consts::SQRT_2,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::testutil::{assert_calibrated, prng_bits};

    #[test]
    fn pattern_counts_sum_to_n() {
        let bits = prng_bits(1000, 5);
        for m in 1..=4 {
            let counts = pattern_counts(&bits, m);
            assert_eq!(counts.iter().sum::<u64>(), 1000);
        }
    }

    #[test]
    fn pattern_counts_alternating() {
        let bits = Bits::from_fn(100, |i| i % 2 == 0);
        let counts = pattern_counts(&bits, 2);
        // Only patterns 10 and 01 occur (cyclically).
        assert_eq!(counts[0b10], 50);
        assert_eq!(counts[0b01], 50);
        assert_eq!(counts[0b00], 0);
        assert_eq!(counts[0b11], 0);
    }

    #[test]
    fn serial_detects_periodicity() {
        let bits = Bits::from_fn(4096, |i| i % 3 == 0);
        assert_eq!(serial(&bits, 5).passes(0.01), Some(false));
    }

    #[test]
    fn apen_detects_low_entropy() {
        let bits = Bits::from_fn(4096, |i| (i / 8) % 2 == 0);
        assert_eq!(approximate_entropy(&bits, 3).passes(0.01), Some(false));
    }

    #[test]
    fn universal_detects_repetition() {
        // Repeat one 64-bit word: distances between repeats collapse.
        let bits = Bits::from_fn(1 << 17, |i| (i % 64) % 7 == 3);
        assert_eq!(universal(&bits).passes(0.01), Some(false));
    }

    #[test]
    fn universal_skips_tiny() {
        assert!(matches!(
            universal(&prng_bits(1024, 1)),
            TestResult::NotApplicable { .. }
        ));
        // L < 4 would be miscalibrated; 2^14 bits must skip too.
        assert!(matches!(
            universal(&prng_bits(1 << 14, 1)),
            TestResult::NotApplicable { .. }
        ));
    }

    #[test]
    fn calibration_on_prng_streams() {
        assert_calibrated(|b| serial(b, 5), 1 << 13, 40, 3);
        assert_calibrated(|b| approximate_entropy(b, 3), 1 << 13, 40, 3);
        assert_calibrated(universal, 1 << 16, 15, 2);
    }
}
