//! The fifteen SP 800-22 statistical tests.
//!
//! Every test takes a [`Bits`] sequence and returns a [`TestResult`]: either
//! one or more p-values, or a *not applicable* marker when the sequence is
//! too short for the test's asymptotic statistics (mirroring the reference
//! suite's input-size recommendations).

mod complexity;
mod entropy;
mod excursions;
mod frequency;
mod spectral;
mod templates;

pub use complexity::{berlekamp_massey, linear_complexity};
pub use entropy::{approximate_entropy, serial, universal};
pub use excursions::{random_excursions, random_excursions_variant};
pub use frequency::{block_frequency, cusum, frequency, longest_run, runs};
pub use spectral::{dft, matrix_rank};
pub use templates::{
    aperiodic_templates, non_overlapping_template, overlapping_template, DEFAULT_APERIODIC_TEMPLATE,
};

use crate::bits::Bits;

/// Outcome of a single statistical test on one sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum TestResult {
    /// The test ran and produced one or more p-values.
    Done {
        /// The p-values (most tests produce one; serial and cusum two,
        /// random excursions eight, its variant eighteen).
        p_values: Vec<f64>,
    },
    /// The sequence does not meet the test's input-size requirements.
    NotApplicable {
        /// Why the test could not run.
        reason: String,
    },
}

impl TestResult {
    pub(crate) fn single(p: f64) -> TestResult {
        TestResult::Done { p_values: vec![p] }
    }

    pub(crate) fn skip(reason: impl Into<String>) -> TestResult {
        TestResult::NotApplicable {
            reason: reason.into(),
        }
    }

    /// The smallest p-value, if the test ran.
    pub fn min_p(&self) -> Option<f64> {
        match self {
            TestResult::Done { p_values } => p_values
                .iter()
                .copied()
                .fold(None, |acc, p| Some(acc.map_or(p, |a: f64| a.min(p)))),
            TestResult::NotApplicable { .. } => None,
        }
    }

    /// Whether the sequence passes at significance `alpha`.
    ///
    /// Multi-p-value tests use a Bonferroni-corrected per-value threshold
    /// `alpha / k`, so the per-sequence false-failure rate stays near
    /// `alpha` for every test (this is how the per-test failure counts of
    /// the paper's Table 2 stay comparable across tests).
    ///
    /// Returns `None` when the test was not applicable.
    pub fn passes(&self, alpha: f64) -> Option<bool> {
        match self {
            TestResult::Done { p_values } => {
                if p_values.is_empty() {
                    return Some(true);
                }
                let threshold = alpha / p_values.len() as f64;
                Some(p_values.iter().all(|p| *p >= threshold))
            }
            TestResult::NotApplicable { .. } => None,
        }
    }
}

/// Converts a sequence to the ±1 random walk increments used by several
/// tests.
pub(crate) fn signed(bits: &Bits) -> impl Iterator<Item = f64> + '_ {
    bits.iter().map(|b| if b { 1.0 } else { -1.0 })
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::bits::Bits;

    /// A deterministic, good-quality bit stream (SplitMix64 high bits).
    pub fn prng_bits(len: usize, seed: u64) -> Bits {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut bits = Bits::with_capacity(len);
        let mut word = 0u64;
        for i in 0..len {
            if i % 64 == 0 {
                word = next();
            }
            bits.push(word >> (i % 64) & 1 == 1);
        }
        bits
    }

    /// Asserts that a test's false-failure rate over PRNG streams is sane.
    pub fn assert_calibrated<F>(test: F, len: usize, trials: usize, max_failures: usize)
    where
        F: Fn(&Bits) -> super::TestResult,
    {
        let mut failures = 0;
        let mut applicable = 0;
        for t in 0..trials {
            let bits = prng_bits(len, 0xC0FFEE + t as u64 * 7919);
            match test(&bits).passes(0.01) {
                Some(true) => applicable += 1,
                Some(false) => {
                    applicable += 1;
                    failures += 1;
                }
                None => {}
            }
        }
        assert!(applicable > 0, "test never applicable at n = {len}");
        assert!(
            failures <= max_failures,
            "{failures}/{applicable} PRNG sequences failed (allowed {max_failures})"
        );
    }
}

#[cfg(test)]
mod result_tests {
    use super::*;

    #[test]
    fn min_p_and_passes() {
        let r = TestResult::Done {
            p_values: vec![0.5, 0.02, 0.9],
        };
        assert_eq!(r.min_p(), Some(0.02));
        // Bonferroni threshold: 0.01/3 = 0.0033 < 0.02, so it passes.
        assert_eq!(r.passes(0.01), Some(true));
        let bad = TestResult::single(0.001);
        assert_eq!(bad.passes(0.01), Some(false));
        let na = TestResult::skip("too short");
        assert_eq!(na.passes(0.01), None);
        assert_eq!(na.min_p(), None);
    }
}
