//! Random-walk excursion tests (tests 14 and 15).

use crate::bits::Bits;
use crate::special::{erfc, igamc};
use crate::tests::TestResult;

/// The zero-delimited cycles of the cumulative ±1 walk.
///
/// Returns `(cycles, states_per_position)`: the walk values between zero
/// crossings, with a leading and trailing zero appended per the spec.
fn walk_cycles(bits: &Bits) -> Vec<Vec<i64>> {
    let mut cycles = Vec::new();
    let mut current = Vec::new();
    let mut s = 0i64;
    for b in bits.iter() {
        s += if b { 1 } else { -1 };
        current.push(s);
        if s == 0 {
            cycles.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        // Final (unclosed) segment counts as one more cycle with an
        // implicit return to zero.
        cycles.push(current);
    }
    cycles
}

/// Test 14 — Random excursions.
///
/// For each state `x ∈ {−4..−1, 1..4}` the distribution of per-cycle visit
/// counts is compared against its theoretical law; eight p-values.
///
/// Not applicable when the walk has fewer than `max(0.005·√n, 500)` cycles.
pub fn random_excursions(bits: &Bits) -> TestResult {
    let n = bits.len();
    let cycles = walk_cycles(bits);
    let j = cycles.len();
    let j_min = (0.005 * (n as f64).sqrt()).max(500.0);
    if (j as f64) < j_min {
        return TestResult::skip(format!(
            "random excursions needs >= {j_min:.0} cycles, got {j}"
        ));
    }
    let states: [i64; 8] = [-4, -3, -2, -1, 1, 2, 3, 4];
    let mut p_values = Vec::with_capacity(8);
    for x in states {
        // nu[k] = number of cycles with exactly k visits to x (k = 0..4, >=5).
        let mut nu = [0u64; 6];
        for cycle in &cycles {
            let visits = cycle.iter().filter(|s| **s == x).count();
            nu[visits.min(5)] += 1;
        }
        let pi = excursion_probabilities(x.unsigned_abs() as f64);
        let jf = j as f64;
        let chi2: f64 = nu
            .iter()
            .zip(pi)
            .map(|(obs, p)| {
                let e = jf * p;
                (*obs as f64 - e) * (*obs as f64 - e) / e
            })
            .sum();
        p_values.push(igamc(5.0 / 2.0, chi2 / 2.0));
    }
    TestResult::Done { p_values }
}

/// Theoretical visit-count class probabilities `π_k(x)`, k = 0..4 and ≥5.
fn excursion_probabilities(x: f64) -> [f64; 6] {
    let q = 1.0 - 1.0 / (2.0 * x);
    let mut pi = [0.0; 6];
    pi[0] = q;
    for (k, item) in pi.iter_mut().enumerate().take(5).skip(1) {
        *item = 1.0 / (4.0 * x * x) * q.powi(k as i32 - 1);
    }
    pi[5] = 1.0 / (2.0 * x) * q.powi(4);
    pi
}

/// Test 15 — Random excursions variant.
///
/// Total visit counts to the eighteen states `x ∈ {−9..−1, 1..9}` compared
/// against the cycle count; eighteen p-values.
pub fn random_excursions_variant(bits: &Bits) -> TestResult {
    let n = bits.len();
    let cycles = walk_cycles(bits);
    let j = cycles.len();
    let j_min = (0.005 * (n as f64).sqrt()).max(500.0);
    if (j as f64) < j_min {
        return TestResult::skip(format!(
            "random excursions variant needs >= {j_min:.0} cycles, got {j}"
        ));
    }
    let mut visits = std::collections::HashMap::new();
    for cycle in &cycles {
        for s in cycle {
            if *s != 0 {
                *visits.entry(*s).or_insert(0u64) += 1;
            }
        }
    }
    let jf = j as f64;
    let mut p_values = Vec::with_capacity(18);
    for x in (-9..=9).filter(|x| *x != 0) {
        let xi = *visits.get(&x).unwrap_or(&0) as f64;
        let denom = (2.0 * jf * (4.0 * (x as f64).abs() - 2.0)).sqrt();
        p_values.push(erfc((xi - jf).abs() / denom / std::f64::consts::SQRT_2));
    }
    TestResult::Done { p_values }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::testutil::{assert_calibrated, prng_bits};

    #[test]
    fn cycles_of_alternating_walk() {
        // 10 10 10 ... : walk 1,0,1,0..., a cycle every two steps.
        let bits = Bits::from_fn(100, |i| i % 2 == 0);
        let cycles = walk_cycles(&bits);
        assert_eq!(cycles.len(), 50);
        assert!(cycles.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn probabilities_sum_to_one() {
        for x in 1..=4 {
            let pi = excursion_probabilities(x as f64);
            let sum: f64 = pi.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "x = {x}: sum {sum}");
        }
    }

    #[test]
    fn skips_when_walk_drifts() {
        // Heavy drift: almost no zero crossings.
        let bits = Bits::from_fn(1 << 16, |i| i % 10 != 0);
        assert!(matches!(
            random_excursions(&bits),
            TestResult::NotApplicable { .. }
        ));
        assert!(matches!(
            random_excursions_variant(&bits),
            TestResult::NotApplicable { .. }
        ));
    }

    #[test]
    fn produces_expected_pvalue_counts() {
        let bits = prng_bits(1 << 20, 9);
        if let TestResult::Done { p_values } = random_excursions(&bits) {
            assert_eq!(p_values.len(), 8);
        } else {
            panic!("excursions should be applicable at 2^20 bits");
        }
        if let TestResult::Done { p_values } = random_excursions_variant(&bits) {
            assert_eq!(p_values.len(), 18);
        } else {
            panic!("variant should be applicable at 2^20 bits");
        }
    }

    #[test]
    fn structured_walk_fails() {
        // A walk that returns to zero rapidly but with a rigid pattern:
        // 1100 repeated gives cycles visiting +1 twice, never -1.
        let bits = Bits::from_fn(1 << 16, |i| i % 4 < 2);
        let r = random_excursions(&bits);
        if let Some(pass) = r.passes(0.01) {
            assert!(!pass, "rigid pattern must fail excursions");
        } else {
            panic!("expected applicability: {r:?}");
        }
    }

    #[test]
    fn calibration_on_prng_streams() {
        assert_calibrated(random_excursions, 1 << 20, 6, 1);
        assert_calibrated(random_excursions_variant, 1 << 20, 6, 1);
    }
}
