//! Spectral tests: discrete Fourier transform and binary matrix rank.

use crate::bits::Bits;
use crate::fft::half_spectrum_magnitudes;
use crate::special::erfc;
use crate::tests::{signed, TestResult};

/// Test 6 — Discrete Fourier transform (spectral).
///
/// Detects periodic features via the count of low-magnitude spectral bins.
/// The FFT is radix-2; sequences whose length is not a power of two are
/// truncated to the largest power of two (documented deviation from the
/// reference suite, which uses an arbitrary-n transform).
pub fn dft(bits: &Bits) -> TestResult {
    let n_raw = bits.len();
    if n_raw < 1024 {
        return TestResult::skip(format!("dft test needs n >= 1024, got {n_raw}"));
    }
    let n = if n_raw.is_power_of_two() {
        n_raw
    } else {
        1usize << (usize::BITS - 1 - n_raw.leading_zeros())
    };
    let signal: Vec<f64> = signed(bits).take(n).collect();
    let mags = half_spectrum_magnitudes(&signal);
    let nf = n as f64;
    let t = (nf * (1.0f64 / 0.05).ln()).sqrt();
    let n0 = 0.95 * nf / 2.0;
    let n1 = mags.iter().filter(|m| **m < t).count() as f64;
    let d = (n1 - n0) / (nf * 0.95 * 0.05 / 4.0).sqrt();
    TestResult::single(erfc(d.abs() / std::f64::consts::SQRT_2))
}

/// Test 5 — Binary matrix rank (32×32 blocks over GF(2)).
pub fn matrix_rank(bits: &Bits) -> TestResult {
    const M: usize = 32;
    let n = bits.len();
    let blocks = n / (M * M);
    if blocks < 38 {
        return TestResult::skip(format!(
            "matrix-rank test needs 38 32x32 blocks (n >= 38912), got {blocks}"
        ));
    }
    let mut f_full = 0usize;
    let mut f_minus1 = 0usize;
    for b in 0..blocks {
        let mut rows = [0u32; M];
        for (r, row) in rows.iter_mut().enumerate() {
            for c in 0..M {
                if bits.get(b * M * M + r * M + c) {
                    *row |= 1 << c;
                }
            }
        }
        match gf2_rank(&mut rows) {
            32 => f_full += 1,
            31 => f_minus1 += 1,
            _ => {}
        }
    }
    let nf = blocks as f64;
    // Reference asymptotic probabilities for rank 32 / 31 / <=30.
    let p = [0.2888, 0.5776, 0.1336];
    let f_rest = blocks - f_full - f_minus1;
    let obs = [f_full as f64, f_minus1 as f64, f_rest as f64];
    let chi2: f64 = obs
        .iter()
        .zip(p)
        .map(|(o, pi)| {
            let e = nf * pi;
            (o - e) * (o - e) / e
        })
        .sum();
    TestResult::single((-chi2 / 2.0).exp())
}

/// Rank of a bit matrix over GF(2); rows given as `u32` bitmasks. The slice
/// is used as elimination scratch.
pub(crate) fn gf2_rank(rows: &mut [u32]) -> usize {
    let mut rank = 0;
    for col in 0..32 {
        let mask = 1u32 << col;
        // Find a pivot row at or below `rank`.
        let pivot = (rank..rows.len()).find(|r| rows[*r] & mask != 0);
        let Some(p) = pivot else { continue };
        rows.swap(rank, p);
        for r in 0..rows.len() {
            if r != rank && rows[r] & mask != 0 {
                rows[r] ^= rows[rank];
            }
        }
        rank += 1;
        if rank == rows.len() {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::testutil::{assert_calibrated, prng_bits};

    #[test]
    fn rank_of_identity_is_full() {
        let mut rows: Vec<u32> = (0..32).map(|i| 1 << i).collect();
        assert_eq!(gf2_rank(&mut rows), 32);
    }

    #[test]
    fn rank_of_duplicated_rows() {
        let mut rows: Vec<u32> = (0..32).map(|i| 1 << (i / 2)).collect();
        assert_eq!(gf2_rank(&mut rows), 16);
    }

    #[test]
    fn rank_of_zero_matrix() {
        let mut rows = vec![0u32; 32];
        assert_eq!(gf2_rank(&mut rows), 0);
    }

    #[test]
    fn rank_xor_dependency() {
        let mut rows = vec![0u32; 32];
        rows[0] = 0b0110;
        rows[1] = 0b0011;
        rows[2] = 0b0101; // rows[0] ^ rows[1]
        assert_eq!(gf2_rank(&mut rows), 2);
    }

    #[test]
    fn dft_detects_periodicity() {
        let bits = Bits::from_fn(4096, |i| i % 4 < 2);
        assert_eq!(dft(&bits).passes(0.01), Some(false));
    }

    #[test]
    fn dft_truncates_non_power_of_two() {
        let bits = prng_bits(5000, 3);
        assert!(matches!(dft(&bits), TestResult::Done { .. }));
    }

    #[test]
    fn matrix_rank_detects_structured_bits() {
        // Repeating 32-bit rows: every matrix has rank 1.
        let bits = Bits::from_fn(64 * 1024, |i| (i % 32) < 16);
        assert_eq!(matrix_rank(&bits).passes(0.01), Some(false));
    }

    #[test]
    fn matrix_rank_skips_short() {
        assert!(matches!(
            matrix_rank(&prng_bits(4096, 1)),
            TestResult::NotApplicable { .. }
        ));
    }

    #[test]
    fn calibration_on_prng_streams() {
        assert_calibrated(dft, 1 << 13, 40, 3);
        assert_calibrated(matrix_rank, 64 * 1024, 25, 2);
    }
}
