//! Frequency-family tests: monobit, block frequency, runs, longest run of
//! ones, and cumulative sums.

use crate::bits::Bits;
use crate::special::{erfc, igamc, normal_cdf};
use crate::tests::TestResult;

/// Test 1 — Frequency (monobit).
///
/// The proportion of ones should be close to 1/2.
pub fn frequency(bits: &Bits) -> TestResult {
    let n = bits.len();
    if n < 100 {
        return TestResult::skip(format!("frequency test needs n >= 100, got {n}"));
    }
    let sum = 2.0 * bits.ones() as f64 - n as f64;
    let s_obs = sum.abs() / (n as f64).sqrt();
    TestResult::single(erfc(s_obs / std::f64::consts::SQRT_2))
}

/// Test 2 — Block frequency with block size `m`.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn block_frequency(bits: &Bits, m: usize) -> TestResult {
    assert!(m > 0, "block size must be positive");
    let n = bits.len();
    let blocks = n / m;
    if blocks < 1 {
        return TestResult::skip(format!(
            "block frequency needs at least one {m}-bit block, got {n} bits"
        ));
    }
    let mut chi2 = 0.0;
    for b in 0..blocks {
        let ones = (0..m).filter(|i| bits.get(b * m + i)).count();
        let pi = ones as f64 / m as f64;
        chi2 += (pi - 0.5) * (pi - 0.5);
    }
    chi2 *= 4.0 * m as f64;
    TestResult::single(igamc(blocks as f64 / 2.0, chi2 / 2.0))
}

/// Test 3 — Runs.
///
/// Counts maximal runs of identical bits; too few or too many indicate
/// oscillation anomalies.
pub fn runs(bits: &Bits) -> TestResult {
    let n = bits.len();
    if n < 100 {
        return TestResult::skip(format!("runs test needs n >= 100, got {n}"));
    }
    let pi = bits.ones() as f64 / n as f64;
    // Monobit prerequisite (spec §2.3.4): fail outright if wildly biased.
    if (pi - 0.5).abs() >= 2.0 / (n as f64).sqrt() {
        return TestResult::single(0.0);
    }
    let mut v_obs = 1u64;
    for k in 1..n {
        if bits.get(k) != bits.get(k - 1) {
            v_obs += 1;
        }
    }
    let num = (v_obs as f64 - 2.0 * n as f64 * pi * (1.0 - pi)).abs();
    let den = 2.0 * (2.0 * n as f64).sqrt() * pi * (1.0 - pi);
    TestResult::single(erfc(num / den))
}

/// Test 4 — Longest run of ones in a block.
///
/// Block size, class boundaries and reference probabilities follow the
/// specification's three regimes (M = 8, 128, 10⁴).
pub fn longest_run(bits: &Bits) -> TestResult {
    let n = bits.len();
    let (m, v_min, pi): (usize, u64, &[f64]) = if n >= 750_000 {
        (
            10_000,
            10,
            &[0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727],
        )
    } else if n >= 6_272 {
        (128, 4, &[0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124])
    } else if n >= 128 {
        (8, 1, &[0.2148, 0.3672, 0.2305, 0.1875])
    } else {
        return TestResult::skip(format!("longest-run test needs n >= 128, got {n}"));
    };
    let k = pi.len() - 1;
    let blocks = n / m;
    let mut v = vec![0u64; pi.len()];
    for b in 0..blocks {
        let mut longest = 0u64;
        let mut run = 0u64;
        for i in 0..m {
            if bits.get(b * m + i) {
                run += 1;
                longest = longest.max(run);
            } else {
                run = 0;
            }
        }
        let class = longest.saturating_sub(v_min).min(k as u64) as usize;
        v[class] += 1;
    }
    let nf = blocks as f64;
    let chi2: f64 = v
        .iter()
        .zip(pi)
        .map(|(obs, p)| {
            let e = nf * p;
            (*obs as f64 - e) * (*obs as f64 - e) / e
        })
        .sum();
    TestResult::single(igamc(k as f64 / 2.0, chi2 / 2.0))
}

/// Test 13 — Cumulative sums (both directions).
///
/// Returns two p-values: forward and backward maximal partial-sum excursion.
pub fn cusum(bits: &Bits) -> TestResult {
    let n = bits.len();
    if n < 100 {
        return TestResult::skip(format!("cusum test needs n >= 100, got {n}"));
    }
    let p_fwd = cusum_direction(bits, false);
    let p_bwd = cusum_direction(bits, true);
    TestResult::Done {
        p_values: vec![p_fwd, p_bwd],
    }
}

fn cusum_direction(bits: &Bits, backward: bool) -> f64 {
    let n = bits.len();
    let mut s = 0i64;
    let mut z = 0i64;
    for k in 0..n {
        let idx = if backward { n - 1 - k } else { k };
        s += if bits.get(idx) { 1 } else { -1 };
        z = z.max(s.abs());
    }
    let z = z as f64;
    let nf = n as f64;
    let sqrt_n = nf.sqrt();
    let mut p = 1.0;
    let k_lo = ((-nf / z + 1.0) / 4.0).floor() as i64;
    let k_hi = ((nf / z - 1.0) / 4.0).floor() as i64;
    for k in k_lo..=k_hi {
        let kf = k as f64;
        p -= normal_cdf((4.0 * kf + 1.0) * z / sqrt_n) - normal_cdf((4.0 * kf - 1.0) * z / sqrt_n);
    }
    let k_lo = ((-nf / z - 3.0) / 4.0).floor() as i64;
    for k in k_lo..=k_hi {
        let kf = k as f64;
        p += normal_cdf((4.0 * kf + 3.0) * z / sqrt_n) - normal_cdf((4.0 * kf + 1.0) * z / sqrt_n);
    }
    p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::testutil::{assert_calibrated, prng_bits};

    #[test]
    fn frequency_spec_example() {
        // SP 800-22 §2.1.8: for the 100-bit expansion of e given in the
        // spec the p-value is 0.109599; we check the statistic pipeline on
        // an equivalent imbalance instead: 58 ones / 42 zeros.
        let bits = Bits::from_fn(100, |i| i < 58);
        match frequency(&bits) {
            TestResult::Done { p_values } => {
                // s_obs = |58-42|/sqrt(100) = 1.6; p = erfc(1.6/sqrt 2)
                let expected = erfc(1.6 / std::f64::consts::SQRT_2);
                assert!((p_values[0] - expected).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn frequency_rejects_constant() {
        let bits = Bits::from_fn(1000, |_| true);
        assert_eq!(frequency(&bits).passes(0.01), Some(false));
    }

    #[test]
    fn frequency_skips_short() {
        assert!(matches!(
            frequency(&Bits::from_fn(10, |_| true)),
            TestResult::NotApplicable { .. }
        ));
    }

    #[test]
    fn block_frequency_detects_clustering() {
        // First half all ones, second half all zeros: monobit-balanced but
        // block frequencies are extreme.
        let bits = Bits::from_fn(4096, |i| i < 2048);
        assert_eq!(block_frequency(&bits, 128).passes(0.01), Some(false));
        assert_eq!(frequency(&bits).passes(0.01), Some(true));
    }

    #[test]
    fn runs_detects_alternation() {
        let bits = Bits::from_fn(1000, |i| i % 2 == 0);
        assert_eq!(runs(&bits).passes(0.01), Some(false));
    }

    #[test]
    fn runs_spec_prerequisite() {
        let biased = Bits::from_fn(1000, |i| i % 10 != 0); // 90% ones
        match runs(&biased) {
            TestResult::Done { p_values } => assert_eq!(p_values[0], 0.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn longest_run_detects_long_blocks() {
        // Periodic 32-one/32-zero pattern has far too many long runs.
        let bits = Bits::from_fn(8192, |i| (i / 32) % 2 == 0);
        assert_eq!(longest_run(&bits).passes(0.01), Some(false));
    }

    #[test]
    fn cusum_detects_drift() {
        // Slightly biased stream drifts: cusum catches it.
        let bits = Bits::from_fn(4096, |i| (i * 131) % 256 < 138);
        let r = cusum(&bits);
        match &r {
            TestResult::Done { p_values } => assert_eq!(p_values.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.passes(0.01), Some(false));
    }

    #[test]
    fn calibration_on_prng_streams() {
        assert_calibrated(frequency, 4096, 60, 3);
        assert_calibrated(|b| block_frequency(b, 128), 4096, 60, 3);
        assert_calibrated(runs, 4096, 60, 3);
        assert_calibrated(longest_run, 8192, 60, 3);
        assert_calibrated(cusum, 4096, 60, 3);
    }

    #[test]
    fn prng_stream_passes_all_frequency_family() {
        let bits = prng_bits(1 << 14, 42);
        assert_eq!(frequency(&bits).passes(0.01), Some(true));
        assert_eq!(block_frequency(&bits, 128).passes(0.01), Some(true));
        assert_eq!(runs(&bits).passes(0.01), Some(true));
        assert_eq!(longest_run(&bits).passes(0.01), Some(true));
        assert_eq!(cusum(&bits).passes(0.01), Some(true));
    }
}
