//! Template-matching tests (non-overlapping and overlapping).

use crate::bits::Bits;
use crate::special::igamc;
use crate::tests::TestResult;

/// Default non-overlapping template (m = 9), an aperiodic pattern from the
/// reference suite's template library.
pub const DEFAULT_APERIODIC_TEMPLATE: &[u8] = &[0, 0, 0, 0, 0, 0, 0, 0, 1];

/// Generates every aperiodic template of length `m` (the reference suite
/// ships these as data files; we derive them).
///
/// A template is aperiodic when no proper prefix equals the corresponding
/// suffix (i.e. it cannot overlap itself at any shift), which is the
/// pre-condition for the non-overlapping test's mean/variance formulas.
///
/// # Panics
///
/// Panics if `m` is 0 or greater than 16 (2^m enumeration).
///
/// # Example
///
/// ```
/// let t2 = spe_nist::tests::aperiodic_templates(2);
/// assert_eq!(t2, vec![vec![0, 1], vec![1, 0]]);
/// let t9 = spe_nist::tests::aperiodic_templates(9);
/// assert_eq!(t9.len(), 148); // the reference suite's count for m = 9
/// ```
pub fn aperiodic_templates(m: usize) -> Vec<Vec<u8>> {
    assert!((1..=16).contains(&m), "template length must be 1..=16");
    let mut out = Vec::new();
    'candidates: for value in 0..(1u32 << m) {
        let bits: Vec<u8> = (0..m).map(|k| (value >> (m - 1 - k) & 1) as u8).collect();
        // Aperiodic: for every shift s in 1..m the prefix of length m-s must
        // differ from the suffix of length m-s.
        for s in 1..m {
            if bits[..m - s] == bits[s..] {
                continue 'candidates;
            }
        }
        out.push(bits);
    }
    out
}

/// Test 7 — Non-overlapping template matching.
///
/// Splits the sequence into 8 blocks and compares per-block occurrence
/// counts of the (aperiodic) `template` against their theoretical mean.
///
/// # Panics
///
/// Panics if the template is empty or not made of 0/1 values.
pub fn non_overlapping_template(bits: &Bits, template: &[u8]) -> TestResult {
    let m = template.len();
    assert!(m > 0, "template must be non-empty");
    assert!(
        template.iter().all(|b| *b <= 1),
        "template must contain only 0/1"
    );
    let n = bits.len();
    const N_BLOCKS: usize = 8;
    let block = n / N_BLOCKS;
    if block < 10 * m {
        return TestResult::skip(format!(
            "non-overlapping template needs blocks of >= {} bits, got {block}",
            10 * m
        ));
    }
    let mu = (block - m + 1) as f64 / 2f64.powi(m as i32);
    let sigma2 = block as f64
        * (1.0 / 2f64.powi(m as i32) - (2.0 * m as f64 - 1.0) / 2f64.powi(2 * m as i32));
    let mut chi2 = 0.0;
    for b in 0..N_BLOCKS {
        let mut w = 0u64;
        let mut i = 0;
        while i + m <= block {
            let matched = (0..m).all(|k| bits.bit(b * block + i + k) == template[k]);
            if matched {
                w += 1;
                i += m;
            } else {
                i += 1;
            }
        }
        chi2 += (w as f64 - mu) * (w as f64 - mu) / sigma2;
    }
    TestResult::single(igamc(N_BLOCKS as f64 / 2.0, chi2 / 2.0))
}

/// Test 8 — Overlapping template matching (all-ones template, m = 9).
///
/// Uses the reference block size M = 1032 and the spec's asymptotic class
/// probabilities for 0, 1, …, ≥5 occurrences per block.
pub fn overlapping_template(bits: &Bits) -> TestResult {
    const M_TEMPLATE: usize = 9;
    const BLOCK: usize = 1032;
    const PI: [f64; 6] = [0.364091, 0.185659, 0.139381, 0.100571, 0.070432, 0.139865];
    let n = bits.len();
    let blocks = n / BLOCK;
    // Chi-square validity: expected count in the rarest class >= 5.
    if (blocks as f64) * PI[4] < 5.0 {
        return TestResult::skip(format!(
            "overlapping template needs ~{} blocks of {BLOCK} bits, got {blocks}",
            (5.0 / PI[4]).ceil() as usize
        ));
    }
    let mut v = [0u64; 6];
    for b in 0..blocks {
        let mut count = 0usize;
        for i in 0..=(BLOCK - M_TEMPLATE) {
            if (0..M_TEMPLATE).all(|k| bits.get(b * BLOCK + i + k)) {
                count += 1;
            }
        }
        v[count.min(5)] += 1;
    }
    let nf = blocks as f64;
    let chi2: f64 = v
        .iter()
        .zip(PI)
        .map(|(obs, p)| {
            let e = nf * p;
            (*obs as f64 - e) * (*obs as f64 - e) / e
        })
        .sum();
    TestResult::single(igamc(5.0 / 2.0, chi2 / 2.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::testutil::{assert_calibrated, prng_bits};

    #[test]
    fn notm_detects_planted_templates() {
        // Plant "000000001" much more often than chance in half the blocks.
        let template = DEFAULT_APERIODIC_TEMPLATE;
        let mut bits = prng_bits(1 << 14, 77);
        let block = bits.len() / 8;
        let planted = Bits::from_fn(bits.len(), |i| {
            let in_first_blocks = i / block < 4;
            if in_first_blocks {
                // dense plants: repeat the template back to back
                template[i % 9] == 1
            } else {
                bits.get(i)
            }
        });
        bits = planted;
        assert_eq!(
            non_overlapping_template(&bits, template).passes(0.01),
            Some(false)
        );
    }

    #[test]
    fn aperiodic_template_counts_match_reference() {
        // Counts from the SP 800-22 template library.
        assert_eq!(aperiodic_templates(2).len(), 2);
        assert_eq!(aperiodic_templates(3).len(), 4);
        assert_eq!(aperiodic_templates(4).len(), 6);
        assert_eq!(aperiodic_templates(5).len(), 12);
        assert_eq!(aperiodic_templates(9).len(), 148);
    }

    #[test]
    fn aperiodic_templates_never_self_overlap() {
        for t in aperiodic_templates(7) {
            for s in 1..t.len() {
                assert_ne!(t[..t.len() - s], t[s..], "template {t:?} overlaps at {s}");
            }
        }
    }

    #[test]
    fn default_template_is_aperiodic() {
        assert!(aperiodic_templates(9).contains(&DEFAULT_APERIODIC_TEMPLATE.to_vec()));
    }

    #[test]
    fn notm_skips_tiny_sequences() {
        assert!(matches!(
            non_overlapping_template(&prng_bits(256, 1), DEFAULT_APERIODIC_TEMPLATE),
            TestResult::NotApplicable { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "0/1")]
    fn notm_rejects_bad_template() {
        let _ = non_overlapping_template(&prng_bits(4096, 1), &[0, 2, 1]);
    }

    #[test]
    fn otm_detects_long_one_runs() {
        // Periodic blocks of 16 ones create far too many all-ones windows.
        let bits = Bits::from_fn(128 * 1024, |i| (i / 16) % 4 == 0);
        assert_eq!(overlapping_template(&bits).passes(0.01), Some(false));
    }

    #[test]
    fn otm_skips_short() {
        assert!(matches!(
            overlapping_template(&prng_bits(8192, 1)),
            TestResult::NotApplicable { .. }
        ));
    }

    #[test]
    fn calibration_on_prng_streams() {
        assert_calibrated(
            |b| non_overlapping_template(b, DEFAULT_APERIODIC_TEMPLATE),
            1 << 14,
            40,
            3,
        );
        assert_calibrated(overlapping_template, 128 * 1024, 20, 2);
    }
}
