//! Diagnostic dump of the sneak-path voltage field (development aid).

use spe_crossbar::{CellAddr, Crossbar, Dims};
use spe_memristor::{DeviceParams, MlcLevel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = Dims::square8();
    let mut xbar = Crossbar::new(dims, DeviceParams::default())?;
    let levels: Vec<MlcLevel> = (0..64)
        .map(|i| MlcLevel::from_masked((i * 7 + 3) as u8))
        .collect();
    xbar.write_levels(&levels)?;
    let poe = CellAddr::new(3, 4);
    let field = xbar.sneak_voltages(poe, 1.0)?;
    println!("cell voltages (PoE at {poe}):");
    for i in 0..8 {
        for j in 0..8 {
            print!("{:7.3}", field.at(CellAddr::new(i, j)));
        }
        println!();
    }
    println!("\nsense test:");
    for level in MlcLevel::ALL {
        xbar.write_level(CellAddr::new(2, 5), level)?;
        let sensed = xbar.sense_resistance(CellAddr::new(2, 5))?;
        println!(
            "level {level}: nominal {:>9.0} sensed {sensed:>12.1}",
            level.nominal_resistance(xbar.device())
        );
    }
    Ok(())
}
