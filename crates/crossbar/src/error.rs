//! Error types for crossbar circuit simulation.

use std::error::Error;
use std::fmt;

/// Errors raised by crossbar construction and simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum CrossbarError {
    /// The requested array dimensions are unusable.
    InvalidDims {
        /// Requested row count.
        rows: usize,
        /// Requested column count.
        cols: usize,
        /// Why the dimensions were rejected.
        reason: &'static str,
    },
    /// A cell address lies outside the array.
    AddressOutOfBounds {
        /// Requested row.
        row: usize,
        /// Requested column.
        col: usize,
        /// Array row count.
        rows: usize,
        /// Array column count.
        cols: usize,
    },
    /// The nodal-analysis system was singular (no conducting path anywhere).
    SingularNetwork,
    /// A device-level error bubbled up from the memristor model.
    Device(spe_memristor::DeviceError),
    /// The supplied data length does not match the array size.
    DataSizeMismatch {
        /// Number of cells in the array.
        expected: usize,
        /// Number of values supplied.
        actual: usize,
    },
    /// A simulation parameter is outside its usable range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// An iterative solve exhausted its iteration cap before converging.
    SolverNonConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for CrossbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossbarError::InvalidDims { rows, cols, reason } => {
                write!(f, "invalid crossbar dimensions {rows}x{cols}: {reason}")
            }
            CrossbarError::AddressOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(f, "cell address ({row}, {col}) outside {rows}x{cols} array"),
            CrossbarError::SingularNetwork => {
                write!(f, "singular crossbar network: no conducting path")
            }
            CrossbarError::Device(e) => write!(f, "device error: {e}"),
            CrossbarError::DataSizeMismatch { expected, actual } => {
                write!(
                    f,
                    "data size mismatch: expected {expected} cells, got {actual}"
                )
            }
            CrossbarError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            CrossbarError::SolverNonConvergence { iterations } => {
                write!(
                    f,
                    "nodal solve failed to converge within {iterations} iterations"
                )
            }
        }
    }
}

impl Error for CrossbarError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CrossbarError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<spe_memristor::DeviceError> for CrossbarError {
    fn from(e: spe_memristor::DeviceError) -> Self {
        CrossbarError::Device(e)
    }
}

impl From<crate::dense::DenseError> for CrossbarError {
    fn from(e: crate::dense::DenseError) -> Self {
        match e {
            crate::dense::DenseError::Singular => CrossbarError::SingularNetwork,
            crate::dense::DenseError::SizeMismatch { expected, actual } => {
                CrossbarError::DataSizeMismatch { expected, actual }
            }
            crate::dense::DenseError::NonConvergence { iterations } => {
                CrossbarError::SolverNonConvergence { iterations }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CrossbarError::AddressOutOfBounds {
            row: 9,
            col: 1,
            rows: 8,
            cols: 8,
        };
        assert!(e.to_string().contains("(9, 1)"));
    }

    #[test]
    fn device_error_converts() {
        let d = spe_memristor::DeviceError::ResistanceOutOfRange {
            resistance: 1.0,
            r_on: 10.0,
            r_off: 20.0,
        };
        let e: CrossbarError = d.clone().into();
        assert_eq!(e, CrossbarError::Device(d));
    }
}
