//! The sparse reusable-factorization nodal solver.
//!
//! A crossbar's topology — and therefore the sparsity structure of its
//! nodal matrix — is fixed for the lifetime of the array; only conductance
//! values change between pulses. This module exploits that:
//!
//! * [`StampedTemplate`] lays out the CSR pattern of the full network
//!   *once* per geometry (every cell, wire-segment, driver and coupling
//!   slot, whatever the gating), then restamps values in place per solve.
//! * [`NodalSolver`] pairs the template with a one-time
//!   [`SymbolicLu`] fill analysis and a per-pulse [`NumericLu`]
//!   refactorization, so a steady-state solve costs O(fill) flops and
//!   zero allocations — against O(n³) and an O(n²) matrix allocation for
//!   the dense oracle.
//!
//! Unknowns are reordered so each cell's word-line and bit-line nodes
//! are adjacent (`2·(i·cols + j)` and `2·(i·cols + j) + 1`): that bounds
//! the matrix bandwidth by `2·cols + 1` instead of `rows·cols`, which in
//! turn bounds the LU fill.
//!
//! The dense elimination path remains the verification oracle
//! ([`solve_dense`]); `tests/solver_equivalence.rs` pins sparse/dense
//! parity across sizes, seeds and fault patterns, and [`crate::Crossbar`]
//! falls back to the oracle (counting it) if a stamped system ever fails
//! to factor.

use crate::bias::Bias;
use crate::dense;
use crate::error::CrossbarError;
use crate::geometry::Dims;
use crate::netlist::{assemble, node_count, stamp_system, Gating, Stamp};
use crate::wires::WireParams;
use spe_linalg::{CsrMatrix, NumericLu, SolveWorkspace, SymbolicLu};

/// Which nodal-solve implementation a [`crate::Crossbar`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverMode {
    /// Cached symbolic factorization + per-pulse numeric refactorization,
    /// with a dense-oracle fallback on unfactorable systems.
    #[default]
    Sparse,
    /// Dense Gaussian elimination on every solve (the verification
    /// oracle; also what figures and equivalence tests compare against).
    Dense,
}

/// Bandwidth-reducing node permutation: word-line and bit-line nodes of
/// cell `(i, j)` become neighbours `2·(i·cols + j)` and `2·(i·cols+j)+1`.
#[inline]
fn permute(dims: Dims, node: usize) -> usize {
    let cells = dims.cells();
    if node < cells {
        2 * node
    } else {
        2 * (node - cells) + 1
    }
}

/// Collects matrix slots (in permuted numbering) without storing values.
struct PatternCollector {
    dims: Dims,
    slots: Vec<(usize, usize)>,
}

impl Stamp for PatternCollector {
    fn add(&mut self, row: usize, col: usize, _value: f64) {
        self.slots
            .push((permute(self.dims, row), permute(self.dims, col)));
    }
    fn rhs(&mut self, _node: usize, _current: f64) {}
}

/// Stamps values into the cached CSR pattern and the permuted rhs.
struct CsrStamp<'a> {
    dims: Dims,
    matrix: &'a mut CsrMatrix,
    rhs: &'a mut [f64],
}

impl Stamp for CsrStamp<'_> {
    fn add(&mut self, row: usize, col: usize, value: f64) {
        self.matrix
            .add_at(permute(self.dims, row), permute(self.dims, col), value);
    }
    fn rhs(&mut self, node: usize, current: f64) {
        self.rhs[permute(self.dims, node)] += current;
    }
}

/// The cached sparse structure of a crossbar's nodal system.
///
/// Built once per geometry; covers every slot any gating/bias combination
/// can stamp (all-on gating is the structural superset — row gating just
/// stamps fewer of the slots), so one template serves addressed reads and
/// sneak pulses alike.
#[derive(Debug, Clone, PartialEq)]
pub struct StampedTemplate {
    dims: Dims,
    matrix: CsrMatrix,
}

impl StampedTemplate {
    /// Lays out the full structural pattern for `dims`.
    pub fn new(dims: Dims) -> Self {
        let n = node_count(dims);
        // All-on gating with every driver slot reaches the structural
        // superset; bias terminals only contribute rhs entries and
        // diagonal slots (already present via the leak), so any bias
        // works for pattern collection.
        let bias = Bias {
            rows: vec![crate::bias::Terminal::Driven(0.0); dims.rows],
            cols: vec![crate::bias::Terminal::Driven(0.0); dims.cols],
        };
        let mut collector = PatternCollector {
            dims,
            slots: Vec::new(),
        };
        stamp_system(
            dims,
            &WireParams::default(),
            &bias,
            Gating::AllOn,
            |_, _| 1.0,
            &mut collector,
        );
        StampedTemplate {
            dims,
            matrix: CsrMatrix::from_pattern(n, n, &collector.slots),
        }
    }

    /// Array geometry.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// The CSR matrix holding the current stamped values.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.matrix
    }

    /// Restamps the template for one solve: zeroes values, stamps the
    /// system under (`wires`, `bias`, `gating`) and fills the permuted
    /// right-hand side.
    ///
    /// # Panics
    ///
    /// Panics if the bias or `rhs` length does not match the geometry.
    pub fn stamp<F>(
        &mut self,
        wires: &WireParams,
        bias: &Bias,
        gating: Gating,
        cell_resistance: F,
        rhs: &mut [f64],
    ) where
        F: FnMut(usize, usize) -> f64,
    {
        assert_eq!(rhs.len(), node_count(self.dims), "rhs length mismatch");
        self.matrix.set_zero();
        rhs.fill(0.0);
        let mut sink = CsrStamp {
            dims: self.dims,
            matrix: &mut self.matrix,
            rhs,
        };
        stamp_system(self.dims, wires, bias, gating, cell_resistance, &mut sink);
    }
}

/// A reusable sparse nodal solver: template + symbolic factorization +
/// numeric factor storage + scratch workspace, all cached across pulses.
#[derive(Debug, Clone)]
pub struct NodalSolver {
    template: StampedTemplate,
    symbolic: SymbolicLu,
    numeric: NumericLu,
    ws: SolveWorkspace,
    /// Permuted rhs / in-place solution buffer.
    rhs: Vec<f64>,
    /// Solution mapped back to the original node numbering.
    solution: Vec<f64>,
}

impl NodalSolver {
    /// Builds the template and symbolic factorization for `dims` (the
    /// expensive one-time step — callers should cache the solver).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError`] if the structural analysis fails.
    pub fn new(dims: Dims) -> Result<Self, CrossbarError> {
        let template = StampedTemplate::new(dims);
        let symbolic = SymbolicLu::analyze(template.matrix())?;
        let numeric = NumericLu::new(&symbolic);
        let n = node_count(dims);
        Ok(NodalSolver {
            template,
            symbolic,
            numeric,
            ws: SolveWorkspace::new(),
            rhs: vec![0.0; n],
            solution: vec![0.0; n],
        })
    }

    /// Array geometry.
    pub fn dims(&self) -> Dims {
        self.template.dims()
    }

    /// Structural nonzeros of the cached LU fill pattern.
    pub fn fill_nnz(&self) -> usize {
        self.symbolic.nnz()
    }

    /// Stamps and solves the nodal system, reusing the cached symbolic
    /// factorization. Returns node voltages in the original numbering
    /// ([`crate::netlist::row_node`] / [`crate::netlist::col_node`]);
    /// the slice is valid until the next call. Steady-state calls
    /// allocate nothing.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::SingularNetwork`] when a pivot underflows
    /// (the caller may fall back to the dense oracle, which classifies
    /// singularity identically).
    pub fn solve<F>(
        &mut self,
        wires: &WireParams,
        bias: &Bias,
        gating: Gating,
        cell_resistance: F,
    ) -> Result<&[f64], CrossbarError>
    where
        F: FnMut(usize, usize) -> f64,
    {
        let n = node_count(self.template.dims);
        self.template
            .stamp(wires, bias, gating, cell_resistance, &mut self.rhs[..n]);
        self.numeric
            .refactor(&self.symbolic, self.template.matrix(), &mut self.ws)?;
        self.numeric
            .solve_in_place(&self.symbolic, &mut self.rhs[..n]);
        for node in 0..n {
            self.solution[node] = self.rhs[permute(self.template.dims, node)];
        }
        Ok(&self.solution[..n])
    }
}

/// Solves the nodal system with the dense oracle (assemble + Gaussian
/// elimination with partial pivoting), returning voltages in the original
/// node numbering.
///
/// # Errors
///
/// Returns [`CrossbarError::SingularNetwork`] for a degenerate network.
pub fn solve_dense<F>(
    dims: Dims,
    wires: &WireParams,
    bias: &Bias,
    gating: Gating,
    cell_resistance: F,
) -> Result<Vec<f64>, CrossbarError>
where
    F: FnMut(usize, usize) -> f64,
{
    let (g, b) = assemble(dims, wires, bias, gating, cell_resistance);
    Ok(dense::solve(g, b)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CellAddr;

    fn lcg_resistance(dims: Dims, seed: u64) -> impl FnMut(usize, usize) -> f64 {
        move |i, j| {
            let mut s = seed
                .wrapping_add((i * dims.cols + j) as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s ^= s >> 33;
            10.0e3 + (s % 190_000) as f64
        }
    }

    fn assert_parity(sparse: &[f64], oracle: &[f64]) {
        assert_eq!(sparse.len(), oracle.len());
        for (s, d) in sparse.iter().zip(oracle) {
            assert!(
                (s - d).abs() < 1e-9 * (1.0 + d.abs()),
                "sparse {s} vs dense {d}"
            );
        }
    }

    #[test]
    fn sparse_matches_dense_for_sneak_and_addressed_bias() {
        for (rows, cols) in [(4, 6), (8, 8), (5, 3)] {
            let dims = Dims::new(rows, cols);
            let wires = WireParams::default();
            let mut solver = NodalSolver::new(dims).expect("solver");
            for seed in 0..3u64 {
                let poe = dims.addr(seed as usize % dims.cells());
                let bias = Bias::sneak_pulse(dims, poe, 1.0);
                let v = solver
                    .solve(&wires, &bias, Gating::AllOn, lcg_resistance(dims, seed))
                    .expect("sparse")
                    .to_vec();
                let d = solve_dense(
                    dims,
                    &wires,
                    &bias,
                    Gating::AllOn,
                    lcg_resistance(dims, seed),
                )
                .expect("dense");
                assert_parity(&v, &d);

                let addr = dims.addr((seed as usize + 1) % dims.cells());
                let bias = Bias::addressed(dims, addr, 0.2);
                let v = solver
                    .solve(
                        &wires,
                        &bias,
                        Gating::Row(addr.row),
                        lcg_resistance(dims, seed),
                    )
                    .expect("sparse")
                    .to_vec();
                let d = solve_dense(
                    dims,
                    &wires,
                    &bias,
                    Gating::Row(addr.row),
                    lcg_resistance(dims, seed),
                )
                .expect("dense");
                assert_parity(&v, &d);
            }
        }
    }

    #[test]
    fn one_template_serves_both_gatings() {
        // Row gating stamps a strict subset of the all-on structure; the
        // same cached symbolic factorization must serve both.
        let dims = Dims::square8();
        let wires = WireParams::default();
        let mut solver = NodalSolver::new(dims).expect("solver");
        let fill_before = solver.fill_nnz();
        let sneak = Bias::sneak_pulse(dims, CellAddr::new(3, 4), 1.0);
        solver
            .solve(&wires, &sneak, Gating::AllOn, |_, _| 60.0e3)
            .expect("all-on");
        let addressed = Bias::addressed(dims, CellAddr::new(2, 2), 0.2);
        solver
            .solve(&wires, &addressed, Gating::Row(2), |_, _| 60.0e3)
            .expect("row gated");
        assert_eq!(solver.fill_nnz(), fill_before, "structure never changes");
    }

    #[test]
    fn singular_network_reports_the_same_typed_error_as_dense() {
        // Pathological but validation-passing parameters: every
        // conductance underflows the pivot threshold.
        let dims = Dims::new(3, 3);
        let wires = WireParams {
            r_row_segment: 1.0e308,
            r_col_segment: 1.0e308,
            r_driver: 1.0e308,
            r_couple: 1.0e308,
            g_leak: 1.0e-310,
        };
        let bias = Bias::sneak_pulse(dims, CellAddr::new(1, 1), 1.0);
        let mut solver = NodalSolver::new(dims).expect("solver");
        let sparse = solver.solve(&wires, &bias, Gating::AllOn, |_, _| 1.0e308);
        assert!(matches!(sparse, Err(CrossbarError::SingularNetwork)));
        let oracle = solve_dense(dims, &wires, &bias, Gating::AllOn, |_, _| 1.0e308);
        assert!(matches!(oracle, Err(CrossbarError::SingularNetwork)));
    }

    #[test]
    fn repeated_solves_reuse_the_factorization() {
        let dims = Dims::square8();
        let wires = WireParams::default();
        let mut solver = NodalSolver::new(dims).expect("solver");
        let mut last = Vec::new();
        for seed in 0..10u64 {
            let bias = Bias::sneak_pulse(dims, CellAddr::new(4, 4), 1.0);
            let v = solver
                .solve(&wires, &bias, Gating::AllOn, lcg_resistance(dims, seed))
                .expect("solve")
                .to_vec();
            assert!(v.iter().all(|x| x.is_finite()));
            assert_ne!(v, last, "different data must change the field");
            last = v;
        }
    }
}
