//! The 1T1M crossbar array: storage, readout and sneak-pulse dynamics.

use crate::bias::Bias;
use crate::energy::PulseEnergy;
use crate::error::CrossbarError;
use crate::fault::FaultMap;
use crate::geometry::{CellAddr, Dims};
use crate::netlist::{col_node, row_node, Gating};
use crate::polyomino::Polyomino;
use crate::solver::{solve_dense, NodalSolver, SolverMode};
use crate::wires::WireParams;
use spe_memristor::{mlc, DeviceParams, Memristor, MlcLevel, Pulse};
use spe_telemetry::{noop, Counter, TelemetryHandle};
use std::sync::Mutex;

/// Per-cell voltages resulting from a nodal-analysis solve.
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageField {
    dims: Dims,
    volts: Vec<f64>,
}

impl VoltageField {
    /// The voltage across the cell at `addr` (row node minus column node).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    pub fn at(&self, addr: CellAddr) -> f64 {
        self.volts[self.dims.index(addr)]
    }

    /// Iterates over `(cell, voltage)` pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (CellAddr, f64)> + '_ {
        self.dims.iter().map(move |a| (a, self.at(a)))
    }

    /// Array dimensions.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Extracts the polyomino at `threshold` for a given PoE.
    pub fn polyomino(&self, poe: CellAddr, threshold: f64) -> Polyomino {
        Polyomino::from_voltages(poe, self.iter(), threshold)
    }
}

/// Result of applying a sneak pulse to the array.
#[derive(Debug, Clone, PartialEq)]
pub struct PulseReport {
    /// The cells that exceeded the threshold (with their initial voltages).
    pub polyomino: Polyomino,
    /// Number of nodal solves performed.
    pub solves: usize,
    /// Maximum absolute state change of any cell.
    pub max_delta_x: f64,
}

/// An `R × C` 1T1M crossbar with circuit-accurate sneak-pulse dynamics.
///
/// Normal reads and writes use row-select gating (no sneak paths); SPE
/// pulses switch every transistor on and resolve the full resistive network
/// each timestep, integrating every cell's TEAM dynamics under its solved
/// voltage.
///
/// Nodal solves default to [`SolverMode::Sparse`]: the sparsity structure
/// of the network is analyzed once (lazily, on the first solve) and every
/// subsequent pulse only refactors numeric values in place — the array's
/// topology never changes, so the factorization cache stays valid across
/// writes, fault attachment and wire-parameter swaps. The dense
/// elimination path remains available as [`SolverMode::Dense`] and as the
/// automatic fallback if a stamped system ever fails to factor.
#[derive(Debug)]
pub struct Crossbar {
    dims: Dims,
    device: DeviceParams,
    wires: WireParams,
    cells: Vec<Memristor>,
    faults: FaultMap,
    recorder: TelemetryHandle,
    solver_mode: SolverMode,
    /// Lazily-built sparse solver (template + symbolic factorization +
    /// workspaces), cached for the lifetime of the array. Behind a mutex
    /// so read-only circuit queries (`&self`) can reuse it.
    solver: Mutex<Option<NodalSolver>>,
}

impl Clone for Crossbar {
    fn clone(&self) -> Self {
        Crossbar {
            dims: self.dims,
            device: self.device.clone(),
            wires: self.wires,
            cells: self.cells.clone(),
            faults: self.faults.clone(),
            recorder: self.recorder.clone(),
            solver_mode: self.solver_mode,
            // Carry the warm factorization cache into the clone (the
            // structure depends only on geometry, which the clone shares).
            solver: Mutex::new(self.solver.lock().map_or(None, |cached| cached.clone())),
        }
    }
}

impl Crossbar {
    /// Creates an array with every cell at logic `00`.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError`] if dimensions or parameters are invalid.
    pub fn new(dims: Dims, device: DeviceParams) -> Result<Self, CrossbarError> {
        Crossbar::with_wires(dims, device, WireParams::default())
    }

    /// Creates an array with explicit wire parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError`] if dimensions or parameters are invalid.
    pub fn with_wires(
        dims: Dims,
        device: DeviceParams,
        wires: WireParams,
    ) -> Result<Self, CrossbarError> {
        dims.validate()?;
        device.validate()?;
        wires.validate()?;
        let cell = Memristor::with_level(&device, MlcLevel::L00)?;
        Ok(Crossbar {
            dims,
            device,
            wires,
            cells: vec![cell; dims.cells()],
            faults: FaultMap::none(dims),
            recorder: noop(),
            solver_mode: SolverMode::default(),
            solver: Mutex::new(None),
        })
    }

    /// Selects the nodal-solve implementation (sparse reusable
    /// factorization vs the dense verification oracle).
    pub fn set_solver_mode(&mut self, mode: SolverMode) {
        self.solver_mode = mode;
    }

    /// The active nodal-solve implementation.
    pub fn solver_mode(&self) -> SolverMode {
        self.solver_mode
    }

    /// Replaces the wire parameters in place, keeping cell states and the
    /// cached factorization structure (only stamped *values* change with
    /// wire resistances, never the sparsity pattern). Monte-Carlo sweeps
    /// use this to perturb wires without rebuilding the array.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError`] if the parameters are invalid.
    pub fn set_wires(&mut self, wires: WireParams) -> Result<(), CrossbarError> {
        wires.validate()?;
        self.wires = wires;
        Ok(())
    }

    /// Attaches a telemetry recorder; circuit events (nodal solves,
    /// sneak-path activations, fault-map hits) report into it. The
    /// default is the shared no-op recorder.
    pub fn set_recorder(&mut self, recorder: TelemetryHandle) {
        self.recorder = recorder;
    }

    /// The attached telemetry recorder.
    pub fn recorder(&self) -> &TelemetryHandle {
        &self.recorder
    }

    /// Attaches a per-cell fault map, pinning permanently faulty cells at
    /// their rail states immediately. Subsequent writes leave those cells
    /// untouched and sneak pulses cannot move them, but their pinned
    /// resistance still loads the network during nodal solves.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::DataSizeMismatch`] if the map's geometry
    /// does not match the array.
    pub fn attach_faults(&mut self, faults: FaultMap) -> Result<(), CrossbarError> {
        if faults.dims() != self.dims {
            return Err(CrossbarError::DataSizeMismatch {
                expected: self.dims.cells(),
                actual: faults.dims().cells(),
            });
        }
        self.faults = faults;
        self.pin_faulty_cells();
        Ok(())
    }

    /// The array's fault map.
    pub fn faults(&self) -> &FaultMap {
        &self.faults
    }

    /// Forces every permanently faulty cell back to its pinned rail state.
    fn pin_faulty_cells(&mut self) {
        for idx in 0..self.cells.len() {
            if let Some(x) = self
                .faults
                .fault_at_index(idx)
                .and_then(|kind| kind.pinned_state())
            {
                self.cells[idx].set_state(x);
            }
        }
    }

    /// Array dimensions.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Device parameters shared by every cell.
    pub fn device(&self) -> &DeviceParams {
        &self.device
    }

    /// Wire parameters.
    pub fn wires(&self) -> &WireParams {
        &self.wires
    }

    /// Immutable access to a cell device.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    pub fn cell(&self, addr: CellAddr) -> &Memristor {
        &self.cells[self.dims.index(addr)]
    }

    /// Mutable access to a cell device.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    pub fn cell_mut(&mut self, addr: CellAddr) -> &mut Memristor {
        let idx = self.dims.index(addr);
        &mut self.cells[idx]
    }

    /// The quantized logic level of every cell, row-major.
    pub fn levels(&self) -> Vec<MlcLevel> {
        self.cells.iter().map(Memristor::level).collect()
    }

    /// The raw analog state of every cell, row-major.
    pub fn states(&self) -> Vec<f64> {
        self.cells.iter().map(Memristor::state).collect()
    }

    /// Programs a single cell to a logic level (closed-loop write, normal
    /// row-select addressing — no sneak paths, paper Fig. 3a).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::AddressOutOfBounds`] for a bad address.
    pub fn write_level(&mut self, addr: CellAddr, level: MlcLevel) -> Result<(), CrossbarError> {
        self.write_level_verified(addr, level).map(|_| ())
    }

    /// Programs a single cell and reports whether the verify read matches
    /// the target level. A permanently faulty cell ignores the program
    /// pulses and stays pinned at its rail, so the verify fails unless the
    /// rail happens to be the target.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::AddressOutOfBounds`] for a bad address.
    pub fn write_level_verified(
        &mut self,
        addr: CellAddr,
        level: MlcLevel,
    ) -> Result<bool, CrossbarError> {
        self.check(addr)?;
        let idx = self.dims.index(addr);
        if let Some(x) = self
            .faults
            .fault_at_index(idx)
            .and_then(|kind| kind.pinned_state())
        {
            self.recorder.add(Counter::FaultMapHits, 1);
            self.cells[idx].set_state(x);
        } else {
            mlc::program_verify(&mut self.cells[idx], level, 8192);
        }
        Ok(self.cells[idx].level() == level)
    }

    /// Programs the whole array from row-major levels.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::DataSizeMismatch`] if `levels` has the wrong
    /// length.
    pub fn write_levels(&mut self, levels: &[MlcLevel]) -> Result<(), CrossbarError> {
        if levels.len() != self.dims.cells() {
            return Err(CrossbarError::DataSizeMismatch {
                expected: self.dims.cells(),
                actual: levels.len(),
            });
        }
        for (idx, (cell, level)) in self.cells.iter_mut().zip(levels).enumerate() {
            if let Some(x) = self
                .faults
                .fault_at_index(idx)
                .and_then(|kind| kind.pinned_state())
            {
                self.recorder.add(Counter::FaultMapHits, 1);
                cell.set_state(x);
            } else {
                mlc::program_verify(cell, *level, 8192);
            }
        }
        Ok(())
    }

    /// Reads the quantized logic level of a cell.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::AddressOutOfBounds`] for a bad address.
    pub fn read_level(&self, addr: CellAddr) -> Result<MlcLevel, CrossbarError> {
        self.check(addr)?;
        Ok(self.cells[self.dims.index(addr)].level())
    }

    /// Senses a cell's resistance through the full addressed circuit path
    /// (drivers + wires + cell), the way the real readout sees it.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError`] on a bad address or a singular network.
    pub fn sense_resistance(&self, addr: CellAddr) -> Result<f64, CrossbarError> {
        self.check(addr)?;
        let v_read = 0.2;
        let bias = Bias::addressed(self.dims, addr, v_read);
        let v_cell = self.solve_nodal(&bias, Gating::Row(addr.row), |v| {
            v[row_node(self.dims, addr.row, addr.col)] - v[col_node(self.dims, addr.row, addr.col)]
        })?;
        let r_series = self.cells[self.dims.index(addr)].series_resistance();
        let i_cell = v_cell / r_series;
        if i_cell.abs() < 1e-15 {
            return Err(CrossbarError::SingularNetwork);
        }
        // Resistance inferred from the sensed current at the driver voltage.
        Ok(v_read / i_cell - self.device.r_transistor)
    }

    /// Solves the sneak-path network for a pulse at `poe` without changing
    /// any state, returning the full per-cell voltage field.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError`] on a bad address or singular network.
    pub fn sneak_voltages(
        &self,
        poe: CellAddr,
        voltage: f64,
    ) -> Result<VoltageField, CrossbarError> {
        self.check(poe)?;
        let bias = Bias::sneak_pulse(self.dims, poe, voltage);
        let volts = self.solve_nodal(&bias, Gating::AllOn, |v| {
            self.dims
                .iter()
                .map(|a| {
                    v[row_node(self.dims, a.row, a.col)] - v[col_node(self.dims, a.row, a.col)]
                })
                .collect()
        })?;
        Ok(VoltageField {
            dims: self.dims,
            volts,
        })
    }

    /// Solves the nodal system under (`bias`, `gating`) and hands the node
    /// voltages (original numbering) to `consume`.
    ///
    /// In [`SolverMode::Sparse`] this reuses the cached factorization
    /// (building it on first use) and falls back to the dense oracle —
    /// counting the fallback — if the stamped system is singular; the
    /// oracle classifies singularity with the same pivot threshold, so a
    /// network that is *actually* degenerate still errors identically.
    fn solve_nodal<T>(
        &self,
        bias: &Bias,
        gating: Gating,
        consume: impl FnOnce(&[f64]) -> T,
    ) -> Result<T, CrossbarError> {
        let resistance =
            |i: usize, j: usize| self.cells[i * self.dims.cols + j].series_resistance();
        if self.solver_mode == SolverMode::Dense {
            let v = solve_dense(self.dims, &self.wires, bias, gating, resistance)?;
            self.recorder.add(Counter::NodalSolves, 1);
            return Ok(consume(&v));
        }
        let mut cache = self.solver.lock().unwrap_or_else(|p| p.into_inner());
        let solver = match cache.as_mut() {
            Some(solver) => {
                self.recorder.add(Counter::FactorizationsReused, 1);
                solver
            }
            None => {
                self.recorder.add(Counter::FactorizationsRebuilt, 1);
                cache.insert(NodalSolver::new(self.dims)?)
            }
        };
        match solver.solve(&self.wires, bias, gating, resistance) {
            Ok(v) => {
                self.recorder.add(Counter::NodalSolves, 1);
                Ok(consume(v))
            }
            Err(CrossbarError::SingularNetwork) => {
                drop(cache);
                self.recorder.add(Counter::SolverFallbacks, 1);
                let v = solve_dense(self.dims, &self.wires, bias, gating, resistance)?;
                self.recorder.add(Counter::NodalSolves, 1);
                Ok(consume(&v))
            }
            Err(e) => Err(e),
        }
    }

    /// Energy a pulse at `poe` would dissipate in the current data state
    /// (read-only; one nodal solve).
    ///
    /// Each cell burns `v²·g·width` under its *solved* sneak voltage `v`
    /// and present conductance `g` (series path: memristor plus access
    /// transistor). Cells at or above the device switching threshold
    /// count as `member_j` (the pulse programs them), the rest of the
    /// network as `sneak_j` — the circuit-accurate counterpart of
    /// [`crate::fast::FastArray::pulse_energy`].
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError`] on a bad address or singular network.
    pub fn pulse_energy(&self, poe: CellAddr, pulse: Pulse) -> Result<PulseEnergy, CrossbarError> {
        let field = self.sneak_voltages(poe, pulse.voltage)?;
        let mut energy = PulseEnergy::default();
        for (addr, v) in field.iter() {
            let g = 1.0 / self.cells[self.dims.index(addr)].series_resistance();
            let e = v * v * g * pulse.width;
            if v.abs() >= self.device.v_threshold {
                energy.member_j += e;
            } else {
                energy.sneak_j += e;
            }
        }
        Ok(energy)
    }

    /// The polyomino a pulse at `poe` would affect, given the current data.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError`] on a bad address or singular network.
    pub fn polyomino_at(&self, poe: CellAddr, voltage: f64) -> Result<Polyomino, CrossbarError> {
        let field = self.sneak_voltages(poe, voltage)?;
        Ok(field.polyomino(poe, self.device.v_threshold))
    }

    /// Applies a sneak pulse at `poe`, integrating every cell's dynamics
    /// under the solved voltage field. The network is re-solved every
    /// `resolve_every` timesteps (1 = fully coupled; larger trades accuracy
    /// for speed).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError`] on a bad address, a singular network, or
    /// a zero `resolve_every`.
    pub fn apply_sneak_pulse(
        &mut self,
        poe: CellAddr,
        pulse: Pulse,
        resolve_every: usize,
    ) -> Result<PulseReport, CrossbarError> {
        if resolve_every == 0 {
            return Err(CrossbarError::InvalidParameter {
                name: "resolve_every",
                reason: "must be at least 1",
            });
        }
        self.check(poe)?;
        let dt = self.device.dt;
        let total_steps = (pulse.width / dt).round().max(0.0) as usize;
        let mut polyomino: Option<Polyomino> = None;
        let mut solves = 0;
        let mut max_delta = 0.0f64;
        let mut step = 0;
        while step < total_steps {
            let field = self.sneak_voltages(poe, pulse.voltage)?;
            solves += 1;
            if polyomino.is_none() {
                polyomino = Some(field.polyomino(poe, self.device.v_threshold));
            }
            let chunk = resolve_every.min(total_steps - step);
            for _ in 0..chunk {
                for (idx, cell) in self.cells.iter_mut().enumerate() {
                    let dx = cell.step(field.volts[idx], dt);
                    max_delta = max_delta.max(dx.abs());
                }
            }
            // Stuck cells cannot move: snap them back before the next
            // solve so their pinned resistance keeps loading the network.
            if !self.faults.is_clean() {
                self.pin_faulty_cells();
            }
            step += chunk;
        }
        let polyomino = match polyomino {
            Some(p) => p,
            None => self.polyomino_at(poe, pulse.voltage)?,
        };
        self.recorder
            .add(Counter::SneakPathActivations, polyomino.len() as u64);
        Ok(PulseReport {
            polyomino,
            solves,
            max_delta_x: max_delta,
        })
    }

    fn check(&self, addr: CellAddr) -> Result<(), CrossbarError> {
        if self.dims.contains(addr) {
            Ok(())
        } else {
            Err(CrossbarError::AddressOutOfBounds {
                row: addr.row,
                col: addr.col,
                rows: self.dims.rows,
                cols: self.dims.cols,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_levels(dims: Dims, seed: u64) -> Vec<MlcLevel> {
        let mut s = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (0..dims.cells())
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                MlcLevel::from_masked((s >> 33) as u8)
            })
            .collect()
    }

    #[test]
    fn write_read_roundtrip_every_cell() {
        let dims = Dims::new(4, 4);
        let mut xbar = Crossbar::new(dims, DeviceParams::default()).expect("build");
        let levels = random_levels(dims, 7);
        xbar.write_levels(&levels).expect("write");
        for (i, addr) in dims.iter().enumerate() {
            assert_eq!(xbar.read_level(addr).expect("read"), levels[i]);
        }
    }

    #[test]
    fn sense_resistance_tracks_level() {
        let dims = Dims::square8();
        let mut xbar = Crossbar::new(dims, DeviceParams::default()).expect("build");
        let addr = CellAddr::new(2, 5);
        for level in MlcLevel::ALL {
            xbar.write_level(addr, level).expect("write");
            let sensed = xbar.sense_resistance(addr).expect("sense");
            let nominal = level.nominal_resistance(xbar.device());
            // The sensed value includes divider/programming error, but must
            // still quantize to the written level (that is what readout does).
            assert_eq!(
                MlcLevel::quantize(sensed.clamp(10.0e3, 200.0e3), xbar.device()),
                level,
                "sensed {sensed} for level {level} (nominal {nominal}) misquantizes"
            );
        }
    }

    #[test]
    fn sneak_field_peaks_at_poe() {
        let dims = Dims::square8();
        let mut xbar = Crossbar::new(dims, DeviceParams::default()).expect("build");
        xbar.write_levels(&random_levels(dims, 42)).expect("write");
        let poe = CellAddr::new(3, 4);
        let field = xbar.sneak_voltages(poe, 1.0).expect("solve");
        let v_poe = field.at(poe);
        assert!(v_poe > 0.8, "PoE voltage {v_poe}");
        for (addr, v) in field.iter() {
            assert!(
                v.abs() <= v_poe.abs() + 1e-9,
                "cell {addr} at {v} exceeds PoE {v_poe}"
            );
        }
    }

    #[test]
    fn polyomino_is_local_and_nonempty() {
        let dims = Dims::square8();
        let mut xbar = Crossbar::new(dims, DeviceParams::default()).expect("build");
        xbar.write_levels(&random_levels(dims, 3)).expect("write");
        let poe = CellAddr::new(4, 4);
        let poly = xbar.polyomino_at(poe, 1.0).expect("polyomino");
        assert!(poly.contains(poe), "PoE must be inside its own polyomino");
        assert!(
            poly.len() >= 2 && poly.len() <= 32,
            "polyomino should be a local group, got {} cells:\n{}",
            poly.len(),
            poly.render(dims)
        );
        // Local: every member within Chebyshev distance 4 of the PoE.
        for (addr, _) in poly.iter() {
            assert!(
                addr.chebyshev(poe) <= 4,
                "member {addr} too far from PoE {poe}:\n{}",
                poly.render(dims)
            );
        }
    }

    #[test]
    fn polyomino_shape_depends_on_data() {
        let dims = Dims::square8();
        let poe = CellAddr::new(3, 3);
        let mut shapes = std::collections::HashSet::new();
        for seed in 0..6 {
            let mut xbar = Crossbar::new(dims, DeviceParams::default()).expect("build");
            xbar.write_levels(&random_levels(dims, seed))
                .expect("write");
            let poly = xbar.polyomino_at(poe, 1.0).expect("polyomino");
            shapes.insert(poly.addrs());
        }
        assert!(
            shapes.len() > 1,
            "polyomino shape should vary with stored data"
        );
    }

    #[test]
    fn sneak_pulse_changes_state_inside_polyomino_only() {
        let dims = Dims::square8();
        let mut xbar = Crossbar::new(dims, DeviceParams::default()).expect("build");
        xbar.write_levels(&random_levels(dims, 11)).expect("write");
        let before = xbar.states();
        let poe = CellAddr::new(2, 6);
        let report = xbar
            .apply_sneak_pulse(poe, Pulse::new(1.0, 0.05e-6).expect("pulse desc"), 4)
            .expect("pulse");
        let after = xbar.states();
        assert!(report.solves > 0);
        let mut changed = Vec::new();
        for (i, addr) in dims.iter().enumerate() {
            if (before[i] - after[i]).abs() > 1e-12 {
                changed.push(addr);
            }
        }
        assert!(!changed.is_empty(), "pulse must change some state");
        for addr in &changed {
            // Everything that moved was at least near the initial polyomino
            // (membership can grow slightly as resistances shift).
            assert!(
                addr.chebyshev(poe) <= 5,
                "cell {addr} changed but is far from PoE"
            );
        }
    }

    // The nodal solver must stay well-posed for any geometry, data and
    // PoE: finite voltages, PoE dominance, KCL residual at machine
    // precision (checked inside sneak_voltages via the solve).
    #[test]
    fn sneak_solve_is_well_posed() {
        let mut s = 0x5EEBu64;
        for case in 0..12u64 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let rows = 2 + (s >> 33) as usize % 8;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let cols = 2 + (s >> 33) as usize % 8;
            let dims = Dims::new(rows, cols);
            let mut xbar = Crossbar::new(dims, DeviceParams::default()).expect("build");
            xbar.write_levels(&random_levels(dims, case))
                .expect("write");
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let poe = dims.addr((s >> 33) as usize % dims.cells());
            let field = xbar.sneak_voltages(poe, 1.0).expect("solve");
            let v_poe = field.at(poe);
            assert!(v_poe.is_finite() && v_poe > 0.0);
            for (addr, v) in field.iter() {
                assert!(v.is_finite());
                assert!(
                    v.abs() <= v_poe.abs() + 1e-9,
                    "cell {addr} at {v} exceeds PoE {v_poe}"
                );
            }
        }
    }

    #[test]
    fn out_of_bounds_addresses_are_rejected() {
        let dims = Dims::new(4, 4);
        let mut xbar = Crossbar::new(dims, DeviceParams::default()).expect("build");
        let bad = CellAddr::new(4, 0);
        assert!(xbar.read_level(bad).is_err());
        assert!(xbar.write_level(bad, MlcLevel::L00).is_err());
        assert!(xbar.sneak_voltages(bad, 1.0).is_err());
    }

    #[test]
    fn write_levels_rejects_wrong_size() {
        let mut xbar = Crossbar::new(Dims::new(4, 4), DeviceParams::default()).expect("build");
        assert!(matches!(
            xbar.write_levels(&[MlcLevel::L00; 3]),
            Err(CrossbarError::DataSizeMismatch { .. })
        ));
    }

    #[test]
    fn zero_resolve_every_is_a_typed_error() {
        let mut xbar = Crossbar::new(Dims::square8(), DeviceParams::default()).expect("build");
        let pulse = Pulse::new(1.0, 0.01e-6).expect("pulse desc");
        assert!(matches!(
            xbar.apply_sneak_pulse(CellAddr::new(1, 1), pulse, 0),
            Err(CrossbarError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn stuck_cell_ignores_writes_and_reads_its_rail() {
        use crate::fault::FaultMap;
        use spe_memristor::FaultKind;
        let dims = Dims::square8();
        let mut xbar = Crossbar::new(dims, DeviceParams::default()).expect("build");
        let stuck = CellAddr::new(2, 3);
        let mut map = FaultMap::none(dims);
        map.set_fault(stuck, Some(FaultKind::StuckAtHrs));
        xbar.attach_faults(map).expect("attach");
        // HRS rail (x = 1) quantizes to the highest-resistance level, L00.
        assert_eq!(xbar.read_level(stuck).expect("read"), MlcLevel::L00);
        let verified = xbar
            .write_level_verified(stuck, MlcLevel::L11)
            .expect("write");
        assert!(!verified, "a stuck cell must fail write verification");
        assert_eq!(xbar.read_level(stuck).expect("read"), MlcLevel::L00);
        // A healthy neighbour still programs normally.
        let ok = xbar
            .write_level_verified(CellAddr::new(2, 4), MlcLevel::L11)
            .expect("write");
        assert!(ok);
    }

    #[test]
    fn sneak_pulse_cannot_move_stuck_cells() {
        use crate::fault::FaultMap;
        use spe_memristor::FaultKind;
        let dims = Dims::square8();
        let mut xbar = Crossbar::new(dims, DeviceParams::default()).expect("build");
        xbar.write_levels(&random_levels(dims, 5)).expect("write");
        let poe = CellAddr::new(3, 3);
        let stuck = CellAddr::new(3, 4); // adjacent: inside the polyomino
        let mut map = FaultMap::none(dims);
        map.set_fault(stuck, Some(FaultKind::StuckAtLrs));
        xbar.attach_faults(map).expect("attach");
        let x_before = xbar.cell(stuck).state();
        xbar.apply_sneak_pulse(poe, Pulse::new(1.0, 0.05e-6).expect("pulse desc"), 4)
            .expect("pulse");
        assert_eq!(
            xbar.cell(stuck).state(),
            x_before,
            "pinned cell state must survive the pulse"
        );
    }

    #[test]
    fn attach_faults_rejects_mismatched_dims() {
        use crate::fault::FaultMap;
        let mut xbar = Crossbar::new(Dims::square8(), DeviceParams::default()).expect("build");
        assert!(matches!(
            xbar.attach_faults(FaultMap::none(Dims::new(4, 4))),
            Err(CrossbarError::DataSizeMismatch { .. })
        ));
    }

    #[test]
    fn sparse_and_dense_modes_agree_on_every_circuit_query() {
        let dims = Dims::square8();
        let mut sparse = Crossbar::new(dims, DeviceParams::default()).expect("build");
        sparse
            .write_levels(&random_levels(dims, 17))
            .expect("write");
        let mut dense = sparse.clone();
        dense.set_solver_mode(SolverMode::Dense);
        assert_eq!(sparse.solver_mode(), SolverMode::Sparse);
        for idx in [0, 9, 27, 63] {
            let addr = dims.addr(idx);
            let rs = sparse.sense_resistance(addr).expect("sparse sense");
            let rd = dense.sense_resistance(addr).expect("dense sense");
            assert!((rs - rd).abs() < 1e-6 * rd.abs(), "sense {rs} vs {rd}");
            let fs = sparse.sneak_voltages(addr, 1.0).expect("sparse field");
            let fd = dense.sneak_voltages(addr, 1.0).expect("dense field");
            for (a, vs) in fs.iter() {
                let vd = fd.at(a);
                assert!((vs - vd).abs() < 1e-9, "field at {a}: {vs} vs {vd}");
            }
        }
    }

    #[test]
    fn factorization_is_built_once_and_reused_across_pulses() {
        use spe_telemetry::AtomicRecorder;
        use std::sync::Arc;
        let recorder = Arc::new(AtomicRecorder::new());
        let dims = Dims::square8();
        let mut xbar = Crossbar::new(dims, DeviceParams::default()).expect("build");
        xbar.set_recorder(recorder.clone());
        xbar.write_levels(&random_levels(dims, 23)).expect("write");
        for idx in 0..10 {
            xbar.sneak_voltages(dims.addr(idx * 6 % dims.cells()), 1.0)
                .expect("solve");
        }
        xbar.sense_resistance(CellAddr::new(2, 2)).expect("sense");
        assert_eq!(recorder.counter(Counter::FactorizationsRebuilt), 1);
        assert_eq!(recorder.counter(Counter::FactorizationsReused), 10);
        assert_eq!(recorder.counter(Counter::SolverFallbacks), 0);
        assert_eq!(recorder.counter(Counter::NodalSolves), 11);
    }

    #[test]
    fn clone_carries_the_warm_factorization_cache() {
        use spe_telemetry::AtomicRecorder;
        use std::sync::Arc;
        let dims = Dims::square8();
        let xbar = Crossbar::new(dims, DeviceParams::default()).expect("build");
        xbar.sneak_voltages(CellAddr::new(3, 3), 1.0).expect("warm");
        let recorder = Arc::new(AtomicRecorder::new());
        let mut clone = xbar.clone();
        clone.set_recorder(recorder.clone());
        clone
            .sneak_voltages(CellAddr::new(4, 4), 1.0)
            .expect("solve");
        assert_eq!(recorder.counter(Counter::FactorizationsRebuilt), 0);
        assert_eq!(recorder.counter(Counter::FactorizationsReused), 1);
    }

    #[test]
    fn pulse_energy_splits_members_from_sneak_paths() {
        let dims = Dims::square8();
        let mut xbar = Crossbar::new(dims, DeviceParams::default()).expect("build");
        xbar.write_levels(&random_levels(dims, 19)).expect("write");
        let states = xbar.states();
        let pulse = Pulse::new(1.0, 0.05e-6).expect("pulse desc");
        let e = xbar
            .pulse_energy(CellAddr::new(3, 4), pulse)
            .expect("energy");
        assert!(e.member_j > 0.0, "member energy {}", e.member_j);
        assert!(e.sneak_j > 0.0, "sneak energy {}", e.sneak_j);
        assert!(e.total().is_finite());
        assert_eq!(xbar.states(), states, "energy probe must not write");
        // Different stored data, different trace (the CPA premise).
        xbar.write_levels(&random_levels(dims, 20)).expect("write");
        let e2 = xbar
            .pulse_energy(CellAddr::new(3, 4), pulse)
            .expect("energy");
        assert!(
            (e.total() - e2.total()).abs() > 1e-6 * e.total(),
            "data must modulate the circuit energy"
        );
    }

    #[test]
    fn set_wires_keeps_state_and_changes_the_solution() {
        let dims = Dims::square8();
        let mut xbar = Crossbar::new(dims, DeviceParams::default()).expect("build");
        xbar.write_levels(&random_levels(dims, 31)).expect("write");
        let before = xbar
            .sneak_voltages(CellAddr::new(3, 4), 1.0)
            .expect("solve");
        let states = xbar.states();
        xbar.set_wires(WireParams::default().with_wire_variation(0.05))
            .expect("set wires");
        assert_eq!(xbar.states(), states, "cell states survive a wire swap");
        let after = xbar
            .sneak_voltages(CellAddr::new(3, 4), 1.0)
            .expect("solve");
        assert_ne!(before, after, "perturbed wires must change the field");
        assert!(xbar
            .set_wires(WireParams {
                r_driver: -1.0,
                ..WireParams::default()
            })
            .is_err());
    }
}
