//! 1T1M memristor crossbar circuit simulation with on-demand sneak paths.
//!
//! This crate is the circuit-level substrate of the SNVMM reproduction — the
//! role HSPICE plays in the paper. It provides:
//!
//! * [`Crossbar`] — an `R × C` one-transistor/one-memristor (1T1M) array
//!   with distributed wire resistance, row-select or all-on (sneak) gating,
//!   and the modified *sneak-path control* periphery of the paper's Fig. 1b
//!   (adjacent wires resistively coupled in sneak mode so a pulse at a point
//!   of encryption spreads into a local, data-dependent *polyomino*).
//! * [`netlist`] — modified nodal analysis assembly for the crossbar,
//!   generic over a stamp sink shared by the dense oracle and the sparse
//!   solver.
//! * [`solver`] — the sparse reusable-factorization nodal solver: the
//!   sparsity structure is analyzed once per geometry and only numeric
//!   refactorization runs per pulse. [`dense`] (re-exported from the
//!   shared `spe-linalg` kernel crate) remains the verification oracle.
//! * [`Polyomino`] — the set of cells whose voltage exceeds the transistor
//!   threshold during a sneak pulse (paper Fig. 4).
//! * [`fast`] — a calibrated behavioral model of the sneak pulse for
//!   high-throughput encryption (the NIST datasets need ~18 Mbit of
//!   ciphertext; nodal analysis per pulse is reserved for figures and
//!   validation).
//!
//! # Example
//!
//! ```
//! use spe_crossbar::{CellAddr, Crossbar, Dims};
//! use spe_memristor::{DeviceParams, MlcLevel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut xbar = Crossbar::new(Dims::new(8, 8), DeviceParams::default())?;
//! xbar.write_level(CellAddr::new(3, 4), MlcLevel::L10)?;
//! assert_eq!(xbar.read_level(CellAddr::new(3, 4))?, MlcLevel::L10);
//!
//! // Solve the sneak-path network for a 1 V pulse at a PoE.
//! let poe = CellAddr::new(3, 4);
//! let field = xbar.sneak_voltages(poe, 1.0)?;
//! assert!(field.at(poe) > 0.8, "the PoE sees most of the drive voltage");
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_code)]

pub mod array;
pub mod bias;
pub mod dense;
pub mod energy;
pub mod error;
pub mod fast;
pub mod fault;
pub mod geometry;
pub mod montecarlo;
pub mod netlist;
pub mod polyomino;
pub mod solver;
pub mod wires;

pub use array::{Crossbar, PulseReport, VoltageField};
pub use bias::{Bias, Terminal};
pub use energy::PulseEnergy;
pub use error::CrossbarError;
pub use fast::{FastArray, Kernel};
pub use fault::FaultMap;
pub use geometry::{CellAddr, Dims};
pub use polyomino::Polyomino;
pub use solver::{NodalSolver, SolverMode, StampedTemplate};
pub use wires::WireParams;
