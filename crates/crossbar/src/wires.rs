//! Interconnect and periphery parameters of the crossbar.

use crate::error::CrossbarError;

/// Wire and periphery resistances of a 1T1M crossbar.
///
/// The *sneak-path control* periphery (paper Fig. 1b) is modeled as
/// resistive coupling between adjacent word lines and between adjacent bit
/// lines, enabled only in sneak mode. Driving the PoE's row high and
/// grounding its column then pulls neighbouring wires toward the rails with
/// a per-wire attenuation set by `r_couple` against the cell loading — this
/// is what localizes the polyomino around the PoE (Fig. 4) and what makes
/// its shape depend on the stored data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireParams {
    /// Row (word line) wire resistance per cell pitch, in ohms.
    pub r_row_segment: f64,
    /// Column (bit line) wire resistance per cell pitch, in ohms.
    pub r_col_segment: f64,
    /// Driver output resistance, in ohms.
    pub r_driver: f64,
    /// Adjacent-wire coupling resistance of the sneak-path control
    /// periphery, in ohms (sneak mode only).
    pub r_couple: f64,
    /// Regularization leak conductance from every node to ground, in
    /// siemens. Keeps floating sub-networks numerically well-posed; chosen
    /// far below any signal conductance.
    pub g_leak: f64,
}

impl Default for WireParams {
    fn default() -> Self {
        WireParams {
            r_row_segment: 20.0,
            r_col_segment: 20.0,
            r_driver: 100.0,
            r_couple: 1.5e3,
            g_leak: 1.0e-9,
        }
    }
}

impl WireParams {
    /// Creates the default parameter set (identical to [`Default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Validates physical consistency.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidDims`] — reused with a descriptive
    /// reason — when any resistance is non-positive or non-finite.
    pub fn validate(&self) -> Result<(), CrossbarError> {
        let all_ok = [
            self.r_row_segment,
            self.r_col_segment,
            self.r_driver,
            self.r_couple,
            self.g_leak,
        ]
        .iter()
        .all(|v| *v > 0.0 && v.is_finite());
        if all_ok {
            Ok(())
        } else {
            Err(CrossbarError::InvalidDims {
                rows: 0,
                cols: 0,
                reason: "wire parameters must be positive and finite",
            })
        }
    }

    /// Returns a copy with wire segment resistances scaled by `1 + relative`
    /// (the paper's §5 Monte-Carlo perturbs wire resistance by ±5 %).
    pub fn with_wire_variation(&self, relative: f64) -> Self {
        WireParams {
            r_row_segment: self.r_row_segment * (1.0 + relative),
            r_col_segment: self.r_col_segment * (1.0 + relative),
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        WireParams::default().validate().expect("default wires");
    }

    #[test]
    fn rejects_nonpositive() {
        let w = WireParams {
            r_driver: 0.0,
            ..WireParams::default()
        };
        assert!(w.validate().is_err());
    }

    #[test]
    fn wire_variation_scales_segments_only() {
        let w = WireParams::default();
        let v = w.with_wire_variation(0.05);
        assert!((v.r_row_segment / w.r_row_segment - 1.05).abs() < 1e-12);
        assert!((v.r_col_segment / w.r_col_segment - 1.05).abs() < 1e-12);
        assert_eq!(v.r_driver, w.r_driver);
        assert_eq!(v.r_couple, w.r_couple);
    }
}
