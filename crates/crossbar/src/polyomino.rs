//! Polyominoes: the group of cells affected by a pulse at a PoE.

use crate::geometry::{CellAddr, Dims};
use std::collections::BTreeMap;
use std::fmt;

/// The set of cells whose voltage magnitude reached the transistor
/// threshold during a sneak pulse, together with those voltages.
///
/// The paper calls this group the *polyomino* of the PoE (Fig. 4). Its
/// shape depends on the crossbar's physical parameters **and** on the data
/// stored in the neighbourhood — the property that makes decryption
/// order-sensitive (Fig. 2b).
#[derive(Debug, Clone, PartialEq)]
pub struct Polyomino {
    poe: CellAddr,
    cells: BTreeMap<CellAddr, f64>,
}

impl Polyomino {
    /// Builds a polyomino from a PoE and `(cell, voltage)` pairs.
    ///
    /// The PoE itself is included if present in `cells`.
    pub fn new(poe: CellAddr, cells: impl IntoIterator<Item = (CellAddr, f64)>) -> Self {
        Polyomino {
            poe,
            cells: cells.into_iter().collect(),
        }
    }

    /// Extracts the polyomino from a voltage field: every cell with
    /// `|v| >= threshold`.
    pub fn from_voltages<I>(poe: CellAddr, voltages: I, threshold: f64) -> Self
    where
        I: IntoIterator<Item = (CellAddr, f64)>,
    {
        Polyomino {
            poe,
            cells: voltages
                .into_iter()
                .filter(|(_, v)| v.abs() >= threshold)
                .collect(),
        }
    }

    /// The point of encryption.
    pub fn poe(&self) -> CellAddr {
        self.poe
    }

    /// Number of affected cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cell reached the threshold.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Whether a cell is part of the polyomino.
    pub fn contains(&self, addr: CellAddr) -> bool {
        self.cells.contains_key(&addr)
    }

    /// The voltage seen by a cell, if it is in the polyomino.
    pub fn voltage(&self, addr: CellAddr) -> Option<f64> {
        self.cells.get(&addr).copied()
    }

    /// Iterates over `(cell, voltage)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (CellAddr, f64)> + '_ {
        self.cells.iter().map(|(a, v)| (*a, *v))
    }

    /// The affected cell addresses in order.
    pub fn addrs(&self) -> Vec<CellAddr> {
        self.cells.keys().copied().collect()
    }

    /// Number of cells shared with another polyomino.
    pub fn overlap(&self, other: &Polyomino) -> usize {
        self.cells
            .keys()
            .filter(|a| other.cells.contains_key(a))
            .count()
    }

    /// Renders the polyomino as an ASCII grid (`#` = PoE, `o` = member,
    /// `.` = untouched), mirroring the paper's Fig. 4 layout.
    pub fn render(&self, dims: Dims) -> String {
        let mut out = String::with_capacity(dims.cells() + dims.rows);
        for i in 0..dims.rows {
            for j in 0..dims.cols {
                let a = CellAddr::new(i, j);
                out.push(if a == self.poe {
                    '#'
                } else if self.contains(a) {
                    'o'
                } else {
                    '.'
                });
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Polyomino {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "polyomino@{} ({} cells)", self.poe, self.cells.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Polyomino {
        Polyomino::new(
            CellAddr::new(2, 2),
            [
                (CellAddr::new(2, 2), 0.98),
                (CellAddr::new(1, 2), 0.85),
                (CellAddr::new(3, 2), -0.80),
                (CellAddr::new(2, 1), 0.77),
            ],
        )
    }

    #[test]
    fn from_voltages_filters_below_threshold() {
        let p = Polyomino::from_voltages(
            CellAddr::new(0, 0),
            [
                (CellAddr::new(0, 0), 1.0),
                (CellAddr::new(0, 1), 0.5),
                (CellAddr::new(1, 0), -0.8),
            ],
            0.75,
        );
        assert_eq!(p.len(), 2);
        assert!(p.contains(CellAddr::new(1, 0)));
        assert!(!p.contains(CellAddr::new(0, 1)));
    }

    #[test]
    fn overlap_counts_shared_cells() {
        let a = sample();
        let b = Polyomino::new(
            CellAddr::new(3, 2),
            [
                (CellAddr::new(3, 2), 0.9),
                (CellAddr::new(2, 2), 0.8),
                (CellAddr::new(4, 2), 0.8),
            ],
        );
        assert_eq!(a.overlap(&b), 2);
        assert_eq!(b.overlap(&a), 2);
    }

    #[test]
    fn render_marks_poe_and_members() {
        let p = sample();
        let grid = p.render(Dims::new(5, 5));
        let lines: Vec<&str> = grid.lines().collect();
        assert_eq!(lines[2].chars().nth(2), Some('#'));
        assert_eq!(lines[1].chars().nth(2), Some('o'));
        assert_eq!(lines[0].chars().next(), Some('.'));
    }

    #[test]
    fn display_reports_size() {
        assert!(sample().to_string().contains("4 cells"));
    }

    #[test]
    fn empty_polyomino() {
        let p = Polyomino::new(CellAddr::new(0, 0), []);
        assert!(p.is_empty());
        assert_eq!(p.voltage(CellAddr::new(0, 0)), None);
    }
}
