//! Per-pulse energy accounting for the side-channel model.
//!
//! A supply-rail adversary cannot read cell states, but every keyed
//! pulse dissipates `Σ v²·g·width` across the cells it reaches — and
//! the conductances `g` are the stored data. Both crossbar engines
//! expose this as a [`PulseEnergy`]: the behavioral fast path estimates
//! it from the attenuation kernel, the circuit engine integrates the
//! actual solved node voltages. The split between member and sneak-path
//! contributions mirrors the threshold split the dynamics use.

/// Energy dissipated by one keyed pulse, in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PulseEnergy {
    /// Energy burned in member cells (drive at or above the switching
    /// threshold — the cells the pulse programs).
    pub member_j: f64,
    /// Energy leaked through sub-threshold sneak paths (cells the pulse
    /// reaches but does not program).
    pub sneak_j: f64,
}

impl PulseEnergy {
    /// Total dissipated energy — what a supply-rail probe integrates.
    pub fn total(&self) -> f64 {
        self.member_j + self.sneak_j
    }

    /// Accumulates another pulse's energy (e.g. summing over a train).
    pub fn accumulate(&mut self, other: PulseEnergy) {
        self.member_j += other.member_j;
        self.sneak_j += other.sneak_j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_accumulate() {
        let mut e = PulseEnergy {
            member_j: 1.0e-12,
            sneak_j: 0.5e-12,
        };
        assert!((e.total() - 1.5e-12).abs() < 1e-24);
        e.accumulate(PulseEnergy {
            member_j: 2.0e-12,
            sneak_j: 0.25e-12,
        });
        assert!((e.member_j - 3.0e-12).abs() < 1e-24);
        assert!((e.sneak_j - 0.75e-12).abs() < 1e-24);
    }
}
