//! Monte-Carlo polyomino stability study (paper §5).
//!
//! The paper varies the wire resistance by ±5 % and observes that the
//! polyomino *shape* does not change, while macro-level parameter changes
//! do alter it (the basis of the *hardware avalanche* property). This module
//! runs that study against the circuit engine.

use crate::error::CrossbarError;
use crate::geometry::{CellAddr, Dims};
use crate::wires::WireParams;
use crate::Crossbar;
use spe_memristor::{DeviceParams, MlcLevel};

/// Outcome of a polyomino stability sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityReport {
    /// The perturbations applied (relative, e.g. `-0.05` = −5 %).
    pub perturbations: Vec<f64>,
    /// For each perturbation, whether the polyomino cell set matched the
    /// nominal one.
    pub shape_matches: Vec<bool>,
    /// Number of cells in the nominal polyomino.
    pub nominal_size: usize,
}

impl StabilityReport {
    /// Whether every perturbation left the shape unchanged.
    pub fn all_stable(&self) -> bool {
        self.shape_matches.iter().all(|m| *m)
    }

    /// Fraction of perturbations that preserved the shape.
    pub fn stability(&self) -> f64 {
        if self.shape_matches.is_empty() {
            return 1.0;
        }
        self.shape_matches.iter().filter(|m| **m).count() as f64 / self.shape_matches.len() as f64
    }
}

/// Runs the §5 Monte-Carlo study: perturbs wire resistance across
/// `perturbations` and compares each polyomino against the nominal shape.
///
/// `levels` is the stored data pattern (row-major, one entry per cell of an
/// 8×8 mat); `poe` the pulse location.
///
/// # Errors
///
/// Propagates [`CrossbarError`] from the circuit engine.
pub fn wire_variation_study(
    device: &DeviceParams,
    wires: &WireParams,
    levels: &[MlcLevel],
    poe: CellAddr,
    perturbations: &[f64],
) -> Result<StabilityReport, CrossbarError> {
    let dims = Dims::square8();
    // One array for the whole sweep: wire perturbations change stamped
    // conductance *values* only, so `set_wires` keeps both the programmed
    // cell states and the cached sparse factorization across perturbations.
    let mut xbar = Crossbar::with_wires(dims, device.clone(), *wires)?;
    xbar.write_levels(levels)?;
    let nominal = xbar.polyomino_at(poe, 1.0)?.addrs();
    let mut matches = Vec::with_capacity(perturbations.len());
    for rel in perturbations {
        xbar.set_wires(wires.with_wire_variation(*rel))?;
        let cells = xbar.polyomino_at(poe, 1.0)?.addrs();
        matches.push(cells == nominal);
    }
    Ok(StabilityReport {
        perturbations: perturbations.to_vec(),
        shape_matches: matches,
        nominal_size: nominal.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_levels(seed: u64) -> Vec<MlcLevel> {
        let mut s = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (0..64)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                MlcLevel::from_masked((s >> 33) as u8)
            })
            .collect()
    }

    #[test]
    fn small_wire_variation_keeps_shape() {
        let device = DeviceParams::default();
        let wires = WireParams::default();
        let levels = random_levels(17);
        let report = wire_variation_study(
            &device,
            &wires,
            &levels,
            CellAddr::new(3, 4),
            &[-0.05, -0.025, 0.025, 0.05],
        )
        .expect("study");
        assert!(
            report.stability() >= 0.75,
            "±5% wire variation should mostly preserve the polyomino shape \
             (stability {})",
            report.stability()
        );
        assert!(report.nominal_size >= 2);
    }

    #[test]
    fn report_accessors() {
        let r = StabilityReport {
            perturbations: vec![0.05, -0.05],
            shape_matches: vec![true, false],
            nominal_size: 9,
        };
        assert!(!r.all_stable());
        assert_eq!(r.stability(), 0.5);
    }
}
