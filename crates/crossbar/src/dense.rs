//! Dense linear-algebra kernel, re-exported from [`spe_linalg`].
//!
//! The dense `Matrix`/Gaussian-elimination/CG code grew up inside this
//! crate and moved to the shared `spe-linalg` kernel crate so the ILP
//! solver and the sparse nodal path build on the same primitives. This
//! module keeps the original `spe_crossbar::dense` paths alive; within
//! the crossbar the dense path now serves as the *verification oracle*
//! for the sparse reusable-factorization solver in [`crate::solver`].

pub use spe_linalg::dense::{solve, solve_cg, DenseError, Matrix, SINGULAR_THRESHOLD};

#[cfg(test)]
mod tests {
    use super::*;

    // Kept here (not in spe-linalg) because it exercises the crossbar's
    // own nodal assembly: CG is an independent numerical cross-check of
    // the elimination path on real sneak-mode systems.
    #[test]
    fn cg_matches_direct_solver_on_nodal_systems() {
        use crate::bias::Bias;
        use crate::geometry::{CellAddr, Dims};
        use crate::netlist::{assemble, Gating};
        use crate::wires::WireParams;
        let dims = Dims::square8();
        let wires = WireParams::default();
        let bias = Bias::sneak_pulse(dims, CellAddr::new(3, 4), 1.0);
        let (g, b) = assemble(dims, &wires, &bias, Gating::AllOn, |_, _| 60.0e3);
        let direct = solve(g.clone(), b.clone()).expect("direct");
        let cg = solve_cg(&g, &b, 1e-12).expect("cg");
        for (d, c) in direct.iter().zip(&cg) {
            assert!((d - c).abs() < 1e-6, "direct {d} vs cg {c}");
        }
    }
}
