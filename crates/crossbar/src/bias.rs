//! Terminal bias configurations for the crossbar periphery.

use crate::geometry::{CellAddr, Dims};

/// State of one wire terminal at the array periphery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Terminal {
    /// Driven through the driver resistance toward the given voltage.
    Driven(f64),
    /// High-impedance (disconnected driver).
    Floating,
}

impl Terminal {
    /// Convenience: a grounded terminal.
    pub const GROUND: Terminal = Terminal::Driven(0.0);
}

/// Bias applied to every row and column terminal.
#[derive(Debug, Clone, PartialEq)]
pub struct Bias {
    /// Per-row terminal states (word-line drivers, west side).
    pub rows: Vec<Terminal>,
    /// Per-column terminal states (bit-line drivers, south side).
    pub cols: Vec<Terminal>,
}

impl Bias {
    /// All terminals floating.
    pub fn floating(dims: Dims) -> Self {
        Bias {
            rows: vec![Terminal::Floating; dims.rows],
            cols: vec![Terminal::Floating; dims.cols],
        }
    }

    /// The SPE sneak-pulse bias: the PoE's row driven at `voltage`, the
    /// PoE's column grounded, everything else floating (the coupled
    /// periphery spreads the drive into the neighbourhood).
    ///
    /// # Panics
    ///
    /// Panics if `poe` is outside `dims`.
    pub fn sneak_pulse(dims: Dims, poe: CellAddr, voltage: f64) -> Self {
        assert!(dims.contains(poe), "PoE {poe} outside {dims}");
        let mut bias = Bias::floating(dims);
        bias.rows[poe.row] = Terminal::Driven(voltage);
        bias.cols[poe.col] = Terminal::GROUND;
        bias
    }

    /// The normal read/write bias for an addressed cell: addressed row
    /// driven at `voltage`, addressed column grounded, all other rows and
    /// columns grounded (their transistors are off anyway in row-select
    /// mode, so this matches the paper's Fig. 3a).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside `dims`.
    pub fn addressed(dims: Dims, addr: CellAddr, voltage: f64) -> Self {
        assert!(dims.contains(addr), "address {addr} outside {dims}");
        let mut bias = Bias {
            rows: vec![Terminal::GROUND; dims.rows],
            cols: vec![Terminal::GROUND; dims.cols],
        };
        bias.rows[addr.row] = Terminal::Driven(voltage);
        bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sneak_pulse_sets_poe_terminals() {
        let dims = Dims::square8();
        let b = Bias::sneak_pulse(dims, CellAddr::new(3, 5), 1.0);
        assert_eq!(b.rows[3], Terminal::Driven(1.0));
        assert_eq!(b.cols[5], Terminal::GROUND);
        assert_eq!(b.rows[0], Terminal::Floating);
        assert_eq!(b.cols[0], Terminal::Floating);
    }

    #[test]
    fn addressed_grounds_everything_else() {
        let dims = Dims::new(4, 4);
        let b = Bias::addressed(dims, CellAddr::new(1, 2), 0.2);
        assert_eq!(b.rows[1], Terminal::Driven(0.2));
        assert_eq!(b.rows[0], Terminal::GROUND);
        assert_eq!(b.cols[2], Terminal::GROUND);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn sneak_pulse_rejects_out_of_bounds() {
        Bias::sneak_pulse(Dims::new(2, 2), CellAddr::new(2, 2), 1.0);
    }
}
