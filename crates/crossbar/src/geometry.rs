//! Array dimensions and cell addressing.

use crate::error::CrossbarError;
use std::fmt;

/// Dimensions of a crossbar array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dims {
    /// Number of rows (word lines).
    pub rows: usize,
    /// Number of columns (bit lines).
    pub cols: usize,
}

impl Dims {
    /// Creates a dimension descriptor.
    ///
    /// # Example
    ///
    /// ```
    /// let d = spe_crossbar::Dims::new(8, 8);
    /// assert_eq!(d.cells(), 64);
    /// ```
    pub const fn new(rows: usize, cols: usize) -> Self {
        Dims { rows, cols }
    }

    /// The paper's standard 8×8 crossbar.
    pub const fn square8() -> Self {
        Dims::new(8, 8)
    }

    /// Total number of cells.
    pub const fn cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Validates that the dimensions form a usable array.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidDims`] for degenerate (zero-sized) or
    /// oversized arrays (> 64×64; the paper's NVMM is tiled from 8×8 mats).
    pub fn validate(&self) -> Result<(), CrossbarError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(CrossbarError::InvalidDims {
                rows: self.rows,
                cols: self.cols,
                reason: "dimensions must be non-zero",
            });
        }
        if self.rows > 64 || self.cols > 64 {
            return Err(CrossbarError::InvalidDims {
                rows: self.rows,
                cols: self.cols,
                reason: "mats larger than 64x64 are not supported; tile instead",
            });
        }
        Ok(())
    }

    /// Checks whether an address lies inside the array.
    pub fn contains(&self, addr: CellAddr) -> bool {
        addr.row < self.rows && addr.col < self.cols
    }

    /// Linear (row-major) index of an address.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of bounds.
    pub fn index(&self, addr: CellAddr) -> usize {
        assert!(self.contains(addr), "address {addr} outside {self}");
        addr.row * self.cols + addr.col
    }

    /// The address corresponding to a linear (row-major) index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= cells()`.
    pub fn addr(&self, index: usize) -> CellAddr {
        assert!(index < self.cells(), "index {index} outside {self}");
        CellAddr::new(index / self.cols, index % self.cols)
    }

    /// Iterates over every address in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = CellAddr> + '_ {
        let cols = self.cols;
        (0..self.cells()).map(move |i| CellAddr::new(i / cols, i % cols))
    }
}

impl fmt::Display for Dims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// Address of a single cell, 0-based `(row, col)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellAddr {
    /// Row (word line) index.
    pub row: usize,
    /// Column (bit line) index.
    pub col: usize,
}

impl CellAddr {
    /// Creates a cell address.
    pub const fn new(row: usize, col: usize) -> Self {
        CellAddr { row, col }
    }

    /// Chebyshev (chessboard) distance to another cell.
    pub fn chebyshev(&self, other: CellAddr) -> usize {
        let dr = self.row.abs_diff(other.row);
        let dc = self.col.abs_diff(other.col);
        dr.max(dc)
    }

    /// Manhattan distance to another cell.
    pub fn manhattan(&self, other: CellAddr) -> usize {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }

    /// Signed offset `(Δrow, Δcol)` from `other` to `self`.
    pub fn offset_from(&self, other: CellAddr) -> (isize, isize) {
        (
            self.row as isize - other.row as isize,
            self.col as isize - other.col as isize,
        )
    }
}

impl fmt::Display for CellAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_addr_roundtrip() {
        let d = Dims::new(5, 7);
        for i in 0..d.cells() {
            assert_eq!(d.index(d.addr(i)), i);
        }
    }

    #[test]
    fn iter_visits_every_cell_once() {
        let d = Dims::new(4, 3);
        let all: Vec<CellAddr> = d.iter().collect();
        assert_eq!(all.len(), 12);
        assert_eq!(all[0], CellAddr::new(0, 0));
        assert_eq!(all[11], CellAddr::new(3, 2));
    }

    #[test]
    fn validate_rejects_degenerate() {
        assert!(Dims::new(0, 8).validate().is_err());
        assert!(Dims::new(8, 0).validate().is_err());
        assert!(Dims::new(65, 8).validate().is_err());
        assert!(Dims::square8().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn index_panics_out_of_bounds() {
        Dims::new(2, 2).index(CellAddr::new(2, 0));
    }

    #[test]
    fn distances() {
        let a = CellAddr::new(1, 1);
        let b = CellAddr::new(4, 3);
        assert_eq!(a.chebyshev(b), 3);
        assert_eq!(a.manhattan(b), 5);
        assert_eq!(b.offset_from(a), (3, 2));
        assert_eq!(a.offset_from(b), (-3, -2));
    }

    #[test]
    fn roundtrip_any_dims() {
        for rows in 1usize..16 {
            for cols in 1usize..16 {
                let d = Dims::new(rows, cols);
                for i in 0..d.cells() {
                    assert_eq!(d.index(d.addr(i)), i);
                }
            }
        }
    }
}
