//! Per-cell fault state for crossbar arrays.
//!
//! A [`FaultMap`] materializes the *permanent* faults of a
//! [`FaultModel`](spe_memristor::FaultModel) over a concrete array
//! geometry, so that reads, writes and sneak pulses interact with faulty
//! cells realistically: a stuck cell ignores program pulses, reads back
//! its rail level, and still loads the resistive network with its pinned
//! resistance during sneak-path solves. Transient faults (write skips,
//! drift) have no per-cell residue and are drawn on the fly by the model,
//! so they do not appear here.

use crate::geometry::{CellAddr, Dims};
use spe_memristor::{FaultKind, FaultModel};

/// The permanent-fault state of every cell in an array, row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultMap {
    dims: Dims,
    faults: Vec<Option<FaultKind>>,
}

impl FaultMap {
    /// A map with no faulty cells.
    pub fn none(dims: Dims) -> Self {
        FaultMap {
            dims,
            faults: vec![None; dims.cells()],
        }
    }

    /// Materializes the permanent faults of `model` over an array whose
    /// cells occupy physical ids `base_cell_id..base_cell_id + cells`.
    ///
    /// Deterministic: the same model, base id and geometry always yield
    /// the same map, so independently built arrays (e.g. one per SPECU
    /// bank) agree about which cells are broken.
    pub fn sample(dims: Dims, model: &FaultModel, base_cell_id: u64) -> Self {
        let faults = (0..dims.cells())
            .map(|i| model.permanent_fault(base_cell_id + i as u64))
            .collect();
        FaultMap { dims, faults }
    }

    /// Array dimensions this map covers.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// The fault (if any) of the cell at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    pub fn fault_at(&self, addr: CellAddr) -> Option<FaultKind> {
        self.faults[self.dims.index(addr)]
    }

    /// Marks or clears a fault at `addr` (for targeted injection in tests
    /// and campaigns).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    pub fn set_fault(&mut self, addr: CellAddr, kind: Option<FaultKind>) {
        let idx = self.dims.index(addr);
        self.faults[idx] = kind;
    }

    /// Number of permanently faulty cells.
    pub fn fault_count(&self) -> usize {
        self.faults.iter().filter(|f| f.is_some()).count()
    }

    /// Whether the map contains no faults at all.
    pub fn is_clean(&self) -> bool {
        self.faults.iter().all(Option::is_none)
    }

    /// Iterates over `(addr, kind)` for every faulty cell.
    pub fn iter(&self) -> impl Iterator<Item = (CellAddr, FaultKind)> + '_ {
        self.dims
            .iter()
            .zip(self.faults.iter())
            .filter_map(|(addr, f)| f.map(|k| (addr, k)))
    }

    /// Row-major access by linear index, used by array internals.
    pub(crate) fn fault_at_index(&self, idx: usize) -> Option<FaultKind> {
        self.faults[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_map_is_clean() {
        let m = FaultMap::none(Dims::square8());
        assert!(m.is_clean());
        assert_eq!(m.fault_count(), 0);
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn sample_is_deterministic_in_model_and_base() {
        let dims = Dims::square8();
        let model = FaultModel::stuck(0.3, 99);
        let a = FaultMap::sample(dims, &model, 1000);
        let b = FaultMap::sample(dims, &model, 1000);
        let c = FaultMap::sample(dims, &model, 2000);
        assert_eq!(a, b);
        assert_ne!(a, c, "different base ids draw different faults");
        assert!(a.fault_count() > 0, "rate 0.3 over 64 cells must hit");
    }

    #[test]
    fn set_fault_round_trips() {
        let mut m = FaultMap::none(Dims::square8());
        let addr = CellAddr::new(3, 5);
        m.set_fault(addr, Some(FaultKind::StuckAtHrs));
        assert_eq!(m.fault_at(addr), Some(FaultKind::StuckAtHrs));
        assert_eq!(m.fault_count(), 1);
        m.set_fault(addr, None);
        assert!(m.is_clean());
    }

    #[test]
    fn iter_reports_faulty_cells_only() {
        let mut m = FaultMap::none(Dims::new(4, 4));
        m.set_fault(CellAddr::new(0, 1), Some(FaultKind::StuckAtLrs));
        m.set_fault(CellAddr::new(3, 3), Some(FaultKind::WearOut));
        let listed: Vec<_> = m.iter().collect();
        assert_eq!(
            listed,
            vec![
                (CellAddr::new(0, 1), FaultKind::StuckAtLrs),
                (CellAddr::new(3, 3), FaultKind::WearOut),
            ]
        );
    }
}
