//! Modified nodal analysis assembly for the 1T1M crossbar.
//!
//! Every cell pitch point on every wire is a circuit node: node
//! `row(i, j)` is the point on word line `i` above bit line `j`, and
//! `col(i, j)` the point on bit line `j` at word line `i`. Cells connect the
//! two node sets; wire segments chain nodes along each wire; drivers attach
//! at the west (rows) and south (columns) edges; and in sneak mode the
//! periphery couples adjacent wires (see [`crate::wires::WireParams`]).
//!
//! Assembly is generic over a [`Stamp`] sink so the dense oracle
//! ([`assemble`]) and the sparse reusable-factorization path
//! ([`crate::solver::StampedTemplate`]) are guaranteed to stamp the exact
//! same conductances — the sparse path differs only in where the numbers
//! land.

use crate::bias::{Bias, Terminal};
use crate::dense::Matrix;
use crate::geometry::Dims;
use crate::wires::WireParams;

/// Transistor gating configuration of the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gating {
    /// Normal operation: only the selected row's access transistors conduct
    /// (paper Fig. 3a — sneak paths eliminated).
    Row(usize),
    /// Sneak mode: every access transistor conducts (paper Fig. 3b).
    AllOn,
}

impl Gating {
    /// Whether the cell at `row` conducts under this gating.
    #[inline]
    pub fn conducts(self, row: usize) -> bool {
        match self {
            Gating::Row(r) => r == row,
            Gating::AllOn => true,
        }
    }
}

/// Node index of the word-line point above cell `(i, j)`.
#[inline]
pub fn row_node(dims: Dims, i: usize, j: usize) -> usize {
    i * dims.cols + j
}

/// Node index of the bit-line point at cell `(i, j)`.
#[inline]
pub fn col_node(dims: Dims, i: usize, j: usize) -> usize {
    dims.cells() + i * dims.cols + j
}

/// Total node count of the network.
#[inline]
pub fn node_count(dims: Dims) -> usize {
    2 * dims.cells()
}

/// A sink for nodal-analysis stamps: any structure that can accumulate
/// conductances at `(node, node)` slots and currents into the rhs.
pub trait Stamp {
    /// Adds `value` to the matrix slot at `(row, col)`.
    fn add(&mut self, row: usize, col: usize, value: f64);
    /// Adds `current` to the right-hand side at `node`.
    fn rhs(&mut self, node: usize, current: f64);

    /// Stamps a two-terminal conductance between nodes `a` and `c`.
    fn pair(&mut self, a: usize, c: usize, cond: f64) {
        self.add(a, a, cond);
        self.add(c, c, cond);
        self.add(a, c, -cond);
        self.add(c, a, -cond);
    }
}

impl Stamp for (Matrix, Vec<f64>) {
    fn add(&mut self, row: usize, col: usize, value: f64) {
        self.0.add(row, col, value);
    }
    fn rhs(&mut self, node: usize, current: f64) {
        self.1[node] += current;
    }
}

/// Stamps the full modified-nodal-analysis system into `sink`.
///
/// `cell_resistance(i, j)` must return the series resistance (memristor +
/// ON transistor) of the cell; it is consulted only for conducting cells.
///
/// # Panics
///
/// Panics if the bias vectors do not match `dims`.
pub fn stamp_system<S, F>(
    dims: Dims,
    wires: &WireParams,
    bias: &Bias,
    gating: Gating,
    mut cell_resistance: F,
    sink: &mut S,
) where
    S: Stamp,
    F: FnMut(usize, usize) -> f64,
{
    assert_eq!(bias.rows.len(), dims.rows, "row bias length mismatch");
    assert_eq!(bias.cols.len(), dims.cols, "column bias length mismatch");
    let n = node_count(dims);

    // Regularization leak on every node.
    for node in 0..n {
        sink.add(node, node, wires.g_leak);
    }

    let g_row_seg = 1.0 / wires.r_row_segment;
    let g_col_seg = 1.0 / wires.r_col_segment;
    let g_driver = 1.0 / wires.r_driver;
    let g_couple = 1.0 / wires.r_couple;

    // Wire segments.
    for i in 0..dims.rows {
        for j in 0..dims.cols.saturating_sub(1) {
            sink.pair(row_node(dims, i, j), row_node(dims, i, j + 1), g_row_seg);
        }
    }
    for j in 0..dims.cols {
        for i in 0..dims.rows.saturating_sub(1) {
            sink.pair(col_node(dims, i, j), col_node(dims, i + 1, j), g_col_seg);
        }
    }

    // Cells (only conducting rows).
    for i in 0..dims.rows {
        if !gating.conducts(i) {
            continue;
        }
        for j in 0..dims.cols {
            let r = cell_resistance(i, j);
            sink.pair(row_node(dims, i, j), col_node(dims, i, j), 1.0 / r);
        }
    }

    // Drivers: rows at the west edge (j = 0), columns at the south edge
    // (i = rows - 1).
    for (i, term) in bias.rows.iter().enumerate() {
        if let Terminal::Driven(v) = term {
            let node = row_node(dims, i, 0);
            sink.add(node, node, g_driver);
            sink.rhs(node, g_driver * v);
        }
    }
    for (j, term) in bias.cols.iter().enumerate() {
        if let Terminal::Driven(v) = term {
            let node = col_node(dims, dims.rows - 1, j);
            sink.add(node, node, g_driver);
            sink.rhs(node, g_driver * v);
        }
    }

    // Sneak-path control periphery: adjacent-wire coupling, sneak mode only.
    if gating == Gating::AllOn {
        for i in 0..dims.rows.saturating_sub(1) {
            sink.pair(row_node(dims, i, 0), row_node(dims, i + 1, 0), g_couple);
        }
        for j in 0..dims.cols.saturating_sub(1) {
            sink.pair(
                col_node(dims, dims.rows - 1, j),
                col_node(dims, dims.rows - 1, j + 1),
                g_couple,
            );
        }
    }
}

/// Assembles the dense nodal conductance matrix and current vector (the
/// verification-oracle path).
///
/// `cell_resistance(i, j)` must return the series resistance (memristor +
/// ON transistor) of the cell; it is consulted only for conducting cells.
///
/// # Panics
///
/// Panics if the bias vectors do not match `dims`.
pub fn assemble<F>(
    dims: Dims,
    wires: &WireParams,
    bias: &Bias,
    gating: Gating,
    cell_resistance: F,
) -> (Matrix, Vec<f64>)
where
    F: FnMut(usize, usize) -> f64,
{
    let n = node_count(dims);
    let mut sink = (Matrix::zeros(n), vec![0.0; n]);
    stamp_system(dims, wires, bias, gating, cell_resistance, &mut sink);
    sink
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::solve;
    use crate::geometry::CellAddr;

    fn uniform_resistance(_: usize, _: usize) -> f64 {
        60.0e3
    }

    #[test]
    fn node_indices_are_disjoint() {
        let dims = Dims::new(4, 5);
        let mut seen = std::collections::HashSet::new();
        for i in 0..4 {
            for j in 0..5 {
                assert!(seen.insert(row_node(dims, i, j)));
                assert!(seen.insert(col_node(dims, i, j)));
            }
        }
        assert_eq!(seen.len(), node_count(dims));
    }

    #[test]
    fn addressed_bias_solves_and_respects_kcl() {
        let dims = Dims::new(4, 4);
        let wires = WireParams::default();
        let bias = Bias::addressed(dims, CellAddr::new(1, 2), 0.2);
        let (g, b) = assemble(dims, &wires, &bias, Gating::Row(1), uniform_resistance);
        let v = solve(g.clone(), b.clone()).expect("network solves");
        let residual = g.mul_vec(&v);
        for (ri, bi) in residual.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-9, "KCL residual too large");
        }
        // The addressed cell should see most of the drive voltage.
        let v_cell = v[row_node(dims, 1, 2)] - v[col_node(dims, 1, 2)];
        assert!(v_cell > 0.19, "addressed cell sees {v_cell} V of 0.2 V");
    }

    #[test]
    fn sneak_bias_is_nonsingular_despite_floating_wires() {
        let dims = Dims::square8();
        let wires = WireParams::default();
        let bias = Bias::sneak_pulse(dims, CellAddr::new(3, 4), 1.0);
        let (g, b) = assemble(dims, &wires, &bias, Gating::AllOn, uniform_resistance);
        let v = solve(g, b).expect("leak regularization keeps system nonsingular");
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn row_gating_blocks_other_rows() {
        // In row-select mode, a cell on an unselected row carries no cell
        // conductance: its row and column nodes decouple except via wires.
        let dims = Dims::new(2, 2);
        let wires = WireParams::default();
        let bias = Bias::addressed(dims, CellAddr::new(0, 0), 0.2);
        let (g, b) = assemble(dims, &wires, &bias, Gating::Row(0), |i, _| {
            assert_eq!(i, 0, "resistance must only be consulted for row 0");
            60.0e3
        });
        solve(g, b).expect("solves");
    }

    #[test]
    fn sneak_mode_consults_every_cell() {
        let dims = Dims::new(3, 3);
        let wires = WireParams::default();
        let bias = Bias::sneak_pulse(dims, CellAddr::new(1, 1), 1.0);
        let mut consulted = 0;
        let (_, _) = assemble(dims, &wires, &bias, Gating::AllOn, |_, _| {
            consulted += 1;
            60.0e3
        });
        assert_eq!(consulted, 9);
    }
}
