//! Calibrated behavioral model of the sneak pulse.
//!
//! The circuit-accurate engine ([`crate::array::Crossbar`]) resolves the
//! full resistive network every nanosecond — perfect for figures, far too
//! slow for the megabits of ciphertext the NIST datasets need. This module
//! provides a behavioral stand-in with three properties the security
//! experiments rely on:
//!
//! 1. **Geometric attenuation.** A pulse at the PoE reaches neighbouring
//!    cells with a voltage fraction given by a [`Kernel`] — a per-offset
//!    attenuation table *calibrated against the circuit engine* (mean cell
//!    voltage over random stored data).
//! 2. **Cross-cell data diffusion.** Each member cell's effective drive is
//!    modulated by the states of the other polyomino members (the paper's
//!    data-dependent polyomino). The modulation uses a *triangular sweep*:
//!    cells are updated in address order and each cell's context mixes
//!    already-updated predecessors with not-yet-updated successors. That
//!    structure makes every pulse an exactly invertible map.
//! 3. **Exact hysteresis flows.** Cell dynamics use a logistic TEAM
//!    approximation: the state's log-odds (logit) shifts linearly with
//!    `rate(v) × width`, with asymmetric up/down rates calibrated from the
//!    TEAM model's measured transition times. Logistic flows have closed
//!    forms in both directions, so decryption reverses encryption exactly
//!    — while pulses at different PoEs still fail to commute (the context
//!    changes between pulses), reproducing the paper's Fig. 2b order
//!    sensitivity.

use crate::energy::PulseEnergy;
use crate::error::CrossbarError;
use crate::geometry::{CellAddr, Dims};
use crate::{Crossbar, WireParams};
use spe_memristor::{DeviceParams, MlcLevel, Pulse, PulseWidthSearch};
use spe_telemetry::TelemetryHandle;

/// Chebyshev radius of the attenuation kernel (offsets beyond this are
/// treated as fully attenuated).
pub const KERNEL_RADIUS: usize = 4;

/// Per-offset voltage attenuation of a sneak pulse, calibrated against the
/// circuit engine.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// `attenuation[(dr + R)][(dc + R)]` = mean fraction of the drive
    /// voltage across a cell at offset `(dr, dc)` from the PoE.
    attenuation: Vec<f64>,
    /// Sensitivity of a member cell's drive to its polyomino context
    /// (normalized neighbour state average).
    pub context_beta: f64,
}

impl Kernel {
    const SIDE: usize = 2 * KERNEL_RADIUS + 1;

    /// Builds a kernel from an explicit attenuation table
    /// (`(2·R+1) × (2·R+1)`, row-major, centered on the PoE).
    ///
    /// # Panics
    ///
    /// Panics if the table has the wrong size.
    pub fn from_table(attenuation: Vec<f64>, context_beta: f64) -> Self {
        assert_eq!(
            attenuation.len(),
            Self::SIDE * Self::SIDE,
            "kernel table must be {0}x{0}",
            Self::SIDE
        );
        Kernel {
            attenuation,
            context_beta,
        }
    }

    /// Calibrates the kernel against the circuit engine: solves the sneak
    /// network for `samples` random data patterns (deterministic in `seed`)
    /// with central PoEs on an 8×8 mat and averages the per-offset voltage
    /// fraction.
    ///
    /// # Errors
    ///
    /// Propagates [`CrossbarError`] from the circuit engine.
    pub fn calibrate(
        device: &DeviceParams,
        wires: &WireParams,
        samples: usize,
        seed: u64,
    ) -> Result<Self, CrossbarError> {
        Kernel::calibrate_recorded(device, wires, samples, seed, spe_telemetry::noop())
    }

    /// Like [`Kernel::calibrate`], but every circuit-engine sample array
    /// reports its nodal solves into `recorder`.
    ///
    /// # Errors
    ///
    /// Propagates [`CrossbarError`] from the circuit engine.
    pub fn calibrate_recorded(
        device: &DeviceParams,
        wires: &WireParams,
        samples: usize,
        seed: u64,
        recorder: TelemetryHandle,
    ) -> Result<Self, CrossbarError> {
        let dims = Dims::square8();
        let mut sums = vec![0.0f64; Self::SIDE * Self::SIDE];
        let mut counts = vec![0usize; Self::SIDE * Self::SIDE];
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next_level = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            MlcLevel::from_masked((state >> 33) as u8)
        };
        let poes = [
            CellAddr::new(3, 3),
            CellAddr::new(4, 4),
            CellAddr::new(3, 4),
        ];
        // One array for the whole calibration: each sample reprograms the
        // cells, but the network topology never changes, so every sneak
        // solve after the first reuses the cached sparse factorization.
        let mut xbar = Crossbar::with_wires(dims, device.clone(), *wires)?;
        xbar.set_recorder(recorder);
        for s in 0..samples.max(1) {
            let levels: Vec<MlcLevel> = (0..dims.cells()).map(|_| next_level()).collect();
            xbar.write_levels(&levels)?;
            let poe = poes[s % poes.len()];
            let field = xbar.sneak_voltages(poe, 1.0)?;
            for (addr, v) in field.iter() {
                let (dr, dc) = addr.offset_from(poe);
                if dr.unsigned_abs() <= KERNEL_RADIUS && dc.unsigned_abs() <= KERNEL_RADIUS {
                    let idx = ((dr + KERNEL_RADIUS as isize) as usize) * Self::SIDE
                        + (dc + KERNEL_RADIUS as isize) as usize;
                    sums[idx] += v;
                    counts[idx] += 1;
                }
            }
        }
        let attenuation = sums
            .iter()
            .zip(&counts)
            .map(|(s, c)| {
                if *c > 0 {
                    (s / *c as f64).max(0.0)
                } else {
                    0.0
                }
            })
            .collect();
        Ok(Kernel {
            attenuation,
            context_beta: 0.15,
        })
    }

    /// A 64-bit fingerprint of the calibrated attenuation table (FNV-1a
    /// over the raw bit patterns). Two crossbars agree on the fingerprint
    /// only if their calibrated sneak responses match exactly — the basis
    /// of SPE's hardware binding.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for v in &self.attenuation {
            for byte in v.to_bits().to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }

    /// Attenuation at a signed offset from the PoE (0 outside the radius).
    pub fn at(&self, dr: isize, dc: isize) -> f64 {
        if dr.unsigned_abs() > KERNEL_RADIUS || dc.unsigned_abs() > KERNEL_RADIUS {
            return 0.0;
        }
        let idx = ((dr + KERNEL_RADIUS as isize) as usize) * Self::SIDE
            + (dc + KERNEL_RADIUS as isize) as usize;
        self.attenuation[idx]
    }

    /// The member offsets of a pulse of amplitude `amplitude` given the cell
    /// threshold: offsets whose attenuated drive reaches `v_threshold`.
    pub fn member_offsets(&self, amplitude: f64, v_threshold: f64) -> Vec<(isize, isize)> {
        let r = KERNEL_RADIUS as isize;
        let mut members = Vec::new();
        for dr in -r..=r {
            for dc in -r..=r {
                if self.at(dr, dc) * amplitude.abs() >= v_threshold {
                    members.push((dr, dc));
                }
            }
        }
        members
    }
}

/// Behavioral dynamics constants of the logistic TEAM approximation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastParams {
    /// Logit shift rate toward high resistance, in 1/(V·s).
    pub k_up: f64,
    /// Logit shift rate toward low resistance, in 1/(V·s).
    pub k_down: f64,
    /// Minimum effective cell voltage for any state change, in volts.
    pub v_threshold: f64,
}

impl FastParams {
    /// Calibrates the rates so the logistic flow reproduces the TEAM model's
    /// measured `L10 → L00` encryption and decryption transition times at
    /// ±1 V (the paper's Fig. 5 transition).
    ///
    /// # Errors
    ///
    /// Propagates a device error if the TEAM transitions are unreachable.
    pub fn calibrated(device: &DeviceParams) -> Result<Self, CrossbarError> {
        let search = PulseWidthSearch::new(device);
        let r10 = MlcLevel::L10.nominal_resistance(device);
        let r00 = MlcLevel::L00.nominal_resistance(device);
        let w_up = search.width_for(r10, r00, 1.0)?;
        let w_down = search.width_for(r00, r10, -1.0)?;
        let x10 = device.state_for_resistance(r10)?;
        let x00 = device.state_for_resistance(r00)?;
        let delta_logit = logit(x00) - logit(x10);
        let overdrive = 1.0 - device.v_threshold;
        Ok(FastParams {
            k_up: delta_logit / (w_up * overdrive),
            k_down: delta_logit / (w_down * overdrive),
            v_threshold: device.v_threshold,
        })
    }

    /// Logit shift produced by an effective voltage `v` applied for `width`
    /// seconds (zero below threshold; signed toward the pulse direction).
    pub fn logit_shift(&self, v: f64, width: f64) -> f64 {
        let mag = v.abs();
        if mag < self.v_threshold {
            return 0.0;
        }
        let overdrive = mag - self.v_threshold;
        if v > 0.0 {
            self.k_up * overdrive * width
        } else {
            -self.k_down * overdrive * width
        }
    }
}

fn logit(x: f64) -> f64 {
    let x = x.clamp(1e-9, 1.0 - 1e-9);
    (x / (1.0 - x)).ln()
}

fn sigmoid(u: f64) -> f64 {
    let u = u.clamp(-40.0, 40.0);
    1.0 / (1.0 + (-u).exp())
}

/// Behavioral crossbar: cell states under the logistic TEAM approximation.
///
/// `apply_pulse` / `apply_pulse_inverse` are exact inverses of each other,
/// which is what guarantees SPE decryption correctness on this model (the
/// circuit engine validates the approximation on small cases).
#[derive(Debug, Clone, PartialEq)]
pub struct FastArray {
    dims: Dims,
    device: DeviceParams,
    params: FastParams,
    kernel: Kernel,
    /// Per-cell state in logit (log-odds) coordinates, row-major. The
    /// normalized state is `x = sigmoid(u)`; storing `u` keeps pulse flows
    /// exactly invertible at any shift magnitude (no clamping needed).
    u: Vec<f64>,
}

impl FastArray {
    /// Creates an array with every cell at logic `00`.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError`] for invalid dimensions or parameters.
    pub fn new(
        dims: Dims,
        device: DeviceParams,
        params: FastParams,
        kernel: Kernel,
    ) -> Result<Self, CrossbarError> {
        dims.validate()?;
        device.validate()?;
        let x00 = device.state_for_resistance(MlcLevel::L00.nominal_resistance(&device))?;
        Ok(FastArray {
            u: vec![logit(x00); dims.cells()],
            dims,
            device,
            params,
            kernel,
        })
    }

    /// Array dimensions.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// The dynamics constants.
    pub fn params(&self) -> &FastParams {
        &self.params
    }

    /// The attenuation kernel this array was built with.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The device parameters this array was built with.
    pub fn device(&self) -> &DeviceParams {
        &self.device
    }

    /// Raw per-cell states in logit coordinates, row-major (opaque storage
    /// format; use [`levels`](Self::levels) for logical readout).
    pub fn states(&self) -> &[f64] {
        &self.u
    }

    /// Overwrites the raw per-cell states.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::DataSizeMismatch`] on a length mismatch.
    pub fn set_states(&mut self, states: &[f64]) -> Result<(), CrossbarError> {
        if states.len() != self.u.len() {
            return Err(CrossbarError::DataSizeMismatch {
                expected: self.u.len(),
                actual: states.len(),
            });
        }
        self.u.copy_from_slice(states);
        Ok(())
    }

    /// Quantized logic level of every cell, row-major.
    pub fn levels(&self) -> Vec<MlcLevel> {
        self.u
            .iter()
            .map(|u| MlcLevel::quantize(self.device.resistance_at(sigmoid(*u)), &self.device))
            .collect()
    }

    /// Programs the array from row-major levels (nominal analog values).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::DataSizeMismatch`] on a length mismatch.
    pub fn write_levels(&mut self, levels: &[MlcLevel]) -> Result<(), CrossbarError> {
        if levels.len() != self.u.len() {
            return Err(CrossbarError::DataSizeMismatch {
                expected: self.u.len(),
                actual: levels.len(),
            });
        }
        for (u, level) in self.u.iter_mut().zip(levels) {
            let r = level.nominal_resistance(&self.device);
            *u = logit(
                self.device
                    .state_for_resistance(r)
                    .expect("nominal resistance is in range"),
            );
        }
        Ok(())
    }

    /// Quantized level of one cell.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    pub fn level(&self, addr: CellAddr) -> MlcLevel {
        let x = sigmoid(self.u[self.dims.index(addr)]);
        MlcLevel::quantize(self.device.resistance_at(x), &self.device)
    }

    /// The (geometry-determined) member cells of a pulse at `poe`.
    pub fn members(&self, poe: CellAddr, amplitude: f64) -> Vec<CellAddr> {
        let mut cells = Vec::new();
        for (dr, dc) in self
            .kernel
            .member_offsets(amplitude, self.params.v_threshold)
        {
            let r = poe.row as isize + dr;
            let c = poe.col as isize + dc;
            if r >= 0 && c >= 0 {
                let a = CellAddr::new(r as usize, c as usize);
                if self.dims.contains(a) {
                    cells.push(a);
                }
            }
        }
        cells.sort();
        cells
    }

    /// Applies a sneak pulse at `poe` (forward direction).
    ///
    /// Member cells are visited in address order; each cell's drive is the
    /// kernel-attenuated amplitude modulated by the mean state of the other
    /// members (predecessors already updated — the triangular structure that
    /// keeps the map invertible). Returns the member cells.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::AddressOutOfBounds`] for a bad PoE.
    pub fn apply_pulse(
        &mut self,
        poe: CellAddr,
        pulse: Pulse,
    ) -> Result<Vec<CellAddr>, CrossbarError> {
        self.pulse_sweep(poe, pulse, false)
    }

    /// Exactly inverts a previous [`apply_pulse`](Self::apply_pulse) with
    /// the same arguments (reverse sweep order, negated logit shifts).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::AddressOutOfBounds`] for a bad PoE.
    pub fn apply_pulse_inverse(
        &mut self,
        poe: CellAddr,
        pulse: Pulse,
    ) -> Result<Vec<CellAddr>, CrossbarError> {
        self.pulse_sweep(poe, pulse, true)
    }

    /// Energy a pulse at `poe` would dissipate in the *current* state
    /// (read-only — call before [`apply_pulse`](Self::apply_pulse) to
    /// model what a supply-rail probe sees during the pulse).
    ///
    /// Each cell inside the kernel radius burns `v²·g·width` where `v`
    /// is the kernel-attenuated, context-modulated drive (as in the
    /// sweep, evaluated against pre-pulse states) and `g` the cell's
    /// present conductance — so the trace is data-dependent, which is
    /// exactly the leakage the CPA attacker exploits. Member cells
    /// (those the pulse programs) count as `member_j`, the remaining
    /// reachable cells as `sneak_j`.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::AddressOutOfBounds`] for a bad PoE.
    pub fn pulse_energy(&self, poe: CellAddr, pulse: Pulse) -> Result<PulseEnergy, CrossbarError> {
        if !self.dims.contains(poe) {
            return Err(CrossbarError::AddressOutOfBounds {
                row: poe.row,
                col: poe.col,
                rows: self.dims.rows,
                cols: self.dims.cols,
            });
        }
        let members = self.members(poe, pulse.voltage);
        let ctx_of = |skip: Option<CellAddr>| {
            let mut ctx = 0.0;
            let mut n = 0;
            for other in &members {
                if Some(*other) == skip {
                    continue;
                }
                ctx += 2.0 * (sigmoid(self.u[self.dims.index(*other)]) - 0.5);
                n += 1;
            }
            if n > 0 {
                ctx / n as f64
            } else {
                0.0
            }
        };
        let mut energy = PulseEnergy::default();
        let r = KERNEL_RADIUS as isize;
        for dr in -r..=r {
            for dc in -r..=r {
                let atten = self.kernel.at(dr, dc);
                if atten <= 0.0 {
                    continue;
                }
                let row = poe.row as isize + dr;
                let col = poe.col as isize + dc;
                if row < 0 || col < 0 {
                    continue;
                }
                let addr = CellAddr::new(row as usize, col as usize);
                if !self.dims.contains(addr) {
                    continue;
                }
                let is_member = members.binary_search(&addr).is_ok();
                let ctx = if is_member {
                    ctx_of(Some(addr))
                } else {
                    ctx_of(None)
                };
                let v = pulse.voltage * atten * (1.0 + self.kernel.context_beta * ctx);
                let x = sigmoid(self.u[self.dims.index(addr)]);
                let g = 1.0 / self.device.resistance_at(x);
                let e = v * v * g * pulse.width;
                if is_member {
                    energy.member_j += e;
                } else {
                    energy.sneak_j += e;
                }
            }
        }
        Ok(energy)
    }

    fn pulse_sweep(
        &mut self,
        poe: CellAddr,
        pulse: Pulse,
        inverse: bool,
    ) -> Result<Vec<CellAddr>, CrossbarError> {
        if !self.dims.contains(poe) {
            return Err(CrossbarError::AddressOutOfBounds {
                row: poe.row,
                col: poe.col,
                rows: self.dims.rows,
                cols: self.dims.cols,
            });
        }
        let members = self.members(poe, pulse.voltage);
        let order: Vec<usize> = if inverse {
            (0..members.len()).rev().collect()
        } else {
            (0..members.len()).collect()
        };
        for k in order {
            let addr = members[k];
            let idx = self.dims.index(addr);
            // Context: mean normalized state of the *other* members. In the
            // forward sweep predecessors hold updated values and successors
            // original ones; the reverse sweep sees exactly the same mix
            // (successors already restored, predecessors still updated), so
            // the drive recomputes identically and the flow inverts exactly.
            let mut ctx = 0.0;
            let mut n = 0;
            for (m, other) in members.iter().enumerate() {
                if m == k {
                    continue;
                }
                ctx += 2.0 * (sigmoid(self.u[self.dims.index(*other)]) - 0.5);
                n += 1;
            }
            let ctx = if n > 0 { ctx / n as f64 } else { 0.0 };
            let (dr, dc) = addr.offset_from(poe);
            let atten = self.kernel.at(dr, dc);
            let v = pulse.voltage * atten * (1.0 + self.kernel.context_beta * ctx);
            let shift = self.params.logit_shift(v, pulse.width);
            let shift = if inverse { -shift } else { shift };
            self.u[idx] += shift;
        }
        Ok(members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> FastArray {
        let device = DeviceParams::default();
        let wires = WireParams::default();
        let kernel = Kernel::calibrate(&device, &wires, 4, 1).expect("calibrate");
        let params = FastParams::calibrated(&device).expect("rates");
        FastArray::new(Dims::square8(), device, params, kernel).expect("array")
    }

    fn random_levels(n: usize, seed: u64) -> Vec<MlcLevel> {
        let mut s = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                MlcLevel::from_masked((s >> 33) as u8)
            })
            .collect()
    }

    #[test]
    fn kernel_peaks_at_poe_and_decays() {
        let device = DeviceParams::default();
        let kernel = Kernel::calibrate(&device, &WireParams::default(), 4, 9).expect("calibrate");
        let center = kernel.at(0, 0);
        assert!(center > 0.8, "PoE attenuation {center}");
        assert!(kernel.at(0, 1) <= center + 1e-9);
        assert!(kernel.at(4, 4) < center);
        assert_eq!(kernel.at(5, 0), 0.0);
    }

    #[test]
    fn fingerprint_is_stable_and_parameter_sensitive() {
        let device = DeviceParams::default();
        let wires = WireParams::default();
        let a = Kernel::calibrate(&device, &wires, 4, 1).expect("calibrate");
        let b = Kernel::calibrate(&device, &wires, 4, 1).expect("calibrate");
        assert_eq!(a.fingerprint(), b.fingerprint(), "same hardware, same id");
        let varied = device.with_variation(&spe_memristor::Variation::uniform(0.05));
        let c = Kernel::calibrate(&varied, &wires, 4, 1).expect("calibrate");
        assert_ne!(
            a.fingerprint(),
            c.fingerprint(),
            "5% device shift changes it"
        );
    }

    #[test]
    fn members_form_local_group() {
        let arr = setup();
        let members = arr.members(CellAddr::new(4, 4), 1.0);
        assert!(
            members.len() >= 2 && members.len() <= 41,
            "member count {}",
            members.len()
        );
        assert!(members.contains(&CellAddr::new(4, 4)));
    }

    #[test]
    fn pulse_then_inverse_is_identity() {
        let mut arr = setup();
        arr.write_levels(&random_levels(64, 5)).expect("write");
        let before = arr.states().to_vec();
        let pulse = Pulse::new(1.0, 0.07e-6).expect("pulse");
        let poe = CellAddr::new(3, 4);
        arr.apply_pulse(poe, pulse).expect("pulse");
        assert_ne!(arr.states(), &before[..], "pulse must change state");
        arr.apply_pulse_inverse(poe, pulse).expect("inverse");
        for (a, b) in arr.states().iter().zip(&before) {
            assert!((a - b).abs() < 1e-9, "inverse must restore state");
        }
    }

    #[test]
    fn pulse_sequence_inverts_in_reverse_order() {
        let mut arr = setup();
        arr.write_levels(&random_levels(64, 6)).expect("write");
        let before = arr.states().to_vec();
        let schedule = [
            (
                CellAddr::new(1, 2),
                Pulse::new(1.0, 0.06e-6).expect("pulse"),
            ),
            (
                CellAddr::new(4, 4),
                Pulse::new(-1.0, 0.02e-6).expect("pulse"),
            ),
            (
                CellAddr::new(6, 1),
                Pulse::new(1.0, 0.09e-6).expect("pulse"),
            ),
            (
                CellAddr::new(2, 6),
                Pulse::new(-1.0, 0.04e-6).expect("pulse"),
            ),
        ];
        for (poe, pulse) in schedule {
            arr.apply_pulse(poe, pulse).expect("pulse");
        }
        for (poe, pulse) in schedule.iter().rev() {
            arr.apply_pulse_inverse(*poe, *pulse).expect("inverse");
        }
        for (a, b) in arr.states().iter().zip(&before) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn wrong_order_inversion_fails() {
        // Paper Fig. 2b: decrypting with the right PoEs in the wrong order
        // does not recover the plaintext.
        let mut arr = setup();
        arr.write_levels(&random_levels(64, 8)).expect("write");
        let before = arr.states().to_vec();
        let schedule = [
            (
                CellAddr::new(2, 2),
                Pulse::new(1.0, 0.08e-6).expect("pulse"),
            ),
            (
                CellAddr::new(3, 3),
                Pulse::new(-1.0, 0.03e-6).expect("pulse"),
            ),
            (
                CellAddr::new(4, 4),
                Pulse::new(1.0, 0.06e-6).expect("pulse"),
            ),
        ];
        for (poe, pulse) in schedule {
            arr.apply_pulse(poe, pulse).expect("pulse");
        }
        // Invert in *forward* order instead of reverse.
        for (poe, pulse) in schedule {
            arr.apply_pulse_inverse(poe, pulse).expect("inverse");
        }
        let max_err = arr
            .states()
            .iter()
            .zip(&before)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_err > 1e-6,
            "wrong-order inversion should not be exact (max err {max_err})"
        );
    }

    #[test]
    fn pulses_change_quantized_levels() {
        let mut arr = setup();
        arr.write_levels(&random_levels(64, 12)).expect("write");
        let before = arr.levels();
        for (i, poe) in [
            CellAddr::new(2, 2),
            CellAddr::new(5, 5),
            CellAddr::new(3, 6),
        ]
        .into_iter()
        .enumerate()
        {
            let v = if i % 2 == 0 { 1.0 } else { -1.0 };
            arr.apply_pulse(poe, Pulse::new(v, 0.08e-6).expect("pulse"))
                .expect("pulse");
        }
        let after = arr.levels();
        let flips = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        assert!(flips >= 3, "encryption must flip levels, got {flips}");
    }

    #[test]
    fn context_couples_neighbour_data() {
        // Changing one member's state changes the ciphertext of others
        // (plaintext avalanche prerequisite).
        let device = DeviceParams::default();
        let kernel = Kernel::calibrate(&device, &WireParams::default(), 4, 1).expect("calibrate");
        let params = FastParams::calibrated(&device).expect("rates");
        let mut a =
            FastArray::new(Dims::square8(), device.clone(), params, kernel.clone()).expect("array");
        let mut b = FastArray::new(Dims::square8(), device, params, kernel).expect("array");
        let mut levels = random_levels(64, 21);
        a.write_levels(&levels).expect("write");
        levels[27] = MlcLevel::from_masked(levels[27].bits() ^ 0b11);
        b.write_levels(&levels).expect("write");
        let poe = CellAddr::new(3, 3); // index 27 and neighbours in range
        let pulse = Pulse::new(1.0, 0.08e-6).expect("pulse");
        a.apply_pulse(poe, pulse).expect("pulse");
        b.apply_pulse(poe, pulse).expect("pulse");
        let diffs = a
            .states()
            .iter()
            .zip(b.states())
            .enumerate()
            .filter(|(i, (x, y))| *i != 27 && (*x - *y).abs() > 1e-12)
            .count();
        assert!(diffs > 0, "neighbour data must influence other cells");
    }

    #[test]
    fn write_levels_rejects_wrong_size() {
        let mut arr = setup();
        assert!(arr.write_levels(&[MlcLevel::L00; 3]).is_err());
    }

    #[test]
    fn pulse_energy_is_positive_and_read_only() {
        let mut arr = setup();
        arr.write_levels(&random_levels(64, 31)).expect("write");
        let before = arr.states().to_vec();
        let pulse = Pulse::new(1.0, 0.07e-6).expect("pulse");
        let e = arr
            .pulse_energy(CellAddr::new(4, 4), pulse)
            .expect("energy");
        assert!(e.member_j > 0.0, "members must dissipate energy");
        assert!(e.sneak_j > 0.0, "sneak paths must leak energy");
        assert!(e.total() > e.member_j);
        assert_eq!(arr.states(), &before[..], "energy probe must not write");
    }

    #[test]
    fn pulse_energy_depends_on_stored_data() {
        // The CPA leakage premise: the same keyed pulse burns a different
        // energy over different plaintexts.
        let mut a = setup();
        let mut b = setup();
        a.write_levels(&[MlcLevel::L00; 64]).expect("write");
        b.write_levels(&[MlcLevel::L11; 64]).expect("write");
        let pulse = Pulse::new(1.0, 0.07e-6).expect("pulse");
        let poe = CellAddr::new(3, 3);
        let ea = a.pulse_energy(poe, pulse).expect("energy").total();
        let eb = b.pulse_energy(poe, pulse).expect("energy").total();
        assert!(
            (ea - eb).abs() > 1e-3 * ea.max(eb),
            "stored data must modulate pulse energy ({ea} vs {eb})"
        );
    }

    #[test]
    fn pulse_energy_rejects_bad_poe() {
        let arr = setup();
        let pulse = Pulse::new(1.0, 0.07e-6).expect("pulse");
        assert!(arr.pulse_energy(CellAddr::new(9, 9), pulse).is_err());
    }
}
