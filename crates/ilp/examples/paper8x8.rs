//! Security-margin sweep of the Table 1 PoE-placement ILP (development
//! aid; the polished version is the `table1_ilp` harness binary).

use spe_ilp::PlacementProblem;
fn main() {
    for margin in [0usize, 32, 56, 60, 63] {
        let t = std::time::Instant::now();
        match PlacementProblem::paper_8x8(margin).min_poes() {
            Ok(sol) => println!(
                "S={margin}: P={} total_cov={} covered={} overlapped={} in {:?}",
                sol.poes.len(),
                sol.total_coverage(),
                sol.covered,
                sol.overlapped,
                t.elapsed()
            ),
            Err(e) => println!("S={margin}: {e} in {:?}", t.elapsed()),
        }
    }
}
