//! Dense two-phase primal simplex for the LP relaxation.
//!
//! The branch-and-bound driver calls [`solve_relaxation_with`] once per
//! node with node-specific variable bounds, passing one shared
//! [`SimplexWorkspace`] so successive nodes reuse the tableau allocation
//! (the tableau is a contiguous [`DenseMat`] from the shared `spe-linalg`
//! kernel crate, not a vec-of-vecs). Fixed variables (`lower == upper`)
//! are substituted out before the tableau is built, so deep nodes solve
//! smaller LPs.

// Tableau index arithmetic mirrors the textbook pivoting rules.
#![allow(clippy::needless_range_loop)]

use crate::model::{Model, RelOp, Sense};
use spe_linalg::DenseMat;

/// Outcome of an LP relaxation solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// The relaxation has an optimum.
    Optimal {
        /// Objective value in the *model's* sense.
        objective: f64,
        /// Variable values, indexed like the model.
        values: Vec<f64>,
    },
    /// No assignment satisfies the rows within the given bounds.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
}

const EPS: f64 = 1e-9;

/// Reusable scratch memory for LP relaxation solves.
///
/// Branch-and-bound solves thousands of closely-sized relaxations; holding
/// the tableau, objective row and basis in one workspace means only the
/// first node of a campaign allocates ([`DenseMat::reset`] reuses the
/// backing buffer when capacity suffices).
#[derive(Debug, Clone, Default)]
pub struct SimplexWorkspace {
    tableau: DenseMat,
    obj: Vec<f64>,
    basis: Vec<usize>,
}

impl SimplexWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        SimplexWorkspace::default()
    }
}

/// Solves the LP relaxation of `model` with overriding variable bounds,
/// using a throwaway workspace. Prefer [`solve_relaxation_with`] in loops.
///
/// # Panics
///
/// Panics if the bound slices do not match the model's variable count, or a
/// lower bound exceeds its upper bound.
pub fn solve_relaxation(model: &Model, lower: &[f64], upper: &[f64]) -> LpOutcome {
    solve_relaxation_with(model, lower, upper, &mut SimplexWorkspace::new())
}

/// Solves the LP relaxation of `model` with overriding variable bounds,
/// reusing `ws` for all scratch storage.
///
/// # Panics
///
/// Panics if the bound slices do not match the model's variable count, or a
/// lower bound exceeds its upper bound.
pub fn solve_relaxation_with(
    model: &Model,
    lower: &[f64],
    upper: &[f64],
    ws: &mut SimplexWorkspace,
) -> LpOutcome {
    assert_eq!(lower.len(), model.num_vars());
    assert_eq!(upper.len(), model.num_vars());
    for (l, u) in lower.iter().zip(upper) {
        assert!(l <= u, "lower bound {l} exceeds upper bound {u}");
    }

    // Partition variables into fixed (substituted) and free (columns).
    let n = model.num_vars();
    let mut col_of = vec![usize::MAX; n];
    let mut free_vars = Vec::new();
    for v in 0..n {
        if (upper[v] - lower[v]).abs() > EPS {
            col_of[v] = free_vars.len();
            free_vars.push(v);
        }
    }
    let nf = free_vars.len();

    // Objective in internal minimize convention, over shifted variables
    // x = lower + y, 0 <= y <= span.
    let sign = match model.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut cost = vec![0.0; nf];
    let mut const_obj = 0.0; // model-sense objective contribution of lower/fixed parts
    for v in 0..n {
        let c = model.vars[v].objective;
        const_obj += c * lower[v];
        if col_of[v] != usize::MAX {
            cost[col_of[v]] = sign * c;
        }
    }

    // Rows: model constraints (with fixed/lower parts folded into rhs), plus
    // upper-bound rows y_j <= span_j for finite spans.
    struct Row {
        coeffs: Vec<(usize, f64)>,
        op: RelOp,
        rhs: f64,
    }
    let mut rows = Vec::new();
    for c in &model.constraints {
        let mut rhs = c.rhs;
        let mut coeffs = Vec::new();
        for (v, a) in &c.coeffs {
            rhs -= a * lower[*v];
            if col_of[*v] != usize::MAX {
                coeffs.push((col_of[*v], *a));
            }
        }
        // Merge duplicate columns.
        coeffs.sort_by_key(|(j, _)| *j);
        coeffs.dedup_by(|b, a| {
            if a.0 == b.0 {
                a.1 += b.1;
                true
            } else {
                false
            }
        });
        if coeffs.is_empty() {
            let ok = match c.op {
                RelOp::Le => 0.0 <= rhs + EPS,
                RelOp::Ge => 0.0 >= rhs - EPS,
                RelOp::Eq => rhs.abs() <= EPS,
            };
            if !ok {
                return LpOutcome::Infeasible;
            }
            continue;
        }
        rows.push(Row {
            coeffs,
            op: c.op,
            rhs,
        });
    }
    for (j, v) in free_vars.iter().enumerate() {
        let span = upper[*v] - lower[*v];
        if span.is_finite() {
            rows.push(Row {
                coeffs: vec![(j, 1.0)],
                op: RelOp::Le,
                rhs: span,
            });
        }
    }

    let m = rows.len();
    if nf == 0 {
        // Everything fixed; rows already checked above where possible.
        let values: Vec<f64> = (0..n).map(|v| lower[v]).collect();
        if model.is_feasible(&values, 1e-7) || m == 0 {
            return LpOutcome::Optimal {
                objective: const_obj,
                values,
            };
        }
        return LpOutcome::Infeasible;
    }

    // Normalize rhs >= 0 row by row.
    let mut ops = vec![RelOp::Eq; m];
    for (i, row) in rows.iter_mut().enumerate() {
        let flip = row.rhs < 0.0;
        if flip {
            for (_, v) in row.coeffs.iter_mut() {
                *v = -*v;
            }
            row.rhs = -row.rhs;
        }
        ops[i] = match (row.op, flip) {
            (RelOp::Le, false) | (RelOp::Ge, true) => RelOp::Le,
            (RelOp::Ge, false) | (RelOp::Le, true) => RelOp::Ge,
            (RelOp::Eq, _) => RelOp::Eq,
        };
    }

    // Column layout: nf structural + per-row slack/surplus + artificials.
    let mut ncols = nf;
    let mut slack_col = vec![usize::MAX; m];
    let mut art_col = vec![usize::MAX; m];
    for i in 0..m {
        match ops[i] {
            RelOp::Le => {
                slack_col[i] = ncols;
                ncols += 1;
            }
            RelOp::Ge => {
                slack_col[i] = ncols;
                ncols += 1;
                art_col[i] = ncols;
                ncols += 1;
            }
            RelOp::Eq => {
                art_col[i] = ncols;
                ncols += 1;
            }
        }
    }

    // Tableau: m rows x (ncols + 1) in one contiguous workspace matrix;
    // basis per row.
    ws.tableau.reset(m, ncols + 1);
    let t = &mut ws.tableau;
    ws.basis.clear();
    ws.basis.resize(m, 0);
    let basis = &mut ws.basis;
    for (i, row) in rows.iter().enumerate() {
        let trow = t.row_mut(i);
        for (j, v) in &row.coeffs {
            trow[*j] = *v;
        }
        trow[ncols] = row.rhs;
        match ops[i] {
            RelOp::Le => {
                trow[slack_col[i]] = 1.0;
                basis[i] = slack_col[i];
            }
            RelOp::Ge => {
                trow[slack_col[i]] = -1.0;
                trow[art_col[i]] = 1.0;
                basis[i] = art_col[i];
            }
            RelOp::Eq => {
                trow[art_col[i]] = 1.0;
                basis[i] = art_col[i];
            }
        }
    }

    let is_artificial = |col: usize| art_col.contains(&col) && col >= nf;

    // Phase 1: minimize sum of artificials.
    let has_artificials = art_col.iter().any(|c| *c != usize::MAX);
    if has_artificials {
        ws.obj.clear();
        ws.obj.resize(ncols + 1, 0.0);
        for i in 0..m {
            if art_col[i] != usize::MAX {
                // cost row = sum of artificial rows (since artificials basic).
                for (zj, tij) in ws.obj.iter_mut().zip(t.row(i)) {
                    *zj += tij;
                }
            }
        }
        // Reduced costs: c_j - z_j where c_j = 1 for artificials else 0.
        // Stored as objective row `obj[j] = z_j - c_j` so we pivot on obj > 0.
        for i in 0..m {
            if art_col[i] != usize::MAX {
                ws.obj[art_col[i]] -= 1.0;
            }
        }
        if !iterate(t, &mut ws.obj, basis, ncols) {
            // Phase 1 is never unbounded (objective bounded below by 0).
            unreachable!("phase 1 cannot be unbounded");
        }
        if ws.obj[ncols] > 1e-7 {
            return LpOutcome::Infeasible;
        }
        // Drive any artificial still in the basis out (or drop its row).
        for i in 0..m {
            if is_artificial(basis[i]) {
                let pivot_col = (0..nf + m)
                    .filter(|j| *j < ncols && !is_artificial(*j))
                    .find(|j| t.get(i, *j).abs() > 1e-7);
                if let Some(j) = pivot_col {
                    pivot(t, &mut ws.obj, i, j);
                    basis[i] = j;
                }
                // else: redundant row; leave the artificial basic at 0.
            }
        }
    }

    // Phase 2: objective row for the real costs over the current basis.
    ws.obj.clear();
    ws.obj.resize(ncols + 1, 0.0);
    let obj = &mut ws.obj;
    for (j, cj) in cost.iter().enumerate() {
        obj[j] = -cj;
    }
    // Artificials must never re-enter: give them strongly unfavourable
    // reduced cost by zeroing their columns out of consideration (handled in
    // the pivot rule below via the blocked set).
    let blocked: Vec<bool> = (0..ncols).map(is_artificial).collect();
    // Express objective in terms of nonbasic variables.
    for i in 0..m {
        let bj = basis[i];
        let coef = obj[bj];
        if coef.abs() > 0.0 {
            for (oj, tij) in obj.iter_mut().zip(t.row(i)) {
                *oj -= coef * tij;
            }
            obj[bj] = 0.0;
        }
    }
    if !iterate_blocked(t, obj, basis, ncols, &blocked) {
        return LpOutcome::Unbounded;
    }

    // Extract solution.
    let mut y = vec![0.0; ncols];
    for i in 0..m {
        y[basis[i]] = t.get(i, ncols);
    }
    let mut values = vec![0.0; n];
    for v in 0..n {
        values[v] = if col_of[v] == usize::MAX {
            lower[v]
        } else {
            lower[v] + y[col_of[v]]
        };
    }
    // The objective row's rhs holds the negated maximize-internal value,
    // which equals the minimized `sign * (c·x - c·lower)` directly; convert
    // back to the model sense.
    let internal = obj[ncols];
    let objective = const_obj + sign * internal;
    LpOutcome::Optimal { objective, values }
}

/// Runs simplex iterations until optimal (returns true) or unbounded
/// (returns false). The objective row convention: pivot while some
/// `obj[j] > EPS` for nonbasic j.
fn iterate(t: &mut DenseMat, obj: &mut [f64], basis: &mut [usize], ncols: usize) -> bool {
    let blocked = vec![false; ncols];
    iterate_blocked(t, obj, basis, ncols, &blocked)
}

fn iterate_blocked(
    t: &mut DenseMat,
    obj: &mut [f64],
    basis: &mut [usize],
    ncols: usize,
    blocked: &[bool],
) -> bool {
    let m = t.rows();
    let mut iters = 0usize;
    let bland_after = 50 * (m + ncols) + 1000;
    loop {
        iters += 1;
        let use_bland = iters > bland_after;
        // Entering column.
        let mut enter = None;
        if use_bland {
            for j in 0..ncols {
                if !blocked[j] && obj[j] > EPS {
                    enter = Some(j);
                    break;
                }
            }
        } else {
            let mut best = EPS;
            for j in 0..ncols {
                if !blocked[j] && obj[j] > best {
                    best = obj[j];
                    enter = Some(j);
                }
            }
        }
        let Some(e) = enter else {
            return true; // optimal
        };
        // Ratio test.
        let mut leave = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let aie = t.get(i, e);
            if aie > EPS {
                let ratio = t.get(i, ncols) / aie;
                if ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS
                        && leave.is_some_and(|l: usize| basis[i] < basis[l]))
                {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(l) = leave else {
            return false; // unbounded
        };
        pivot(t, obj, l, e);
        basis[l] = e;
    }
}

fn pivot(t: &mut DenseMat, obj: &mut [f64], row: usize, col: usize) {
    let p = t.get(row, col);
    debug_assert!(p.abs() > 1e-12, "pivot on a (near-)zero element");
    {
        let prow = t.row_mut(row);
        for v in prow.iter_mut() {
            *v /= p;
        }
        prow[col] = 1.0;
    }
    for i in 0..t.rows() {
        if i == row {
            continue;
        }
        let (target, prow) = t.row_pair_mut(i, row);
        let f = target[col];
        if f.abs() > 0.0 {
            for (tv, pv) in target.iter_mut().zip(prow) {
                *tv -= f * pv;
            }
            target[col] = 0.0;
        }
    }
    let f = obj[col];
    if f.abs() > 0.0 {
        for (ov, pv) in obj.iter_mut().zip(t.row(row)) {
            *ov -= f * pv;
        }
        obj[col] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, RelOp, Sense};

    fn lp(model: &Model) -> LpOutcome {
        let lower: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
        let upper: Vec<f64> = model.vars.iter().map(|v| v.upper).collect();
        solve_relaxation(model, &lower, &upper)
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18; optimum 36 at (2,6).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous(0.0, f64::INFINITY, 3.0);
        let y = m.add_continuous(0.0, f64::INFINITY, 5.0);
        m.add_constraint(&[(x, 1.0)], RelOp::Le, 4.0).unwrap();
        m.add_constraint(&[(y, 2.0)], RelOp::Le, 12.0).unwrap();
        m.add_constraint(&[(x, 3.0), (y, 2.0)], RelOp::Le, 18.0)
            .unwrap();
        match lp(&m) {
            LpOutcome::Optimal { objective, values } => {
                assert!((objective - 36.0).abs() < 1e-6, "objective {objective}");
                assert!((values[0] - 2.0).abs() < 1e-6);
                assert!((values[1] - 6.0).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn ge_and_eq_rows_need_phase1() {
        // min x + y s.t. x + y >= 2, x - y = 0 -> x = y = 1, objective 2.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous(0.0, 10.0, 1.0);
        let y = m.add_continuous(0.0, 10.0, 1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], RelOp::Ge, 2.0)
            .unwrap();
        m.add_constraint(&[(x, 1.0), (y, -1.0)], RelOp::Eq, 0.0)
            .unwrap();
        match lp(&m) {
            LpOutcome::Optimal { objective, values } => {
                assert!((objective - 2.0).abs() < 1e-6);
                assert!((values[0] - 1.0).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous(0.0, 1.0, 1.0);
        m.add_constraint(&[(x, 1.0)], RelOp::Ge, 2.0).unwrap();
        assert_eq!(lp(&m), LpOutcome::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous(0.0, f64::INFINITY, 1.0);
        let y = m.add_continuous(0.0, f64::INFINITY, 0.0);
        m.add_constraint(&[(x, 1.0), (y, -1.0)], RelOp::Le, 1.0)
            .unwrap();
        assert_eq!(lp(&m), LpOutcome::Unbounded);
    }

    #[test]
    fn fixed_variables_are_substituted() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous(0.0, 1.0, 1.0);
        let y = m.add_continuous(0.0, 1.0, 1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], RelOp::Ge, 1.5)
            .unwrap();
        // Fix x at 1.
        let out = solve_relaxation(&m, &[1.0, 0.0], &[1.0, 1.0]);
        match out {
            LpOutcome::Optimal { objective, values } => {
                assert_eq!(values[0], 1.0);
                assert!((values[1] - 0.5).abs() < 1e-6);
                assert!((objective - 1.5).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // min -x s.t. -x >= -3, x <= 5 -> x = 3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous(0.0, 5.0, -1.0);
        m.add_constraint(&[(x, -1.0)], RelOp::Ge, -3.0).unwrap();
        match lp(&m) {
            LpOutcome::Optimal { objective, values } => {
                assert!((values[0] - 3.0).abs() < 1e-6);
                assert!((objective + 3.0).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn all_variables_fixed() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary(2.0);
        m.add_constraint(&[(x, 1.0)], RelOp::Ge, 1.0).unwrap();
        match solve_relaxation(&m, &[1.0], &[1.0]) {
            LpOutcome::Optimal { objective, values } => {
                assert_eq!(values, vec![1.0]);
                assert!((objective - 2.0).abs() < 1e-12);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
        assert_eq!(solve_relaxation(&m, &[0.0], &[0.0]), LpOutcome::Infeasible);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A problem with heavy degeneracy (many redundant rows).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous(0.0, 1.0, 1.0);
        let y = m.add_continuous(0.0, 1.0, 1.0);
        for _ in 0..20 {
            m.add_constraint(&[(x, 1.0), (y, 1.0)], RelOp::Le, 1.0)
                .unwrap();
        }
        match lp(&m) {
            LpOutcome::Optimal { objective, .. } => {
                assert!((objective - 1.0).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_solves() {
        // The same workspace across differently-shaped models must leave no
        // stale state behind.
        let mut ws = SimplexWorkspace::new();
        let mut models = Vec::new();
        for k in 1..6usize {
            let mut m = Model::new(Sense::Maximize);
            let vars: Vec<_> = (0..k + 1)
                .map(|i| m.add_continuous(0.0, 4.0, 1.0 + i as f64))
                .collect();
            let terms: Vec<_> = vars.iter().map(|v| (*v, 1.0)).collect();
            m.add_constraint(&terms, RelOp::Le, 3.0 + k as f64).unwrap();
            models.push(m);
        }
        for m in &models {
            let lower: Vec<f64> = m.vars.iter().map(|v| v.lower).collect();
            let upper: Vec<f64> = m.vars.iter().map(|v| v.upper).collect();
            let reused = solve_relaxation_with(m, &lower, &upper, &mut ws);
            let fresh = solve_relaxation(m, &lower, &upper);
            assert_eq!(reused, fresh);
        }
    }
}
