//! Error types for the ILP solver.

use std::error::Error;
use std::fmt;

/// Errors raised while building or solving a model.
#[derive(Debug, Clone, PartialEq)]
pub enum IlpError {
    /// The model references a variable that does not exist.
    UnknownVariable {
        /// The offending variable index.
        index: usize,
        /// Number of variables in the model.
        count: usize,
    },
    /// A coefficient or bound is not finite.
    NonFiniteValue {
        /// Where the value appeared.
        context: &'static str,
    },
    /// The model has no feasible solution.
    Infeasible,
    /// The LP relaxation is unbounded.
    Unbounded,
    /// Branch-and-bound exceeded its node budget without proving optimality.
    NodeLimit {
        /// The budget that was exhausted.
        limit: usize,
    },
}

impl fmt::Display for IlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IlpError::UnknownVariable { index, count } => {
                write!(f, "unknown variable {index} (model has {count})")
            }
            IlpError::NonFiniteValue { context } => {
                write!(f, "non-finite value in {context}")
            }
            IlpError::Infeasible => write!(f, "model is infeasible"),
            IlpError::Unbounded => write!(f, "model is unbounded"),
            IlpError::NodeLimit { limit } => {
                write!(f, "node limit of {limit} exhausted before optimality")
            }
        }
    }
}

impl Error for IlpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(IlpError::Infeasible.to_string().contains("infeasible"));
        assert!(IlpError::NodeLimit { limit: 10 }.to_string().contains("10"));
    }
}
