//! A small exact 0/1 (mixed-)integer linear programming solver.
//!
//! The paper determines PoE locations with the FICO Xpress ILP solver
//! (Table 1). This crate replaces it with a self-contained solver sized for
//! that problem class (tens of binary variables, a few hundred rows):
//!
//! * [`Model`] — build mixed binary/continuous models with `≤`/`≥`/`=` rows.
//! * [`simplex`] — a dense two-phase primal simplex for the LP relaxation.
//! * [`branch`] — depth-first branch-and-bound with LP bounding, fractional
//!   branching and integral-objective bound tightening.
//! * [`cover`] — the Table 1 PoE-placement model (coverage between 1 and 2
//!   per cell, tunable security margin `S`, minimum PoE count objective) and
//!   the fixed-PoE coverage model behind Fig. 6.
//!
//! # Example
//!
//! ```
//! use spe_ilp::{Model, RelOp, Sense};
//!
//! # fn main() -> Result<(), spe_ilp::IlpError> {
//! // maximize x + y  s.t.  x + 2y <= 3,  3x + y <= 4   (binary x, y)
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_binary(1.0);
//! let y = m.add_binary(1.0);
//! m.add_constraint(&[(x, 1.0), (y, 2.0)], RelOp::Le, 3.0)?;
//! m.add_constraint(&[(x, 3.0), (y, 1.0)], RelOp::Le, 4.0)?;
//! let sol = m.solve()?;
//! assert_eq!(sol.objective.round() as i64, 2);
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_code)]

pub mod branch;
pub mod cover;
pub mod error;
pub mod model;
pub mod simplex;

pub use cover::{CoverageSolution, PlacementProblem, PolyominoShape};
pub use error::IlpError;
pub use model::{Model, RelOp, Sense, Solution, VarId};
pub use simplex::{solve_relaxation, solve_relaxation_with, LpOutcome, SimplexWorkspace};
