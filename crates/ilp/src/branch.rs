//! Depth-first branch-and-bound over the LP relaxation.

use crate::error::IlpError;
use crate::model::{Model, Sense, Solution};
use crate::simplex::{solve_relaxation_with, LpOutcome, SimplexWorkspace};

const INT_TOL: f64 = 1e-6;

/// Solves a model to proven optimality.
///
/// # Errors
///
/// See [`Model::solve`].
pub fn solve(model: &Model) -> Result<Solution, IlpError> {
    let n = model.num_vars();
    let root_lower: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
    let root_upper: Vec<f64> = model.vars.iter().map(|v| v.upper).collect();

    // Objective comparison always as minimization internally.
    let sense_sign = match model.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let integral_objective = model
        .vars
        .iter()
        .all(|v| !v.integer || (v.objective - v.objective.round()).abs() < 1e-12);
    let all_integer_objective =
        integral_objective && model.vars.iter().all(|v| v.integer || v.objective == 0.0);

    let mut incumbent: Option<(f64, Vec<f64>)> = None; // (internal obj, values)
    let mut nodes = 0usize;
    let mut stack = vec![(root_lower, root_upper)];
    // One tableau workspace for the whole tree: every node's relaxation
    // reuses the same backing allocation.
    let mut ws = SimplexWorkspace::new();

    while let Some((lower, upper)) = stack.pop() {
        if nodes >= model.node_limit {
            return Err(IlpError::NodeLimit {
                limit: model.node_limit,
            });
        }
        nodes += 1;
        let outcome = solve_relaxation_with(model, &lower, &upper, &mut ws);
        let (objective, values) = match outcome {
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => return Err(IlpError::Unbounded),
            LpOutcome::Optimal { objective, values } => (objective, values),
        };
        let mut bound = sense_sign * objective;
        if all_integer_objective {
            // The true optimum below this node is integral: tighten.
            bound = (bound - 1e-7).ceil();
        }
        if let Some((best, _)) = &incumbent {
            if bound >= *best - 1e-9 {
                continue; // pruned
            }
        }
        // Find the most fractional integer variable.
        let mut branch_var = None;
        let mut best_frac = INT_TOL;
        for (v, val) in values.iter().enumerate() {
            if !model.vars[v].integer {
                continue;
            }
            let frac = (val - val.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch_var = Some(v);
            }
        }
        match branch_var {
            None => {
                // Integer feasible: candidate incumbent.
                let mut rounded = values.clone();
                for (v, val) in rounded.iter_mut().enumerate() {
                    if model.vars[v].integer {
                        *val = val.round();
                    }
                }
                let internal = sense_sign * model.objective_value(&rounded);
                let better = incumbent
                    .as_ref()
                    .map(|(best, _)| internal < *best - 1e-9)
                    .unwrap_or(true);
                if better {
                    incumbent = Some((internal, rounded));
                }
            }
            Some(v) => {
                let val = values[v];
                let floor = val.floor();
                // Explore the "round toward LP value" side first (pushed
                // last so it pops first).
                let mut down_upper = upper.clone();
                down_upper[v] = floor;
                let mut up_lower = lower.clone();
                up_lower[v] = floor + 1.0;
                if val - floor > 0.5 {
                    stack.push((lower.clone(), down_upper));
                    stack.push((up_lower, upper));
                } else {
                    stack.push((up_lower, upper));
                    stack.push((lower.clone(), down_upper));
                }
            }
        }
    }

    match incumbent {
        Some((internal, values)) => Ok(Solution {
            objective: sense_sign * internal,
            values: {
                debug_assert_eq!(values.len(), n);
                values
            },
            nodes,
        }),
        None => Err(IlpError::Infeasible),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{RelOp, Sense};

    #[test]
    fn node_limit_is_enforced() {
        let mut m = Model::new(Sense::Maximize);
        // A knapsack big enough to need more than one node.
        let vars: Vec<_> = (0..12)
            .map(|i| m.add_binary(1.0 + (i % 5) as f64))
            .collect();
        let weights: Vec<f64> = (0..12).map(|i| 2.0 + (i * 7 % 11) as f64).collect();
        let terms: Vec<_> = vars.iter().zip(&weights).map(|(v, w)| (*v, *w)).collect();
        m.add_constraint(&terms, RelOp::Le, 20.0).unwrap();
        m.node_limit = 1;
        assert!(matches!(m.solve(), Err(IlpError::NodeLimit { limit: 1 })));
    }

    #[test]
    fn branching_finds_non_lp_optimum() {
        // LP relaxation is fractional; ILP optimum differs from rounding.
        // max 8x + 11y + 6z + 4w s.t. 5x + 7y + 4z + 3w <= 14 (binary)
        // LP opt: x=y=1, z=0.5.. ; ILP opt = 21 (x,y,w or y,z,w...).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary(8.0);
        let y = m.add_binary(11.0);
        let z = m.add_binary(6.0);
        let w = m.add_binary(4.0);
        m.add_constraint(&[(x, 5.0), (y, 7.0), (z, 4.0), (w, 3.0)], RelOp::Le, 14.0)
            .unwrap();
        let sol = m.solve().expect("solves");
        assert_eq!(sol.objective.round() as i64, 21);
        assert!(m.is_feasible(&sol.values, 1e-6));
    }

    // Random small binary knapsacks: branch-and-bound must match brute force.
    #[test]
    fn matches_bruteforce_on_knapsacks() {
        for seed in (0u64..5000).step_by(209) {
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
            let mut next = || {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) % 9 + 1) as f64
            };
            let n = 8;
            let profits: Vec<f64> = (0..n).map(|_| next()).collect();
            let weights: Vec<f64> = (0..n).map(|_| next()).collect();
            let cap = weights.iter().sum::<f64>() * 0.5;

            let mut m = Model::new(Sense::Maximize);
            let vars: Vec<_> = profits.iter().map(|p| m.add_binary(*p)).collect();
            let terms: Vec<_> = vars.iter().zip(&weights).map(|(v, w)| (*v, *w)).collect();
            m.add_constraint(&terms, RelOp::Le, cap).unwrap();
            let sol = m.solve().expect("solves");

            let mut best = 0.0f64;
            for mask in 0u32..(1 << n) {
                let wsum: f64 = (0..n)
                    .filter(|i| mask >> i & 1 == 1)
                    .map(|i| weights[i])
                    .sum();
                if wsum <= cap + 1e-9 {
                    let p: f64 = (0..n)
                        .filter(|i| mask >> i & 1 == 1)
                        .map(|i| profits[i])
                        .sum();
                    best = best.max(p);
                }
            }
            assert!(
                (sol.objective - best).abs() < 1e-6,
                "bb {} vs brute {} (seed {seed})",
                sol.objective,
                best
            );
        }
    }

    // Random covering problems: minimize selected sets, coverage >= 1.
    #[test]
    fn matches_bruteforce_on_covers() {
        for seed in (0u64..3000).step_by(125) {
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(3);
            let mut next = || {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (s >> 33) as usize
            };
            let n_sets = 7;
            let n_elems = 6;
            // Each set covers a random nonempty subset; ensure coverable.
            let mut covers = vec![0u32; n_sets];
            for c in covers.iter_mut() {
                *c = (next() as u32) & ((1 << n_elems) - 1);
            }
            covers[0] = (1 << n_elems) - 1; // guarantee feasibility
            let mut m = Model::new(Sense::Minimize);
            let vars: Vec<_> = (0..n_sets).map(|_| m.add_binary(1.0)).collect();
            for e in 0..n_elems {
                let terms: Vec<_> = covers
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| *c >> e & 1 == 1)
                    .map(|(s, _)| (vars[s], 1.0))
                    .collect();
                m.add_constraint(&terms, RelOp::Ge, 1.0).unwrap();
            }
            let sol = m.solve().expect("solves");

            let mut best = usize::MAX;
            for mask in 0u32..(1 << n_sets) {
                let mut cov = 0u32;
                for (s, c) in covers.iter().enumerate() {
                    if mask >> s & 1 == 1 {
                        cov |= c;
                    }
                }
                if cov & ((1 << n_elems) - 1) == (1 << n_elems) - 1 {
                    best = best.min(mask.count_ones() as usize);
                }
            }
            assert_eq!(sol.objective.round() as usize, best, "seed {seed}");
        }
    }
}
