//! The Table 1 PoE-placement model.
//!
//! The paper formulates PoE placement with arrays `B` (PoE assignment) and
//! `A` (cell coverage). Because every polyomino has exactly one PoE and each
//! cell hosts at most one PoE, choosing polyominoes is equivalent to choosing
//! a *set* of PoE cells; this module builds that equivalent, much smaller
//! model (one binary per cell):
//!
//! * every cell covered by at least one polyomino,
//! * at most two overlapping polyominoes per cell (saturation prevention),
//! * total coverage at least `M·N + S` (security margin `S`),
//! * minimize the number of PoEs.
//!
//! [`PlacementProblem::with_poe_count`] additionally solves the coverage-
//! maximization variant behind Fig. 6 (overlapped vs. single-covered cells
//! for a fixed number of PoEs).

use crate::error::IlpError;
use crate::model::{Model, RelOp, Sense, VarId};

/// The footprint of a polyomino as signed offsets from its PoE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolyominoShape {
    offsets: Vec<(isize, isize)>,
}

impl PolyominoShape {
    /// Builds a shape from explicit offsets. `(0, 0)` (the PoE itself) is
    /// added if missing; duplicates are removed.
    pub fn from_offsets(offsets: impl IntoIterator<Item = (isize, isize)>) -> Self {
        let mut v: Vec<(isize, isize)> = offsets.into_iter().collect();
        if !v.contains(&(0, 0)) {
            v.push((0, 0));
        }
        v.sort();
        v.dedup();
        PolyominoShape { offsets: v }
    }

    /// The shape encoded by the paper's Table 1 coverage equation:
    /// `A(i) = B(i±1) + Σ_{k=-4..4} B(i − N·k)` — a cross four cells tall in
    /// each column direction and one cell wide in each row direction.
    pub fn paper_cross() -> Self {
        let mut offsets = vec![(0isize, -1isize), (0, 1)];
        for dr in -4..=4 {
            offsets.push((dr, 0));
        }
        PolyominoShape::from_offsets(offsets)
    }

    /// The transposed variant matching the measured polyomino of our circuit
    /// engine (the coupled periphery spreads further along the driven row
    /// than across rows).
    pub fn measured_cross() -> Self {
        let mut offsets = vec![(-1isize, 0isize), (1, 0)];
        for dc in -2..=3 {
            offsets.push((0, dc));
        }
        PolyominoShape::from_offsets(offsets)
    }

    /// The offsets, PoE included.
    pub fn offsets(&self) -> &[(isize, isize)] {
        &self.offsets
    }

    /// Number of cells an interior polyomino covers.
    pub fn size(&self) -> usize {
        self.offsets.len()
    }

    /// The cells a PoE at `(row, col)` covers on an `rows × cols` grid
    /// (boundary-clipped, per the paper's footnote b).
    pub fn covered(&self, rows: usize, cols: usize, poe: (usize, usize)) -> Vec<(usize, usize)> {
        let mut cells = Vec::with_capacity(self.offsets.len());
        for (dr, dc) in &self.offsets {
            let r = poe.0 as isize + dr;
            let c = poe.1 as isize + dc;
            if r >= 0 && c >= 0 && (r as usize) < rows && (c as usize) < cols {
                cells.push((r as usize, c as usize));
            }
        }
        cells
    }
}

/// A PoE-placement problem instance.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementProblem {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Polyomino footprint.
    pub shape: PolyominoShape,
    /// Security margin `S` of Table 1 (`0 ≤ S ≤ M·N − 1`): total coverage
    /// must reach `M·N + S`.
    pub security_margin: usize,
    /// Maximum polyominoes covering one cell (Table 1 uses 2).
    pub max_coverage: usize,
}

impl PlacementProblem {
    /// The paper's instance: 8×8 mat, cross polyomino, coverage cap 2.
    pub fn paper_8x8(security_margin: usize) -> Self {
        PlacementProblem {
            rows: 8,
            cols: 8,
            shape: PolyominoShape::paper_cross(),
            security_margin,
            max_coverage: 2,
        }
    }

    fn cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Solves for the minimum number of PoEs (the Table 1 objective).
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::Infeasible`] when no placement satisfies the
    /// coverage window, or other [`IlpError`] values from the solver.
    pub fn min_poes(&self) -> Result<CoverageSolution, IlpError> {
        let mut model = Model::new(Sense::Minimize);
        let vars: Vec<VarId> = (0..self.cells()).map(|_| model.add_binary(1.0)).collect();
        let covering = self.covering_terms(&vars);
        // 1 <= cover(c) <= max_coverage for every cell.
        for terms in &covering {
            model.add_constraint(terms, RelOp::Ge, 1.0)?;
            model.add_constraint(terms, RelOp::Le, self.max_coverage as f64)?;
        }
        // Total coverage >= M*N + S.
        let mut total: Vec<(VarId, f64)> = Vec::new();
        for (i, var) in vars.iter().enumerate() {
            let poe = (i / self.cols, i % self.cols);
            let weight = self.shape.covered(self.rows, self.cols, poe).len() as f64;
            total.push((*var, weight));
        }
        model.add_constraint(
            &total,
            RelOp::Ge,
            (self.cells() + self.security_margin) as f64,
        )?;
        let sol = model.solve()?;
        Ok(self.extract(&vars, &sol.values))
    }

    /// Solves the Fig. 6 variant: place exactly `poes` PoEs maximizing the
    /// number of covered cells first and overlapped cells second (no
    /// coverage cap, matching the figure's sweep over 10–17 PoEs).
    ///
    /// # Errors
    ///
    /// Returns [`IlpError`] from the solver (e.g. `poes` larger than the
    /// grid is infeasible).
    pub fn with_poe_count(&self, poes: usize) -> Result<CoverageSolution, IlpError> {
        let mut model = Model::new(Sense::Maximize);
        let vars: Vec<VarId> = (0..self.cells()).map(|_| model.add_binary(0.0)).collect();
        let covering = self.covering_terms(&vars);
        // z_c: covered indicator; w_c: overlapped indicator. Continuous in
        // [0,1]: maximization pushes them to their (integral) caps.
        for terms in &covering {
            // Weight covering higher than overlap so coverage is primary.
            let z = model.add_continuous(0.0, 1.0, 100.0);
            let w = model.add_continuous(0.0, 1.0, 1.0);
            let mut z_terms = vec![(z, 1.0)];
            z_terms.extend(terms.iter().map(|(v, a)| (*v, -*a)));
            model.add_constraint(&z_terms, RelOp::Le, 0.0)?; // z <= cover
                                                             // Overlap indicator: w <= cover - z keeps the model feasible
                                                             // even for uncoverable cells (cover = 0 forces z = w = 0),
                                                             // while maximization still drives w to 1 exactly when the cell
                                                             // is covered at least twice.
            let mut w_terms = vec![(w, 1.0), (z, 1.0)];
            w_terms.extend(terms.iter().map(|(v, a)| (*v, -*a)));
            model.add_constraint(&w_terms, RelOp::Le, 0.0)?; // w + z <= cover
        }
        let count_terms: Vec<(VarId, f64)> = vars.iter().map(|v| (*v, 1.0)).collect();
        model.add_constraint(&count_terms, RelOp::Eq, poes as f64)?;
        let sol = model.solve()?;
        Ok(self.extract(&vars, &sol.values))
    }

    fn covering_terms(&self, vars: &[VarId]) -> Vec<Vec<(VarId, f64)>> {
        let mut covering: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); self.cells()];
        for (i, var) in vars.iter().enumerate() {
            let poe = (i / self.cols, i % self.cols);
            for (r, c) in self.shape.covered(self.rows, self.cols, poe) {
                covering[r * self.cols + c].push((*var, 1.0));
            }
        }
        covering
    }

    fn extract(&self, vars: &[VarId], values: &[f64]) -> CoverageSolution {
        let poes: Vec<(usize, usize)> = vars
            .iter()
            .enumerate()
            .filter(|(_, v)| values[v.index()] > 0.5)
            .map(|(i, _)| (i / self.cols, i % self.cols))
            .collect();
        let mut coverage = vec![0usize; self.cells()];
        for poe in &poes {
            for (r, c) in self.shape.covered(self.rows, self.cols, *poe) {
                coverage[r * self.cols + c] += 1;
            }
        }
        let covered = coverage.iter().filter(|c| **c >= 1).count();
        let overlapped = coverage.iter().filter(|c| **c >= 2).count();
        CoverageSolution {
            rows: self.rows,
            cols: self.cols,
            poes,
            coverage,
            covered,
            overlapped,
        }
    }
}

/// A PoE placement with its coverage statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageSolution {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Selected PoE cells `(row, col)`.
    pub poes: Vec<(usize, usize)>,
    /// Per-cell polyomino count, row-major.
    pub coverage: Vec<usize>,
    /// Cells covered by at least one polyomino.
    pub covered: usize,
    /// Cells covered by two or more polyominoes (the secure ones, Fig. 6).
    pub overlapped: usize,
}

impl CoverageSolution {
    /// Cells covered exactly once (the vulnerable ones in Fig. 6).
    pub fn single_covered(&self) -> usize {
        self.covered - self.overlapped
    }

    /// Whether every cell is covered.
    pub fn full_coverage(&self) -> bool {
        self.covered == self.rows * self.cols
    }

    /// Total coverage `Σ_c cover(c)`.
    pub fn total_coverage(&self) -> usize {
        self.coverage.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_include_poe() {
        assert!(PolyominoShape::paper_cross().offsets().contains(&(0, 0)));
        assert!(PolyominoShape::from_offsets([(1, 0)])
            .offsets()
            .contains(&(0, 0)));
    }

    #[test]
    fn paper_cross_has_eleven_cells() {
        assert_eq!(PolyominoShape::paper_cross().size(), 11);
    }

    #[test]
    fn covered_clips_at_boundaries() {
        let s = PolyominoShape::paper_cross();
        let corner = s.covered(8, 8, (0, 0));
        // (0,0), (0,1), (1..4, 0) -> 6 cells.
        assert_eq!(corner.len(), 6);
        let center = s.covered(9, 9, (4, 4));
        assert_eq!(center.len(), 11);
    }

    #[test]
    fn min_poes_small_grid() {
        // 4×4 grid with a plus-shaped polyomino.
        let problem = PlacementProblem {
            rows: 4,
            cols: 4,
            shape: PolyominoShape::from_offsets([(0, 0), (0, 1), (0, -1), (1, 0), (-1, 0)]),
            security_margin: 0,
            max_coverage: 2,
        };
        let sol = problem.min_poes().expect("solvable");
        assert!(sol.full_coverage(), "coverage map: {:?}", sol.coverage);
        assert!(sol.coverage.iter().all(|c| *c <= 2));
        assert!(sol.poes.len() >= 4, "a plus covers at most 5 of 16 cells");
    }

    #[test]
    fn security_margin_forces_more_poes() {
        let shape = PolyominoShape::from_offsets([(0, 0), (0, 1), (0, -1), (1, 0), (-1, 0)]);
        let base = PlacementProblem {
            rows: 4,
            cols: 4,
            shape: shape.clone(),
            security_margin: 0,
            max_coverage: 2,
        };
        let tight = PlacementProblem {
            security_margin: 10,
            ..base.clone()
        };
        let p0 = base.min_poes().expect("base").poes.len();
        let p1 = tight.min_poes().expect("margin").poes.len();
        assert!(p1 >= p0, "margin cannot reduce the PoE count");
        assert!(
            tight.min_poes().expect("margin").total_coverage() >= 16 + 10,
            "margin must be honoured"
        );
    }

    #[test]
    fn with_poe_count_places_exactly_n() {
        let problem = PlacementProblem {
            rows: 4,
            cols: 4,
            shape: PolyominoShape::from_offsets([(0, 0), (0, 1), (0, -1), (1, 0), (-1, 0)]),
            security_margin: 0,
            max_coverage: 2,
        };
        let sol = problem.with_poe_count(5).expect("solvable");
        assert_eq!(sol.poes.len(), 5);
        assert!(sol.covered >= 13, "5 plus-shapes should cover most of 4x4");
    }

    #[test]
    fn with_poe_count_handles_uncoverable_grids() {
        // 12 five-cell polyominoes can cover at most 60 of 64 cells: the
        // model must stay feasible and maximize what it can (regression for
        // an infeasible w-linearization).
        let problem = PlacementProblem {
            rows: 8,
            cols: 8,
            shape: PolyominoShape::from_offsets([(0, 0), (0, 1), (0, -1), (1, 0), (-1, 0)]),
            security_margin: 0,
            max_coverage: 2,
        };
        let sol = problem.with_poe_count(12).expect("feasible");
        assert_eq!(sol.poes.len(), 12);
        // Boundary clipping and plus-pentomino packing limits keep the
        // exact optimum below the naive 12 x 5 = 60 bound.
        assert!(
            sol.covered >= 52 && sol.covered < 64,
            "coverage {} should be high but incomplete",
            sol.covered
        );
    }

    #[test]
    fn coverage_solution_accounting() {
        let s = CoverageSolution {
            rows: 2,
            cols: 2,
            poes: vec![(0, 0)],
            coverage: vec![2, 1, 1, 0],
            covered: 3,
            overlapped: 1,
        };
        assert_eq!(s.single_covered(), 2);
        assert!(!s.full_coverage());
        assert_eq!(s.total_coverage(), 4);
    }

    #[test]
    fn min_poes_solutions_are_always_feasible() {
        // Random small shapes/grids: any solution the solver returns must
        // satisfy the Table 1 constraints it was built from.
        let mut state = 77u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        for trial in 0..6 {
            let rows = 3 + next() % 3;
            let cols = 3 + next() % 3;
            let mut offsets = vec![(0isize, 0isize)];
            for _ in 0..(2 + next() % 4) {
                offsets.push((next() as isize % 3 - 1, next() as isize % 3 - 1));
            }
            let problem = PlacementProblem {
                rows,
                cols,
                shape: PolyominoShape::from_offsets(offsets),
                security_margin: 0,
                max_coverage: 2,
            };
            match problem.min_poes() {
                Ok(sol) => {
                    assert!(sol.full_coverage(), "trial {trial}: incomplete cover");
                    assert!(
                        sol.coverage.iter().all(|c| *c <= 2),
                        "trial {trial}: saturation cap violated"
                    );
                }
                Err(IlpError::Infeasible) => {} // small shapes can be infeasible
                Err(e) => panic!("trial {trial}: {e}"),
            }
        }
    }

    #[test]
    fn infeasible_margin_is_reported() {
        // Margin beyond what max_coverage allows: total coverage can be at
        // most 2 * cells.
        let problem = PlacementProblem {
            rows: 3,
            cols: 3,
            shape: PolyominoShape::from_offsets([(0, 0), (0, 1), (0, -1), (1, 0), (-1, 0)]),
            security_margin: 100,
            max_coverage: 2,
        };
        assert!(matches!(problem.min_poes(), Err(IlpError::Infeasible)));
    }
}
