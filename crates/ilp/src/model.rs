//! Model construction for mixed 0/1 linear programs.

use crate::branch;
use crate::error::IlpError;
use std::fmt;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Relational operator of a constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelOp {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// Opaque handle to a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The variable's index within the model.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A variable's static description.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Variable {
    pub lower: f64,
    pub upper: f64,
    pub objective: f64,
    pub integer: bool,
}

/// A linear constraint row.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Constraint {
    pub coeffs: Vec<(usize, f64)>,
    pub op: RelOp,
    pub rhs: f64,
}

/// A mixed 0/1 linear program.
///
/// Variables are continuous within `[lower, upper]` unless marked integer;
/// integer variables are restricted to integral values within their bounds
/// (the solver is exercised only with 0/1 integers, but the machinery is
/// general).
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
    /// Branch-and-bound node budget.
    pub node_limit: usize,
}

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Objective value at the optimum (in the model's own sense).
    pub objective: f64,
    /// Variable values, indexed by [`VarId::index`].
    pub values: Vec<f64>,
    /// Number of branch-and-bound nodes explored.
    pub nodes: usize,
}

impl Solution {
    /// The value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this model.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.0]
    }

    /// Whether a 0/1 variable is set in the solution.
    pub fn is_set(&self, var: VarId) -> bool {
        self.values[var.0] > 0.5
    }
}

impl Model {
    /// Creates an empty model.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
            node_limit: 2_000_000,
        }
    }

    /// Adds a binary (0/1) variable with the given objective coefficient.
    pub fn add_binary(&mut self, objective: f64) -> VarId {
        self.add_var(0.0, 1.0, objective, true)
    }

    /// Adds a continuous variable with bounds `[lower, upper]`.
    pub fn add_continuous(&mut self, lower: f64, upper: f64, objective: f64) -> VarId {
        self.add_var(lower, upper, objective, false)
    }

    fn add_var(&mut self, lower: f64, upper: f64, objective: f64, integer: bool) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(Variable {
            lower,
            upper,
            objective,
            integer,
        });
        id
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraint rows.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds a constraint `Σ coeffᵢ·varᵢ (op) rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::UnknownVariable`] for a stale handle and
    /// [`IlpError::NonFiniteValue`] for non-finite coefficients.
    pub fn add_constraint(
        &mut self,
        terms: &[(VarId, f64)],
        op: RelOp,
        rhs: f64,
    ) -> Result<(), IlpError> {
        if !rhs.is_finite() {
            return Err(IlpError::NonFiniteValue { context: "rhs" });
        }
        let mut coeffs = Vec::with_capacity(terms.len());
        for (var, c) in terms {
            if var.0 >= self.vars.len() {
                return Err(IlpError::UnknownVariable {
                    index: var.0,
                    count: self.vars.len(),
                });
            }
            if !c.is_finite() {
                return Err(IlpError::NonFiniteValue {
                    context: "constraint coefficient",
                });
            }
            coeffs.push((var.0, *c));
        }
        self.constraints.push(Constraint { coeffs, op, rhs });
        Ok(())
    }

    /// Solves only the LP relaxation (integrality dropped), exposing the
    /// intermediate bound branch-and-bound works from.
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::Infeasible`] or [`IlpError::Unbounded`] from the
    /// relaxation.
    pub fn solve_relaxation(&self) -> Result<Solution, IlpError> {
        let lower: Vec<f64> = self.vars.iter().map(|v| v.lower).collect();
        let upper: Vec<f64> = self.vars.iter().map(|v| v.upper).collect();
        match crate::simplex::solve_relaxation(self, &lower, &upper) {
            crate::simplex::LpOutcome::Optimal { objective, values } => Ok(Solution {
                objective,
                values,
                nodes: 0,
            }),
            crate::simplex::LpOutcome::Infeasible => Err(IlpError::Infeasible),
            crate::simplex::LpOutcome::Unbounded => Err(IlpError::Unbounded),
        }
    }

    /// Solves the model to proven optimality.
    ///
    /// # Errors
    ///
    /// * [`IlpError::Infeasible`] — no assignment satisfies the rows.
    /// * [`IlpError::Unbounded`] — the relaxation is unbounded.
    /// * [`IlpError::NodeLimit`] — the node budget ran out first.
    pub fn solve(&self) -> Result<Solution, IlpError> {
        branch::solve(self)
    }

    /// Evaluates the objective for an assignment (in the model's sense).
    ///
    /// # Panics
    ///
    /// Panics if `values` has the wrong length.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.vars.len());
        self.vars
            .iter()
            .zip(values)
            .map(|(v, x)| v.objective * x)
            .sum()
    }

    /// Checks whether an assignment satisfies every constraint and bound
    /// within `tol`.
    ///
    /// # Panics
    ///
    /// Panics if `values` has the wrong length.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        assert_eq!(values.len(), self.vars.len());
        for (v, x) in self.vars.iter().zip(values) {
            if *x < v.lower - tol || *x > v.upper + tol {
                return false;
            }
            if v.integer && (x - x.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.coeffs.iter().map(|(i, a)| a * values[*i]).sum();
            let ok = match c.op {
                RelOp::Le => lhs <= c.rhs + tol,
                RelOp::Ge => lhs >= c.rhs - tol,
                RelOp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_knapsack() {
        // maximize 10a + 6b + 4c s.t. a+b+c<=2, 5a+4b+3c<=8 (binary)
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary(10.0);
        let b = m.add_binary(6.0);
        let c = m.add_binary(4.0);
        m.add_constraint(&[(a, 1.0), (b, 1.0), (c, 1.0)], RelOp::Le, 2.0)
            .unwrap();
        m.add_constraint(&[(a, 5.0), (b, 4.0), (c, 3.0)], RelOp::Le, 8.0)
            .unwrap();
        // {a, b} weighs 9 > 8, so the optimum is {a, c} at 14.
        let sol = m.solve().expect("solves");
        assert_eq!(sol.objective.round() as i64, 14);
        assert!(sol.is_set(a));
        assert!(!sol.is_set(b));
        assert!(sol.is_set(c));
    }

    #[test]
    fn minimize_cover() {
        // Minimal set cover: elements {0,1,2}; sets A={0,1}, B={1,2}, C={2}.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary(1.0);
        let b = m.add_binary(1.0);
        let c = m.add_binary(1.0);
        m.add_constraint(&[(a, 1.0)], RelOp::Ge, 1.0).unwrap(); // element 0
        m.add_constraint(&[(a, 1.0), (b, 1.0)], RelOp::Ge, 1.0)
            .unwrap(); // 1
        m.add_constraint(&[(b, 1.0), (c, 1.0)], RelOp::Ge, 1.0)
            .unwrap(); // 2
        let sol = m.solve().expect("solves");
        assert_eq!(sol.objective.round() as i64, 2);
        assert!(sol.is_set(a));
    }

    #[test]
    fn equality_constraints() {
        // minimize x + y s.t. x + y = 1, x - y = 1  -> x=1, y=0.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary(1.0);
        let y = m.add_binary(1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], RelOp::Eq, 1.0)
            .unwrap();
        m.add_constraint(&[(x, 1.0), (y, -1.0)], RelOp::Eq, 1.0)
            .unwrap();
        let sol = m.solve().expect("solves");
        assert!(sol.is_set(x) && !sol.is_set(y));
    }

    #[test]
    fn infeasible_model_reports() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary(1.0);
        m.add_constraint(&[(x, 1.0)], RelOp::Ge, 2.0).unwrap();
        assert_eq!(m.solve(), Err(IlpError::Infeasible));
    }

    #[test]
    fn mixed_integer_continuous() {
        // maximize y (continuous, <= 2.5) + 2x (binary), y <= 1.7 + x.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary(2.0);
        let y = m.add_continuous(0.0, 2.5, 1.0);
        m.add_constraint(&[(y, 1.0), (x, -1.0)], RelOp::Le, 1.7)
            .unwrap();
        let sol = m.solve().expect("solves");
        assert!(sol.is_set(x));
        assert!((sol.value(y) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn relaxation_bounds_the_integer_optimum() {
        // max 8x + 11y + 6z + 4w s.t. 5x+7y+4z+3w <= 14: LP 22, ILP 21.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary(8.0);
        let y = m.add_binary(11.0);
        let z = m.add_binary(6.0);
        let w = m.add_binary(4.0);
        m.add_constraint(&[(x, 5.0), (y, 7.0), (z, 4.0), (w, 3.0)], RelOp::Le, 14.0)
            .unwrap();
        let lp = m.solve_relaxation().expect("lp");
        let ilp = m.solve().expect("ilp");
        assert!(
            lp.objective >= ilp.objective - 1e-9,
            "LP must bound the ILP"
        );
        assert!(lp.objective > ilp.objective, "this instance has an LP gap");
    }

    #[test]
    fn rejects_unknown_variable() {
        let mut m1 = Model::new(Sense::Minimize);
        let _ = m1.add_binary(1.0);
        let mut m2 = Model::new(Sense::Minimize);
        let foreign = VarId(5);
        assert!(matches!(
            m2.add_constraint(&[(foreign, 1.0)], RelOp::Le, 1.0),
            Err(IlpError::UnknownVariable { .. })
        ));
    }

    #[test]
    fn rejects_non_finite() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary(1.0);
        assert!(m.add_constraint(&[(x, f64::NAN)], RelOp::Le, 1.0).is_err());
        assert!(m
            .add_constraint(&[(x, 1.0)], RelOp::Le, f64::INFINITY)
            .is_err());
    }

    #[test]
    fn feasibility_checker() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary(1.0);
        let y = m.add_binary(1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], RelOp::Ge, 1.0)
            .unwrap();
        assert!(m.is_feasible(&[1.0, 0.0], 1e-9));
        assert!(!m.is_feasible(&[0.0, 0.0], 1e-9));
        assert!(!m.is_feasible(&[0.5, 0.6], 1e-9)); // fractional integer var
    }
}
