//! The [`Recorder`] sink trait, the zero-cost no-op default, and the
//! [`SpanTimer`] guard.

use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::metric::{Counter, Gauge, Histogram, Span};
use crate::power::PowerSample;

/// A telemetry sink the datapath reports into.
///
/// All hooks take `&self` and must be safe to call from SPECU bank
/// worker threads concurrently ([`Send`] + [`Sync`]). Implementations
/// should make every hook cheap; hot paths call them unconditionally
/// except where a recording has a setup cost (reading the clock,
/// formatting), which is gated on [`Recorder::enabled`].
pub trait Recorder: Send + Sync + fmt::Debug {
    /// Whether this recorder keeps what it is given. `false` lets
    /// instrumented code skip work that only feeds telemetry.
    fn enabled(&self) -> bool;

    /// Adds `delta` to a counter.
    fn add(&self, counter: Counter, delta: u64);

    /// Records one observation into a histogram.
    fn observe(&self, histogram: Histogram, value: u64);

    /// Sets a gauge to its current level (last write wins). Default is a
    /// no-op so counter-only recorders need not care.
    fn set_gauge(&self, gauge: Gauge, value: u64) {
        let _ = (gauge, value);
    }

    /// Accumulates `nanos` of wall-clock time into a span.
    fn span_ns(&self, span: Span, nanos: u64);

    /// Appends one sample to the ordered power trace. Default is a
    /// no-op so recorders that only keep aggregates need not care.
    ///
    /// Unlike the other hooks, sample *order* matters (a supply-rail
    /// probe sees a sequence), so implementations that keep the trace
    /// must preserve arrival order. Callers gate the energy computation
    /// behind [`Recorder::enabled`]; the hook itself must still accept
    /// samples unconditionally.
    fn record_power(&self, sample: PowerSample) {
        let _ = sample;
    }
}

/// A shared handle to a recorder, cheap to clone and thread through
/// the datapath structs.
pub type TelemetryHandle = Arc<dyn Recorder>;

/// The default recorder: drops everything, reports `enabled() == false`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn add(&self, _counter: Counter, _delta: u64) {}

    fn observe(&self, _histogram: Histogram, _value: u64) {}

    fn set_gauge(&self, _gauge: Gauge, _value: u64) {}

    fn span_ns(&self, _span: Span, _nanos: u64) {}

    fn record_power(&self, _sample: PowerSample) {}
}

/// The shared no-op handle. Cached so attaching the default recorder
/// never allocates.
pub fn noop() -> TelemetryHandle {
    static NOOP: OnceLock<TelemetryHandle> = OnceLock::new();
    Arc::clone(NOOP.get_or_init(|| Arc::new(NoopRecorder)))
}

/// A guard that times a [`Span`] from construction to drop.
///
/// When the recorder is disabled the clock is never read, so a
/// `SpanTimer` over a no-op recorder is two branches and no syscalls.
#[must_use = "a span timer records on drop"]
#[derive(Debug)]
pub struct SpanTimer<'a> {
    recorder: &'a dyn Recorder,
    span: Span,
    start: Option<Instant>,
}

impl<'a> SpanTimer<'a> {
    /// Starts timing `span`; reads the clock only if the recorder is
    /// enabled.
    pub fn start(recorder: &'a dyn Recorder, span: Span) -> Self {
        let start = recorder.enabled().then(Instant::now);
        SpanTimer {
            recorder,
            span,
            start,
        }
    }

    /// Whether the clock was actually read (i.e. the recorder was
    /// enabled at start). Exposed so tests can pin the zero-overhead
    /// property of the no-op recorder.
    pub fn is_timing(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.recorder.span_ns(self.span, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_shared() {
        let a = noop();
        let b = noop();
        assert!(!a.enabled());
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn noop_span_timer_never_reads_the_clock() {
        let handle = noop();
        let timer = SpanTimer::start(handle.as_ref(), Span::EncryptLine);
        assert!(!timer.is_timing());
    }

    #[test]
    fn noop_hooks_accept_everything() {
        let r = NoopRecorder;
        r.add(Counter::PoePulses, u64::MAX);
        r.observe(Histogram::PoePulseIndex, u64::MAX);
        r.set_gauge(Gauge::TenantContextsLive, u64::MAX);
        r.span_ns(Span::Simulation, u64::MAX);
        r.record_power(PowerSample {
            poe_index: u8::MAX,
            energy_fj: u64::MAX,
        });
    }
}
