//! The power-trace channel: ordered per-pulse energy samples.
//!
//! A side-channel adversary observes the supply rail, so the trace is a
//! *sequence* — ordering carries information that counters and histograms
//! deliberately discard. The recorder therefore keeps power samples in
//! arrival order (the full trace feeds the CPA attacker), while the
//! snapshot reports only the order-independent [`PowerSummary`] so
//! snapshot text stays deterministic under parallel banks.
//!
//! Energies are quantized to integer femtojoules at the recording
//! boundary: per-pulse crossbar energies sit in the fJ–pJ range, and
//! integer samples keep snapshots byte-stable across machines.

/// Femtojoules per joule (the trace's fixed-point scale).
const FEMTO_PER_JOULE: f64 = 1e15;

/// One per-pulse (per-train) energy observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PowerSample {
    /// Linear cell index (`row * 8 + col`) of the PoE the pulse hit.
    ///
    /// Ground truth for attack evaluation; a real probe would not see
    /// it, and the CPA attacker does not use it.
    pub poe_index: u8,
    /// Energy dissipated by the pulse, in femtojoules.
    pub energy_fj: u64,
}

impl PowerSample {
    /// Quantizes an energy in joules to a femtojoule sample.
    ///
    /// Negative or non-finite energies clamp to zero (they can only
    /// arise from numerical noise in the nodal solve).
    pub fn from_joules(poe_index: u8, joules: f64) -> Self {
        let fj = joules * FEMTO_PER_JOULE;
        let energy_fj = if fj.is_finite() && fj > 0.0 {
            fj.round() as u64
        } else {
            0
        };
        PowerSample {
            poe_index,
            energy_fj,
        }
    }
}

/// An ordered per-pulse energy trace, as captured by a recorder.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PowerTrace {
    samples: Vec<PowerSample>,
}

impl PowerTrace {
    /// Wraps an ordered sample sequence.
    pub fn new(samples: Vec<PowerSample>) -> Self {
        PowerTrace { samples }
    }

    /// The samples in arrival order.
    pub fn samples(&self) -> &[PowerSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total energy across the trace, in femtojoules (saturating).
    pub fn total_fj(&self) -> u64 {
        self.samples
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.energy_fj))
    }

    /// The order-independent summary (what snapshots report).
    pub fn summary(&self) -> PowerSummary {
        let mut summary = PowerSummary::default();
        for s in &self.samples {
            summary.record(s.energy_fj);
        }
        summary
    }

    /// Consumes the trace, returning the raw samples.
    pub fn into_samples(self) -> Vec<PowerSample> {
        self.samples
    }
}

/// Order-independent aggregate of a power trace.
///
/// This is what [`crate::TelemetrySnapshot`] carries: sample count,
/// total, min and max are invariant under the sample reordering that
/// parallel banks introduce, so snapshot text stays deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PowerSummary {
    /// Number of samples recorded.
    pub samples: u64,
    /// Total energy, femtojoules (saturating).
    pub total_fj: u64,
    /// Smallest sample, femtojoules (0 when empty).
    pub min_fj: u64,
    /// Largest sample, femtojoules (0 when empty).
    pub max_fj: u64,
}

impl PowerSummary {
    /// Folds one sample into the aggregate.
    pub fn record(&mut self, energy_fj: u64) {
        self.min_fj = if self.samples == 0 {
            energy_fj
        } else {
            self.min_fj.min(energy_fj)
        };
        self.max_fj = self.max_fj.max(energy_fj);
        self.total_fj = self.total_fj.saturating_add(energy_fj);
        self.samples += 1;
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantizes_joules_to_femtojoules() {
        let s = PowerSample::from_joules(5, 1.5e-12);
        assert_eq!(s.poe_index, 5);
        assert_eq!(s.energy_fj, 1500);
    }

    #[test]
    fn clamps_degenerate_energies_to_zero() {
        assert_eq!(PowerSample::from_joules(0, -1.0e-12).energy_fj, 0);
        assert_eq!(PowerSample::from_joules(0, f64::NAN).energy_fj, 0);
        assert_eq!(PowerSample::from_joules(0, f64::INFINITY).energy_fj, 0);
    }

    #[test]
    fn trace_summary_aggregates() {
        let trace = PowerTrace::new(vec![
            PowerSample {
                poe_index: 0,
                energy_fj: 10,
            },
            PowerSample {
                poe_index: 1,
                energy_fj: 4,
            },
            PowerSample {
                poe_index: 2,
                energy_fj: 7,
            },
        ]);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.total_fj(), 21);
        let summary = trace.summary();
        assert_eq!(summary.samples, 3);
        assert_eq!(summary.total_fj, 21);
        assert_eq!(summary.min_fj, 4);
        assert_eq!(summary.max_fj, 10);
    }

    #[test]
    fn empty_summary_is_default() {
        assert_eq!(PowerTrace::default().summary(), PowerSummary::default());
        assert!(PowerSummary::default().is_empty());
    }

    #[test]
    fn summary_is_order_independent() {
        let a = PowerTrace::new(vec![
            PowerSample {
                poe_index: 0,
                energy_fj: 3,
            },
            PowerSample {
                poe_index: 1,
                energy_fj: 9,
            },
        ]);
        let b = PowerTrace::new(vec![
            PowerSample {
                poe_index: 1,
                energy_fj: 9,
            },
            PowerSample {
                poe_index: 0,
                energy_fj: 3,
            },
        ]);
        assert_eq!(a.summary(), b.summary());
    }
}
