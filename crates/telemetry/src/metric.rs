//! The metric inventory: every counter, histogram and span the datapath
//! reports, with stable snake_case names and static histogram bucket
//! bounds so snapshots are deterministic.

/// A monotonically increasing event counter.
///
/// The discriminant is the index into the recorder's counter table, so
/// the enum order is the canonical (and stable) snapshot order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum Counter {
    // ---- spe-crossbar: circuit engine ----
    /// Nodal sneak-path solves (one per `sneak_voltages` evaluation).
    NodalSolves,
    /// Cells disturbed by sneak paths during a keyed pulse.
    SneakPathActivations,
    /// Reads/writes that landed on a cell pinned by the fault map.
    FaultMapHits,
    /// Sparse nodal factorizations built from scratch (new symbolic
    /// analysis for a topology).
    FactorizationsRebuilt,
    /// Nodal solves that reused a cached symbolic factorization (numeric
    /// refactorization only).
    FactorizationsReused,
    /// Sparse solves that fell back to the dense oracle (singular or
    /// otherwise unfactorable stamped system).
    SolverFallbacks,
    // ---- spe-core: cipher datapath ----
    /// Keyed voltage pulses applied at points of encryption.
    PoePulses,
    /// Closed-loop train steps committed to the discrete array.
    TrainSteps,
    /// Per-tweak pulse schedules derived from the key register.
    ScheduleDerivations,
    /// Line-datapath schedule-cache hits (derived schedule reused).
    ScheduleCacheHits,
    /// Line-datapath schedule-cache misses (fresh derivation).
    ScheduleCacheMisses,
    /// Schedule-cache entries evicted to stay within the memory bound.
    ScheduleCacheEvictions,
    /// PoE placement LUT hits (cached ILP solutions).
    PlacementCacheHits,
    /// PoE placement LUT misses (fresh ILP solves).
    PlacementCacheMisses,
    /// 16-byte blocks encrypted.
    BlocksEncrypted,
    /// 16-byte blocks decrypted.
    BlocksDecrypted,
    /// 64-byte cache lines encrypted.
    LinesEncrypted,
    /// 64-byte cache lines decrypted.
    LinesDecrypted,
    // ---- spe-core: recovery ladder (PR 2) ----
    /// Cell commits attempted through the write-verify path.
    CellCommits,
    /// Transient faults observed during write-verify.
    TransientFaults,
    /// Verify retries issued (with pulse-width backoff).
    Retries,
    /// Polyomino remaps into spare regions.
    Remaps,
    /// Commits abandoned after exhausting retries and spares.
    Uncorrectable,
    /// Integrity tags verified on checked decrypt.
    TagsVerified,
    /// Integrity tag mismatches (would-be silent corruption).
    IntegrityFailures,
    // ---- spe-core: multi-bank fan-out ----
    /// Jobs dispatched to SPECU bank workers.
    BankJobs,
    // ---- spe-core: bank-scheduler pipeline ----
    /// Cipher requests accepted into a bank submission queue.
    SchedSubmitted,
    /// Cipher requests a bank worker finished (ticket completed).
    SchedCompleted,
    /// Blocking submissions that had to wait for queue space
    /// (backpressure stalls).
    SchedBackpressureWaits,
    /// Non-blocking submissions refused because the bank queue was full.
    SchedRejectedWouldBlock,
    /// Bank worker incarnations respawned by the supervisor after a panic.
    BankRespawns,
    /// Banks quarantined after exceeding the consecutive-failure
    /// threshold.
    BankQuarantines,
    /// Requests resubmitted by the façade's bounded retry ladder.
    RequestRetries,
    /// Requests dropped (load-shed) because their deadline expired before
    /// a worker ran them.
    DeadlineExpired,
    /// Requests served by the serial datapath because every bank was
    /// quarantined.
    DegradedFallbacks,
    // ---- spe-core: tenant registry ----
    /// Tenant contexts instantiated by a registry (create + rotate).
    TenantCreated,
    /// Live key rotations performed by a registry.
    TenantRotated,
    /// Registry lookups that resolved a live tenant context.
    TenantLookupHits,
    /// Registry lookups for an unknown (or removed) tenant.
    TenantLookupMisses,
    // ---- spe-memsim: memory system ----
    /// NVMM line reads serviced.
    NvmmReads,
    /// NVMM line writes serviced.
    NvmmWrites,
    /// Lines sealed (encrypted) by the memory-side engine.
    LinesSealed,
    /// Lines opened (decrypted) by the memory-side engine.
    LinesOpened,
    // ---- scramble + integrity datapath ----
    /// Line addresses permuted by the keyed address scrambler (placement
    /// remaps: routing, storage or wear-leveling composition).
    ScrambleRemaps,
    /// Per-line integrity surface checks performed by a `LineGuard`
    /// (parity verifications; tag checks count under `TagsVerified`).
    IntegrityChecks,
    // ---- spe-core: power-balanced scheduling ----
    /// Complementary dummy pulses emitted by the power-balanced
    /// schedule policy to flatten the per-train energy trace.
    DummyPulses,
}

impl Counter {
    /// Number of counters.
    pub const COUNT: usize = 46;

    /// Every counter in canonical snapshot order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::NodalSolves,
        Counter::SneakPathActivations,
        Counter::FaultMapHits,
        Counter::FactorizationsRebuilt,
        Counter::FactorizationsReused,
        Counter::SolverFallbacks,
        Counter::PoePulses,
        Counter::TrainSteps,
        Counter::ScheduleDerivations,
        Counter::ScheduleCacheHits,
        Counter::ScheduleCacheMisses,
        Counter::ScheduleCacheEvictions,
        Counter::PlacementCacheHits,
        Counter::PlacementCacheMisses,
        Counter::BlocksEncrypted,
        Counter::BlocksDecrypted,
        Counter::LinesEncrypted,
        Counter::LinesDecrypted,
        Counter::CellCommits,
        Counter::TransientFaults,
        Counter::Retries,
        Counter::Remaps,
        Counter::Uncorrectable,
        Counter::TagsVerified,
        Counter::IntegrityFailures,
        Counter::BankJobs,
        Counter::SchedSubmitted,
        Counter::SchedCompleted,
        Counter::SchedBackpressureWaits,
        Counter::SchedRejectedWouldBlock,
        Counter::BankRespawns,
        Counter::BankQuarantines,
        Counter::RequestRetries,
        Counter::DeadlineExpired,
        Counter::DegradedFallbacks,
        Counter::TenantCreated,
        Counter::TenantRotated,
        Counter::TenantLookupHits,
        Counter::TenantLookupMisses,
        Counter::NvmmReads,
        Counter::NvmmWrites,
        Counter::LinesSealed,
        Counter::LinesOpened,
        Counter::ScrambleRemaps,
        Counter::IntegrityChecks,
        Counter::DummyPulses,
    ];

    /// Index into the recorder's counter table.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in snapshot text.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::NodalSolves => "nodal_solves",
            Counter::SneakPathActivations => "sneak_path_activations",
            Counter::FaultMapHits => "fault_map_hits",
            Counter::FactorizationsRebuilt => "factorizations_rebuilt",
            Counter::FactorizationsReused => "factorizations_reused",
            Counter::SolverFallbacks => "solver_fallbacks",
            Counter::PoePulses => "poe_pulses",
            Counter::TrainSteps => "train_steps",
            Counter::ScheduleDerivations => "schedule_derivations",
            Counter::ScheduleCacheHits => "schedule_cache_hits",
            Counter::ScheduleCacheMisses => "schedule_cache_misses",
            Counter::ScheduleCacheEvictions => "schedule_cache_evictions",
            Counter::PlacementCacheHits => "placement_cache_hits",
            Counter::PlacementCacheMisses => "placement_cache_misses",
            Counter::BlocksEncrypted => "blocks_encrypted",
            Counter::BlocksDecrypted => "blocks_decrypted",
            Counter::LinesEncrypted => "lines_encrypted",
            Counter::LinesDecrypted => "lines_decrypted",
            Counter::CellCommits => "cell_commits",
            Counter::TransientFaults => "transient_faults",
            Counter::Retries => "retries",
            Counter::Remaps => "remaps",
            Counter::Uncorrectable => "uncorrectable",
            Counter::TagsVerified => "tags_verified",
            Counter::IntegrityFailures => "integrity_failures",
            Counter::BankJobs => "bank_jobs",
            Counter::SchedSubmitted => "sched_submitted",
            Counter::SchedCompleted => "sched_completed",
            Counter::SchedBackpressureWaits => "sched_backpressure_waits",
            Counter::SchedRejectedWouldBlock => "sched_rejected_would_block",
            Counter::BankRespawns => "bank_respawns",
            Counter::BankQuarantines => "bank_quarantines",
            Counter::RequestRetries => "request_retries",
            Counter::DeadlineExpired => "deadline_expired",
            Counter::DegradedFallbacks => "degraded_fallbacks",
            Counter::TenantCreated => "tenant_created",
            Counter::TenantRotated => "tenant_rotated",
            Counter::TenantLookupHits => "tenant_lookup_hits",
            Counter::TenantLookupMisses => "tenant_lookup_misses",
            Counter::NvmmReads => "nvmm_reads",
            Counter::NvmmWrites => "nvmm_writes",
            Counter::LinesSealed => "lines_sealed",
            Counter::LinesOpened => "lines_opened",
            Counter::ScrambleRemaps => "scramble_remaps",
            Counter::IntegrityChecks => "integrity_checks",
            Counter::DummyPulses => "dummy_pulses",
        }
    }
}

/// Linear bucket bounds `[0, 1, .., N-1]`.
const fn linear_bounds<const N: usize>() -> [u64; N] {
    let mut bounds = [0u64; N];
    let mut i = 0;
    while i < N {
        bounds[i] = i as u64;
        i += 1;
    }
    bounds
}

/// Per-PoE pulse placement: one exact linear bucket per cell index
/// (`row * 8 + col` on the 8×8 crossbar, 0..=63), overflow catches 64+.
static POE_INDEX_BOUNDS: [u64; 64] = linear_bounds::<64>();
/// Bank index (0..=15 linear, overflow catches 16+).
static BANK_BOUNDS: [u64; 16] = linear_bounds::<16>();
/// Power-of-two latency bounds, in cycles or the caller's time unit.
static LOG2_BOUNDS: [u64; 16] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768,
];

/// A fixed-bucket distribution.
///
/// Bounds are static per histogram (upper-inclusive, plus one overflow
/// bucket), so two runs over the same workload produce byte-identical
/// snapshot text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum Histogram {
    /// Pulse placement across the 64 crossbar cells: value is the PoE's
    /// linear cell index (`row * 8 + col`), so buckets are *exact*
    /// per-PoE pulse counts.
    PoePulseIndex,
    /// Jobs per SPECU bank (value = bank index) — fan-out utilization.
    BankUtilization,
    /// Bank submission-queue depth observed as each request is enqueued.
    SchedQueueDepth,
    /// Requests in flight across the scheduler (queued + executing),
    /// observed as each request is accepted — the saturation metric.
    SchedInFlight,
    /// Backoff slept before a façade-level retry, in microseconds
    /// (doubles per attempt — the pipeline's exponential-backoff mirror
    /// of the cell layer's pulse-width ladder).
    RetryBackoff,
    /// Write pulse widths (device time units; also used for the
    /// exponential verify-retry backoff widths).
    PulseWidth,
    /// End-to-end memory read latency, in cycles.
    ReadLatencyCycles,
    /// Cycles a memory request waited for the channel.
    QueueDelayCycles,
    /// Added latency of the encryption engine per access, in cycles.
    EngineLatencyCycles,
}

impl Histogram {
    /// Number of histograms.
    pub const COUNT: usize = 9;

    /// Every histogram in canonical snapshot order.
    pub const ALL: [Histogram; Histogram::COUNT] = [
        Histogram::PoePulseIndex,
        Histogram::BankUtilization,
        Histogram::SchedQueueDepth,
        Histogram::SchedInFlight,
        Histogram::RetryBackoff,
        Histogram::PulseWidth,
        Histogram::ReadLatencyCycles,
        Histogram::QueueDelayCycles,
        Histogram::EngineLatencyCycles,
    ];

    /// Index into the recorder's histogram table.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in snapshot text.
    pub const fn name(self) -> &'static str {
        match self {
            Histogram::PoePulseIndex => "poe_pulse_index",
            Histogram::BankUtilization => "bank_utilization",
            Histogram::SchedQueueDepth => "sched_queue_depth",
            Histogram::SchedInFlight => "sched_in_flight",
            Histogram::RetryBackoff => "retry_backoff_us",
            Histogram::PulseWidth => "pulse_width",
            Histogram::ReadLatencyCycles => "read_latency_cycles",
            Histogram::QueueDelayCycles => "queue_delay_cycles",
            Histogram::EngineLatencyCycles => "engine_latency_cycles",
        }
    }

    /// Upper-inclusive bucket bounds; one extra overflow bucket follows.
    pub fn bounds(self) -> &'static [u64] {
        match self {
            Histogram::PoePulseIndex => &POE_INDEX_BOUNDS,
            Histogram::BankUtilization => &BANK_BOUNDS,
            Histogram::SchedQueueDepth
            | Histogram::SchedInFlight
            | Histogram::RetryBackoff
            | Histogram::PulseWidth
            | Histogram::ReadLatencyCycles
            | Histogram::QueueDelayCycles
            | Histogram::EngineLatencyCycles => &LOG2_BOUNDS,
        }
    }

    /// Total bucket count (bounds plus the overflow bucket).
    pub fn bucket_count(self) -> usize {
        self.bounds().len() + 1
    }

    /// The bucket a value falls into (first bound >= value, else overflow).
    pub fn bucket_index(self, value: u64) -> usize {
        let bounds = self.bounds();
        bounds.partition_point(|&b| b < value)
    }

    /// Deterministic label for bucket `i` (used in snapshot text).
    pub fn bucket_label(self, i: usize) -> String {
        let bounds = self.bounds();
        if i < bounds.len() {
            format!("le_{}", bounds[i])
        } else {
            format!("gt_{}", bounds[bounds.len() - 1])
        }
    }
}

/// A last-value-wins level metric.
///
/// Unlike a [`Counter`] (monotonic, accumulated by `add`), a gauge is
/// *set* to the current level of something — live tenant contexts, queue
/// residency — and the snapshot reports the most recent value. Setters
/// own the level (they compute it and store it whole), so concurrent
/// updates never need read-modify-write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum Gauge {
    /// Keyed tenant contexts currently live in a
    /// `TenantRegistry` (created and not yet removed; rotation keeps the
    /// count, it swaps the context).
    TenantContextsLive,
}

impl Gauge {
    /// Number of gauges.
    pub const COUNT: usize = 1;

    /// Every gauge in canonical snapshot order.
    pub const ALL: [Gauge; Gauge::COUNT] = [Gauge::TenantContextsLive];

    /// Index into the recorder's gauge table.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in snapshot text.
    pub const fn name(self) -> &'static str {
        match self {
            Gauge::TenantContextsLive => "tenant_contexts_live",
        }
    }
}

/// A wall-clock span accumulated by [`crate::SpanTimer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum Span {
    /// Crossbar kernel calibration.
    Calibration,
    /// One line encryption through the SPECU.
    EncryptLine,
    /// One line decryption through the SPECU.
    DecryptLine,
    /// Deriving one block's pulse schedule + trains (cache-miss cost).
    ScheduleDerive,
    /// Applying an already-derived schedule to a block's payload.
    ScheduleApply,
    /// One fault-campaign rate sweep.
    Campaign,
    /// One memory-system simulation run.
    Simulation,
    /// One keyed address-scramble permutation (placement remap cost).
    ScrambleLatency,
}

impl Span {
    /// Number of spans.
    pub const COUNT: usize = 8;

    /// Every span in canonical snapshot order.
    pub const ALL: [Span; Span::COUNT] = [
        Span::Calibration,
        Span::EncryptLine,
        Span::DecryptLine,
        Span::ScheduleDerive,
        Span::ScheduleApply,
        Span::Campaign,
        Span::Simulation,
        Span::ScrambleLatency,
    ];

    /// Index into the recorder's span table.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in snapshot text.
    pub const fn name(self) -> &'static str {
        match self {
            Span::Calibration => "calibration",
            Span::EncryptLine => "encrypt_line",
            Span::DecryptLine => "decrypt_line",
            Span::ScheduleDerive => "schedule_derive",
            Span::ScheduleApply => "schedule_apply",
            Span::Campaign => "campaign",
            Span::Simulation => "simulation",
            Span::ScrambleLatency => "scramble_latency",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_indices_match_all_order() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{}", c.name());
        }
    }

    #[test]
    fn histogram_indices_match_all_order() {
        for (i, h) in Histogram::ALL.iter().enumerate() {
            assert_eq!(h.index(), i, "{}", h.name());
        }
    }

    #[test]
    fn gauge_indices_match_all_order() {
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(g.index(), i, "{}", g.name());
        }
    }

    #[test]
    fn span_indices_match_all_order() {
        for (i, s) in Span::ALL.iter().enumerate() {
            assert_eq!(s.index(), i, "{}", s.name());
        }
    }

    #[test]
    fn poe_index_buckets_are_exact() {
        // 64 exact buckets (one per cell of the 8×8 crossbar) plus the
        // overflow bucket. Cell 63 must land in its own bucket, not in
        // overflow — the old 63-bound table folded it there.
        let h = Histogram::PoePulseIndex;
        assert_eq!(h.bucket_count(), 65);
        for cell in 0..64u64 {
            assert_eq!(h.bucket_index(cell), cell as usize);
        }
        assert_eq!(h.bucket_index(64), 64, "64 is the overflow bucket");
        assert_eq!(h.bucket_label(63), "le_63");
        assert_eq!(h.bucket_label(64), "gt_63");
    }

    #[test]
    fn bank_buckets_cover_a_16_bank_pool_exactly() {
        // Regression: bank 15 of a 16-bank run must have its own bucket
        // (the old 15-bound table aliased it into overflow, so
        // BankUtilization under-reported the last bank).
        let h = Histogram::BankUtilization;
        assert_eq!(h.bucket_count(), 17);
        for bank in 0..16u64 {
            assert_eq!(h.bucket_index(bank), bank as usize, "bank {bank}");
        }
        assert_eq!(h.bucket_index(16), 16, "16+ is the overflow bucket");
        assert_eq!(h.bucket_label(15), "le_15");
        assert_eq!(h.bucket_label(16), "gt_15");
    }

    #[test]
    fn log2_buckets_partition() {
        let h = Histogram::ReadLatencyCycles;
        assert_eq!(h.bucket_index(0), 0);
        assert_eq!(h.bucket_index(1), 0);
        assert_eq!(h.bucket_index(2), 1);
        assert_eq!(h.bucket_index(3), 2);
        assert_eq!(h.bucket_index(32768), 15);
        assert_eq!(h.bucket_index(32769), 16);
        assert_eq!(h.bucket_label(0), "le_1");
        assert_eq!(h.bucket_label(16), "gt_32768");
    }
}
