//! Point-in-time snapshots with a deterministic JSON-ish text form.

use std::fmt::Write as _;

use crate::metric::{Counter, Gauge, Histogram, Span};
use crate::power::PowerSummary;

/// One histogram's state at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Which histogram this is.
    pub histogram: Histogram,
    /// Total observations across all buckets.
    pub total: u64,
    /// Sum of all observed values (for means).
    pub sum: u64,
    /// Per-bucket counts, `histogram.bucket_count()` long.
    pub buckets: Vec<u64>,
}

/// One span's accumulated wall-clock time at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Which span this is.
    pub span: Span,
    /// Completed timer count.
    pub count: u64,
    /// Total wall-clock nanoseconds (nondeterministic across runs).
    pub total_ns: u64,
}

/// Everything a recorder saw, frozen.
///
/// [`TelemetrySnapshot::to_text`] renders counters and histograms in
/// canonical enum order, omitting zero entries — byte-identical across
/// runs of a fixed-seed workload, so bench output is machine-diffable.
/// Span timings are wall-clock and therefore only appear in
/// [`TelemetrySnapshot::to_text_full`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// All counters in canonical order (zeros included).
    pub counters: Vec<(Counter, u64)>,
    /// All histograms in canonical order (empty ones included).
    pub histograms: Vec<HistogramSnapshot>,
    /// All gauges in canonical order (zeros included); last value set.
    pub gauges: Vec<(Gauge, u64)>,
    /// All spans in canonical order.
    pub spans: Vec<SpanSnapshot>,
    /// Order-independent aggregate of the power trace (count, total,
    /// min, max in femtojoules) — the full ordered trace is available
    /// from the recorder, not the snapshot, because sample order is
    /// nondeterministic under parallel banks.
    pub power: PowerSummary,
}

impl TelemetrySnapshot {
    /// The all-zero snapshot an empty recorder produces.
    pub fn default_shape() -> Self {
        TelemetrySnapshot {
            counters: Counter::ALL.map(|c| (c, 0)).to_vec(),
            histograms: Histogram::ALL
                .map(|h| HistogramSnapshot {
                    histogram: h,
                    total: 0,
                    sum: 0,
                    buckets: vec![0; h.bucket_count()],
                })
                .to_vec(),
            gauges: Gauge::ALL.map(|g| (g, 0)).to_vec(),
            spans: Span::ALL
                .map(|s| SpanSnapshot {
                    span: s,
                    count: 0,
                    total_ns: 0,
                })
                .to_vec(),
            power: PowerSummary::default(),
        }
    }

    /// The value of one counter (zero if absent).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters
            .iter()
            .find(|(c, _)| *c == counter)
            .map_or(0, |&(_, v)| v)
    }

    /// One histogram's snapshot, if present.
    pub fn histogram(&self, histogram: Histogram) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.histogram == histogram)
    }

    /// The level of one gauge (zero if absent).
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.gauges
            .iter()
            .find(|(g, _)| *g == gauge)
            .map_or(0, |&(_, v)| v)
    }

    /// One span's snapshot, if present.
    pub fn span(&self, span: Span) -> Option<SpanSnapshot> {
        self.spans.iter().find(|s| s.span == span).copied()
    }

    /// True when nothing was recorded (spans included).
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&(_, v)| v == 0)
            && self.histograms.iter().all(|h| h.total == 0)
            && self.gauges.iter().all(|&(_, v)| v == 0)
            && self.spans.iter().all(|s| s.count == 0)
            && self.power.is_empty()
    }

    /// Deterministic JSON-ish rendering: counters and histograms only,
    /// canonical order, zero entries omitted.
    pub fn to_text(&self) -> String {
        self.render(false)
    }

    /// Full rendering including wall-clock span timings — useful for
    /// humans, nondeterministic across runs.
    pub fn to_text_full(&self) -> String {
        self.render(true)
    }

    fn render(&self, with_spans: bool) -> String {
        let mut out = String::new();
        out.push_str("telemetry {\n");
        out.push_str("  counters {\n");
        for &(c, v) in &self.counters {
            if v != 0 {
                let _ = writeln!(out, "    {}: {v}", c.name());
            }
        }
        out.push_str("  }\n");
        out.push_str("  histograms {\n");
        for h in &self.histograms {
            if h.total == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "    {} {{ total: {}, sum: {} }}",
                h.histogram.name(),
                h.total,
                h.sum
            );
            for (i, &count) in h.buckets.iter().enumerate() {
                if count != 0 {
                    let _ = writeln!(out, "      {}: {count}", h.histogram.bucket_label(i));
                }
            }
        }
        out.push_str("  }\n");
        out.push_str("  gauges {\n");
        for &(g, v) in &self.gauges {
            if v != 0 {
                let _ = writeln!(out, "    {}: {v}", g.name());
            }
        }
        out.push_str("  }\n");
        if !self.power.is_empty() {
            out.push_str("  power {\n");
            let _ = writeln!(out, "    samples: {}", self.power.samples);
            let _ = writeln!(out, "    total_fj: {}", self.power.total_fj);
            let _ = writeln!(out, "    min_fj: {}", self.power.min_fj);
            let _ = writeln!(out, "    max_fj: {}", self.power.max_fj);
            out.push_str("  }\n");
        }
        if with_spans {
            out.push_str("  spans {\n");
            for s in &self.spans {
                if s.count != 0 {
                    let _ = writeln!(
                        out,
                        "    {} {{ count: {}, total_ns: {} }}",
                        s.span.name(),
                        s.count,
                        s.total_ns
                    );
                }
            }
            out.push_str("  }\n");
        }
        out.push('}');
        out
    }
}

impl std::fmt::Display for TelemetrySnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::AtomicRecorder;
    use crate::recorder::Recorder;

    #[test]
    fn empty_snapshot_renders_empty_sections() {
        let snap = TelemetrySnapshot::default_shape();
        assert!(snap.is_empty());
        let text = snap.to_text();
        assert!(text.starts_with("telemetry {"));
        assert!(!text.contains("poe_pulses"));
    }

    #[test]
    fn text_is_deterministic_and_omits_spans() {
        let build = || {
            let r = AtomicRecorder::new();
            r.add(Counter::PoePulses, 128);
            r.add(Counter::Retries, 3);
            r.observe(Histogram::PoePulseIndex, 12);
            r.span_ns(Span::EncryptLine, 987_654);
            r.snapshot()
        };
        let a = build();
        let b = build();
        assert_eq!(a.to_text(), b.to_text());
        assert!(a.to_text().contains("poe_pulses: 128"));
        assert!(a.to_text().contains("retries: 3"));
        assert!(a.to_text().contains("le_12: 1"));
        assert!(!a.to_text().contains("encrypt_line"));
        assert!(a.to_text_full().contains("encrypt_line"));
    }

    #[test]
    fn accessors_read_back() {
        let r = AtomicRecorder::new();
        r.add(Counter::Remaps, 7);
        r.span_ns(Span::Campaign, 10);
        let snap = r.snapshot();
        assert_eq!(snap.counter(Counter::Remaps), 7);
        assert_eq!(snap.span(Span::Campaign).map(|s| s.count), Some(1));
    }

    #[test]
    fn gauges_render_in_text() {
        let r = AtomicRecorder::new();
        r.set_gauge(Gauge::TenantContextsLive, 12);
        let snap = r.snapshot();
        assert_eq!(snap.gauge(Gauge::TenantContextsLive), 12);
        assert!(!snap.is_empty());
        assert!(snap.to_text().contains("tenant_contexts_live: 12"));
        // Zero gauges are omitted like zero counters.
        let empty = TelemetrySnapshot::default_shape();
        assert!(!empty.to_text().contains("tenant_contexts_live"));
    }

    #[test]
    fn power_summary_renders_deterministically() {
        use crate::power::PowerSample;
        let build = || {
            let r = AtomicRecorder::new();
            r.record_power(PowerSample {
                poe_index: 0,
                energy_fj: 100,
            });
            r.record_power(PowerSample {
                poe_index: 9,
                energy_fj: 250,
            });
            r.snapshot()
        };
        let a = build();
        assert_eq!(a.to_text(), build().to_text());
        let text = a.to_text();
        assert!(text.contains("power {"));
        assert!(text.contains("samples: 2"));
        assert!(text.contains("total_fj: 350"));
        assert!(text.contains("min_fj: 100"));
        assert!(text.contains("max_fj: 250"));
        // An empty trace omits the section entirely.
        assert!(!TelemetrySnapshot::default_shape()
            .to_text()
            .contains("power {"));
    }
}
